//! Spatially-constrained clustering stability under re-partitioning — the
//! Table IV experiment as a runnable walkthrough.
//!
//! SCHC clusters the original grid's cells, then clusters the
//! re-partitioned cell-groups, projects the group labels back to cells
//! (constant-time via the partition's `cIndex`), and measures the cell
//! agreement between the two clusterings after label alignment.
//!
//! Run: `cargo run --release --example clustering_study`

use spatial_repartition::core::PreparedTrainingData;
use spatial_repartition::datasets::{Dataset, GridSize};
use spatial_repartition::ml::{cluster_agreement, schc_cluster, SchcParams};
use spatial_repartition::prelude::*;
use std::time::Instant;

const CLUSTERS: usize = 8;

fn main() {
    let grid = Dataset::VehiclesUnivariate.generate(GridSize::Tiny, 2);
    println!(
        "abandoned-vehicles grid: {} cells ({} valid); target: {CLUSTERS} clusters\n",
        grid.num_cells(),
        grid.num_valid_cells()
    );

    // ── Baseline: cluster the raw cells. ────────────────────────────────
    let norm = normalize_attributes(&grid);
    let cell_features: Vec<Vec<f64>> =
        norm.valid_cells().map(|id| norm.features_unchecked(id).to_vec()).collect();
    let cell_adj = AdjacencyList::rook_from_grid(&grid).restrict(&grid.valid_mask());
    let start = Instant::now();
    let base = schc_cluster(&cell_features, &cell_adj, &SchcParams { num_clusters: CLUSTERS })
        .expect("cluster");
    let base_secs = start.elapsed().as_secs_f64();
    println!("original grid: {} clusters in {base_secs:.3}s", base.num_found);

    // Cell-level labels of the baseline, indexed by cell id.
    let valid_ids: Vec<u32> = grid.valid_cells().collect();
    let mut base_label_of_cell = vec![usize::MAX; grid.num_cells()];
    for (vi, &cell) in valid_ids.iter().enumerate() {
        base_label_of_cell[cell as usize] = base.labels[vi];
    }

    // ── Re-partition, cluster the groups, project back to cells. ────────
    println!("\ntheta  groups  cluster-time  speedup  cell agreement");
    for theta in [0.05, 0.10, 0.15] {
        let outcome = repartition(&grid, theta).expect("valid threshold");
        let rep = &outcome.repartitioned;
        let prep = PreparedTrainingData::from_repartitioned(rep);

        // Normalize group features the same way (per-attribute max).
        let max = prep
            .features
            .iter()
            .flat_map(|f| f.iter())
            .fold(0.0f64, |m, v| m.max(v.abs()))
            .max(f64::MIN_POSITIVE);
        let feats: Vec<Vec<f64>> =
            prep.features.iter().map(|f| f.iter().map(|v| v / max).collect()).collect();

        let start = Instant::now();
        let res = schc_cluster(&feats, &prep.adjacency, &SchcParams { num_clusters: CLUSTERS })
            .expect("cluster");
        let secs = start.elapsed().as_secs_f64();

        // Project unit labels to cells via the partition.
        let mut a = Vec::new();
        let mut b = Vec::new();
        for (u, &gid) in prep.group_ids.iter().enumerate() {
            let rect = rep.partition().rect(gid);
            for (r, c) in rect.cells() {
                let cell = (r as usize) * grid.cols() + c as usize;
                if base_label_of_cell[cell] != usize::MAX {
                    a.push(base_label_of_cell[cell]);
                    b.push(res.labels[u]);
                }
            }
        }
        let agreement = cluster_agreement(&a, &b);
        println!(
            "{theta:.2}   {:>6}  {secs:>10.3}s  {:>6.1}x  {agreement:>13.2}%",
            rep.num_groups(),
            base_secs / secs.max(1e-9),
        );
    }

    println!("\nThe Table IV story: cluster structure survives re-partitioning");
    println!("almost intact while the clustering itself runs on far fewer units.");
}
