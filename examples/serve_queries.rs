//! Serving demo: repartition a grid, freeze it as an `sr-snap v1`
//! snapshot, load it through the LRU cache, start the HTTP server on an
//! ephemeral port, and issue a few queries over real TCP.
//!
//! Run: `cargo run --release --example serve_queries`

use spatial_repartition::prelude::*;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;

fn get(addr: std::net::SocketAddr, target: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: demo\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or(response)
}

fn main() {
    // Offline side: build and freeze a re-partitioned dataset.
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Custom(40, 40), 7);
    let theta = 0.05;
    let outcome = repartition(&grid, theta).unwrap();
    let rep = &outcome.repartitioned;
    println!(
        "repartitioned: {} cells -> {} groups (IFL {:.4} <= {theta})",
        grid.num_cells(),
        rep.num_groups(),
        rep.ifl()
    );

    let snap = Snapshot::build(rep, &grid, theta).unwrap();
    let path = std::env::temp_dir().join(format!("serve_queries_demo_{}.snap", std::process::id()));
    save_snapshot(&snap, &path).unwrap();
    println!("snapshot: {} ({} bytes)", path.display(), std::fs::metadata(&path).unwrap().len());

    // Online side: warm the cache and serve.
    let cache = SnapshotCache::new(4);
    let engine: Arc<QueryEngine> = cache.get_or_load(&path, theta).unwrap();
    let mut handle = serve(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr();
    println!("serving on http://{addr}\n");

    let (lat, lon) = grid.cell_centroid(grid.cell_id(20, 20));
    println!("GET /stats\n  {}", get(addr, "/stats"));
    println!(
        "GET /point?lat={lat:.4}&lon={lon:.4}\n  {}",
        get(addr, &format!("/point?lat={lat}&lon={lon}"))
    );
    let b = grid.bounds();
    let mid_lat = (b.lat_min + b.lat_max) / 2.0;
    let mid_lon = (b.lon_min + b.lon_max) / 2.0;
    println!(
        "GET /window (north-east quadrant)\n  {}",
        get(
            addr,
            &format!("/window?lat0={mid_lat}&lat1={}&lon0={mid_lon}&lon1={}", b.lat_max, b.lon_max)
        )
    );
    println!("GET /knn?k=3\n  {}", get(addr, &format!("/knn?lat={lat}&lon={lon}&k=3")));

    handle.shutdown();
    std::fs::remove_file(&path).ok();
    println!("\nserver stopped (cache: {} hit(s), {} miss(es))", cache.hits(), cache.misses());
}
