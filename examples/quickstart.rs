//! Quickstart: build a grid from raw point records, re-partition it under
//! an information-loss budget, and inspect everything the framework gives
//! you — the cell-groups, their adjacency (Algorithm 3), the achieved IFL,
//! the preserved spatial autocorrelation, and the §III-C reconstruction.
//!
//! Run: `cargo run --release --example quickstart`

use spatial_repartition::prelude::*;

fn main() {
    // ── 1. Raw data: point records (think individual home sales). ──────
    // Price varies smoothly from south-west to north-east plus local noise.
    let mut records = Vec::new();
    for i in 0..4000 {
        let lat = (i % 63) as f64 / 63.0;
        let lon = ((i * 37) % 71) as f64 / 71.0;
        let price =
            150_000.0 + 200_000.0 * (lat + lon) / 2.0 + 8_000.0 * ((i * 7919) % 13) as f64 / 13.0;
        records.push(PointRecord { lat, lon, values: vec![price] });
    }

    // ── 2. Bin them into a 24×24 spatial grid (avg price per cell). ─────
    let builder = GridBuilder::new(
        24,
        24,
        Bounds::unit(),
        vec!["price".into()],
        vec![AggType::Avg],
        vec![false],
    )
    .expect("valid schema");
    let grid = builder.build(&records).expect("consistent records");
    println!(
        "grid: {}x{} = {} cells ({} valid)",
        grid.rows(),
        grid.cols(),
        grid.num_cells(),
        grid.num_valid_cells()
    );

    // The raw grid is spatially autocorrelated — the property the framework
    // preserves and sampling destroys.
    let adj = AdjacencyList::rook_from_grid(&grid);
    let mut prices = vec![0.0; grid.num_cells()];
    for id in grid.valid_cells() {
        prices[id as usize] = grid.value(id, 0);
    }
    println!("Moran's I of the input grid: {:.3}", morans_i(&prices, &adj).unwrap());

    // ── 3. Re-partition with an IFL budget θ = 0.05. ────────────────────
    let outcome = repartition(&grid, 0.05).expect("valid threshold");
    let rep = &outcome.repartitioned;
    println!(
        "\nre-partitioned: {} cells -> {} cell-groups ({:.1}% reduction) at IFL {:.4} <= 0.05",
        grid.num_cells(),
        rep.num_groups(),
        outcome.cell_reduction() * 100.0,
        rep.ifl(),
    );
    println!(
        "driver ran {} iterations; final min-adjacent variation {:.5}",
        outcome.iterations.len(),
        rep.min_adjacent_variation()
    );

    // Every cell-group is a rectangle; show the largest.
    let largest =
        (0..rep.num_groups() as u32).max_by_key(|&g| rep.partition().rect(g).len()).unwrap();
    let rect = rep.partition().rect(largest);
    println!(
        "largest group: rows {}..={}, cols {}..={} ({} cells)",
        rect.r0,
        rect.r1,
        rect.c0,
        rect.c1,
        rect.len()
    );

    // ── 4. Training-ready views (§III-B). ───────────────────────────────
    let prepared = PreparedTrainingData::from_repartitioned(rep);
    println!(
        "\nprepared training data: {} instances, {} attrs, adjacency symmetric: {}",
        prepared.len(),
        prepared.features.first().map_or(0, Vec::len),
        prepared.adjacency.is_symmetric(),
    );

    // ── 5. Reconstruction (§III-C): back to cell granularity. ───────────
    let reconstructed = rep.reconstruct(&grid).expect("shapes match");
    let ifl = information_loss(&grid, &reconstructed, IflOptions::default()).unwrap();
    println!("reconstructed grid IFL (must equal the driver's): {:.4}", ifl);
    assert!((ifl - rep.ifl()).abs() < 1e-12);

    // ── 6. The trade-off: higher budgets, fewer groups. ─────────────────
    println!("\ntheta  groups  reduction  achieved IFL");
    for theta in [0.02, 0.05, 0.10, 0.15] {
        let out = repartition(&grid, theta).expect("valid threshold");
        println!(
            "{theta:.2}   {:>6}  {:>8.1}%  {:.4}",
            out.repartitioned.num_groups(),
            out.cell_reduction() * 100.0,
            out.repartitioned.ifl()
        );
    }
}
