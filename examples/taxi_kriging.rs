//! Ordinary kriging on the taxi-pickup surface, original vs re-partitioned
//! — the paper's univariate interpolation scenario (§IV-C3, Fig. 7f).
//!
//! Kriging estimates the value at unobserved locations from nearby
//! observations; the re-partitioned grid gives it far fewer observations to
//! process while the fitted variogram (and hence the interpolation quality)
//! barely moves.
//!
//! Run: `cargo run --release --example taxi_kriging`

use spatial_repartition::core::PreparedTrainingData;
use spatial_repartition::datasets::{train_test_split, Dataset, GridSize};
use spatial_repartition::ml::{mae, rmse, table1, OrdinaryKriging};
use spatial_repartition::prelude::*;
use std::time::Instant;

fn main() {
    let grid = Dataset::TaxiUnivariate.generate(GridSize::Tiny, 3);
    println!("taxi pickups grid: {} cells ({} valid)\n", grid.num_cells(), grid.num_valid_cells());

    // Observation sets: (name, coords, per-cell pickup intensity).
    type ObservationSet = (String, Vec<(f64, f64)>, Vec<f64>);
    let mut sets: Vec<ObservationSet> = Vec::new();

    let mut coords = Vec::new();
    let mut values = Vec::new();
    for id in grid.valid_cells() {
        coords.push(grid.cell_centroid(id));
        values.push(grid.value(id, 0));
    }
    sets.push(("original".into(), coords, values));

    for theta in [0.05, 0.10] {
        let outcome = repartition(&grid, theta).expect("valid threshold");
        let rep = &outcome.repartitioned;
        let prep = PreparedTrainingData::from_repartitioned(rep);
        // Pickups are Sum-aggregated: convert group totals to per-cell
        // intensity so scales match the original observations (§III-C).
        let values: Vec<f64> = prep
            .features
            .iter()
            .zip(&prep.group_sizes)
            .map(|(fv, &size)| fv[0] / size as f64)
            .collect();
        sets.push((
            format!("repartitioned θ={theta:.2} ({} groups)", rep.num_groups()),
            prep.centroids.clone(),
            values,
        ));
    }

    println!(
        "{:<36} {:>10} {:>10} {:>9} {:>9}",
        "observations", "fit+predict", "variogram range", "MAE", "RMSE"
    );
    for (name, coords, values) in &sets {
        let (train, test) = train_test_split(coords.len(), 0.2, 11);
        let tc: Vec<(f64, f64)> = train.iter().map(|&i| coords[i]).collect();
        let tv: Vec<f64> = train.iter().map(|&i| values[i]).collect();
        let qc: Vec<(f64, f64)> = test.iter().map(|&i| coords[i]).collect();
        let qv: Vec<f64> = test.iter().map(|&i| values[i]).collect();

        let start = Instant::now();
        let k = OrdinaryKriging::fit(&tc, &tv, &table1::kriging()).expect("fit");
        let pred = k.predict(&qc);
        let secs = start.elapsed().as_secs_f64();

        println!(
            "{:<36} {:>9.3}s {:>15.3} {:>9.2} {:>9.2}",
            name,
            secs,
            k.variogram.range,
            mae(&qv, &pred),
            rmse(&qv, &pred)
        );
    }

    println!("\nInterpretation: the reduced observation sets cut the kriging cost");
    println!("(fewer neighbors to search, fewer variogram pairs) while the error");
    println!("stays close to the full-resolution run — the Fig. 7f/8f story.");
}
