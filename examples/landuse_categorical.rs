//! Categorical attributes through the full pipeline — the §VI "support for
//! categorical attributes" extension.
//!
//! A zoning map carries a land-use class per cell next to numeric
//! attributes. Re-partitioning must never merge across class boundaries
//! (the 0/1 mismatch term in the typed variation dominates any threshold
//! below 1/p), so the resulting cell-groups are class-pure and usable for
//! per-zone analytics.
//!
//! Run: `cargo run --release --example landuse_categorical`

use spatial_repartition::core::repartition;
use spatial_repartition::datasets::land_use::{self, COMMERCIAL, INDUSTRIAL, PARK, RESIDENTIAL};

fn class_name(code: f64) -> &'static str {
    match code {
        c if c == RESIDENTIAL => "residential",
        c if c == COMMERCIAL => "commercial",
        c if c == INDUSTRIAL => "industrial",
        c if c == PARK => "park",
        _ => "?",
    }
}

fn main() {
    let grid = land_use::mixed(48, 48, 11);
    println!("land-use grid: {} cells, attributes {:?}", grid.num_cells(), grid.attr_names());

    // Class distribution of the input.
    let mut counts = std::collections::BTreeMap::new();
    for id in grid.valid_cells() {
        *counts.entry(grid.value(id, 2) as u32).or_insert(0usize) += 1;
    }
    println!("\ninput class mix:");
    for (code, n) in &counts {
        println!("  {:<12} {n} cells", class_name(*code as f64));
    }

    let out = repartition(&grid, 0.05).expect("valid threshold");
    let rep = &out.repartitioned;
    println!(
        "\nre-partitioned: {} -> {} groups ({:.1}% reduction) at IFL {:.4}",
        grid.num_cells(),
        rep.num_groups(),
        out.cell_reduction() * 100.0,
        rep.ifl()
    );

    // Verify class purity and aggregate per-zone statistics.
    let mut zone_stats: std::collections::BTreeMap<u32, (usize, f64)> = Default::default();
    let mut impure = 0usize;
    for gid in 0..rep.num_groups() as u32 {
        let Some(fv) = rep.group_feature(gid) else { continue };
        let cells = rep.partition().cells_of(gid);
        let class = grid.value(cells[0], 2);
        if cells.iter().any(|&c| grid.value(c, 2) != class) {
            impure += 1;
        }
        let entry = zone_stats.entry(fv[2] as u32).or_insert((0, 0.0));
        entry.0 += cells.len();
        entry.1 += fv[0] * cells.len() as f64; // value-weighted by coverage
    }
    println!("groups mixing classes: {impure} (must be 0)");
    assert_eq!(impure, 0);

    println!("\nper-zone mean property value from the reduced data:");
    for (code, (cells, weighted)) in &zone_stats {
        println!(
            "  {:<12} {:>6} cells  ${:>10.0}",
            class_name(*code as f64),
            cells,
            weighted / *cells as f64
        );
    }

    println!("\nCommercial zones should price above parks — readable straight");
    println!("off the reduced dataset because groups never straddle zones.");
}
