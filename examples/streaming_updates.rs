//! Streaming cell updates against a live re-partitioned dataset — the
//! paper's §VI future-work scenario, implemented with split-on-write and
//! periodic compaction.
//!
//! Simulates a month of taxi-demand drift: every "day" a batch of cells
//! receives fresh pickup counts. The streaming re-partitioner absorbs each
//! batch in O(affected cells), never violates the loss budget, and
//! compacts when fragmentation passes 1.3×.
//!
//! Run: `cargo run --release --example streaming_updates`

use spatial_repartition::core::{CellUpdate, StreamingRepartitioner};
use spatial_repartition::datasets::{Dataset, GridSize};

fn main() {
    let grid = Dataset::TaxiUnivariate.generate(GridSize::Tiny, 4);
    let n_cells = grid.num_cells();
    println!("taxi grid: {} cells; building streaming re-partitioner at theta = 0.10", n_cells);

    let mut stream = StreamingRepartitioner::new(grid, 0.10).expect("valid threshold");
    println!("initial: {} groups, IFL {:.4}\n", stream.num_groups(), stream.ifl());

    println!("day  updates  groups  fragmentation  IFL     action");
    let mut compactions = 0;
    for day in 1..=30u64 {
        // A drifting demand wave: each day touches a band of cells.
        let updates: Vec<CellUpdate> = (0..40u64)
            .map(|i| {
                let cell = ((day * 131 + i * 97) % n_cells as u64) as u32;
                let base = stream.grid().features(cell).map_or(25.0, |f| f[0]);
                // ±10% demand drift, floored at one pickup.
                let drift = 1.0 + 0.1 * (((day + i) % 5) as f64 - 2.0) / 2.0;
                CellUpdate { cell, features: Some(vec![(base * drift).round().max(1.0)]) }
            })
            .collect();

        stream.apply(&updates).expect("validated updates");
        assert!(stream.ifl() <= stream.threshold(), "budget invariant violated");

        let mut action = "-";
        if stream.fragmentation() > 1.3 {
            let (before, after) = stream.compact().expect("compaction");
            action = "compacted";
            compactions += 1;
            println!(
                "{day:>3}  {:>7}  {:>6}  {:>12.2}  {:.4}  {action} ({before} -> {after} groups)",
                updates.len(),
                stream.num_groups(),
                stream.fragmentation(),
                stream.ifl()
            );
            continue;
        }
        if day % 5 == 0 {
            println!(
                "{day:>3}  {:>7}  {:>6}  {:>12.2}  {:.4}  {action}",
                updates.len(),
                stream.num_groups(),
                stream.fragmentation(),
                stream.ifl()
            );
        }
    }

    println!(
        "\nafter 30 days: {} groups, IFL {:.4} (budget 0.10), {compactions} compactions",
        stream.num_groups(),
        stream.ifl()
    );
    println!("The split-on-write invariant keeps the loss bounded between compactions.");
}
