//! Multi-class classification on the earnings grid — the paper's §IV-C2
//! scenario: the continuous target (high-earning jobs per cell) is binned
//! into five ordered classes (low … high) and classified with gradient
//! boosting and KNN, on the original grid and on re-partitioned versions.
//!
//! Run: `cargo run --release --example classification_pipeline`

use spatial_repartition::core::PreparedTrainingData;
use spatial_repartition::datasets::{train_test_split, Dataset, GridSize};
use spatial_repartition::ml::{
    bin_into_quantiles, table1, weighted_f1, GradientBoostingClassifier, KnnClassifier,
};
use spatial_repartition::prelude::*;
use std::time::Instant;

fn main() {
    let ds = Dataset::EarningsMultivariate;
    let grid = ds.generate(GridSize::Tiny, 5);
    println!(
        "earnings grid: {} cells, target attribute: {}\n",
        grid.num_cells(),
        grid.attr_names()[ds.target_attr()]
    );

    // Instance sets: feature rows + continuous target.
    let mut sets: Vec<(String, Vec<Vec<f64>>, Vec<f64>)> = Vec::new();

    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for id in grid.valid_cells() {
        let fv = grid.features_unchecked(id);
        let mut x = fv.to_vec();
        ys.push(x.remove(ds.target_attr()));
        xs.push(x);
    }
    sets.push(("original".into(), xs, ys));

    for theta in [0.05, 0.15] {
        let outcome = repartition(&grid, theta).expect("valid threshold");
        let prep = PreparedTrainingData::from_repartitioned(&outcome.repartitioned);
        // Per-cell intensities for Sum attributes keep class boundaries
        // comparable across unit sizes.
        let rows: Vec<Vec<f64>> = prep
            .features
            .iter()
            .zip(&prep.group_sizes)
            .map(|(fv, &size)| {
                fv.iter()
                    .zip(grid.agg_types())
                    .map(|(&v, agg)| match agg {
                        AggType::Sum => v / size as f64,
                        AggType::Avg | AggType::Mode => v,
                    })
                    .collect()
            })
            .collect();
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for mut row in rows {
            ys.push(row.remove(ds.target_attr()));
            xs.push(row);
        }
        sets.push((format!("repartitioned θ={theta:.2} ({} units)", xs.len()), xs, ys));
    }

    println!(
        "{:<34} {:>18} {:>8}   {:>18} {:>8}",
        "dataset", "gboost train", "F1", "knn train", "F1"
    );
    for (name, xs, ys) in &sets {
        let labels = bin_into_quantiles(ys, table1::NUM_CLASSES);
        let (train, test) = train_test_split(xs.len(), 0.2, 9);
        let tx: Vec<Vec<f64>> = train.iter().map(|&i| xs[i].clone()).collect();
        let tl: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
        let qx: Vec<Vec<f64>> = test.iter().map(|&i| xs[i].clone()).collect();
        let ql: Vec<usize> = test.iter().map(|&i| labels[i]).collect();

        let start = Instant::now();
        let gb = GradientBoostingClassifier::fit(
            &tx,
            &tl,
            table1::NUM_CLASSES,
            &table1::gradient_boosting(),
        )
        .expect("gb fit");
        let gb_secs = start.elapsed().as_secs_f64();
        let gb_f1 = weighted_f1(&ql, &gb.predict(&qx), table1::NUM_CLASSES);

        let start = Instant::now();
        let knn =
            KnnClassifier::fit(&tx, &tl, table1::NUM_CLASSES, &table1::knn()).expect("knn fit");
        let knn_secs = start.elapsed().as_secs_f64();
        let knn_f1 = weighted_f1(&ql, &knn.predict(&qx), table1::NUM_CLASSES);

        println!(
            "{:<34} {:>17.3}s {:>8.3}   {:>17.3}s {:>8.3}",
            name, gb_secs, gb_f1, knn_secs, knn_f1
        );
    }
}
