//! Terminal visualization of a re-partitioning: the input heatmap, the
//! extracted rectangle structure, and the reconstructed heatmap side by
//! side — the fastest way to *see* what the framework does.
//!
//! Run: `cargo run --release --example visualize_partition`

use spatial_repartition::core::repartition;
use spatial_repartition::datasets::{Dataset, GridSize};
use spatial_repartition::grid::{render_heatmap, render_partition};

fn main() {
    let grid = Dataset::VehiclesUnivariate.generate(GridSize::Custom(24, 48), 9);
    println!("== input: abandoned-vehicle service requests ({} cells) ==", grid.num_cells());
    println!("{}", render_heatmap(&grid, 0, 60));

    for theta in [0.05, 0.15] {
        let out = repartition(&grid, theta).expect("valid threshold");
        let rep = &out.repartitioned;
        println!(
            "== theta = {theta}: {} groups ({:.1}% reduction, IFL {:.4}) ==",
            rep.num_groups(),
            out.cell_reduction() * 100.0,
            rep.ifl()
        );
        println!("{}", render_partition(rep.partition().cell_to_group(), grid.rows(), grid.cols()));
        let reconstructed = rep.reconstruct(&grid).expect("same shape");
        println!("reconstructed values at theta = {theta}:");
        println!("{}", render_heatmap(&reconstructed, 0, 60));
    }

    println!("Constant-letter blocks above are the rectangular cell-groups;");
    println!("'~' marks null cells. The reconstruction visibly preserves the");
    println!("hotspot structure even at the coarser threshold.");
}
