//! Housing-price regression on original vs re-partitioned grids — the
//! paper's motivating scenario (§I): a data scientist predicting home
//! prices wants fine-grained spatial training data without the training
//! time that comes with it.
//!
//! Fits the paper's five regression models (Table I hyperparameters) on the
//! synthetic King-County home-sales grid, at full resolution and after
//! re-partitioning at θ = 0.05, and reports the time/accuracy trade-off.
//!
//! Run: `cargo run --release --example housing_regression`

use spatial_repartition::core::PreparedTrainingData;
use spatial_repartition::datasets::{train_test_split, Dataset, GridSize};
use spatial_repartition::ml::{
    mae, rmse, table1, Gwr, RandomForest, SpatialError, SpatialLag, Svr, SvrParams,
};
use spatial_repartition::prelude::*;
use std::time::Instant;

/// One training set: rows, target, centroids, adjacency.
struct Set {
    x: Vec<Vec<f64>>,
    y: Vec<f64>,
    coords: Vec<(f64, f64)>,
    adjacency: AdjacencyList,
}

fn main() {
    let grid = Dataset::HomeSalesMultivariate.generate(GridSize::Tiny, 7);
    println!(
        "home-sales grid: {} cells, {} valid, {} attributes",
        grid.num_cells(),
        grid.num_valid_cells(),
        grid.num_attrs()
    );

    // Original: every valid cell is an instance.
    let original = set_from_grid(&grid);

    // Re-partitioned at θ = 0.05.
    let outcome = repartition(&grid, 0.05).expect("valid threshold");
    let rep = &outcome.repartitioned;
    println!(
        "re-partitioned: {} groups ({:.1}% reduction, IFL {:.4})\n",
        rep.num_groups(),
        outcome.cell_reduction() * 100.0,
        rep.ifl()
    );
    let reduced = set_from_prepared(&PreparedTrainingData::from_repartitioned(rep));

    println!("model            dataset      train-time     MAE         RMSE");
    println!("--------------------------------------------------------------");
    for (name, set) in [("original", &original), ("repartitioned", &reduced)] {
        run_lag(name, set);
    }
    for (name, set) in [("original", &original), ("repartitioned", &reduced)] {
        run_error(name, set);
    }
    for (name, set) in [("original", &original), ("repartitioned", &reduced)] {
        run_gwr(name, set);
    }
    for (name, set) in [("original", &original), ("repartitioned", &reduced)] {
        run_svr(name, set);
    }
    for (name, set) in [("original", &original), ("repartitioned", &reduced)] {
        run_forest(name, set);
    }
}

/// Price is attribute 0; remaining attributes are the regressors.
fn split(set: &Set, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>, Vec<usize>, Vec<usize>) {
    let (train, test) = train_test_split(set.x.len(), 0.2, seed);
    let tx: Vec<Vec<f64>> = train.iter().map(|&i| set.x[i].clone()).collect();
    let ty: Vec<f64> = train.iter().map(|&i| set.y[i]).collect();
    (tx, ty, train, test)
}

fn report(model: &str, name: &str, secs: f64, m: f64, r: f64) {
    println!("{model:<16} {name:<12} {:>9.3}s  {m:>10.1}  {r:>10.1}", secs);
}

fn run_lag(name: &str, set: &Set) {
    let (tx, ty, train, test) = split(set, 1);
    let mut mask = vec![false; set.x.len()];
    for &i in &train {
        mask[i] = true;
    }
    let start = Instant::now();
    let model = SpatialLag::fit(&tx, &ty, &set.adjacency.restrict(&mask)).expect("fit");
    let secs = start.elapsed().as_secs_f64();
    let wy = set.adjacency.spatial_lag(&set.y);
    let test_x: Vec<Vec<f64>> = test.iter().map(|&i| set.x[i].clone()).collect();
    let test_wy: Vec<f64> = test.iter().map(|&i| wy[i]).collect();
    let pred = model.predict(&test_x, &test_wy).expect("predict");
    let truth: Vec<f64> = test.iter().map(|&i| set.y[i]).collect();
    report("spatial lag", name, secs, mae(&truth, &pred), rmse(&truth, &pred));
}

fn run_error(name: &str, set: &Set) {
    let (tx, ty, train, test) = split(set, 1);
    let mut mask = vec![false; set.x.len()];
    for &i in &train {
        mask[i] = true;
    }
    let start = Instant::now();
    let model = SpatialError::fit(&tx, &ty, &set.adjacency.restrict(&mask)).expect("fit");
    let secs = start.elapsed().as_secs_f64();
    let test_x: Vec<Vec<f64>> = test.iter().map(|&i| set.x[i].clone()).collect();
    let pred = model.predict_trend(&test_x);
    let truth: Vec<f64> = test.iter().map(|&i| set.y[i]).collect();
    report("spatial error", name, secs, mae(&truth, &pred), rmse(&truth, &pred));
}

fn run_gwr(name: &str, set: &Set) {
    let (tx, ty, train, test) = split(set, 1);
    let tc: Vec<(f64, f64)> = train.iter().map(|&i| set.coords[i]).collect();
    let start = Instant::now();
    let model = Gwr::fit(&tx, &ty, &tc, &table1::gwr()).expect("fit");
    let secs = start.elapsed().as_secs_f64();
    let test_x: Vec<Vec<f64>> = test.iter().map(|&i| set.x[i].clone()).collect();
    let test_c: Vec<(f64, f64)> = test.iter().map(|&i| set.coords[i]).collect();
    let pred = model.predict(&test_x, &test_c).expect("predict");
    let truth: Vec<f64> = test.iter().map(|&i| set.y[i]).collect();
    report("GWR", name, secs, mae(&truth, &pred), rmse(&truth, &pred));
}

fn run_svr(name: &str, set: &Set) {
    let (tx, ty, _, test) = split(set, 1);
    let params = SvrParams { max_train: 50_000, ..table1::svr() };
    let start = Instant::now();
    let model = Svr::fit(&tx, &ty, &params).expect("fit");
    let secs = start.elapsed().as_secs_f64();
    let test_x: Vec<Vec<f64>> = test.iter().map(|&i| set.x[i].clone()).collect();
    let pred = model.predict(&test_x);
    let truth: Vec<f64> = test.iter().map(|&i| set.y[i]).collect();
    report("SVR", name, secs, mae(&truth, &pred), rmse(&truth, &pred));
}

fn run_forest(name: &str, set: &Set) {
    let (tx, ty, _, test) = split(set, 1);
    let start = Instant::now();
    let model = RandomForest::fit(&tx, &ty, &table1::random_forest()).expect("fit");
    let secs = start.elapsed().as_secs_f64();
    let test_x: Vec<Vec<f64>> = test.iter().map(|&i| set.x[i].clone()).collect();
    let pred = model.predict(&test_x);
    let truth: Vec<f64> = test.iter().map(|&i| set.y[i]).collect();
    report("random forest", name, secs, mae(&truth, &pred), rmse(&truth, &pred));
}

fn set_from_grid(grid: &GridDataset) -> Set {
    let mut x = Vec::new();
    let mut y = Vec::new();
    let mut coords = Vec::new();
    for id in grid.valid_cells() {
        let fv = grid.features_unchecked(id);
        y.push(fv[0]); // price
        x.push(fv[1..].to_vec());
        coords.push(grid.cell_centroid(id));
    }
    let adjacency = AdjacencyList::rook_from_grid(grid).restrict(&grid.valid_mask());
    Set { x, y, coords, adjacency }
}

fn set_from_prepared(p: &PreparedTrainingData) -> Set {
    let (x, y) = p.split_target(0);
    Set { x, y, coords: p.centroids.clone(), adjacency: p.adjacency.clone() }
}
