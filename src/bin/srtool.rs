//! `srtool` — command-line front end for the re-partitioning framework.
//!
//! Subcommands:
//!
//! - `generate  --dataset <name> --size <preset|RxC> [--seed N] --out FILE`
//!   writes a synthetic evaluation grid in grid-tsv format.
//! - `info      --in FILE`
//!   prints shape, schema, validity, and per-attribute Moran's I for a
//!   grid file; for an `sr-snap` snapshot it prints the format version,
//!   shape, and (for v2) the section table.
//! - `repartition --in FILE --theta T [--strided] [--out-grid FILE]
//!   [--out-groups FILE]`
//!   runs the framework; optionally writes the reconstructed grid and/or a
//!   TSV of cell-groups (id, rectangle, features).
//! - `homogeneous --in FILE --rows K --cols K`
//!   reports the §III-D homogeneous-merge IFL.
//! - `snapshot --in FILE --theta T --out FILE.snap [--strided]
//!   [--format v1|v2]`
//!   re-partitions a grid and freezes the result as an `sr-snap`
//!   snapshot for online serving. The default is the zero-copy v2
//!   format (validated once, served borrowed); `--format v1` writes the
//!   legacy stream format. `docs/SNAPSHOT_FORMAT.md` specifies both.
//! - `snapshot migrate --in FILE.snap --out FILE.snap [--to 1|2]`
//!   converts a snapshot between format versions (default target: v2).
//!   Migration is lossless in both directions; serving answers are
//!   bit-identical across formats.
//! - `shard --snapshot FILE.snap --out-dir DIR [--shards K] [--replicas R]`
//!   cuts a snapshot into `K` Hilbert-contiguous shards balanced by cell
//!   count, writes `R` byte-identical replica snapshots per shard plus the
//!   checksummed `manifest.txt` tying them together (`docs/SHARDING.md`).
//! - `serve --snapshot FILE.snap [--addr HOST:PORT] [--threads N]
//!   [--deadline-ms MS] [--max-inflight N] [--fault-plan FILE]`
//!   serves point/window/knn/stats/metrics queries over HTTP from a
//!   snapshot. The snapshot is cache-backed: edits to the file are picked
//!   up live, and a corrupted replacement degrades to serving the last
//!   good version with an `X-SR-Stale: 1` header (`docs/ROBUSTNESS.md`).
//!   `--deadline-ms` sheds requests older than the budget, `--max-inflight`
//!   bounds queued + running requests (both answer `503` + `Retry-After`),
//!   and `--fault-plan` arms deterministic snapshot-I/O fault injection
//!   for drills.
//! - `serve --manifest DIR/manifest.txt [--shard-deadline-ms MS] [...]`
//!   serves the same endpoints from a shard manifest instead: point
//!   queries route to the owning shard, window/knn scatter-gather across
//!   shards, failed replicas rotate, and a shard whose every replica fails
//!   browns out — point queries to it answer `503` while window/knn keep
//!   answering with an `X-SR-Partial: <shards>` header. `GET /healthz`
//!   reports per-shard state.
//! - `ingest --in STREAM --theta T --grid RxC --attrs name:collapse,...
//!   [--batch-size N] [--bounds latmin,latmax,lonmin,lonmax]
//!   [--repartition-every K] [--snapshot-out FILE.snap] [--watch]
//!   [--strided]`
//!   consumes a raw point stream (`x y attr_1 … attr_p` per line) in
//!   bounded-memory batches, bins points into grid cells with the
//!   per-attribute collapse (`mean|median|min|max|count`), and keeps an
//!   exact re-partition current *incrementally*: each batch patches the
//!   driver's scan inputs over the dirty cells, so only the threshold
//!   walk re-runs. `--snapshot-out` republishes each accepted result as
//!   an atomically-replaced v2 snapshot a running `srtool serve` picks
//!   up live; `--watch` keeps polling the file for appended lines.
//!   `docs/INGESTION.md` is the normative contract.
//!
//! The global `--trace` flag (any subcommand) prints hierarchical span
//! timings to stderr; `--trace=json` emits them as JSON-lines instead.
//! `docs/OBSERVABILITY.md` documents the span names and the schema.
//! The global `--threads <n>` flag (before the subcommand) sets the compute
//! pool's thread budget, overriding `SR_THREADS`; results are identical at
//! every thread count (`docs/PERFORMANCE.md`).
//!
//! Example round trip:
//!
//! ```bash
//! srtool generate --dataset taxi-uni --size tiny --out taxi.tsv
//! srtool info --in taxi.tsv
//! srtool repartition --in taxi.tsv --theta 0.05 --out-groups groups.tsv
//! srtool snapshot --in taxi.tsv --theta 0.05 --out taxi.snap
//! srtool serve --snapshot taxi.snap --addr 127.0.0.1:8080
//! ```

use spatial_repartition::core::{
    homogeneous_ifl, IterationStrategy, RepartitionConfig, Repartitioner,
};
use spatial_repartition::datasets::{Dataset, GridSize};
use spatial_repartition::grid::{
    load_grid, morans_i, save_grid, AdjacencyList, Bounds, GridDataset,
};
use spatial_repartition::ingest::{
    IngestConfig, IngestEngine, IngestSchema, PointChunk, StreamReader,
};
use spatial_repartition::serve::{
    load_snapshot, migrate_snapshot_bytes, peek_version, save_snapshot, save_snapshot_v2,
    section_table, serve_backend, serve_cached, FaultPlan, ServerConfig, Snapshot, SnapshotCache,
};
use spatial_repartition::shard::{write_shards, RouterConfig, ShardRouter, SplitOptions};
use std::collections::HashMap;
use std::io::Write;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut args: Vec<String> = std::env::args().skip(1).collect();
    match install_tracing(&mut args) {
        Ok(()) => {}
        Err(e) => return usage(&e),
    }
    match install_threads(&mut args) {
        Ok(()) => {}
        Err(e) => return usage(&e),
    }
    let Some((cmd, mut rest)) = args.split_first() else {
        return usage("missing subcommand");
    };
    // `snapshot migrate` is the one two-word subcommand.
    let migrate = cmd == "snapshot" && rest.first().map(String::as_str) == Some("migrate");
    if migrate {
        rest = &rest[1..];
    }
    let opts = match parse_opts(rest) {
        Ok(o) => o,
        Err(e) => return usage(&e),
    };
    let result = match cmd.as_str() {
        "generate" => cmd_generate(&opts),
        "info" => cmd_info(&opts),
        "repartition" => cmd_repartition(&opts),
        "homogeneous" => cmd_homogeneous(&opts),
        "snapshot" if migrate => cmd_snapshot_migrate(&opts),
        "snapshot" => cmd_snapshot(&opts),
        "shard" => cmd_shard(&opts),
        "serve" => cmd_serve(&opts),
        "ingest" => cmd_ingest(&opts),
        "--help" | "-h" | "help" => {
            print_usage();
            return ExitCode::SUCCESS;
        }
        other => Err(format!("unknown subcommand '{other}'")),
    };
    // Flush any buffered span output before the process exits.
    sr_obs::clear_subscriber();
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("srtool: {e}");
            ExitCode::FAILURE
        }
    }
}

/// Handles the global `--trace[=json]` flag: removes it from `args` and
/// installs the matching subscriber. Spans go to stderr so they interleave
/// cleanly with redirected stdout output.
fn install_tracing(args: &mut Vec<String>) -> Result<(), String> {
    let mut mode = None;
    args.retain(|a| match a.as_str() {
        "--trace" | "--trace=pretty" => {
            mode = Some("pretty");
            false
        }
        "--trace=json" => {
            mode = Some("json");
            false
        }
        other if other.starts_with("--trace=") => {
            mode = Some("bad");
            false
        }
        _ => true,
    });
    match mode {
        None => Ok(()),
        Some("pretty") => {
            sr_obs::set_subscriber(std::sync::Arc::new(sr_obs::StderrPretty::new()));
            Ok(())
        }
        Some("json") => {
            sr_obs::set_subscriber(std::sync::Arc::new(sr_obs::JsonLines::new(std::io::stderr())));
            Ok(())
        }
        Some(_) => Err("bad --trace mode (expected --trace or --trace=json)".to_string()),
    }
}

/// Handles the global `--threads <n>` / `--threads=<n>` flag: removes it
/// from the leading (pre-subcommand) arguments and re-budgets the shared
/// compute pool, overriding `SR_THREADS`. Only leading occurrences are
/// global — `serve --threads N` after the subcommand keeps its separate
/// HTTP-worker meaning. Results never depend on the thread count
/// (docs/PERFORMANCE.md), only wall-clock time does.
fn install_threads(args: &mut Vec<String>) -> Result<(), String> {
    let mut threads: Option<usize> = None;
    let mut i = 0;
    while i < args.len() {
        if !args[i].starts_with("--") {
            break; // subcommand reached; later --threads belong to it
        }
        if let Some(v) = args[i].strip_prefix("--threads=") {
            threads = Some(v.parse().map_err(|_| "bad --threads (expected a count >= 1)")?);
            args.remove(i);
        } else if args[i] == "--threads" {
            let v = args.get(i + 1).ok_or("missing value for --threads")?;
            threads = Some(v.parse().map_err(|_| "bad --threads (expected a count >= 1)")?);
            args.drain(i..i + 2);
        } else {
            i += 1;
        }
    }
    match threads {
        Some(0) => Err("bad --threads (expected a count >= 1)".to_string()),
        Some(n) => {
            sr_par::Pool::global().set_threads(n);
            Ok(())
        }
        None => Ok(()),
    }
}

type Opts = HashMap<String, String>;

fn parse_opts(rest: &[String]) -> Result<Opts, String> {
    let mut opts = HashMap::new();
    let mut i = 0;
    while i < rest.len() {
        let key = rest[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got '{}'", rest[i]))?;
        // Boolean flags take no value.
        if key == "strided" || key == "watch" {
            opts.insert(key.to_string(), "true".to_string());
            i += 1;
            continue;
        }
        let value = rest.get(i + 1).ok_or_else(|| format!("missing value for --{key}"))?;
        opts.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(opts)
}

fn required<'a>(opts: &'a Opts, key: &str) -> Result<&'a str, String> {
    opts.get(key).map(String::as_str).ok_or_else(|| format!("missing required --{key}"))
}

fn parse_dataset(token: &str) -> Result<Dataset, String> {
    Ok(match token {
        "taxi-multi" => Dataset::TaxiMultivariate,
        "taxi-uni" => Dataset::TaxiUnivariate,
        "homes" => Dataset::HomeSalesMultivariate,
        "vehicles" => Dataset::VehiclesUnivariate,
        "earnings-multi" => Dataset::EarningsMultivariate,
        "earnings-uni" => Dataset::EarningsUnivariate,
        _ => {
            return Err(format!(
                "unknown dataset '{token}' (taxi-multi|taxi-uni|homes|vehicles|earnings-multi|earnings-uni)"
            ))
        }
    })
}

fn parse_size(token: &str) -> Result<GridSize, String> {
    Ok(match token {
        "mini" => GridSize::Mini,
        "tiny" => GridSize::Tiny,
        "small" => GridSize::Small,
        "36k" => GridSize::Cells36k,
        "78k" => GridSize::Cells78k,
        "100k" => GridSize::Cells100k,
        other => {
            let (r, c) = other.split_once('x').ok_or_else(|| format!("bad size '{other}'"))?;
            GridSize::Custom(
                r.parse().map_err(|_| format!("bad size '{other}'"))?,
                c.parse().map_err(|_| format!("bad size '{other}'"))?,
            )
        }
    })
}

fn cmd_generate(opts: &Opts) -> Result<(), String> {
    let dataset = parse_dataset(required(opts, "dataset")?)?;
    let size = parse_size(required(opts, "size")?)?;
    let seed: u64 =
        opts.get("seed").map_or(Ok(42), |s| s.parse().map_err(|_| "bad --seed".to_string()))?;
    let out = required(opts, "out")?;
    let grid = dataset.generate(size, seed);
    save_grid(&grid, out).map_err(|e| e.to_string())?;
    println!(
        "wrote {} ({} cells, {} valid, {} attrs)",
        out,
        grid.num_cells(),
        grid.num_valid_cells(),
        grid.num_attrs()
    );
    Ok(())
}

fn cmd_info(opts: &Opts) -> Result<(), String> {
    let path = required(opts, "in")?;
    // Snapshot files share the magic across both format versions; grids
    // are TSV and never match it.
    if let Ok(bytes) = std::fs::read(path) {
        if let Some(version) = peek_version(&bytes) {
            return snapshot_info(path, version, &bytes);
        }
    }
    let grid = load_grid(path).map_err(|e| e.to_string())?;
    println!("shape: {} x {} = {} cells", grid.rows(), grid.cols(), grid.num_cells());
    println!(
        "valid: {} ({:.1}%)",
        grid.num_valid_cells(),
        100.0 * grid.num_valid_cells() as f64 / grid.num_cells() as f64
    );
    let b = grid.bounds();
    println!("bounds: lat [{}, {}], lon [{}, {}]", b.lat_min, b.lat_max, b.lon_min, b.lon_max);
    let adj = AdjacencyList::rook_from_grid(&grid);
    for k in 0..grid.num_attrs() {
        let mut vals = vec![0.0; grid.num_cells()];
        for id in grid.valid_cells() {
            vals[id as usize] = grid.value(id, k);
        }
        let moran = morans_i(&vals, &adj).map_or("n/a".to_string(), |v| format!("{v:.3}"));
        println!(
            "attr[{k}] {:<16} agg={:?} int={} Moran's I={moran}",
            grid.attr_names()[k],
            grid.agg_types()[k],
            grid.integer_attrs()[k]
        );
    }
    Ok(())
}

/// `info` for an `sr-snap` file: shape and schema for both versions,
/// plus the section table for v2.
fn snapshot_info(path: &str, version: u16, bytes: &[u8]) -> Result<(), String> {
    let engine = spatial_repartition::serve::engine_from_bytes(bytes).map_err(|e| e.to_string())?;
    let st = engine.stats();
    println!("{path}: sr-snap v{version}, {} bytes", bytes.len());
    println!(
        "shape: {} x {} = {} cells, {} groups, {} attrs",
        st.rows, st.cols, st.cells, st.groups, st.attrs
    );
    println!("valid: {} cells, {} featured groups", st.valid_cells, st.valid_groups);
    println!("theta: {} (IFL {})", engine.theta(), engine.ifl());
    for (k, name) in engine.attr_names().iter().enumerate() {
        println!(
            "attr[{k}] {:<16} agg={:?} int={}",
            name,
            engine.agg_types()[k],
            engine.integer_attrs()[k]
        );
    }
    if version == 2 {
        println!("sections:");
        for s in section_table(bytes).map_err(|e| e.to_string())? {
            println!(
                "  {:>2} {:<10} offset {:>10}  len {:>10}  crc 0x{:08X}",
                s.id, s.name, s.offset, s.len, s.crc
            );
        }
        // The load above already proved checksums + structure; run the
        // deep audit too, so `info` doubles as an integrity tool.
        spatial_repartition::serve::snapshot_v2_from_bytes(bytes)
            .and_then(|v2| v2.verify_derived())
            .map_err(|e| e.to_string())?;
        println!("derived sections: verified bit-identical to recomputation");
    }
    Ok(())
}

fn cmd_repartition(opts: &Opts) -> Result<(), String> {
    let grid = load_grid(required(opts, "in")?).map_err(|e| e.to_string())?;
    let theta: f64 = required(opts, "theta")?.parse().map_err(|_| "bad --theta".to_string())?;
    let mut config = RepartitionConfig::new(theta).map_err(|e| e.to_string())?;
    if opts.contains_key("strided") || grid.num_cells() > 5_000 {
        config =
            config.with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
    }
    let start = std::time::Instant::now();
    let outcome = Repartitioner::with_config(config)
        .map_err(|e| e.to_string())?
        .run(&grid)
        .map_err(|e| e.to_string())?;
    let secs = start.elapsed().as_secs_f64();
    let rep = &outcome.repartitioned;
    println!(
        "{} cells -> {} groups ({:.1}% reduction) at IFL {:.4} <= {theta} in {secs:.2}s ({} iterations)",
        grid.num_cells(),
        rep.num_groups(),
        outcome.cell_reduction() * 100.0,
        rep.ifl(),
        outcome.iterations.len()
    );

    if let Some(path) = opts.get("out-grid") {
        let rec = rep.reconstruct(&grid).map_err(|e| e.to_string())?;
        save_grid(&rec, path).map_err(|e| e.to_string())?;
        println!("wrote reconstructed grid to {path}");
    }
    if let Some(path) = opts.get("out-groups") {
        write_groups(rep, path).map_err(|e| e.to_string())?;
        println!("wrote {} cell-groups to {path}", rep.num_groups());
    }
    if let Some(path) = opts.get("out-gal") {
        let adj = rep.adjacency();
        let file = std::fs::File::create(path).map_err(|e| e.to_string())?;
        spatial_repartition::grid::write_gal(&adj, std::io::BufWriter::new(file))
            .map_err(|e| e.to_string())?;
        println!("wrote PySAL GAL weights ({} units) to {path}", adj.len());
    }
    Ok(())
}

fn write_groups(rep: &spatial_repartition::core::Repartitioned, path: &str) -> std::io::Result<()> {
    let file = std::fs::File::create(path)?;
    let mut w = std::io::BufWriter::new(file);
    write!(w, "#group\tr0\tr1\tc0\tc1")?;
    for name in rep.attr_names() {
        write!(w, "\t{name}")?;
    }
    writeln!(w)?;
    for gid in 0..rep.num_groups() as u32 {
        let rect = rep.partition().rect(gid);
        write!(w, "{gid}\t{}\t{}\t{}\t{}", rect.r0, rect.r1, rect.c0, rect.c1)?;
        match rep.group_feature(gid) {
            Some(fv) => {
                for v in fv {
                    write!(w, "\t{v}")?;
                }
            }
            None => {
                for _ in 0..rep.attr_names().len() {
                    write!(w, "\tnull")?;
                }
            }
        }
        writeln!(w)?;
    }
    Ok(())
}

fn cmd_homogeneous(opts: &Opts) -> Result<(), String> {
    let grid = load_grid(required(opts, "in")?).map_err(|e| e.to_string())?;
    let rows: usize = required(opts, "rows")?.parse().map_err(|_| "bad --rows".to_string())?;
    let cols: usize = required(opts, "cols")?.parse().map_err(|_| "bad --cols".to_string())?;
    let ifl = homogeneous_ifl(&grid, rows, cols).map_err(|e| e.to_string())?;
    let groups = grid.rows().div_ceil(rows) * grid.cols().div_ceil(cols);
    println!(
        "homogeneous {rows}x{cols} merge: {} -> {} groups, IFL {ifl:.4}",
        grid.num_cells(),
        groups
    );
    Ok(())
}

fn cmd_snapshot(opts: &Opts) -> Result<(), String> {
    let grid = load_grid(required(opts, "in")?).map_err(|e| e.to_string())?;
    let theta: f64 = required(opts, "theta")?.parse().map_err(|_| "bad --theta".to_string())?;
    let out = required(opts, "out")?;
    let mut config = RepartitionConfig::new(theta).map_err(|e| e.to_string())?;
    if opts.contains_key("strided") || grid.num_cells() > 5_000 {
        config =
            config.with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
    }
    let start = std::time::Instant::now();
    let outcome = Repartitioner::with_config(config)
        .map_err(|e| e.to_string())?
        .run(&grid)
        .map_err(|e| e.to_string())?;
    let rep = &outcome.repartitioned;
    let snap = Snapshot::build(rep, &grid, theta).map_err(|e| e.to_string())?;
    let format = opts.get("format").map_or("v2", String::as_str);
    match format {
        "v2" | "2" => save_snapshot_v2(&snap, out).map_err(|e| e.to_string())?,
        "v1" | "1" => save_snapshot(&snap, out).map_err(|e| e.to_string())?,
        other => return Err(format!("bad --format '{other}' (expected v1 or v2)")),
    }
    let bytes = std::fs::metadata(out).map(|m| m.len()).unwrap_or(0);
    println!(
        "wrote {out} ({format}): {} cells -> {} groups (IFL {:.4} <= {theta}) in {:.2}s, {bytes} bytes",
        grid.num_cells(),
        rep.num_groups(),
        rep.ifl(),
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

/// `snapshot migrate`: converts a snapshot file between format versions.
fn cmd_snapshot_migrate(opts: &Opts) -> Result<(), String> {
    let input = required(opts, "in")?;
    let out = required(opts, "out")?;
    let to: u16 = match opts.get("to").map(String::as_str) {
        None | Some("2") | Some("v2") => 2,
        Some("1") | Some("v1") => 1,
        Some(other) => return Err(format!("bad --to '{other}' (expected 1 or 2)")),
    };
    let bytes = std::fs::read(input).map_err(|e| e.to_string())?;
    let from = peek_version(&bytes).ok_or_else(|| format!("{input} is not an sr-snap file"))?;
    let migrated = migrate_snapshot_bytes(&bytes, to).map_err(|e| e.to_string())?;
    std::fs::write(out, &migrated).map_err(|e| e.to_string())?;
    println!(
        "migrated {input} (v{from}, {} bytes) -> {out} (v{to}, {} bytes)",
        bytes.len(),
        migrated.len()
    );
    Ok(())
}

fn cmd_shard(opts: &Opts) -> Result<(), String> {
    let path = required(opts, "snapshot")?;
    let out_dir = required(opts, "out-dir")?;
    let shards: usize = opts
        .get("shards")
        .map_or(Ok(4), |s| s.parse().map_err(|_| "bad --shards (expected a count >= 1)"))?;
    let replicas: usize = opts
        .get("replicas")
        .map_or(Ok(1), |s| s.parse().map_err(|_| "bad --replicas (expected a count >= 1)"))?;
    if shards == 0 || replicas == 0 {
        return Err("--shards and --replicas must be >= 1".to_string());
    }
    let snap = load_snapshot(path).map_err(|e| e.to_string())?;
    let start = std::time::Instant::now();
    let manifest = write_shards(
        &snap,
        out_dir,
        &SplitOptions { shards, replicas },
        spatial_repartition::par::Pool::global(),
    )
    .map_err(|e| e.to_string())?;
    println!(
        "sharded {path}: {} groups / {} cells -> {} shards x {} replicas in {:.2}s",
        manifest.groups,
        manifest.cells,
        manifest.shards.len(),
        manifest.replicas,
        start.elapsed().as_secs_f64()
    );
    for (s, entry) in manifest.shards.iter().enumerate() {
        println!("  shard {s}: {} groups, {} cells", entry.count, entry.cells);
    }
    println!("wrote manifest to {out_dir}/manifest.txt");
    Ok(())
}

fn cmd_serve(opts: &Opts) -> Result<(), String> {
    if opts.contains_key("manifest") {
        return cmd_serve_manifest(opts);
    }
    let path = required(opts, "snapshot")?;
    let addr = opts.get("addr").map_or("127.0.0.1:7878", String::as_str);
    let threads: usize = opts
        .get("threads")
        .map_or(Ok(4), |s| s.parse().map_err(|_| "bad --threads".to_string()))?;
    let deadline = opts
        .get("deadline-ms")
        .map(|s| s.parse::<u64>().map_err(|_| "bad --deadline-ms".to_string()))
        .transpose()?
        .map(std::time::Duration::from_millis);
    let max_inflight: usize = opts
        .get("max-inflight")
        .map_or(Ok(0), |s| s.parse().map_err(|_| "bad --max-inflight".to_string()))?;
    let registry = spatial_repartition::obs::Registry::global();
    let mut cache = SnapshotCache::with_registry(2, &registry);
    if let Some(plan_path) = opts.get("fault-plan") {
        let plan = FaultPlan::load(plan_path, &registry)
            .map_err(|e| format!("bad --fault-plan {plan_path}: {e}"))?;
        println!("fault plan loaded from {plan_path} (seed {})", plan.seed());
        cache = cache.with_fault_plan(plan);
    }
    let cache = std::sync::Arc::new(cache);
    let config =
        ServerConfig { threads, deadline, max_inflight, registry, ..ServerConfig::default() };
    // theta is only a cache-key component here; one server serves one
    // snapshot path, so any fixed value works.
    let theta = 0.0;
    // Warm the cache so the common case starts hot — but a failed first
    // load must not stop the server: it starts degraded (engine endpoints
    // answer 503, /metrics works) and recovers when the file does.
    match cache.get_serve(path, theta) {
        Ok(served) => {
            let st = served.engine.stats();
            println!(
                "loaded {path}: {}x{} cells, {} groups, {} attrs",
                st.rows, st.cols, st.groups, st.attrs
            );
        }
        Err(e) => println!("warning: snapshot not loadable yet ({e}); serving degraded"),
    }
    let handle = serve_cached(std::sync::Arc::clone(&cache), path, theta, addr, config)
        .map_err(|e| e.to_string())?;
    println!("serving {path} on http://{}", handle.addr());
    println!(
        "endpoints: /point?lat=&lon=  /window?lat0=&lat1=&lon0=&lon1=  /knn?lat=&lon=&k=  \
         /stats  /healthz  /metrics"
    );
    println!("press Ctrl-C to stop");
    // Serve until killed; the handle's Drop would stop the server, so park
    // this thread indefinitely.
    loop {
        std::thread::park();
    }
}

/// `serve --manifest`: the sharded scatter-gather backend behind the same
/// HTTP surface (docs/SHARDING.md).
fn cmd_serve_manifest(opts: &Opts) -> Result<(), String> {
    let manifest_path = required(opts, "manifest")?;
    let addr = opts.get("addr").map_or("127.0.0.1:7878", String::as_str);
    let threads: usize = opts
        .get("threads")
        .map_or(Ok(4), |s| s.parse().map_err(|_| "bad --threads".to_string()))?;
    let deadline = opts
        .get("deadline-ms")
        .map(|s| s.parse::<u64>().map_err(|_| "bad --deadline-ms".to_string()))
        .transpose()?
        .map(std::time::Duration::from_millis);
    let shard_deadline = opts
        .get("shard-deadline-ms")
        .map(|s| s.parse::<u64>().map_err(|_| "bad --shard-deadline-ms".to_string()))
        .transpose()?
        .map(std::time::Duration::from_millis);
    let max_inflight: usize = opts
        .get("max-inflight")
        .map_or(Ok(0), |s| s.parse().map_err(|_| "bad --max-inflight".to_string()))?;
    let registry = spatial_repartition::obs::Registry::global();
    let mut router_config =
        RouterConfig { registry: registry.clone(), shard_deadline, ..RouterConfig::default() };
    if let Some(plan_path) = opts.get("fault-plan") {
        let plan = FaultPlan::load(plan_path, &registry)
            .map_err(|e| format!("bad --fault-plan {plan_path}: {e}"))?;
        println!("fault plan loaded from {plan_path} (seed {})", plan.seed());
        router_config.fault_plan = Some(plan);
    }
    let router = ShardRouter::open(manifest_path, router_config).map_err(|e| e.to_string())?;
    let m = router.manifest();
    println!(
        "loaded {manifest_path}: {}x{} cells, {} groups, {} shards x {} replicas",
        m.rows,
        m.cols,
        m.groups,
        m.shards.len(),
        m.replicas
    );
    let config =
        ServerConfig { threads, deadline, max_inflight, registry, ..ServerConfig::default() };
    let handle =
        serve_backend(std::sync::Arc::new(router), addr, config).map_err(|e| e.to_string())?;
    println!("serving {manifest_path} on http://{}", handle.addr());
    println!(
        "endpoints: /point?lat=&lon=  /window?lat0=&lat1=&lon0=&lon1=  /knn?lat=&lon=&k=  \
         /stats  /healthz  /metrics"
    );
    println!("press Ctrl-C to stop");
    loop {
        std::thread::park();
    }
}

/// `ingest`: out-of-core point-stream ingestion with incremental
/// re-partitioning and optional live snapshot republishing
/// (`docs/INGESTION.md`).
fn cmd_ingest(opts: &Opts) -> Result<(), String> {
    let path = required(opts, "in")?;
    let theta: f64 = required(opts, "theta")?.parse().map_err(|_| "bad --theta".to_string())?;
    let grid_spec = required(opts, "grid")?;
    let (rows, cols) = grid_spec
        .split_once('x')
        .and_then(|(r, c)| Some((r.parse::<usize>().ok()?, c.parse::<usize>().ok()?)))
        .ok_or_else(|| format!("bad --grid '{grid_spec}' (expected RxC, e.g. 320x320)"))?;
    let attrs = required(opts, "attrs")?;
    let schema = IngestSchema::parse(attrs).ok_or_else(|| {
        format!("bad --attrs '{attrs}' (expected name:mean|median|min|max|count,...)")
    })?;
    let batch_size: usize = opts
        .get("batch-size")
        .map_or(Ok(4096), |s| s.parse().map_err(|_| "bad --batch-size (expected >= 1)"))?;
    if batch_size == 0 {
        return Err("bad --batch-size (expected >= 1)".to_string());
    }
    let every: u64 = opts
        .get("repartition-every")
        .map_or(Ok(1), |s| s.parse().map_err(|_| "bad --repartition-every (expected >= 1)"))?;
    if every == 0 {
        return Err("bad --repartition-every (expected >= 1)".to_string());
    }

    let mut config = IngestConfig::new(rows, cols, schema, theta);
    if let Some(spec) = opts.get("bounds") {
        let parts: Vec<f64> = spec.split(',').filter_map(|t| t.trim().parse().ok()).collect();
        if parts.len() != 4 {
            return Err(format!("bad --bounds '{spec}' (expected latmin,latmax,lonmin,lonmax)"));
        }
        config = config.with_bounds(Bounds {
            lat_min: parts[0],
            lat_max: parts[1],
            lon_min: parts[2],
            lon_max: parts[3],
        });
    }
    if opts.contains_key("strided") {
        config =
            config.with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
    }
    let watch = opts.contains_key("watch");
    let snapshot_out = opts.get("snapshot-out");

    let binary = match opts.get("format").map(String::as_str) {
        None | Some("text") => false,
        Some("bin") => true,
        Some(other) => return Err(format!("bad --format '{other}' (expected text|bin)")),
    };

    let p = config.schema.num_attrs();
    let mut engine = IngestEngine::new(config).map_err(|e| e.to_string())?;
    let file = std::fs::File::open(path).map_err(|e| format!("cannot open {path}: {e}"))?;
    let buf = std::io::BufReader::new(file);
    let mut reader = if binary { StreamReader::binary(buf, p) } else { StreamReader::new(buf, p) };
    let mut chunk = PointChunk::with_capacity(batch_size, p);
    println!(
        "ingesting {path} ({}) into a {rows}x{cols} grid (theta {theta}, batch {batch_size}{})",
        if binary { "binary frames" } else { "text lines" },
        if watch { ", watching for appended records" } else { "" }
    );

    let start = std::time::Instant::now();
    let mut since_repartition: u64 = 0;
    loop {
        let n = reader.next_chunk(batch_size, &mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            // End of the file as it stands. A watched stream may grow —
            // repartition what's pending, then poll for appended lines.
            if since_repartition > 0 {
                report_repartition(&mut engine, snapshot_out, start)?;
                since_repartition = 0;
            }
            if !watch {
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(500));
            continue;
        }
        let report = engine.apply_batch(&chunk).map_err(|e| e.to_string())?;
        since_repartition += 1;
        if report.scan.rebuilt_normalization {
            println!(
                "batch {}: {} points, {} dirty cells (scan cache rebuilt: new attribute max)",
                engine.num_batches(),
                report.points,
                report.dirty_cells
            );
        }
        if since_repartition >= every {
            report_repartition(&mut engine, snapshot_out, start)?;
            since_repartition = 0;
        }
    }
    println!(
        "done: {} points in {} batches ({} malformed records skipped) in {:.2}s",
        engine.total_points(),
        engine.num_batches(),
        reader.malformed_lines(),
        start.elapsed().as_secs_f64()
    );
    Ok(())
}

/// One exact incremental re-partition + optional snapshot republish, with
/// a progress line.
fn report_repartition(
    engine: &mut IngestEngine,
    snapshot_out: Option<&String>,
    start: std::time::Instant,
) -> Result<(), String> {
    let outcome = engine.repartition().map_err(|e| e.to_string())?;
    let rep = &outcome.repartitioned;
    let (groups, ifl) = (rep.num_groups(), rep.ifl());
    println!(
        "[{:>8.2}s] {} points -> {groups} groups (IFL {ifl:.4})",
        start.elapsed().as_secs_f64(),
        engine.total_points(),
    );
    if let Some(out) = snapshot_out {
        engine.publish(out).map_err(|e| e.to_string())?;
        println!("  republished {out}");
    }
    Ok(())
}

fn print_usage() {
    println!(
        "srtool — ML-aware spatial re-partitioning CLI

USAGE:
  srtool generate    --dataset taxi-multi|taxi-uni|homes|vehicles|earnings-multi|earnings-uni
                     --size mini|tiny|small|36k|78k|100k|RxC [--seed N] --out FILE
  srtool info        --in FILE
  srtool repartition --in FILE --theta T [--strided] [--out-grid FILE] [--out-groups FILE]
                     [--out-gal FILE]
  srtool homogeneous --in FILE --rows K --cols K
  srtool snapshot    --in FILE --theta T --out FILE.snap [--strided] [--format v1|v2]
  srtool snapshot migrate --in FILE.snap --out FILE.snap [--to 1|2]
  srtool shard       --snapshot FILE.snap --out-dir DIR [--shards K] [--replicas R]
  srtool serve       --snapshot FILE.snap [--addr HOST:PORT] [--threads N]
                     [--deadline-ms MS] [--max-inflight N] [--fault-plan FILE]
  srtool serve       --manifest DIR/manifest.txt [--shard-deadline-ms MS]
                     [--addr HOST:PORT] [--threads N] [--deadline-ms MS]
                     [--max-inflight N] [--fault-plan FILE]
  srtool ingest      --in STREAM --theta T --grid RxC --attrs name:collapse,...
                     [--format text|bin] [--batch-size N]
                     [--bounds latmin,latmax,lonmin,lonmax]
                     [--repartition-every K] [--snapshot-out FILE.snap]
                     [--watch] [--strided]

GLOBAL FLAGS (before the subcommand):
  --threads N    worker threads for the compute pool (overrides SR_THREADS;
                 1 = serial; results are identical at every thread count)
  --trace        print hierarchical span timings to stderr
  --trace=json   emit spans as JSON-lines on stderr (schema: docs/OBSERVABILITY.md)"
    );
}

fn usage(err: &str) -> ExitCode {
    eprintln!("srtool: {err}\n");
    print_usage();
    ExitCode::FAILURE
}

// The grid type is exercised through the public API above; this keeps the
// binary honest about only using exported functionality.
#[allow(dead_code)]
fn _assert_public_api(grid: &GridDataset) -> usize {
    grid.num_cells()
}
