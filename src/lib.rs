//! # spatial-repartition
//!
//! A from-scratch Rust reproduction of **"A Machine Learning-Aware Data
//! Re-partitioning Framework for Spatial Datasets"** (Chowdhury, Meduri,
//! Sarwat — ICDE 2022), including every substrate the paper's evaluation
//! depends on.
//!
//! The framework coarsens an `m × n` spatial grid by merging adjacent,
//! similar cells into rectangular *cell-groups* while the information loss
//! (a mean-absolute-percentage error, Eq. 3 of the paper) stays under a
//! user threshold `θ`. Training spatial ML models on the coarsened grid cuts
//! training time and memory substantially at a bounded accuracy cost.
//!
//! ## Quick start
//!
//! ```
//! use spatial_repartition::prelude::*;
//!
//! // A 64-cell grid with a smooth value surface.
//! let values: Vec<f64> = (0..64)
//!     .map(|i| 100.0 + (i / 8) as f64 + 0.5 * (i % 8) as f64)
//!     .collect();
//! let grid = GridDataset::univariate(8, 8, values).unwrap();
//!
//! // Re-partition with an IFL budget of 0.05.
//! let outcome = repartition(&grid, 0.05).unwrap();
//! let rep = &outcome.repartitioned;
//! assert!(rep.ifl() <= 0.05);
//! assert!(rep.num_groups() < 64);
//!
//! // Training-ready views: features, centroids, adjacency (Algorithm 3).
//! let prepared = PreparedTrainingData::from_repartitioned(rep);
//! assert_eq!(prepared.adjacency.len(), prepared.len());
//! ```
//!
//! ## Crate map
//!
//! | Re-export | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `sr-core` | the re-partitioning framework (Algorithms 1–3, driver, homogeneous variant) |
//! | [`grid`] | `sr-grid` | grid substrate, Eqs. 1–4, adjacency, autocorrelation |
//! | [`datasets`] | `sr-datasets` | synthetic stand-ins for the paper's four datasets |
//! | [`ml`] | `sr-ml` | spatial lag/error, GWR, SVR, random forest, kriging, boosting, KNN, SCHC, metrics |
//! | [`baselines`] | `sr-baselines` | sampling / regionalization / clustering reducers |
//! | [`linalg`] | `sr-linalg` | dense matrices, LU, Cholesky, least squares |
//! | [`mem`] | `sr-mem` | peak-allocation tracking for the memory experiments |
//! | [`serve`] | `sr-serve` | partition snapshots (`sr-snap` v1 + zero-copy v2, spec in `docs/SNAPSHOT_FORMAT.md`), the online query engine, snapshot cache, HTTP server |
//! | [`ingest`] | `sr-ingest` | out-of-core point-stream ingestion, per-cell collapse binning, incremental dirty-region re-partitioning, live snapshot republishing (contract in `docs/INGESTION.md`) |
//! | [`shard`] | `sr-shard` | sharded serving: Hilbert-contiguous shard splitter, checksummed shard manifest, scatter-gather router with replicas and shard-level degradation |
//! | [`obs`] | `sr-obs` | tracing spans and the metrics registry behind `--trace` and `GET /metrics` |
//! | [`par`] | `sr-par` | deterministic worker-pool substrate (`SR_THREADS`, fixed-grain `par_map`/`par_for`) |
//! | [`fault`] | `sr-fault` | deterministic fault injection (`FaultPlan`) and seeded retry backoff behind the robustness tests |
//!
//! `docs/ARCHITECTURE.md` has the full dependency diagram and a
//! which-crate-do-I-touch table.
//!
//! ## Observability
//!
//! The pipeline (sr-core, sr-grid I/O) and the serving layer (sr-serve) are
//! instrumented with [`obs`]: hierarchical spans report phase timings to a
//! pluggable subscriber, and a process-wide registry accumulates counters
//! and latency histograms. Tracing is off by default and costs one atomic
//! load per span while disabled. `docs/OBSERVABILITY.md` is the contract:
//! span names, metric names/units, bucket layout, and the JSON-lines
//! schema.
//!
//! ```
//! use spatial_repartition::obs;
//! use std::sync::Arc;
//!
//! let collector = Arc::new(obs::MemoryCollector::new());
//! obs::set_subscriber(collector.clone());
//! {
//!     let mut span = obs::span("example.phase");
//!     span.record("items", 3u64);
//! }
//! obs::clear_subscriber();
//! assert_eq!(collector.records()[0].name, "example.phase");
//! ```

pub use sr_baselines as baselines;
pub use sr_core as core;
pub use sr_datasets as datasets;
pub use sr_fault as fault;
pub use sr_grid as grid;
pub use sr_ingest as ingest;
pub use sr_linalg as linalg;
pub use sr_mem as mem;
pub use sr_ml as ml;
pub use sr_obs as obs;
pub use sr_par as par;
pub use sr_serve as serve;
pub use sr_shard as shard;

/// The most common imports in one place.
pub mod prelude {
    pub use sr_baselines::{contiguous_clustering, regionalize, spatial_sampling, ReducedDataset};
    pub use sr_core::{
        quadtree_partition, repartition, CellUpdate, IterationStrategy, PreparedTrainingData,
        RepartitionConfig, Repartitioned, Repartitioner, ScanCache, StreamingRepartitioner,
        TemporalRepartitioner,
    };
    pub use sr_datasets::{train_test_split, Dataset, GridSize};
    pub use sr_fault::{Backoff, FaultPlan};
    pub use sr_grid::{
        gearys_c, information_loss, join_counts, local_morans_i, morans_i, normalize_attributes,
        read_gal, read_grid, render_heatmap, render_partition, variation_between_typed, write_gal,
        write_grid, AdjacencyList, AggType, Bounds, GridBuilder, GridDataset, IflOptions,
        PointRecord,
    };
    pub use sr_ingest::{Collapse, IngestConfig, IngestEngine, IngestSchema, StreamReader};
    pub use sr_ml::{
        bin_into_quantiles, cluster_agreement, lm_diagnostics, mae, pseudo_r2, rmse, se_regression,
        weighted_f1, GradientBoostingClassifier, Gwr, KnnClassifier, KnnRegressor, OrdinaryKriging,
        RandomForest, SpatialError, SpatialLag, Svr, VariogramModel,
    };
    pub use sr_obs::{span, Registry};
    pub use sr_par::Pool;
    pub use sr_serve::{
        load_snapshot, save_snapshot, serve, serve_cached, QueryEngine, Served, ServerConfig,
        Snapshot, SnapshotCache,
    };
    pub use sr_shard::{
        load_manifest, write_shards, RouterConfig, ShardManifest, ShardRouter, SplitOptions,
    };
}
