//! Integration tests of the `srtool` CLI binary: drives the compiled
//! executable through generate → info → repartition → homogeneous round
//! trips in a temp directory.

use std::path::PathBuf;
use std::process::{Command, Output};

fn srtool(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_srtool")).args(args).output().expect("binary runs")
}

fn temp_path(name: &str) -> PathBuf {
    std::env::temp_dir().join(format!("srtool_test_{}_{name}", std::process::id()))
}

#[test]
fn generate_info_repartition_roundtrip() {
    let grid_path = temp_path("grid.tsv");
    let groups_path = temp_path("groups.tsv");
    let recon_path = temp_path("recon.tsv");
    let grid = grid_path.to_str().unwrap();

    // generate
    let out = srtool(&[
        "generate",
        "--dataset",
        "taxi-uni",
        "--size",
        "mini",
        "--seed",
        "5",
        "--out",
        grid,
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("400 cells"), "{stdout}");

    // info
    let out = srtool(&["info", "--in", grid]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("shape: 20 x 20"), "{stdout}");
    assert!(stdout.contains("Moran's I"), "{stdout}");

    // repartition with both outputs
    let out = srtool(&[
        "repartition",
        "--in",
        grid,
        "--theta",
        "0.08",
        "--out-groups",
        groups_path.to_str().unwrap(),
        "--out-grid",
        recon_path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("reduction"), "{stdout}");
    assert!(stdout.contains("IFL"), "{stdout}");

    // The groups file has a header plus one line per group.
    let groups = std::fs::read_to_string(&groups_path).unwrap();
    assert!(groups.starts_with("#group\tr0\tr1\tc0\tc1"));
    assert!(groups.lines().count() > 10);

    // The reconstructed grid loads back and has the original shape.
    let rec = spatial_repartition::grid::load_grid(&recon_path).unwrap();
    assert_eq!(rec.rows(), 20);
    assert_eq!(rec.cols(), 20);

    // homogeneous
    let out = srtool(&["homogeneous", "--in", grid, "--rows", "2", "--cols", "2"]);
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("100 groups"), "{stdout}");

    for p in [grid_path, groups_path, recon_path] {
        let _ = std::fs::remove_file(p);
    }
}

#[test]
fn bad_invocations_fail_cleanly() {
    // Unknown subcommand.
    let out = srtool(&["frobnicate"]);
    assert!(!out.status.success());

    // Missing required flag.
    let out = srtool(&["generate", "--dataset", "taxi-uni"]);
    assert!(!out.status.success());
    assert!(
        String::from_utf8_lossy(&out.stderr).contains("--size")
            || String::from_utf8_lossy(&out.stderr).contains("--out")
    );

    // Unknown dataset.
    let out = srtool(&["generate", "--dataset", "nope", "--size", "mini", "--out", "/tmp/x"]);
    assert!(!out.status.success());

    // Bad theta.
    let grid_path = temp_path("grid2.tsv");
    let grid = grid_path.to_str().unwrap();
    let out = srtool(&["generate", "--dataset", "vehicles", "--size", "mini", "--out", grid]);
    assert!(out.status.success());
    let out = srtool(&["repartition", "--in", grid, "--theta", "7.5"]);
    assert!(!out.status.success());
    let _ = std::fs::remove_file(grid_path);

    // Missing input file.
    let out = srtool(&["info", "--in", "/nonexistent/definitely.tsv"]);
    assert!(!out.status.success());

    // Help succeeds.
    let out = srtool(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));
}
