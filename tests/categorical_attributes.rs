//! Integration of the categorical-attribute extension (`AggType::Mode`) —
//! the paper's §VI future work — across the full pipeline.

use spatial_repartition::core::repartition;
use spatial_repartition::prelude::*;

/// A 6×6 grid with two attributes: a smooth numeric surface (Avg) and a
/// categorical land-use code (Mode) forming two contiguous zones.
fn mixed_grid() -> GridDataset {
    let n = 6;
    let mut data = Vec::with_capacity(n * n * 2);
    for r in 0..n {
        for c in 0..n {
            let value = 100.0 + r as f64 * 0.4 + c as f64 * 0.2;
            let land_use = if c < 3 { 1.0 } else { 2.0 }; // residential | commercial
            data.push(value);
            data.push(land_use);
        }
    }
    GridDataset::new(
        n,
        n,
        2,
        data,
        vec![true; n * n],
        vec!["value".into(), "land_use".into()],
        vec![AggType::Avg, AggType::Mode],
        vec![false, true],
        Bounds::unit(),
    )
    .unwrap()
}

#[test]
fn typed_variation_counts_category_mismatch() {
    use spatial_repartition::grid::variation_between_typed;
    let aggs = [AggType::Avg, AggType::Mode];
    // Same category: only the numeric difference contributes.
    let v_same = variation_between_typed(&[1.0, 7.0], &[1.5, 7.0], &aggs);
    assert!((v_same - 0.25).abs() < 1e-12); // |0.5| / 2 attrs
                                            // Different category: +1 mismatch.
    let v_diff = variation_between_typed(&[1.0, 7.0], &[1.5, 8.0], &aggs);
    assert!((v_diff - 0.75).abs() < 1e-12); // (0.5 + 1.0) / 2
}

#[test]
fn categories_block_merging_across_zone_boundaries() {
    let g = mixed_grid();
    let out = repartition(&g, 0.05).unwrap();
    let rep = &out.repartitioned;
    // Merging happened within zones…
    assert!(rep.num_groups() < 36, "no merging at all");
    // …but never across the land-use boundary: every group's cells share
    // one land-use code.
    for gid in 0..rep.num_groups() as u32 {
        let cells = rep.partition().cells_of(gid);
        let first = g.value(cells[0], 1);
        for &cell in &cells {
            assert_eq!(g.value(cell, 1), first, "group {gid} mixes categories");
        }
        // And the allocated group code is exactly that category.
        assert_eq!(rep.group_feature(gid).unwrap()[1], first);
    }
}

#[test]
fn categorical_ifl_is_mismatch_rate() {
    // Force one mixed group by hand and check the IFL counts the minority
    // cells as mismatches.
    use spatial_repartition::core::GroupRect;
    use spatial_repartition::core::{allocate_features, partition_ifl, Partition};
    let g = GridDataset::new(
        1,
        4,
        1,
        vec![1.0, 1.0, 1.0, 2.0],
        vec![true; 4],
        vec!["class".into()],
        vec![AggType::Mode],
        vec![true],
        Bounds::unit(),
    )
    .unwrap();
    let p = Partition::new(1, 4, vec![GroupRect { r0: 0, r1: 0, c0: 0, c1: 3 }], vec![0, 0, 0, 0]);
    let feats = allocate_features(&g, &p);
    // Mode of {1,1,1,2} is 1.
    assert_eq!(feats[0].as_deref(), Some(&[1.0][..]));
    let ifl = partition_ifl(&g, &p, &feats, IflOptions::default());
    // One of four cells mismatches: 25%.
    assert!((ifl - 0.25).abs() < 1e-12);
}

#[test]
fn reconstruction_copies_category_codes() {
    let g = mixed_grid();
    let out = repartition(&g, 0.05).unwrap();
    let rec = out.repartitioned.reconstruct(&g).unwrap();
    for id in g.valid_cells() {
        assert_eq!(
            rec.value(id, 1),
            g.value(id, 1),
            "cell {id} category changed in reconstruction"
        );
    }
}

#[test]
fn categorical_grid_roundtrips_through_tsv() {
    use spatial_repartition::grid::{read_grid, write_grid};
    let g = mixed_grid();
    let mut buf = Vec::new();
    write_grid(&g, &mut buf).unwrap();
    let g2 = read_grid(&buf[..]).unwrap();
    assert_eq!(g2.agg_types(), g.agg_types());
    assert_eq!(g2, g);
}

#[test]
fn normalization_leaves_codes_untouched() {
    let g = mixed_grid();
    let norm = normalize_attributes(&g);
    for id in g.valid_cells() {
        // Numeric attribute scaled into [0, 1]…
        assert!(norm.value(id, 0) <= 1.0);
        // …categorical code intact.
        assert_eq!(norm.value(id, 1), g.value(id, 1));
    }
}
