//! End-to-end test of the serving subsystem: repartition → snapshot file →
//! reload → HTTP server on an ephemeral port → concurrent clients → every
//! served point value must be *exactly* the §III-C reconstruction value.

use spatial_repartition::core::reconstruct_grid;
use spatial_repartition::datasets::{Dataset, GridSize};
use spatial_repartition::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;

/// Minimal HTTP/1.1 client: one GET, returns (status, body).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 =
        response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

/// Extracts `"values":[..]` from a /point response body; `None` when the
/// cell is null (`"values":null`).
fn parse_values(body: &str) -> Option<Vec<f64>> {
    let rest = body.split_once("\"values\":")?.1;
    if rest.starts_with("null") {
        return None;
    }
    let inner = rest.strip_prefix('[')?.split_once(']')?.0;
    Some(
        inner
            .split(',')
            .filter(|s| !s.is_empty())
            .map(|s| s.parse().expect("numeric value"))
            .collect(),
    )
}

#[test]
fn serve_queries_match_reconstruction_under_concurrency() {
    // A realistic multivariate grid with null cells.
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Custom(24, 24), 11);
    let outcome = repartition(&grid, 0.08).unwrap();
    let rep = &outcome.repartitioned;

    // Snapshot round trip through a file.
    let snap = Snapshot::build(rep, &grid, 0.08).unwrap();
    let path = std::env::temp_dir().join(format!("sr_serve_e2e_{}.snap", std::process::id()));
    save_snapshot(&snap, &path).unwrap();
    let reloaded = load_snapshot(&path).unwrap();
    std::fs::remove_file(&path).ok();
    assert_eq!(reloaded, snap, "snapshot file round trip must be lossless");

    let reference = reconstruct_grid(&grid, snap.partition(), snap.features()).unwrap();
    let engine = Arc::new(QueryEngine::new(reloaded));
    let mut handle = serve(engine, "127.0.0.1:0", ServerConfig::default()).unwrap();
    let addr = handle.addr();

    // Four client threads, each covering a disjoint quarter of the cells.
    std::thread::scope(|scope| {
        for tid in 0..4usize {
            let grid = &grid;
            let reference = &reference;
            scope.spawn(move || {
                for cell in (0..grid.num_cells() as u32).filter(|c| *c as usize % 4 == tid) {
                    let (lat, lon) = grid.cell_centroid(cell);
                    let (status, body) = http_get(addr, &format!("/point?lat={lat}&lon={lon}"));
                    assert_eq!(status, 200, "cell {cell}: {body}");
                    assert!(body.contains("\"inside\":true"), "cell {cell}: {body}");
                    let served = parse_values(&body);
                    match reference.features(cell) {
                        None => assert!(served.is_none(), "cell {cell} should be null: {body}"),
                        Some(expected) => {
                            let served = served.unwrap_or_else(|| {
                                panic!("cell {cell} served null, expected {expected:?}")
                            });
                            assert_eq!(served.len(), expected.len());
                            // Bit-exact: the server prints shortest-round-trip
                            // f64s, so parsing must recover identical bits.
                            for (k, (&s, e)) in served.iter().zip(expected).enumerate() {
                                assert_eq!(
                                    s.to_bits(),
                                    e.to_bits(),
                                    "cell {cell} attr {k}: served {s} != reconstructed {e}"
                                );
                            }
                        }
                    }
                }
            });
        }
    });

    // Window aggregate over the whole grid agrees with a full scan of the
    // reconstruction.
    let b = grid.bounds();
    let (status, body) = http_get(
        addr,
        &format!(
            "/window?lat0={}&lat1={}&lon0={}&lon1={}",
            b.lat_min, b.lat_max, b.lon_min, b.lon_max
        ),
    );
    assert_eq!(status, 200);
    assert!(body.contains(&format!("\"cells\":{}", grid.num_cells())), "{body}");
    assert!(body.contains(&format!("\"valid_cells\":{}", grid.num_valid_cells())), "{body}");

    // knn returns k ordered neighbors.
    let (lat, lon) = grid.cell_centroid(0);
    let (status, body) = http_get(addr, &format!("/knn?lat={lat}&lon={lon}&k=3"));
    assert_eq!(status, 200);
    assert_eq!(body.matches("\"group\":").count(), 3, "{body}");

    // Stats reflect the snapshot.
    let (status, body) = http_get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains(&format!("\"groups\":{}", rep.num_groups())), "{body}");

    // Malformed requests: 4xx with an error body, never a panic or hang.
    for target in ["/point", "/point?lat=x&lon=0", "/knn?lat=1&lon=1&k=0", "/bogus"] {
        let (status, body) = http_get(addr, target);
        assert!((400..500).contains(&status), "{target} -> {status}");
        assert!(body.contains("error"), "{target} -> {body}");
    }
    // A request that is not HTTP at all.
    {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(b"\x00\x01\x02 garbage\r\n\r\n").unwrap();
        let mut resp = String::new();
        stream.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 400"), "{resp}");
    }

    // Graceful shutdown: returns after draining, and the port stops
    // accepting.
    handle.shutdown();
    assert!(TcpStream::connect(addr).is_err(), "listener should be closed");
}

#[test]
fn server_survives_empty_connections() {
    let grid = Dataset::VehiclesUnivariate.generate(GridSize::Custom(8, 8), 3);
    let outcome = repartition(&grid, 0.1).unwrap();
    let snap = Snapshot::build(&outcome.repartitioned, &grid, 0.1).unwrap();
    let engine = Arc::new(QueryEngine::new(snap));
    let config = ServerConfig { threads: 2, ..ServerConfig::default() };
    let handle = serve(engine, "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();
    // Connections that send nothing (and immediately close) must not wedge
    // the pool.
    for _ in 0..4 {
        drop(TcpStream::connect(addr).unwrap());
    }
    let (status, _) = http_get(addr, "/stats");
    assert_eq!(status, 200);
}
