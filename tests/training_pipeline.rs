//! Integration of the full spatial-ML substrate on generated data: every
//! model class fits on a reduced dataset and produces sane predictions.

use spatial_repartition::core::PreparedTrainingData;
use spatial_repartition::datasets::{train_test_split, Dataset, GridSize};
use spatial_repartition::ml::{
    bin_into_quantiles, pseudo_r2, schc_cluster, table1, weighted_f1, GradientBoostingClassifier,
    Gwr, KnnClassifier, OrdinaryKriging, RandomForest, SchcParams, SpatialError, SpatialLag, Svr,
    SvrParams,
};
use spatial_repartition::prelude::*;

/// Reduced home-sales training set: features (price target), centroids,
/// adjacency.
fn reduced_home_sales() -> (PreparedTrainingData, GridDataset) {
    let grid = Dataset::HomeSalesMultivariate.generate(GridSize::Mini, 21);
    let out = repartition(&grid, 0.04).unwrap();
    (PreparedTrainingData::from_repartitioned(&out.repartitioned), grid)
}

#[test]
fn all_regressors_fit_reduced_data() {
    let (prep, _) = reduced_home_sales();
    let (xs, ys) = prep.split_target(0);
    let (train, test) = train_test_split(xs.len(), 0.2, 3);
    let tx: Vec<Vec<f64>> = train.iter().map(|&i| xs[i].clone()).collect();
    let ty: Vec<f64> = train.iter().map(|&i| ys[i]).collect();
    let qx: Vec<Vec<f64>> = test.iter().map(|&i| xs[i].clone()).collect();
    let qy: Vec<f64> = test.iter().map(|&i| ys[i]).collect();
    let mut mask = vec![false; xs.len()];
    for &i in &train {
        mask[i] = true;
    }
    let train_adj = prep.adjacency.restrict(&mask);
    let tc: Vec<(f64, f64)> = train.iter().map(|&i| prep.centroids[i]).collect();
    let qc: Vec<(f64, f64)> = test.iter().map(|&i| prep.centroids[i]).collect();

    // Spatial lag.
    let lag = SpatialLag::fit(&tx, &ty, &train_adj).unwrap();
    assert!(lag.rho.is_finite() && lag.rho.abs() <= 0.99);
    let wy_full = prep.adjacency.spatial_lag(&ys);
    let wy_test: Vec<f64> = test.iter().map(|&i| wy_full[i]).collect();
    let lag_pred = lag.predict(&qx, &wy_test).unwrap();
    assert!(pseudo_r2(&qy, &lag_pred) > 0.3, "lag R² too low");

    // Spatial error.
    let err = SpatialError::fit(&tx, &ty, &train_adj).unwrap();
    let err_pred = err.predict_trend(&qx);
    assert!(pseudo_r2(&qy, &err_pred) > 0.3, "error-model R² too low");

    // GWR.
    let gwr = Gwr::fit(&tx, &ty, &tc, &table1::gwr()).unwrap();
    let gwr_pred = gwr.predict(&qx, &qc).unwrap();
    assert!(pseudo_r2(&qy, &gwr_pred) > 0.3, "GWR R² too low");

    // SVR (smaller epoch budget for test speed).
    let svr_params = SvrParams { max_epochs: 20, max_train: 10_000, ..table1::svr() };
    let svr = Svr::fit(&tx, &ty, &svr_params).unwrap();
    assert!(svr.predict(&qx).iter().all(|p| p.is_finite()));

    // Random forest (trimmed size).
    let mut rf_params = table1::random_forest();
    rf_params.n_estimators = 40;
    let rf = RandomForest::fit(&tx, &ty, &rf_params).unwrap();
    let rf_pred = rf.predict(&qx);
    assert!(pseudo_r2(&qy, &rf_pred) > 0.3, "forest R² too low");
}

#[test]
fn classifiers_fit_reduced_data() {
    let (prep, _) = reduced_home_sales();
    let (xs, ys) = prep.split_target(0);
    let labels = bin_into_quantiles(&ys, table1::NUM_CLASSES);
    let (train, test) = train_test_split(xs.len(), 0.2, 4);
    let tx: Vec<Vec<f64>> = train.iter().map(|&i| xs[i].clone()).collect();
    let tl: Vec<usize> = train.iter().map(|&i| labels[i]).collect();
    let qx: Vec<Vec<f64>> = test.iter().map(|&i| xs[i].clone()).collect();
    let ql: Vec<usize> = test.iter().map(|&i| labels[i]).collect();

    let mut gb_params = table1::gradient_boosting();
    gb_params.n_estimators = 30;
    let gb = GradientBoostingClassifier::fit(&tx, &tl, table1::NUM_CLASSES, &gb_params).unwrap();
    let gb_f1 = weighted_f1(&ql, &gb.predict(&qx), table1::NUM_CLASSES);
    // Five balanced classes: random guessing sits near 0.2.
    assert!(gb_f1 > 0.3, "gradient boosting F1 {gb_f1} barely beats chance");

    let knn = KnnClassifier::fit(&tx, &tl, table1::NUM_CLASSES, &table1::knn()).unwrap();
    let knn_f1 = weighted_f1(&ql, &knn.predict(&qx), table1::NUM_CLASSES);
    assert!(knn_f1 > 0.28, "KNN F1 {knn_f1} barely beats chance");
}

#[test]
fn kriging_interpolates_reduced_univariate_data() {
    let grid = Dataset::EarningsUnivariate.generate(GridSize::Mini, 22);
    let out = repartition(&grid, 0.08).unwrap();
    let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
    // Per-cell intensity (jobs is Sum-aggregated).
    let values: Vec<f64> =
        prep.features.iter().zip(&prep.group_sizes).map(|(f, &s)| f[0] / s as f64).collect();
    let (train, test) = train_test_split(values.len(), 0.2, 5);
    let tc: Vec<(f64, f64)> = train.iter().map(|&i| prep.centroids[i]).collect();
    let tv: Vec<f64> = train.iter().map(|&i| values[i]).collect();
    let qc: Vec<(f64, f64)> = test.iter().map(|&i| prep.centroids[i]).collect();
    let qv: Vec<f64> = test.iter().map(|&i| values[i]).collect();

    let k = OrdinaryKriging::fit(&tc, &tv, &table1::kriging()).unwrap();
    let pred = k.predict(&qc);
    // Kriging must beat the constant-mean predictor on autocorrelated data.
    let mean = tv.iter().sum::<f64>() / tv.len() as f64;
    let base: f64 = qv.iter().map(|v| (v - mean) * (v - mean)).sum();
    let sse: f64 = qv.iter().zip(&pred).map(|(v, p)| (v - p) * (v - p)).sum();
    assert!(sse < base, "kriging no better than the mean: {sse} vs {base}");
}

#[test]
fn clustering_runs_on_both_grids() {
    let grid = Dataset::VehiclesUnivariate.generate(GridSize::Mini, 23);
    // Cell-level clustering.
    let norm = normalize_attributes(&grid);
    let feats: Vec<Vec<f64>> =
        norm.valid_cells().map(|id| norm.features_unchecked(id).to_vec()).collect();
    let adj = AdjacencyList::rook_from_grid(&grid).restrict(&grid.valid_mask());
    let base = schc_cluster(&feats, &adj, &SchcParams { num_clusters: 6 }).unwrap();
    assert!(base.num_found >= 6);

    // Group-level clustering on the re-partitioned data.
    let out = repartition(&grid, 0.10).unwrap();
    let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
    let gfeats: Vec<Vec<f64>> = prep.features.clone();
    let res = schc_cluster(&gfeats, &prep.adjacency, &SchcParams { num_clusters: 6 }).unwrap();
    assert!(res.num_found >= 6);
    assert_eq!(res.labels.len(), prep.len());
}
