//! End-to-end checks of the instrumentation contract
//! (`docs/OBSERVABILITY.md`): the repartition driver must emit the
//! documented span tree, and the HTTP server's `/metrics` and `/stats`
//! endpoints must agree with the traffic a client actually sent.

use spatial_repartition::datasets::{Dataset, GridSize};
use spatial_repartition::obs;
use spatial_repartition::prelude::*;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::{Arc, Mutex};

/// Tracing state (subscriber + enabled flag) is process-global; tests that
/// install a subscriber — or that would emit spans into someone else's
/// collector — take this lock.
static TRACE_LOCK: Mutex<()> = Mutex::new(());

/// Minimal HTTP/1.1 client: one GET, returns (status, body).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    let status: u16 =
        response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let body = response.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default();
    (status, body)
}

#[test]
fn repartition_emits_documented_span_tree() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let collector = Arc::new(obs::MemoryCollector::new());
    obs::set_subscriber(collector.clone());

    let grid = Dataset::TaxiUnivariate.generate(GridSize::Custom(16, 16), 7);
    let outcome = repartition(&grid, 0.05).unwrap();
    obs::clear_subscriber();

    let run = collector.find("repartition.run").expect("driver span");
    assert!(run.parent.is_none(), "repartition.run is a root span");
    assert_eq!(run.depth, 0);
    assert_eq!(run.field("cells"), Some(&obs::Value::U64(256)));
    assert_eq!(run.field("threshold"), Some(&obs::Value::F64(0.05)));
    assert_eq!(
        run.field("groups"),
        Some(&obs::Value::U64(outcome.repartitioned.num_groups() as u64))
    );

    // Every documented phase appears exactly once, as a child of the run.
    for phase in ["repartition.normalize", "repartition.variation_scan", "repartition.merge_loop"] {
        let spans = collector.find_all(phase);
        assert_eq!(spans.len(), 1, "{phase} should run once");
        assert_eq!(spans[0].parent, Some(run.id), "{phase} nests under repartition.run");
        assert_eq!(spans[0].depth, 1);
    }
    let children = collector.children_of(run.id);
    assert_eq!(children.len(), 3, "run has exactly the documented children");

    let merge = collector.find("repartition.merge_loop").unwrap();
    assert_eq!(
        merge.field("iterations"),
        Some(&obs::Value::U64(outcome.iterations.len() as u64)),
        "span field must agree with the outcome's iteration log"
    );
}

#[test]
fn server_metrics_match_client_activity() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let grid = Dataset::VehiclesUnivariate.generate(GridSize::Custom(10, 10), 5);
    let outcome = repartition(&grid, 0.1).unwrap();
    let snap = Snapshot::build(&outcome.repartitioned, &grid, 0.1).unwrap();
    let engine = Arc::new(QueryEngine::new(snap));

    // An isolated registry keeps this test independent of everything else
    // in the process that talks to the global one.
    let registry = Registry::new();
    let config = ServerConfig { registry: registry.clone(), ..ServerConfig::default() };
    let mut handle = serve(engine, "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    let (lat, lon) = grid.cell_centroid(0);
    for _ in 0..3 {
        let (status, _) = http_get(addr, &format!("/point?lat={lat}&lon={lon}"));
        assert_eq!(status, 200);
    }
    let (status, _) = http_get(addr, &format!("/knn?lat={lat}&lon={lon}&k=2"));
    assert_eq!(status, 200);
    let (status, _) = http_get(addr, "/point?lat=bogus&lon=0");
    assert_eq!(status, 400);
    let (status, _) = http_get(addr, "/nope");
    assert_eq!(status, 404);

    // /stats folds the same counters in under "requests".
    let (status, stats) = http_get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(
        stats.contains(
            "\"requests\":{\"point\":4,\"window\":0,\"knn\":1,\"stats\":1,\"metrics\":0,\
             \"healthz\":0,\"total\":7,\"errors\":2}"
        ),
        "stats: {stats}"
    );

    // /metrics renders the registry; it counts itself before rendering.
    let (status, metrics) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    for line in [
        "counter serve.requests_total 8",
        "counter serve.errors_total 2",
        "counter serve.point.requests_total 4",
        "counter serve.knn.requests_total 1",
        "counter serve.stats.requests_total 1",
        "counter serve.metrics.requests_total 1",
        "counter serve.window.requests_total 0",
        "histogram serve.point.latency_ns count 4",
        "gauge serve.snapshot.groups",
    ] {
        assert!(metrics.contains(line), "missing {line:?} in:\n{metrics}");
    }
    // The registry handle the test holds reads the same cells the server
    // writes.
    assert_eq!(registry.counter("serve.requests_total").get(), 8);

    handle.shutdown();
}

#[test]
fn cache_counters_flow_into_registry() {
    let _guard = TRACE_LOCK.lock().unwrap();
    let grid = Dataset::TaxiUnivariate.generate(GridSize::Custom(8, 8), 2);
    let outcome = repartition(&grid, 0.1).unwrap();
    let snap = Snapshot::build(&outcome.repartitioned, &grid, 0.1).unwrap();
    let path = std::env::temp_dir().join(format!("sr_obs_cache_{}.snap", std::process::id()));
    save_snapshot(&snap, &path).unwrap();

    let registry = Registry::new();
    let cache = SnapshotCache::with_registry(1, &registry);
    cache.get_or_load(&path, 0.1).unwrap(); // miss
    cache.get_or_load(&path, 0.1).unwrap(); // hit
    cache.get_or_load(&path, 0.2).unwrap(); // miss + eviction
    std::fs::remove_file(&path).ok();

    let text = registry.render_text();
    assert!(text.contains("counter serve.cache.hits_total 1"), "{text}");
    assert!(text.contains("counter serve.cache.misses_total 2"), "{text}");
    assert!(text.contains("counter serve.cache.evictions_total 1"), "{text}");
    assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (1, 2, 1));
}
