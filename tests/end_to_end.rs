//! End-to-end integration: generator → re-partitioner → training-data
//! preparation → model training, across every evaluation dataset.

use spatial_repartition::core::PreparedTrainingData;
use spatial_repartition::datasets::{train_test_split, Dataset, GridSize};
use spatial_repartition::ml::{mae, table1, RandomForest};
use spatial_repartition::prelude::*;

#[test]
fn repartitioning_respects_threshold_on_all_datasets() {
    for ds in Dataset::ALL {
        let grid = ds.generate(GridSize::Mini, 1);
        for theta in [0.05, 0.10, 0.15] {
            let out = repartition(&grid, theta).expect("valid threshold");
            assert!(
                out.repartitioned.ifl() <= theta + 1e-12,
                "{} theta {theta}: IFL {} exceeds budget",
                ds.name(),
                out.repartitioned.ifl()
            );
            assert!(
                out.repartitioned.num_groups() <= grid.num_cells(),
                "{}: more groups than cells",
                ds.name()
            );
        }
    }
}

#[test]
fn reduction_grows_with_threshold() {
    for ds in Dataset::ALL {
        let grid = ds.generate(GridSize::Mini, 2);
        let r05 = repartition(&grid, 0.05).unwrap().repartitioned.num_groups();
        let r15 = repartition(&grid, 0.15).unwrap().repartitioned.num_groups();
        assert!(
            r15 <= r05,
            "{}: groups at theta 0.15 ({r15}) exceed theta 0.05 ({r05})",
            ds.name()
        );
    }
}

#[test]
fn reconstruction_round_trips_every_dataset() {
    for ds in Dataset::ALL {
        let grid = ds.generate(GridSize::Mini, 3);
        let out = repartition(&grid, 0.10).unwrap();
        let rec = out.repartitioned.reconstruct(&grid).expect("same shape");
        let ifl = information_loss(&grid, &rec, IflOptions::default()).unwrap();
        assert!(
            (ifl - out.repartitioned.ifl()).abs() < 1e-10,
            "{}: reconstruction IFL {ifl} != driver IFL {}",
            ds.name(),
            out.repartitioned.ifl()
        );
        // Null cells stay null.
        for id in 0..grid.num_cells() as u32 {
            assert_eq!(grid.is_valid(id), rec.is_valid(id));
        }
    }
}

#[test]
fn prepared_training_data_is_consistent() {
    for ds in Dataset::ALL {
        let grid = ds.generate(GridSize::Mini, 4);
        let out = repartition(&grid, 0.10).unwrap();
        let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
        assert_eq!(prep.len(), out.repartitioned.num_valid_groups());
        assert!(prep.adjacency.is_symmetric());
        assert_eq!(prep.features.len(), prep.centroids.len());
        assert_eq!(prep.features.len(), prep.group_sizes.len());
        // Group sizes cover exactly the valid cells.
        let covered: usize = prep.group_sizes.iter().sum();
        assert_eq!(covered, {
            // Valid groups are all-valid rectangles, so their sizes sum to
            // the valid cell count.
            grid.num_valid_cells()
        });
    }
}

#[test]
fn model_trained_on_reduced_data_stays_accurate() {
    // The headline behavioral claim at test scale: a random forest trained
    // on the θ=0.05 re-partitioned home-sales data predicts held-out
    // *original-resolution* instances with error close to a forest trained
    // on the full grid.
    let ds = Dataset::HomeSalesMultivariate;
    let grid = ds.generate(GridSize::Mini, 5);

    // Original instance set.
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for id in grid.valid_cells() {
        let fv = grid.features_unchecked(id);
        let mut row = fv.to_vec();
        ys.push(row.remove(0)); // price target
        xs.push(row);
    }
    let (train_idx, test_idx) = train_test_split(xs.len(), 0.2, 9);
    let train_x: Vec<Vec<f64>> = train_idx.iter().map(|&i| xs[i].clone()).collect();
    let train_y: Vec<f64> = train_idx.iter().map(|&i| ys[i]).collect();
    let test_x: Vec<Vec<f64>> = test_idx.iter().map(|&i| xs[i].clone()).collect();
    let test_y: Vec<f64> = test_idx.iter().map(|&i| ys[i]).collect();

    let mut params = table1::random_forest();
    params.n_estimators = 60; // keep the test quick
    let full = RandomForest::fit(&train_x, &train_y, &params).unwrap();
    let full_mae = mae(&test_y, &full.predict(&test_x));

    // Reduced training set (groups as instances), same original test set.
    let out = repartition(&grid, 0.05).unwrap();
    let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
    let (rx, ry) = prep.split_target(0);
    let reduced = RandomForest::fit(&rx, &ry, &params).unwrap();
    let reduced_mae = mae(&test_y, &reduced.predict(&test_x));

    // Paper claim at θ = 0.05: error within a few percent. Allow a loose
    // 25% band at this tiny scale.
    assert!(
        reduced_mae <= full_mae * 1.25,
        "reduced-model MAE {reduced_mae} too far above full-model MAE {full_mae}"
    );
}

#[test]
fn autocorrelation_survives_repartitioning() {
    // Moran's I of the reconstructed grid stays strongly positive: the
    // framework's raison d'être.
    let grid = Dataset::TaxiUnivariate.generate(GridSize::Mini, 6);
    let adj = AdjacencyList::rook_from_grid(&grid);
    let vals = |g: &GridDataset| -> Vec<f64> {
        (0..g.num_cells() as u32)
            .map(|id| if g.is_valid(id) { g.value(id, 0) } else { 0.0 })
            .collect()
    };
    let before = morans_i(&vals(&grid), &adj).unwrap();
    let out = repartition(&grid, 0.10).unwrap();
    let rec = out.repartitioned.reconstruct(&grid).unwrap();
    let after = morans_i(&vals(&rec), &adj).unwrap();
    assert!(before > 0.4, "generator autocorrelation too weak: {before}");
    assert!(after > before - 0.1, "re-partitioning destroyed autocorrelation: {before} -> {after}");
}
