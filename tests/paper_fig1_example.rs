//! The paper's running example, end to end: Fig. 1's 5×5 univariate grid
//! narrative — iteration 1 merges only zero-variation neighbors (IFL stays
//! 0), iteration 2 uses the second-least variation and produces a small
//! positive IFL — plus the Example 2/3/4 mechanics on the same pipeline.

use spatial_repartition::core::{
    allocate_features, extract_cell_groups, partition_ifl, VariationHeap,
};
use spatial_repartition::prelude::*;

/// A 5×5 univariate grid in the spirit of Fig. 1: clusters of equal and
/// near-equal values whose max is 35, so the second-least adjacent
/// variation is exactly 1/35 = 0.02857143 (the paper's Example 2 constant).
fn fig1_like_grid() -> GridDataset {
    #[rustfmt::skip]
    let values = vec![
        22.0, 23.0, 30.0, 30.0, 31.0,
        23.0, 23.0, 24.0, 31.0, 31.0,
        23.0, 24.0, 25.0, 25.0, 35.0,
        10.0, 10.0, 25.0, 25.0, 35.0,
        10.0, 10.0, 11.0, 26.0, 26.0,
    ];
    GridDataset::univariate(5, 5, values).unwrap()
}

#[test]
fn example2_heap_pops_least_then_second_least() {
    let grid = fig1_like_grid();
    let norm = normalize_attributes(&grid);
    let mut heap = VariationHeap::from_grid(&norm);
    let first = heap.pop_next_distinct().unwrap();
    let second = heap.pop_next_distinct().unwrap();
    assert_eq!(first, 0.0, "least variation is 0 (equal neighbors exist)");
    assert!((second - 1.0 / 35.0).abs() < 1e-9, "second-least should be 0.02857143, got {second}");
}

#[test]
fn iteration1_zero_variation_merge_has_zero_ifl() {
    let grid = fig1_like_grid();
    let norm = normalize_attributes(&grid);
    let partition = extract_cell_groups(&norm, 0.0);
    assert!(partition.num_groups() < 25, "equal neighbors must merge");
    let features = allocate_features(&grid, &partition);
    let ifl = partition_ifl(&grid, &partition, &features, IflOptions::default());
    assert_eq!(ifl, 0.0, "merging identical cells loses nothing");
}

#[test]
fn iteration2_small_positive_ifl_and_fewer_groups() {
    let grid = fig1_like_grid();
    let norm = normalize_attributes(&grid);
    let it1 = extract_cell_groups(&norm, 0.0);
    let it2 = extract_cell_groups(&norm, 1.0 / 35.0);
    assert!(it2.num_groups() < it1.num_groups());
    let features = allocate_features(&grid, &it2);
    let ifl = partition_ifl(&grid, &it2, &features, IflOptions::default());
    assert!(ifl > 0.0 && ifl < 0.05, "Fig. 1 iteration 2 IFL ≈ 0.0187-scale, got {ifl}");
}

#[test]
fn example3_rectangle_of_six_cells() {
    // Example 3's geometry in isolation: from (row1, col0) one can walk 3
    // cells horizontally and 2 rows vertically within the variation budget,
    // and the 2×3 rectangle (rCount = 6) beats both runs. Row 0 is mutually
    // incompatible so the greedy row-major scan cannot absorb the block
    // from above.
    #[rustfmt::skip]
    let values = vec![
        90.0, 80.0, 70.0, 60.0, 50.0,
        23.0, 23.0, 24.0, 31.0, 31.0,
        23.0, 24.0, 25.0, 25.0, 35.0,
        10.0, 10.0, 11.0, 12.0, 13.0,
    ];
    let grid = GridDataset::univariate(4, 5, values).unwrap();
    let norm = normalize_attributes(&grid);
    let partition = extract_cell_groups(&norm, 1.0 / 35.0);
    let g = partition.group_at(1, 0);
    let rect = partition.rect(g);
    assert_eq!(rect.len(), 6, "expected the 2×3 rectangle, got {rect:?}");
    assert_eq!(partition.group_at(1, 1), g);
    assert_eq!(partition.group_at(1, 2), g);
    assert_eq!(partition.group_at(2, 0), g);
    assert_eq!(partition.group_at(2, 2), g);
    // The 31s and the 35 stay out.
    assert_ne!(partition.group_at(1, 3), g);
    assert_ne!(partition.group_at(2, 4), g);
}

#[test]
fn example4_average_rounded_to_integer() {
    // A 6-cell group of integer values {23,23,23,24,25,24}: mean 23.67 →
    // rounds to 24; mode 23; equal losses pick the rounded mean.
    let values = vec![23.0, 23.0, 23.0, 24.0, 25.0, 24.0];
    let grid = GridDataset::new(
        1,
        6,
        1,
        values,
        vec![true; 6],
        vec!["v".into()],
        vec![AggType::Avg],
        vec![true], // integer-typed
        Bounds::unit(),
    )
    .unwrap();
    let norm = normalize_attributes(&grid);
    let partition = extract_cell_groups(&norm, 1.0);
    assert_eq!(partition.num_groups(), 1);
    let features = allocate_features(&grid, &partition);
    assert_eq!(features[0].as_deref(), Some(&[24.0][..]));
}

#[test]
fn example6_adjacency_from_rectangles() {
    // Group adjacency from the re-partitioned Fig. 1-like grid: symmetric,
    // self-loop free, and consistent with a brute-force cell scan.
    let grid = fig1_like_grid();
    let norm = normalize_attributes(&grid);
    let partition = extract_cell_groups(&norm, 1.0 / 35.0);
    let adj = spatial_repartition::core::group_adjacency(&partition);
    assert!(adj.is_symmetric());
    for g in 0..partition.num_groups() as u32 {
        assert!(!adj.neighbors(g).contains(&g));
        assert!(adj.degree(g) >= 1, "every group borders another in a 5×5 grid");
    }
}

#[test]
fn example7_sum_reconstruction_halves_group_value() {
    // Fig. 4: a 2-cell Sum group valued 54 reconstructs 27 per cell.
    let grid = GridDataset::new(
        1,
        2,
        1,
        vec![30.0, 24.0],
        vec![true, true],
        vec!["count".into()],
        vec![AggType::Sum],
        vec![false],
        Bounds::unit(),
    )
    .unwrap();
    let out = repartition(&grid, 0.25).unwrap();
    assert_eq!(out.repartitioned.num_groups(), 1);
    assert_eq!(out.repartitioned.group_feature(0), Some(&[54.0][..]));
    let rec = out.repartitioned.reconstruct(&grid).unwrap();
    assert_eq!(rec.features(0).unwrap(), &[27.0]);
    assert_eq!(rec.features(1).unwrap(), &[27.0]);
}
