//! Property test for the ingestion tier's convergence guarantee
//! (`docs/INGESTION.md` §5): for random point streams, batch sizes, and
//! thresholds, an [`IngestEngine`] that consumed the stream in small
//! batches and re-partitioned incrementally produces a grid, a partition,
//! and v2 snapshot bytes that are **bit-identical** to a from-scratch
//! batch pipeline run on the accumulated data — at any thread count.
//!
//! Also pins the collapse edge cases the contract calls out (§3): median
//! over even sample counts, single-point cells, and all-NaN attribute
//! samples.
//!
//! `ci.sh` additionally runs this file under `SR_THREADS=1` and
//! `SR_THREADS=4`.

use spatial_repartition::ingest::PointChunk;
use spatial_repartition::prelude::*;
use spatial_repartition::serve::snapshot_to_bytes_v2;
use std::fmt::Write as _;
use std::sync::Arc;

/// Deterministic xorshift64* — the tests must not depend on ambient seed
/// state.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[0, 1)`.
    fn frac(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const COLLAPSES: [&str; 5] = ["mean", "median", "min", "max", "count"];

/// A random stream: mostly well-formed points over the unit square with a
/// smooth value surface, plus NaN samples, comment lines, and malformed
/// records (which both sides must skip identically).
fn random_stream(rng: &mut Rng, points: usize, p: usize) -> String {
    let mut text = String::from("# synthetic feed\n");
    for i in 0..points {
        if i % 97 == 13 {
            text.push_str("bogus record\n");
        }
        let (x, y) = (rng.frac(), rng.frac());
        write!(text, "{x} {y}").unwrap();
        for k in 0..p {
            if rng.below(20) == 0 {
                text.push_str(" nan");
            } else {
                let v = 50.0 + 40.0 * x + 25.0 * y + (k as f64 + 1.0) * rng.frac();
                write!(text, " {v}").unwrap();
            }
        }
        text.push('\n');
    }
    text
}

/// Parses `text` into chunks of `batch` points each.
fn chunks_of(text: &str, p: usize, batch: usize) -> Vec<PointChunk> {
    let mut reader = StreamReader::new(std::io::Cursor::new(text.to_string()), p);
    let mut chunks = Vec::new();
    loop {
        let mut chunk = PointChunk::with_capacity(batch, p);
        if reader.next_chunk(batch, &mut chunk).unwrap() == 0 {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

/// Bit-pattern of every attribute plane plus the validity set — grid
/// equality under the convergence contract is *bit* equality.
fn grid_bits(grid: &GridDataset) -> (Vec<u64>, Vec<u32>) {
    let mut bits = Vec::new();
    for k in 0..grid.num_attrs() {
        for id in grid.valid_cells() {
            bits.push(grid.value(id, k).to_bits());
        }
    }
    (bits, grid.valid_cells().collect())
}

/// One random scenario: stream → incremental engine (small batches, a
/// mid-stream re-partition, a final one) vs the batch pipeline (one big
/// bin + a from-scratch driver run) — grids, partitions, IFL, and v2
/// snapshot bytes must all be bit-identical.
fn check_scenario(rng: &mut Rng, pool: &Arc<Pool>) -> Vec<u8> {
    let rows = 4 + rng.below(12) as usize;
    let cols = 4 + rng.below(12) as usize;
    let p = 1 + rng.below(3) as usize;
    let theta = [0.05, 0.1, 0.2][rng.below(3) as usize];
    let points = 200 + rng.below(600) as usize;
    let batch = [7, 33, 128][rng.below(3) as usize];

    let spec = (0..p)
        .map(|k| format!("a{k}:{}", COLLAPSES[rng.below(5) as usize]))
        .collect::<Vec<_>>()
        .join(",");
    let schema = IngestSchema::parse(&spec).unwrap();
    let text = random_stream(rng, points, p);

    // Incremental side: small batches, an exact re-partition mid-stream
    // (so the final one starts from a patched — not fresh — scan cache)
    // and another after the last batch.
    let mut engine = IngestEngine::new(IngestConfig::new(rows, cols, schema, theta)).unwrap();
    let chunks = chunks_of(&text, p, batch);
    let mid = chunks.len() / 2;
    for (i, chunk) in chunks.iter().enumerate() {
        engine.apply_batch(chunk).unwrap();
        if i + 1 == mid {
            engine.repartition_with(pool).unwrap();
        }
    }
    engine.repartition_with(pool).unwrap();

    // Batch side: bin the whole stream in one chunk into a fresh engine's
    // accumulators, then run the driver from scratch with the identical
    // configuration the engine uses.
    let schema = IngestSchema::parse(&spec).unwrap();
    let mut batch_engine = IngestEngine::new(IngestConfig::new(rows, cols, schema, theta)).unwrap();
    let mut whole = PointChunk::with_capacity(points, p);
    let mut reader = StreamReader::new(std::io::Cursor::new(text), p);
    reader.next_chunk(usize::MAX, &mut whole).unwrap();
    batch_engine.apply_batch(&whole).unwrap();

    assert_eq!(
        grid_bits(engine.grid()),
        grid_bits(batch_engine.grid()),
        "accumulated grid must not depend on batch splits"
    );

    let config = RepartitionConfig {
        threshold: theta,
        strategy: IterationStrategy::EveryDistinct,
        ifl_options: IflOptions::default(),
        max_iterations: usize::MAX,
    };
    let batch_outcome = Repartitioner::with_config(config)
        .unwrap()
        .run_with_pool(batch_engine.grid(), pool)
        .unwrap();

    let inc = &engine.last_outcome().unwrap().repartitioned;
    let bat = &batch_outcome.repartitioned;
    assert_eq!(inc.num_groups(), bat.num_groups());
    assert_eq!(inc.ifl().to_bits(), bat.ifl().to_bits());
    assert_eq!(inc.partition().cell_to_group(), bat.partition().cell_to_group());

    let inc_bytes = engine.snapshot_bytes().unwrap();
    let snap = Snapshot::build(bat, batch_engine.grid(), theta).unwrap();
    assert_eq!(inc_bytes, snapshot_to_bytes_v2(&snap), "v2 snapshot bytes must be identical");
    inc_bytes
}

#[test]
fn incremental_converges_to_batch_bit_for_bit() {
    let pool1 = Arc::new(Pool::new(1));
    let pool8 = Arc::new(Pool::new(8));
    for seed in 1..=6u64 {
        // Identical scenario at 1 and 8 worker threads: the partitions
        // must match the batch run *and* each other byte for byte.
        let serial = check_scenario(&mut Rng(0x9E37_79B9 ^ seed), &pool1);
        let threaded = check_scenario(&mut Rng(0x9E37_79B9 ^ seed), &pool8);
        assert_eq!(serial, threaded, "seed {seed}: thread count changed snapshot bytes");
    }
}

/// One point centered in cell `(r, c)` of a `rows × cols` unit-bounds grid.
fn cell_point(chunk: &mut PointChunk, rows: usize, cols: usize, r: usize, c: usize, v: f64) {
    let x = (c as f64 + 0.5) / cols as f64;
    let y = (r as f64 + 0.5) / rows as f64;
    chunk.push(x, y, &[v]);
}

/// The strided-walk config the localized engine rounds force (small grids
/// would otherwise default to `EveryDistinct`, which never warm-starts).
fn exp_strategy() -> IterationStrategy {
    IterationStrategy::Exponential { initial_stride: 2, growth: 1.7 }
}

fn exp_driver(theta: f64) -> Repartitioner {
    Repartitioner::with_config(RepartitionConfig {
        threshold: theta,
        strategy: exp_strategy(),
        ifl_options: IflOptions::default(),
        max_iterations: usize::MAX,
    })
    .unwrap()
}

/// Multi-round localized scenario under the strided walk: cold seed run,
/// warm small-dirt rounds, an all-cells-dirty round (oversized-region
/// fallback), and a normalization-rebuild round (state invalidated). Every
/// round must be bit-identical to the batch driver run with the hint the
/// engine *planned* to use, and the round's v2 snapshot bytes must match a
/// batch-side build. Returns the concatenated snapshot bytes so callers
/// can compare thread counts.
fn localized_rounds(pool: &Arc<Pool>) -> Vec<u8> {
    let (rows, cols, theta) = (12usize, 12usize, 0.05);
    let schema = IngestSchema::parse("a:mean").unwrap();
    let config = IngestConfig::new(rows, cols, schema, theta).with_strategy(exp_strategy());
    let mut engine = IngestEngine::new(config).unwrap();
    let mut rng = Rng(0x00C0_FFEE);

    // Seed batch: one point per cell, smooth surface. Cell (11, 11) pins
    // the normalization maximum for the small-dirt rounds below.
    let mut seed = PointChunk::with_capacity(rows * cols, 1);
    for r in 0..rows {
        for c in 0..cols {
            cell_point(&mut seed, rows, cols, r, c, 100.0 + r as f64 + 0.05 * c as f64);
        }
    }
    engine.apply_batch(&seed).unwrap();

    let mut all_bytes = Vec::new();
    let (mut warm, mut fallback) = (0u32, 0u32);
    for round in 0..8 {
        match round {
            0 => {} // first repartition: cold by definition
            4 => {
                // Every cell dirty: the dirty fraction exceeds the
                // localized walk's cutoff, so this round must walk cold.
                let mut chunk = PointChunk::with_capacity(rows * cols, 1);
                for r in 0..rows {
                    for c in 0..cols {
                        cell_point(&mut chunk, rows, cols, r, c, 95.0 + rng.frac() * 10.0);
                    }
                }
                engine.apply_batch(&chunk).unwrap();
                assert_eq!(engine.pending_dirty_cells(), rows * cols);
            }
            6 => {
                // New attribute maximum: the scan cache rebuilds its
                // normalization and the engine invalidates the localized
                // state — the round walks cold, then re-seeds the hint.
                let mut chunk = PointChunk::with_capacity(1, 1);
                cell_point(&mut chunk, rows, cols, 3, 3, 500.0);
                let report = engine.apply_batch(&chunk).unwrap();
                assert!(report.scan.rebuilt_normalization);
            }
            _ => {
                // Three random cells nudged within the existing value
                // range: a small dirty region the warm walk should absorb.
                let mut chunk = PointChunk::with_capacity(3, 1);
                for _ in 0..3 {
                    let r = rng.below(rows as u64) as usize;
                    let c = rng.below(cols as u64) as usize;
                    cell_point(&mut chunk, rows, cols, r, c, 95.0 + rng.frac() * 15.0);
                }
                engine.apply_batch(&chunk).unwrap();
            }
        }

        let hint = engine.planned_warm_hint();
        engine.repartition_with(pool).unwrap();
        if engine.localized().last_run_was_fallback() {
            fallback += 1;
        } else {
            warm += 1;
        }
        match round {
            0 | 4 | 6 => {
                assert!(engine.localized().last_run_was_fallback(), "round {round} must walk cold")
            }
            _ => {}
        }

        let reference = exp_driver(theta).run_with_pool_warm(engine.grid(), pool, hint).unwrap();
        let (inc, bat) = (&engine.last_outcome().unwrap().repartitioned, &reference.repartitioned);
        assert_eq!(inc.num_groups(), bat.num_groups(), "round {round}");
        assert_eq!(inc.ifl().to_bits(), bat.ifl().to_bits(), "round {round}");
        assert_eq!(
            inc.partition().cell_to_group(),
            bat.partition().cell_to_group(),
            "round {round}"
        );
        let bytes = engine.snapshot_bytes().unwrap();
        let snap = Snapshot::build(bat, engine.grid(), theta).unwrap();
        assert_eq!(bytes, snapshot_to_bytes_v2(&snap), "round {round}: snapshot bytes diverged");
        all_bytes.extend(bytes);
    }
    assert!(warm > 0, "no round used the warm walk");
    assert!(fallback >= 3, "expected the cold rounds to fall back");
    all_bytes
}

#[test]
fn localized_engine_rounds_match_hinted_batch_driver() {
    let pool1 = Arc::new(Pool::new(1));
    let pool8 = Arc::new(Pool::new(8));
    let serial = localized_rounds(&pool1);
    let threaded = localized_rounds(&pool8);
    assert_eq!(serial, threaded, "thread count changed localized snapshot bytes");
}

#[test]
fn localized_engine_warm_miss_falls_back() {
    // 2×3 grid with one tiny variation (cells 0–1) and huge ones
    // elsewhere. After the first run hints at the tiny θ, a second sample
    // moves cell 1's mean to 155.0: the tiny variation vanishes, every
    // remaining threshold exceeds the hint, and the warm window misses —
    // the engine must fall back to the full walk and still match the
    // hinted batch driver bit for bit.
    let (rows, cols, theta) = (2usize, 3usize, 0.05);
    let values = [100.0, 100.001, 220.0, 390.0, 560.0, 730.0];
    let pool = Arc::new(Pool::new(2));
    let schema = IngestSchema::parse("a:mean").unwrap();
    let config = IngestConfig::new(rows, cols, schema, theta).with_strategy(exp_strategy());
    let mut engine = IngestEngine::new(config).unwrap();

    let mut seed = PointChunk::with_capacity(6, 1);
    for (i, &v) in values.iter().enumerate() {
        cell_point(&mut seed, rows, cols, i / cols, i % cols, v);
    }
    engine.apply_batch(&seed).unwrap();
    engine.repartition_with(&pool).unwrap();
    let hint = engine.localized().warm_hint().expect("first run must seed the hint");

    // mean(100.001, 209.999) = 155.0 — below the 730 maximum, so the scan
    // cache patches in place and the localized state stays warm-eligible.
    let mut bump = PointChunk::with_capacity(1, 1);
    cell_point(&mut bump, rows, cols, 0, 1, 209.999);
    let report = engine.apply_batch(&bump).unwrap();
    assert!(!report.scan.rebuilt_normalization);
    assert_eq!(engine.planned_warm_hint(), Some(hint));

    engine.repartition_with(&pool).unwrap();
    assert!(
        engine.localized().last_run_was_fallback(),
        "hint below every threshold must miss the warm window"
    );
    let reference = exp_driver(theta).run_with_pool_warm(engine.grid(), &pool, Some(hint)).unwrap();
    let inc = &engine.last_outcome().unwrap().repartitioned;
    assert_eq!(inc.ifl().to_bits(), reference.repartitioned.ifl().to_bits());
    assert_eq!(
        inc.partition().cell_to_group(),
        reference.repartitioned.partition().cell_to_group()
    );
}

/// Builds a single-cell-hit engine over a 2×2 grid and returns cell 0's
/// collapsed value for `spec` after binning `samples` at (0.1, 0.1).
fn collapse_one(spec: &str, samples: &[f64]) -> (f64, bool) {
    let schema = IngestSchema::parse(spec).unwrap();
    let mut engine = IngestEngine::new(IngestConfig::new(2, 2, schema, 0.1)).unwrap();
    let mut chunk = PointChunk::with_capacity(samples.len(), 1);
    for &v in samples {
        chunk.push(0.1, 0.1, &[v]);
    }
    engine.apply_batch(&chunk).unwrap();
    (engine.grid().value(0, 0), engine.grid().is_valid(0))
}

#[test]
fn median_of_even_count_averages_the_middle_order_stats() {
    // sorted: 1, 3, 9, 20 -> (3 + 9) / 2
    let (v, valid) = collapse_one("a:median", &[9.0, 1.0, 20.0, 3.0]);
    assert!(valid);
    assert_eq!(v, 6.0);
    // NaN samples drop out of the order statistics first: 2, 4 -> 3.
    let (v, _) = collapse_one("a:median", &[4.0, f64::NAN, 2.0]);
    assert_eq!(v, 3.0);
}

#[test]
fn single_point_cells_collapse_to_the_sample() {
    for spec in ["a:mean", "a:median", "a:min", "a:max"] {
        let (v, valid) = collapse_one(spec, &[7.25]);
        assert!(valid);
        assert_eq!(v, 7.25, "{spec}");
    }
    let (v, _) = collapse_one("a:count", &[7.25]);
    assert_eq!(v, 1.0);
}

#[test]
fn all_nan_samples_leave_a_valid_cell_with_zero_value() {
    for spec in ["a:mean", "a:median", "a:min", "a:max"] {
        let (v, valid) = collapse_one(spec, &[f64::NAN, f64::NAN]);
        assert!(valid, "{spec}: a binned point makes the cell valid");
        assert_eq!(v, 0.0, "{spec}: zero finite samples collapse to 0.0");
    }
    // count counts *finite* samples, so it is 0 here too.
    let (v, valid) = collapse_one("a:count", &[f64::NAN, f64::NAN]);
    assert!(valid);
    assert_eq!(v, 0.0);
}
