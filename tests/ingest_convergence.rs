//! Property test for the ingestion tier's convergence guarantee
//! (`docs/INGESTION.md` §5): for random point streams, batch sizes, and
//! thresholds, an [`IngestEngine`] that consumed the stream in small
//! batches and re-partitioned incrementally produces a grid, a partition,
//! and v2 snapshot bytes that are **bit-identical** to a from-scratch
//! batch pipeline run on the accumulated data — at any thread count.
//!
//! Also pins the collapse edge cases the contract calls out (§3): median
//! over even sample counts, single-point cells, and all-NaN attribute
//! samples.
//!
//! `ci.sh` additionally runs this file under `SR_THREADS=1` and
//! `SR_THREADS=4`.

use spatial_repartition::ingest::PointChunk;
use spatial_repartition::prelude::*;
use spatial_repartition::serve::snapshot_to_bytes_v2;
use std::fmt::Write as _;
use std::sync::Arc;

/// Deterministic xorshift64* — the tests must not depend on ambient seed
/// state.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[0, 1)`.
    fn frac(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

const COLLAPSES: [&str; 5] = ["mean", "median", "min", "max", "count"];

/// A random stream: mostly well-formed points over the unit square with a
/// smooth value surface, plus NaN samples, comment lines, and malformed
/// records (which both sides must skip identically).
fn random_stream(rng: &mut Rng, points: usize, p: usize) -> String {
    let mut text = String::from("# synthetic feed\n");
    for i in 0..points {
        if i % 97 == 13 {
            text.push_str("bogus record\n");
        }
        let (x, y) = (rng.frac(), rng.frac());
        write!(text, "{x} {y}").unwrap();
        for k in 0..p {
            if rng.below(20) == 0 {
                text.push_str(" nan");
            } else {
                let v = 50.0 + 40.0 * x + 25.0 * y + (k as f64 + 1.0) * rng.frac();
                write!(text, " {v}").unwrap();
            }
        }
        text.push('\n');
    }
    text
}

/// Parses `text` into chunks of `batch` points each.
fn chunks_of(text: &str, p: usize, batch: usize) -> Vec<PointChunk> {
    let mut reader = StreamReader::new(std::io::Cursor::new(text.to_string()), p);
    let mut chunks = Vec::new();
    loop {
        let mut chunk = PointChunk::with_capacity(batch, p);
        if reader.next_chunk(batch, &mut chunk).unwrap() == 0 {
            break;
        }
        chunks.push(chunk);
    }
    chunks
}

/// Bit-pattern of every attribute plane plus the validity set — grid
/// equality under the convergence contract is *bit* equality.
fn grid_bits(grid: &GridDataset) -> (Vec<u64>, Vec<u32>) {
    let mut bits = Vec::new();
    for k in 0..grid.num_attrs() {
        for id in grid.valid_cells() {
            bits.push(grid.value(id, k).to_bits());
        }
    }
    (bits, grid.valid_cells().collect())
}

/// One random scenario: stream → incremental engine (small batches, a
/// mid-stream re-partition, a final one) vs the batch pipeline (one big
/// bin + a from-scratch driver run) — grids, partitions, IFL, and v2
/// snapshot bytes must all be bit-identical.
fn check_scenario(rng: &mut Rng, pool: &Arc<Pool>) -> Vec<u8> {
    let rows = 4 + rng.below(12) as usize;
    let cols = 4 + rng.below(12) as usize;
    let p = 1 + rng.below(3) as usize;
    let theta = [0.05, 0.1, 0.2][rng.below(3) as usize];
    let points = 200 + rng.below(600) as usize;
    let batch = [7, 33, 128][rng.below(3) as usize];

    let spec = (0..p)
        .map(|k| format!("a{k}:{}", COLLAPSES[rng.below(5) as usize]))
        .collect::<Vec<_>>()
        .join(",");
    let schema = IngestSchema::parse(&spec).unwrap();
    let text = random_stream(rng, points, p);

    // Incremental side: small batches, an exact re-partition mid-stream
    // (so the final one starts from a patched — not fresh — scan cache)
    // and another after the last batch.
    let mut engine = IngestEngine::new(IngestConfig::new(rows, cols, schema, theta)).unwrap();
    let chunks = chunks_of(&text, p, batch);
    let mid = chunks.len() / 2;
    for (i, chunk) in chunks.iter().enumerate() {
        engine.apply_batch(chunk).unwrap();
        if i + 1 == mid {
            engine.repartition_with(pool).unwrap();
        }
    }
    engine.repartition_with(pool).unwrap();

    // Batch side: bin the whole stream in one chunk into a fresh engine's
    // accumulators, then run the driver from scratch with the identical
    // configuration the engine uses.
    let schema = IngestSchema::parse(&spec).unwrap();
    let mut batch_engine = IngestEngine::new(IngestConfig::new(rows, cols, schema, theta)).unwrap();
    let mut whole = PointChunk::with_capacity(points, p);
    let mut reader = StreamReader::new(std::io::Cursor::new(text), p);
    reader.next_chunk(usize::MAX, &mut whole).unwrap();
    batch_engine.apply_batch(&whole).unwrap();

    assert_eq!(
        grid_bits(engine.grid()),
        grid_bits(batch_engine.grid()),
        "accumulated grid must not depend on batch splits"
    );

    let config = RepartitionConfig {
        threshold: theta,
        strategy: IterationStrategy::EveryDistinct,
        ifl_options: IflOptions::default(),
        max_iterations: usize::MAX,
    };
    let batch_outcome = Repartitioner::with_config(config)
        .unwrap()
        .run_with_pool(batch_engine.grid(), pool)
        .unwrap();

    let inc = &engine.last_outcome().unwrap().repartitioned;
    let bat = &batch_outcome.repartitioned;
    assert_eq!(inc.num_groups(), bat.num_groups());
    assert_eq!(inc.ifl().to_bits(), bat.ifl().to_bits());
    assert_eq!(inc.partition().cell_to_group(), bat.partition().cell_to_group());

    let inc_bytes = engine.snapshot_bytes().unwrap();
    let snap = Snapshot::build(bat, batch_engine.grid(), theta).unwrap();
    assert_eq!(inc_bytes, snapshot_to_bytes_v2(&snap), "v2 snapshot bytes must be identical");
    inc_bytes
}

#[test]
fn incremental_converges_to_batch_bit_for_bit() {
    let pool1 = Arc::new(Pool::new(1));
    let pool8 = Arc::new(Pool::new(8));
    for seed in 1..=6u64 {
        // Identical scenario at 1 and 8 worker threads: the partitions
        // must match the batch run *and* each other byte for byte.
        let serial = check_scenario(&mut Rng(0x9E37_79B9 ^ seed), &pool1);
        let threaded = check_scenario(&mut Rng(0x9E37_79B9 ^ seed), &pool8);
        assert_eq!(serial, threaded, "seed {seed}: thread count changed snapshot bytes");
    }
}

/// Builds a single-cell-hit engine over a 2×2 grid and returns cell 0's
/// collapsed value for `spec` after binning `samples` at (0.1, 0.1).
fn collapse_one(spec: &str, samples: &[f64]) -> (f64, bool) {
    let schema = IngestSchema::parse(spec).unwrap();
    let mut engine = IngestEngine::new(IngestConfig::new(2, 2, schema, 0.1)).unwrap();
    let mut chunk = PointChunk::with_capacity(samples.len(), 1);
    for &v in samples {
        chunk.push(0.1, 0.1, &[v]);
    }
    engine.apply_batch(&chunk).unwrap();
    (engine.grid().value(0, 0), engine.grid().is_valid(0))
}

#[test]
fn median_of_even_count_averages_the_middle_order_stats() {
    // sorted: 1, 3, 9, 20 -> (3 + 9) / 2
    let (v, valid) = collapse_one("a:median", &[9.0, 1.0, 20.0, 3.0]);
    assert!(valid);
    assert_eq!(v, 6.0);
    // NaN samples drop out of the order statistics first: 2, 4 -> 3.
    let (v, _) = collapse_one("a:median", &[4.0, f64::NAN, 2.0]);
    assert_eq!(v, 3.0);
}

#[test]
fn single_point_cells_collapse_to_the_sample() {
    for spec in ["a:mean", "a:median", "a:min", "a:max"] {
        let (v, valid) = collapse_one(spec, &[7.25]);
        assert!(valid);
        assert_eq!(v, 7.25, "{spec}");
    }
    let (v, _) = collapse_one("a:count", &[7.25]);
    assert_eq!(v, 1.0);
}

#[test]
fn all_nan_samples_leave_a_valid_cell_with_zero_value() {
    for spec in ["a:mean", "a:median", "a:min", "a:max"] {
        let (v, valid) = collapse_one(spec, &[f64::NAN, f64::NAN]);
        assert!(valid, "{spec}: a binned point makes the cell valid");
        assert_eq!(v, 0.0, "{spec}: zero finite samples collapse to 0.0");
    }
    // count counts *finite* samples, so it is 0 here too.
    let (v, valid) = collapse_one("a:count", &[f64::NAN, f64::NAN]);
    assert!(valid);
    assert_eq!(v, 0.0);
}
