//! Property test for the sharding tier's bit-exactness contract
//! (`docs/SHARDING.md`): for random grids, thresholds, shard counts, and
//! replica counts, every point/window/knn answer from a [`ShardRouter`]
//! is **bit-identical** — values, ordering, knn tie-breaks — to the same
//! query against one unsharded [`QueryEngine`] over the original
//! snapshot, at any thread count.
//!
//! The router takes an explicit [`Pool`] so the serial and 8-thread runs
//! exercise genuinely different fan-out schedules on identical inputs;
//! `ci.sh` additionally runs the whole file under `SR_THREADS=1` and
//! `SR_THREADS=4`.

use spatial_repartition::prelude::*;
use spatial_repartition::serve::QueryBackend;
use spatial_repartition::shard::{write_shards, RouterConfig, ShardRouter, SplitOptions};
use std::path::PathBuf;
use std::sync::Arc;

/// Deterministic xorshift64* — the tests must not depend on ambient seed
/// state.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }

    /// Uniform in `[0, 1)`.
    fn frac(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Bit-pattern key for knn answers: `assert_eq!` on [`NearestGroup`]
/// would wrongly fail on NaN distances (NaN != NaN), while the contract
/// here is *bit*-identity — so compare the raw f64 bits.
fn knn_bits(
    answer: &[spatial_repartition::serve::NearestGroup],
) -> Vec<(u32, u64, u64, u64, Vec<u64>)> {
    answer
        .iter()
        .map(|n| {
            (
                n.group,
                n.lat.to_bits(),
                n.lon.to_bits(),
                n.distance.to_bits(),
                n.values.iter().map(|v| v.to_bits()).collect(),
            )
        })
        .collect()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("sr_shard_prop_{}_{tag}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

/// One random scenario: generate, re-partition, snapshot, shard, and
/// compare the sharded router against the unsharded engine over a
/// query battery that includes outside-the-grid, degenerate, and NaN
/// inputs plus tie-heavy knn queries at the grid center.
fn check_scenario(rng: &mut Rng, pool: &Arc<Pool>, tag: &str) {
    let datasets =
        [Dataset::TaxiUnivariate, Dataset::TaxiMultivariate, Dataset::EarningsMultivariate];
    let dataset = datasets[rng.below(3) as usize];
    let rows = 8 + rng.below(25) as usize;
    let cols = 8 + rng.below(25) as usize;
    let theta = [0.02, 0.05, 0.1, 0.2][rng.below(4) as usize];
    let grid = dataset.generate(GridSize::Custom(rows, cols), rng.next());

    let outcome = repartition(&grid, theta).unwrap();
    let snap = Snapshot::build(&outcome.repartitioned, &grid, theta).unwrap();
    let engine = QueryEngine::new(snap.clone());

    let shards = 1 + rng.below(7) as usize;
    let replicas = 1 + rng.below(2) as usize;
    let dir = temp_dir(tag);
    let manifest = write_shards(&snap, &dir, &SplitOptions { shards, replicas }, pool).unwrap();
    assert_eq!(manifest.shards.len(), shards.min(manifest.groups));

    // Check both serve modes: true scatter-gather (where the merge logic
    // — and therefore the real bit-identity risk — lives) and the
    // default fused fast path.
    for scatter_only in [true, false] {
        let tag = &format!("{tag}_{}", if scatter_only { "scatter" } else { "fused" });
        let config =
            RouterConfig { pool: Some(Arc::clone(pool)), scatter_only, ..RouterConfig::default() };
        let router = ShardRouter::open(dir.join("manifest.txt"), config).unwrap();

        check_queries(rng, &router, &engine, &snap, &manifest, tag);
    }

    std::fs::remove_dir_all(&dir).ok();
}

/// The query battery for one router against the unsharded oracle.
fn check_queries(
    rng: &mut Rng,
    router: &ShardRouter,
    engine: &QueryEngine,
    snap: &Snapshot,
    manifest: &spatial_repartition::shard::ShardManifest,
    tag: &str,
) {
    let b = snap.bounds();
    let lat_span = b.lat_max - b.lat_min;
    let lon_span = b.lon_max - b.lon_min;
    // Sample coordinates from slightly beyond the grid on every side so
    // outside-the-grid routing is always exercised too.
    let lat = |rng: &mut Rng| b.lat_min + (rng.frac() * 1.3 - 0.15) * lat_span;
    let lon = |rng: &mut Rng| b.lon_min + (rng.frac() * 1.3 - 0.15) * lon_span;

    for q in 0..12 {
        let (la, lo) = (lat(rng), lon(rng));
        let got = router.point(la, lo).unwrap();
        assert_eq!(got.value, engine.point(la, lo), "{tag} point #{q} ({la},{lo})");
        assert!(got.missing_shards.is_empty() && !got.stale);
    }
    assert_eq!(router.point(f64::NAN, b.lon_min).unwrap().value, engine.point(f64::NAN, b.lon_min));

    for q in 0..8 {
        let (a0, a1, o0, o1) = (lat(rng), lat(rng), lon(rng), lon(rng));
        let got = router.window(a0, a1, o0, o1).unwrap();
        let want = engine.window(a0, a1, o0, o1);
        assert_eq!(got.value.1, want, "{tag} window #{q} ({a0},{a1},{o0},{o1})");
        assert_eq!(got.value.0, snap.attr_names());
        assert!(got.missing_shards.is_empty());
    }
    // Whole grid, degenerate line, and NaN windows.
    let whole = router.window(b.lat_min, b.lat_max, b.lon_min, b.lon_max).unwrap();
    assert_eq!(whole.value.1, engine.window(b.lat_min, b.lat_max, b.lon_min, b.lon_max));
    let line = router.window(b.lat_min, b.lat_min, b.lon_min, b.lon_max).unwrap();
    assert_eq!(line.value.1, engine.window(b.lat_min, b.lat_min, b.lon_min, b.lon_max));
    let nan = router.window(f64::NAN, b.lat_max, b.lon_min, b.lon_max).unwrap();
    assert_eq!(nan.value.1, engine.window(f64::NAN, b.lat_max, b.lon_min, b.lon_max));

    // knn: small k near shard boundaries, k far past the group count
    // (full ranking), a tie-heavy query at the exact grid center, and a
    // NaN query — tie-break order (ascending group id on equal distance)
    // must survive the k-way merge bit-for-bit.
    let ks = [1usize, 2, 5, 4 * manifest.groups];
    for q in 0..8 {
        let (la, lo) = (lat(rng), lon(rng));
        let k = ks[rng.below(4) as usize];
        let got = router.knn(la, lo, k).unwrap();
        assert_eq!(
            knn_bits(&got.value),
            knn_bits(&engine.knn(la, lo, k)),
            "{tag} knn #{q} k={k} at ({la},{lo})"
        );
        assert!(got.missing_shards.is_empty());
    }
    let (mid_la, mid_lo) = (b.lat_min + lat_span / 2.0, b.lon_min + lon_span / 2.0);
    for k in [1usize, 7, 64] {
        let got = router.knn(mid_la, mid_lo, k).unwrap();
        assert_eq!(
            knn_bits(&got.value),
            knn_bits(&engine.knn(mid_la, mid_lo, k)),
            "{tag} center knn k={k}"
        );
    }
    let got = router.knn(f64::NAN, mid_lo, 5).unwrap();
    assert_eq!(knn_bits(&got.value), knn_bits(&engine.knn(f64::NAN, mid_lo, 5)), "{tag} NaN knn");
    assert!(router.knn(mid_la, mid_lo, 0).unwrap().value.is_empty());
}

fn run_trials(seed: u64, threads: usize, tag: &str) {
    let pool = Arc::new(Pool::new(threads));
    let mut rng = Rng(seed);
    for trial in 0..6 {
        check_scenario(&mut rng, &pool, &format!("{tag}_t{trial}"));
    }
}

#[test]
fn sharded_answers_bit_identical_serial() {
    run_trials(0xA11C_E5EED, 1, "serial");
}

#[test]
fn sharded_answers_bit_identical_eight_threads() {
    run_trials(0xB0B5_EEDED, 8, "par8");
}

/// The two runs above use different seeds on purpose (more coverage);
/// this one pins the *same* scenarios at 1 and 8 threads and checks the
/// routers agree with each other query-for-query — the thread count must
/// be unobservable in answers.
#[test]
fn thread_count_is_unobservable() {
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Custom(20, 20), 7);
    let outcome = repartition(&grid, 0.05).unwrap();
    let snap = Snapshot::build(&outcome.repartitioned, &grid, 0.05).unwrap();
    let dir = temp_dir("threads");
    write_shards(&snap, &dir, &SplitOptions { shards: 5, replicas: 1 }, Pool::global()).unwrap();
    // scatter_only: the fused fast path never touches the pool, so only
    // the scatter fan-out could conceivably observe the thread count.
    let open = |threads: usize| {
        let config = RouterConfig {
            pool: Some(Arc::new(Pool::new(threads))),
            scatter_only: true,
            ..RouterConfig::default()
        };
        ShardRouter::open(dir.join("manifest.txt"), config).unwrap()
    };
    let (serial, par) = (open(1), open(8));
    let b = snap.bounds();
    let mut rng = Rng(0xDEAD_BEEF);
    for _ in 0..10 {
        let la = b.lat_min + rng.frac() * (b.lat_max - b.lat_min);
        let lo = b.lon_min + rng.frac() * (b.lon_max - b.lon_min);
        assert_eq!(serial.point(la, lo).unwrap().value, par.point(la, lo).unwrap().value);
        let w0 = serial.window(b.lat_min, la, b.lon_min, lo).unwrap();
        let w1 = par.window(b.lat_min, la, b.lon_min, lo).unwrap();
        assert_eq!(w0.value, w1.value);
        assert_eq!(
            knn_bits(&serial.knn(la, lo, 9).unwrap().value),
            knn_bits(&par.knn(la, lo, 9).unwrap().value)
        );
    }
    std::fs::remove_dir_all(&dir).ok();
}
