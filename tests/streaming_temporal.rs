//! Integration of the §VI future-work extensions (streaming updates and
//! temporal partition reuse) against the synthetic evaluation datasets.

use spatial_repartition::core::{CellUpdate, StreamingRepartitioner, TemporalRepartitioner};
use spatial_repartition::datasets::{Dataset, GridSize};

#[test]
fn streaming_pipeline_on_taxi_data() {
    let grid = Dataset::TaxiUnivariate.generate(GridSize::Mini, 31);
    let mut stream = StreamingRepartitioner::new(grid, 0.10).unwrap();
    let initial = stream.num_groups();

    // A week of demand updates.
    for day in 0..7u64 {
        let updates: Vec<CellUpdate> = (0..25u64)
            .map(|i| {
                let cell = ((day * 53 + i * 17) % 400) as u32;
                CellUpdate { cell, features: Some(vec![20.0 + (day + i) as f64]) }
            })
            .collect();
        stream.apply(&updates).unwrap();
        // The budget invariant must hold after every batch.
        assert!(stream.ifl() <= stream.threshold() + 1e-12, "day {day}");
    }
    assert!(stream.num_groups() >= initial);

    // Compaction recovers a coarse partition over the mutated grid.
    let (before, after) = stream.compact().unwrap();
    assert!(after <= before);
    assert!(stream.ifl() <= stream.threshold());
}

#[test]
fn temporal_reuse_on_drifting_home_prices() {
    // Simulate quarterly price drift by regenerating with scaled values.
    let base = Dataset::HomeSalesMultivariate.generate(GridSize::Mini, 32);
    let mut t = TemporalRepartitioner::new(0.08).unwrap();

    let first = t.step(&base).unwrap();
    assert!(!first.reused);
    assert!(first.ifl <= 0.08);

    // Quarters: uniform 1.5% appreciation per step keeps relative structure
    // identical, so the partition must be reused.
    let mut current = base.clone();
    for quarter in 0..4 {
        let mut next = current.clone();
        for id in current.valid_cells() {
            let price = current.value(id, 0) * 1.015;
            next.set_value(id, 0, price);
        }
        let out = t.step(&next).unwrap();
        assert!(out.reused, "quarter {quarter} should reuse the partition");
        assert!(out.ifl <= 0.08);
        current = next;
    }
    assert!(t.reuse_rate() >= 0.8);

    // A structural shock (price crash in half the region, scrambling
    // relative differences) must force re-extraction or stay within budget.
    let mut shock = current.clone();
    for id in current.valid_cells() {
        let (r, _) = current.cell_pos(id);
        if r < 10 {
            // Crash scales with position: breaks intra-group homogeneity.
            let f = 0.3 + 0.05 * (id % 7) as f64;
            shock.set_value(id, 0, current.value(id, 0) * f);
        }
    }
    let out = t.step(&shock).unwrap();
    assert!(out.ifl <= 0.08, "post-shock IFL {}", out.ifl);
}

#[test]
fn gal_export_of_group_adjacency_feeds_back() {
    // The §III-B loop: repartition → GAL → reload → same weights structure.
    use spatial_repartition::grid::{read_gal, write_gal};
    let grid = Dataset::EarningsUnivariate.generate(GridSize::Mini, 33);
    let out = spatial_repartition::core::repartition(&grid, 0.10).unwrap();
    let adj = out.repartitioned.adjacency();
    let mut buf = Vec::new();
    write_gal(&adj, &mut buf).unwrap();
    let back = read_gal(&buf[..]).unwrap();
    assert_eq!(back.len(), adj.len());
    assert_eq!(back.total_weight(), adj.total_weight());
    assert!(back.is_symmetric());
}
