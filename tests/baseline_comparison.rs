//! Cross-crate integration of the baseline reducers against the core
//! framework — the fairness protocol of §IV-A3 (matched unit counts) and
//! the loss comparison behind Tables II–IV.

use spatial_repartition::datasets::{Dataset, GridSize};
use spatial_repartition::prelude::*;

/// Builds the three baselines at the re-partitioner's unit count.
fn matched_reductions(
    grid: &GridDataset,
    theta: f64,
) -> (usize, f64, ReducedDataset, ReducedDataset, ReducedDataset) {
    let out = repartition(grid, theta).unwrap();
    let t = out.repartitioned.num_valid_groups();
    let ifl = out.repartitioned.ifl();
    let samp = spatial_sampling(grid, t, 1).unwrap();
    let regi = regionalize(grid, t, 1).unwrap();
    let clus = contiguous_clustering(grid, t).unwrap();
    (t, ifl, samp, regi, clus)
}

#[test]
fn baselines_match_the_repartitioners_unit_count() {
    for ds in [Dataset::TaxiUnivariate, Dataset::HomeSalesMultivariate] {
        let grid = ds.generate(GridSize::Mini, 7);
        let (t, _, samp, regi, clus) = matched_reductions(&grid, 0.10);
        assert_eq!(samp.len(), t, "{}: sampling count", ds.name());
        // Region growing may add singleton islands beyond t when the valid
        // area is disconnected; it must never fall below t.
        assert!(regi.len() >= t, "{}: regionalization count", ds.name());
        assert!(regi.len() <= t + 8, "{}: regionalization overshoot", ds.name());
        assert!(clus.len() >= t, "{}: clustering count", ds.name());
    }
}

#[test]
fn loss_profile_across_reduction_methods() {
    // What the framework guarantees is the θ bound; free-form aggregators
    // (regionalization/clustering) can sometimes achieve lower raw IFL at
    // the same unit count because their regions are not constrained to
    // rectangles. What must hold: (a) the framework's loss respects its
    // budget, (b) the contiguous aggregators all land in the same order of
    // magnitude, and (c) sampling — whose representative for a non-sampled
    // cell is a *different* cell's value — loses the most.
    for ds in [Dataset::TaxiUnivariate, Dataset::VehiclesUnivariate, Dataset::EarningsMultivariate]
    {
        let grid = ds.generate(GridSize::Mini, 8);
        let theta = 0.10;
        let (_, rp_ifl, samp, regi, clus) = matched_reductions(&grid, theta);
        let samp_ifl = samp.information_loss(&grid);
        let regi_ifl = regi.information_loss(&grid);
        let clus_ifl = clus.information_loss(&grid);

        assert!(rp_ifl <= theta + 1e-12, "{}: budget violated", ds.name());
        assert!(
            rp_ifl <= 3.0 * regi_ifl.max(1e-3) && regi_ifl <= 3.0 * rp_ifl.max(1e-3),
            "{}: repartition {rp_ifl} vs regionalization {regi_ifl} out of band",
            ds.name()
        );
        assert!(
            rp_ifl <= 3.0 * clus_ifl.max(1e-3) && clus_ifl <= 3.0 * rp_ifl.max(1e-3),
            "{}: repartition {rp_ifl} vs clustering {clus_ifl} out of band",
            ds.name()
        );
        assert!(
            samp_ifl > rp_ifl,
            "{}: sampling IFL {samp_ifl} should exceed repartitioning {rp_ifl}",
            ds.name()
        );
    }
}

#[test]
fn sampling_breaks_adjacency_aggregators_keep_it() {
    let grid = Dataset::TaxiUnivariate.generate(GridSize::Mini, 9);
    let (t, _, samp, regi, clus) = matched_reductions(&grid, 0.10);

    // Sampling: almost no adjacent sample pairs relative to unit count.
    let samp_degree: usize = (0..samp.len() as u32).map(|u| samp.adjacency.degree(u)).sum();
    // Aggregators: contiguous tilings keep a dense neighbor structure.
    let regi_degree: usize = (0..regi.len() as u32).map(|u| regi.adjacency.degree(u)).sum();
    let clus_degree: usize = (0..clus.len() as u32).map(|u| clus.adjacency.degree(u)).sum();
    assert!(
        samp_degree < regi_degree && samp_degree < clus_degree,
        "sampling ({samp_degree}) should have far fewer edges than regionalization \
         ({regi_degree}) / clustering ({clus_degree}) at t={t}"
    );
}

#[test]
fn every_reduction_covers_all_valid_cells() {
    let mut grid = Dataset::EarningsMultivariate.generate(GridSize::Mini, 10);
    // A few extra nulls to stress the mapping.
    grid.set_null(0);
    grid.set_null(5);
    let (_, _, samp, regi, clus) = matched_reductions(&grid, 0.10);
    for (name, red) in [("sampling", &samp), ("regionalization", &regi), ("clustering", &clus)] {
        for id in 0..grid.num_cells() as u32 {
            let mapped = red.cell_to_unit[id as usize].is_some();
            assert_eq!(
                mapped,
                grid.is_valid(id),
                "{name}: cell {id} mapping disagrees with validity"
            );
        }
        let covered: usize = red.unit_sizes.iter().sum();
        assert_eq!(covered, grid.num_valid_cells(), "{name}: unit sizes");
    }
}

#[test]
fn homogeneous_variant_loses_far_more_than_the_framework() {
    // Table V's story: the naive 2×2 homogeneous merge loses much more
    // information than the similarity-driven framework at a *larger*
    // reduction.
    use spatial_repartition::core::homogeneous_ifl;
    for ds in [Dataset::TaxiMultivariate, Dataset::VehiclesUnivariate] {
        let grid = ds.generate(GridSize::Mini, 11);
        let homog = homogeneous_ifl(&grid, 2, 2).unwrap();
        let framework = repartition(&grid, 0.10).unwrap().repartitioned.ifl();
        assert!(
            homog > framework,
            "{}: homogeneous IFL {homog} should exceed framework IFL {framework}",
            ds.name()
        );
        assert!(homog > 0.10, "{}: homogeneous IFL {homog} suspiciously low", ds.name());
    }
}
