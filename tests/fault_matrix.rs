//! The fault matrix: end-to-end checks of every row in the degradation
//! contract (`docs/ROBUSTNESS.md`), driving the real HTTP server over
//! loopback with deterministic, seeded fault injection.
//!
//! | scenario | expected degradation |
//! |---|---|
//! | request older than its deadline | `503` + `Retry-After`, `shed.deadline_total` |
//! | arrivals past `max_inflight` | `503` + `Retry-After`, `shed.queue_total` |
//! | snapshot replaced by garbage | `200` + `X-SR-Stale: 1`, `stale.serves_total` |
//! | snapshot never loadable (injected read errors) | `503`, `/metrics` still up |
//! | injected handler panics | connection drops, pool survives |
//! | same fault seed, same plan | identical outcome sequence |
//! | one shard replica dead | rotation to the next replica, full answers |
//! | every replica of one shard dead | point `503`s only there; window/knn partial with `X-SR-Partial` |
//! | slow shard vs shard deadline | partial answer, then recovery once cached |
//! | manifest pointing at a corrupt snapshot | brownout of that shard, not blackout |
//!
//! Everything here is hermetic: fault decisions come from a seeded PRNG
//! (`sr-fault`), so the matrix passes bit-identically under `SR_THREADS=1`
//! and `SR_THREADS=4` (`ci.sh` runs both).

use spatial_repartition::prelude::*;
use spatial_repartition::serve::{load_snapshot_with, serve_backend, ReloadPolicy};
use spatial_repartition::shard::{shard_order, RouterConfig, ShardRouter, SplitOptions};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// One GET: returns (status, response head, body). The request is written
/// in full before reading, so only use this when the server will read the
/// request head (shed paths never do — see [`http_read_only`]).
fn http_get(addr: SocketAddr, target: &str) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {target} HTTP/1.1\r\nHost: test\r\nConnection: close\r\n\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    split_response(&response)
}

/// Connects and reads without sending a byte. Shed responses (admission
/// and queue-age deadlines) are written before the server reads anything,
/// and a client that never writes can never hit a TCP reset from the
/// server closing with unread request bytes — this keeps the shed tests
/// deterministic.
fn http_read_only(addr: SocketAddr) -> (u16, String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    split_response(&response)
}

fn split_response(response: &str) -> (u16, String, String) {
    let status: u16 =
        response.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line");
    let (head, body) = response.split_once("\r\n\r\n").expect("header terminator");
    (status, head.to_string(), body.to_string())
}

fn make_snapshot() -> Snapshot {
    let vals: Vec<f64> =
        (0..144).map(|i| 50.0 + (i / 12) as f64 * 0.3 + (i % 12) as f64 * 0.1).collect();
    let grid = GridDataset::univariate(12, 12, vals).unwrap();
    let out = repartition(&grid, 0.05).unwrap();
    Snapshot::build(&out.repartitioned, &grid, 0.05).unwrap()
}

fn temp_snapshot(name: &str) -> (Snapshot, PathBuf) {
    let snap = make_snapshot();
    let path =
        std::env::temp_dir().join(format!("sr_fault_matrix_{}_{name}.snap", std::process::id()));
    save_snapshot(&snap, &path).unwrap();
    (snap, path)
}

#[test]
fn expired_deadline_sheds_with_retry_after() {
    let engine = Arc::new(QueryEngine::new(make_snapshot()));
    let registry = Registry::new();
    let config = ServerConfig {
        threads: 2,
        // A zero deadline has always expired by the time a worker picks
        // the connection up: every request is shed at dequeue,
        // deterministically.
        deadline: Some(Duration::ZERO),
        retry_after: Duration::from_secs(7),
        registry: registry.clone(),
        ..ServerConfig::default()
    };
    let mut handle = serve(engine, "127.0.0.1:0", config).unwrap();
    for _ in 0..3 {
        let (status, head, body) = http_read_only(handle.addr());
        assert_eq!(status, 503, "{body}");
        assert!(head.contains("Retry-After: 7"), "missing Retry-After: {head}");
        assert!(body.contains("deadline exceeded"), "{body}");
    }
    assert_eq!(registry.counter("shed.deadline_total").get(), 3);
    assert_eq!(registry.counter("shed.queue_total").get(), 0);
    assert_eq!(registry.counter("serve.errors_total").get(), 3);
    // Shed requests are never routed: no request line was read, so the
    // request counter must not move.
    assert_eq!(registry.counter("serve.requests_total").get(), 0);
    handle.shutdown();
}

#[test]
fn deadline_expiring_during_head_read_sheds_after_parse() {
    let engine = Arc::new(QueryEngine::new(make_snapshot()));
    let registry = Registry::new();
    let config = ServerConfig {
        threads: 2,
        deadline: Some(Duration::from_millis(20)),
        registry: registry.clone(),
        ..ServerConfig::default()
    };
    let mut handle = serve(engine, "127.0.0.1:0", config).unwrap();
    // Dribble the request: the head completes only after the deadline has
    // passed, so the second deadline check (post-parse) fires.
    let mut stream = TcpStream::connect(handle.addr()).unwrap();
    write!(stream, "GET /stats HTTP/1.1\r\n").unwrap();
    std::thread::sleep(Duration::from_millis(200));
    write!(stream, "\r\n").unwrap();
    let mut response = String::new();
    stream.read_to_string(&mut response).unwrap();
    let (status, head, _) = split_response(&response);
    assert_eq!(status, 503, "{response}");
    assert!(head.contains("Retry-After:"), "{head}");
    assert_eq!(registry.counter("shed.deadline_total").get(), 1);
    handle.shutdown();
}

#[test]
fn admission_bound_sheds_excess_arrivals() {
    let engine = Arc::new(QueryEngine::new(make_snapshot()));
    let registry = Registry::new();
    let config = ServerConfig {
        threads: 1,
        max_inflight: 1,
        read_timeout: Duration::from_secs(2),
        retry_after: Duration::from_secs(1),
        registry: registry.clone(),
        ..ServerConfig::default()
    };
    let mut handle = serve(engine, "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    // Occupy the only admission slot: a connection that sends nothing
    // parks the single worker in its read loop.
    let stall = TcpStream::connect(addr).unwrap();
    std::thread::sleep(Duration::from_millis(150));

    // Every arrival while the slot is held is shed straight from the
    // acceptor.
    for _ in 0..2 {
        let (status, head, body) = http_read_only(addr);
        assert_eq!(status, 503, "{body}");
        assert!(head.contains("Retry-After: 1"), "{head}");
        assert!(body.contains("capacity"), "{body}");
    }
    assert_eq!(registry.counter("shed.queue_total").get(), 2);

    // Release the slot; the server must recover and serve normally.
    drop(stall);
    std::thread::sleep(Duration::from_millis(50));
    let (status, _, body) = http_get(addr, "/stats");
    assert_eq!(status, 200, "{body}");
    assert!(body.contains("\"shed\":{\"queue\":2,\"deadline\":0}"), "{body}");
    handle.shutdown();
}

#[test]
fn corrupt_snapshot_replacement_serves_stale_then_recovers() {
    let (snap, path) = temp_snapshot("stale");
    let registry = Registry::new();
    let cache = Arc::new(SnapshotCache::with_registry(2, &registry));
    let config = ServerConfig { threads: 2, registry: registry.clone(), ..ServerConfig::default() };
    let mut handle = serve_cached(Arc::clone(&cache), &path, 0.05, "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    // Healthy: engine answers, no staleness marker.
    let (status, head, body) = http_get(addr, "/point?lat=0.5&lon=0.5");
    assert_eq!(status, 200, "{body}");
    assert!(!head.contains("X-SR-Stale"), "fresh response marked stale: {head}");

    // Replace the snapshot with garbage, as a botched deploy would. The
    // torn write is detected (magic/CRC), the reload fails after retries,
    // and the last good snapshot keeps answering — flagged stale.
    std::fs::write(&path, b"definitely not an sr-snap file").unwrap();
    let (status, head, body) = http_get(addr, "/point?lat=0.5&lon=0.5");
    assert_eq!(status, 200, "degraded serving must still answer: {body}");
    assert!(head.contains("X-SR-Stale: 1"), "degraded response not marked: {head}");
    assert!(cache.stale_serves() >= 1);
    assert!(cache.reload_failures() >= 1);
    assert_eq!(registry.counter("stale.serves_total").get(), cache.stale_serves());

    // Telemetry stays up while degraded.
    let (status, _, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("stale.serves_total"), "{body}");

    // A good snapshot lands (atomically): the next request is fresh again.
    save_snapshot(&snap, &path).unwrap();
    let (status, head, _) = http_get(addr, "/point?lat=0.5&lon=0.5");
    assert_eq!(status, 200);
    assert!(!head.contains("X-SR-Stale"), "recovered response marked stale: {head}");
    assert!(cache.reloads() >= 1, "recovery must count as a reload");

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn unloadable_snapshot_degrades_engine_endpoints_only() {
    let (_, path) = temp_snapshot("unloadable");
    let registry = Registry::new();
    // Every snapshot read fails: the cache can never load, so engine
    // endpoints answer 503 while /metrics stays up.
    let plan = FaultPlan::parse("seed = 7\nread.error_rate = 1.0\n", &registry).unwrap();
    let cache = Arc::new(SnapshotCache::with_registry(2, &registry).with_fault_plan(plan));
    let config = ServerConfig { threads: 2, registry: registry.clone(), ..ServerConfig::default() };
    let mut handle = serve_cached(Arc::clone(&cache), &path, 0.05, "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    let (status, _, body) = http_get(addr, "/point?lat=0.5&lon=0.5");
    assert_eq!(status, 503, "{body}");
    assert!(body.contains("snapshot unavailable"), "{body}");
    let (status, _, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("serve.snapshot_unavailable_total 1"), "{body}");
    // Each failed resolve retried the load (3 attempts per policy), and
    // every attempt consumed one injected error.
    assert!(registry.counter("fault.injected_errors_total").get() >= 3, "{body}");

    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

#[test]
fn injected_read_latency_slows_loads_but_serves_correctly() {
    let (snap, path) = temp_snapshot("latency");
    let registry = Registry::new();
    let plan = FaultPlan::parse("seed = 11\nread.latency_ms = 2\n", &registry).unwrap();
    let cache = SnapshotCache::with_registry(2, &registry).with_fault_plan(plan.clone());
    let served = cache.get_serve(&path, 0.05).expect("latency never corrupts data");
    assert!(!served.stale);
    assert_eq!(served.engine.to_snapshot(), snap, "loaded through faults must be lossless");
    assert!(plan.injected_latency() >= 1);
    assert_eq!(registry.counter("fault.injected_latency_total").get(), plan.injected_latency());
    std::fs::remove_file(&path).ok();
}

#[test]
fn injected_worker_panics_drop_connections_but_pool_survives() {
    let engine = Arc::new(QueryEngine::new(make_snapshot()));
    let registry = Registry::new();
    let plan = FaultPlan::parse("seed = 3\npanic.rate = 1.0\n", &registry).unwrap();
    let config = ServerConfig {
        threads: 2,
        fault_plan: Some(plan),
        registry: registry.clone(),
        ..ServerConfig::default()
    };
    let mut handle = serve(engine, "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();
    // The panic hook fires after the request head is read, so the client
    // sees a clean close with no response — never a hang, never a torn
    // worker pool.
    for i in 0..3 {
        let mut stream = TcpStream::connect(addr).unwrap();
        write!(stream, "GET /stats HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n").unwrap();
        let mut response = String::new();
        stream.read_to_string(&mut response).unwrap();
        assert!(response.is_empty(), "request {i}: crashed handler must not respond: {response}");
    }
    // Counters are read in-process: with panic.rate = 1.0, a /metrics
    // request would crash too — that is the point of the drill. The
    // recovery count is incremented after the worker drops the stream
    // (which is what the client observes), so give it a moment to land.
    let recovered = registry.counter("serve.panics_recovered_total");
    for _ in 0..100 {
        if recovered.get() == 3 {
            break;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    assert_eq!(recovered.get(), 3);
    assert_eq!(registry.counter("fault.injected_panics_total").get(), 3);
    // Graceful shutdown still drains: the pool lost no workers.
    handle.shutdown();
    assert!(TcpStream::connect(addr).is_err(), "listener should be closed");
}

// ---------------------------------------------------------------------
// Shard-tier scenarios (docs/SHARDING.md): the same degradation contract,
// one level up — replicas rotate, shards brown out, the tier never
// blacks out while any shard still serves.
// ---------------------------------------------------------------------

/// A snapshot with enough surface variation to keep many groups —
/// [`make_snapshot`]'s smooth grid coarsens to a single group, which
/// cannot be cut into shards.
fn make_shardable_snapshot() -> Snapshot {
    let vals: Vec<f64> =
        (0..196).map(|i| 20.0 + (i / 14) as f64 * 0.5 + (i % 14) as f64 * 0.2).collect();
    let grid = GridDataset::univariate(14, 14, vals).unwrap();
    let out = repartition(&grid, 0.05).unwrap();
    Snapshot::build(&out.repartitioned, &grid, 0.05).unwrap()
}

/// Splits [`make_shardable_snapshot`] into a shard deployment under a
/// fresh temp directory and returns `(full snapshot, shard dir)`.
fn temp_shards(name: &str, shards: usize, replicas: usize) -> (Snapshot, PathBuf) {
    let snap = make_shardable_snapshot();
    let dir = std::env::temp_dir().join(format!("sr_fault_shards_{}_{name}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    spatial_repartition::shard::write_shards(
        &snap,
        &dir,
        &SplitOptions { shards, replicas },
        Pool::global(),
    )
    .unwrap();
    (snap, dir)
}

/// Centroid of group `g` — a point guaranteed to route to `g`'s shard.
fn group_centroid(snap: &Snapshot, g: u32) -> (f64, f64) {
    let b = snap.bounds();
    let rect = snap.partition().rect(g);
    let lat_step = (b.lat_max - b.lat_min) / snap.rows() as f64;
    let lon_step = (b.lon_max - b.lon_min) / snap.cols() as f64;
    (
        b.lat_min + (rect.r0 + rect.r1 + 1) as f64 / 2.0 * lat_step,
        b.lon_min + (rect.c0 + rect.c1 + 1) as f64 / 2.0 * lon_step,
    )
}

#[test]
fn dead_replica_rotates_without_degrading() {
    let (_, dir) = temp_shards("rotate", 3, 2);
    // Replica 0 of shard 1 vanishes before the router ever loads it.
    std::fs::remove_file(dir.join("shard1_r0.snap")).unwrap();
    let registry = Registry::new();
    let router_config = RouterConfig {
        registry: registry.clone(),
        reload: ReloadPolicy { attempts: 1, ..ReloadPolicy::default() },
        ..RouterConfig::default()
    };
    let router = ShardRouter::open(dir.join("manifest.txt"), router_config).unwrap();
    let config = ServerConfig { threads: 2, registry: registry.clone(), ..ServerConfig::default() };
    let mut handle = serve_backend(Arc::new(router), "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    // Full answers, no partial marker: replica 1 covers for replica 0.
    let (status, head, body) = http_get(addr, "/window?lat0=0&lat1=1&lon0=0&lon1=1");
    assert_eq!(status, 200, "{body}");
    assert!(!head.contains("X-SR-Partial"), "rotation must not look partial: {head}");
    let (status, _, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"ok\""), "{body}");
    assert!(registry.counter("shard.replica_rotations_total").get() >= 1);
    assert_eq!(registry.counter("shard.brownouts_total").get(), 0);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn browned_out_shard_serves_partial_not_blackout() {
    let (snap, dir) = temp_shards("brownout", 3, 2);
    let manifest = spatial_repartition::shard::load_manifest(dir.join("manifest.txt")).unwrap();
    // Every replica of shard 0 dies: the shard browns out entirely.
    for path in manifest.replica_paths(&dir, 0) {
        std::fs::remove_file(path).unwrap();
    }
    let registry = Registry::new();
    let router_config = RouterConfig {
        registry: registry.clone(),
        reload: ReloadPolicy { attempts: 1, ..ReloadPolicy::default() },
        ..RouterConfig::default()
    };
    let router = ShardRouter::open(dir.join("manifest.txt"), router_config).unwrap();
    let config = ServerConfig { threads: 2, registry: registry.clone(), ..ServerConfig::default() };
    let mut handle = serve_backend(Arc::new(router), "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    // Point queries: 503 only on the dead shard's territory.
    let order = shard_order(snap.partition());
    let (dead_lat, dead_lon) = group_centroid(&snap, order[manifest.shards[0].start]);
    let (status, _, body) = http_get(addr, &format!("/point?lat={dead_lat}&lon={dead_lon}"));
    assert_eq!(status, 503, "{body}");
    let (live_lat, live_lon) = group_centroid(&snap, order[manifest.shards[1].start]);
    let (status, _, body) = http_get(addr, &format!("/point?lat={live_lat}&lon={live_lon}"));
    assert_eq!(status, 200, "{body}");

    // Window and knn answer partially, naming the missing shard.
    let (status, head, body) = http_get(addr, "/window?lat0=0&lat1=1&lon0=0&lon1=1");
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("X-SR-Partial: 0"), "{head}");
    let k = manifest.groups; // forces expansion into every shard
    let (status, head, body) = http_get(addr, &format!("/knn?lat={live_lat}&lon={live_lon}&k={k}"));
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("X-SR-Partial: 0"), "{head}");
    assert!(registry.counter("shard.partial_responses_total").get() >= 2);
    assert!(registry.counter("shard.brownouts_total").get() >= 1);

    // Telemetry and health stay up, reporting the brownout.
    let (status, _, body) = http_get(addr, "/metrics");
    assert_eq!(status, 200);
    assert!(body.contains("shard.brownouts_total"), "{body}");
    let (status, _, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"status\":\"degraded\""), "{body}");
    assert!(body.contains("\"id\":0,\"state\":\"browned_out\""), "{body}");
    let (status, _, body) = http_get(addr, "/stats");
    assert_eq!(status, 200);
    assert!(body.contains("\"shards\":{\"healthy\":2,\"browned_out\":1}"), "{body}");

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn slow_shard_misses_deadline_then_recovers() {
    let (snap, dir) = temp_shards("slow", 2, 1);
    let registry = Registry::new();
    // Every snapshot *read* sleeps well past the shard deadline — but
    // reads only happen on (re)loads; cache hits stay fast.
    let plan = FaultPlan::parse("seed = 5\nread.latency_ms = 120\n", &registry).unwrap();
    let router_config = RouterConfig {
        registry: registry.clone(),
        shard_deadline: Some(Duration::from_millis(60)),
        fault_plan: Some(plan),
        reload: ReloadPolicy { attempts: 1, ..ReloadPolicy::default() },
        ..RouterConfig::default()
    };
    // open() warms every shard without a deadline (slowly, here).
    let router = ShardRouter::open(dir.join("manifest.txt"), router_config).unwrap();
    let config = ServerConfig { threads: 2, registry: registry.clone(), ..ServerConfig::default() };
    let mut handle = serve_backend(Arc::new(router), "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    // Warm caches: full, fast answer.
    let (status, head, body) = http_get(addr, "/window?lat0=0&lat1=1&lon0=0&lon1=1");
    assert_eq!(status, 200, "{body}");
    assert!(!head.contains("X-SR-Partial"), "{head}");

    // Redeploy shard 0 (same content, new mtime): the next request must
    // reload it through the injected 120 ms read latency and blows the
    // 60 ms shard deadline — a partial answer, not a stall.
    std::thread::sleep(Duration::from_millis(30)); // separate mtimes
    let manifest = spatial_repartition::shard::load_manifest(dir.join("manifest.txt")).unwrap();
    let shard0 = &manifest.replica_paths(&dir, 0)[0];
    let bytes = std::fs::read(shard0).unwrap();
    std::fs::write(shard0, &bytes).unwrap();
    let (status, head, body) = http_get(addr, "/window?lat0=0&lat1=1&lon0=0&lon1=1");
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("X-SR-Partial: 0"), "slow reload must degrade to partial: {head}");
    assert!(registry.counter("shard.deadline_misses_total").get() >= 1);

    // The reload finished (and cached) even though the request moved on:
    // the shard is fast — and whole — again.
    let (status, head, body) = http_get(addr, "/window?lat0=0&lat1=1&lon0=0&lon1=1");
    assert_eq!(status, 200, "{body}");
    assert!(!head.contains("X-SR-Partial"), "recovered answer still partial: {head}");

    let _ = snap;
    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn corrupt_shard_snapshot_browns_out_not_blacks_out() {
    let (snap, dir) = temp_shards("corrupt", 3, 1);
    let manifest = spatial_repartition::shard::load_manifest(dir.join("manifest.txt")).unwrap();
    // Shard 1's only replica is garbage from the start (torn deploy): the
    // CRC check rejects it on every load attempt, so the shard can never
    // come up — but the other shards must.
    std::fs::write(&manifest.replica_paths(&dir, 1)[0], b"garbage, not an sr-snap file").unwrap();
    let registry = Registry::new();
    let router_config = RouterConfig {
        registry: registry.clone(),
        reload: ReloadPolicy { attempts: 1, ..ReloadPolicy::default() },
        ..RouterConfig::default()
    };
    let router = ShardRouter::open(dir.join("manifest.txt"), router_config).unwrap();
    let config = ServerConfig { threads: 2, registry: registry.clone(), ..ServerConfig::default() };
    let mut handle = serve_backend(Arc::new(router), "127.0.0.1:0", config).unwrap();
    let addr = handle.addr();

    let order = shard_order(snap.partition());
    let (live_lat, live_lon) = group_centroid(&snap, order[manifest.shards[0].start]);
    let (status, _, body) = http_get(addr, &format!("/point?lat={live_lat}&lon={live_lon}"));
    assert_eq!(status, 200, "{body}");
    let (corrupt_lat, corrupt_lon) = group_centroid(&snap, order[manifest.shards[1].start]);
    let (status, _, body) = http_get(addr, &format!("/point?lat={corrupt_lat}&lon={corrupt_lon}"));
    assert_eq!(status, 503, "{body}");

    let (status, head, body) = http_get(addr, "/window?lat0=0&lat1=1&lon0=0&lon1=1");
    assert_eq!(status, 200, "{body}");
    assert!(head.contains("X-SR-Partial: 1"), "{head}");
    let (status, _, body) = http_get(addr, "/healthz");
    assert_eq!(status, 200);
    assert!(body.contains("\"id\":1,\"state\":\"browned_out\""), "{body}");
    assert!(registry.counter("shard.brownouts_total").get() >= 1);

    handle.shutdown();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fault_outcomes_are_seed_deterministic() {
    let (_, path) = temp_snapshot("determinism");
    // The error decision is drawn once per read() call and a load issues
    // several, so a modest per-call rate still fails a healthy fraction of
    // whole loads. The exact pattern is a pure function of the seed.
    let plan_text = "seed = 99\nread.error_rate = 0.1\n";
    let pattern: Vec<Vec<bool>> = (0..2)
        .map(|_| {
            let plan = FaultPlan::parse(plan_text, &Registry::new()).unwrap();
            (0..32).map(|_| load_snapshot_with(&path, Some(&plan)).is_ok()).collect()
        })
        .collect();
    assert_eq!(pattern[0], pattern[1], "same seed must give the same fault sequence");
    assert!(pattern[0].iter().any(|ok| *ok), "some loads should get through");
    assert!(pattern[0].iter().any(|ok| !*ok), "some loads should fail");
    std::fs::remove_file(&path).ok();
}
