#!/usr/bin/env bash
# Local CI gate: formatting, lints, release build, full test suite.
# Run from the repository root before pushing.
set -euo pipefail
cd "$(dirname "$0")"

export CARGO_NET_OFFLINE=true

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets --offline -- -D warnings

echo "==> cargo build --release"
cargo build --release --offline

# The suite runs twice: serial (SR_THREADS=1) and parallel (SR_THREADS=4).
# Results are identical by contract (docs/PERFORMANCE.md); the two passes
# keep both the serial fast paths and the pool fan-out honest.
echo "==> cargo test -q (SR_THREADS=1)"
SR_THREADS=1 cargo test -q --workspace --offline

echo "==> cargo test -q (SR_THREADS=4)"
SR_THREADS=4 cargo test -q --workspace --offline

# The fault matrix (tests/fault_matrix.rs) drives the real HTTP server
# through every row of the degradation contract (docs/ROBUSTNESS.md) with
# seeded fault injection. It runs inside the workspace passes above; this
# explicit step keeps the contract visible in CI output and pins the
# both-thread-counts requirement even if the workspace invocation changes.
echo "==> fault matrix (SR_THREADS=1)"
SR_THREADS=1 cargo test -q --offline --test fault_matrix

echo "==> fault matrix (SR_THREADS=4)"
SR_THREADS=4 cargo test -q --offline --test fault_matrix

# The shard tier's bit-exactness contract (docs/SHARDING.md): sharded
# point/window/knn answers are bit-identical to the unsharded engine for
# random grids/θ/K, at every thread count. Runs inside the workspace
# passes too; pinned here like the fault matrix.
echo "==> shard property (SR_THREADS=1)"
SR_THREADS=1 cargo test -q --offline --test shard_property

echo "==> shard property (SR_THREADS=4)"
SR_THREADS=4 cargo test -q --offline --test shard_property

# The ingestion tier's convergence guarantee (docs/INGESTION.md §5): an
# engine that consumed a random stream in small batches and re-partitioned
# incrementally is bit-identical — grid, partition, IFL, v2 snapshot
# bytes — to a from-scratch batch pipeline run on the accumulated data.
# Runs inside the workspace passes too; pinned here at both thread counts.
echo "==> ingest convergence (SR_THREADS=1)"
SR_THREADS=1 cargo test -q --offline --test ingest_convergence

echo "==> ingest convergence (SR_THREADS=4)"
SR_THREADS=4 cargo test -q --offline --test ingest_convergence

# The snapshot-format compat suite (crates/sr-serve/tests/prop_v2.rs):
# v1 and v2 files answer every query bit-identically, v1 -> v2 -> v1
# migration is byte-identical, and truncating anywhere / flipping any
# byte of a v2 file is rejected (docs/SNAPSHOT_FORMAT.md). Runs inside
# the workspace passes too; pinned here at both thread counts.
echo "==> snapshot v1/v2 compat (SR_THREADS=1)"
SR_THREADS=1 cargo test -q --offline -p sr-serve --test prop_v2

echo "==> snapshot v1/v2 compat (SR_THREADS=4)"
SR_THREADS=4 cargo test -q --offline -p sr-serve --test prop_v2

# The localized re-partitioning contract (docs/INGESTION.md, "The
# localized walk"): run_localized over any dirty sequence is bit-identical
# to the batch driver's hinted walk on the same inputs, at every thread
# count. The sr-core unit tests and the engine-level property tests in
# ingest_convergence both cover it; pinned here at both thread counts.
echo "==> localized repartition (SR_THREADS=1)"
SR_THREADS=1 cargo test -q --offline -p sr-core localized

echo "==> localized repartition (SR_THREADS=4)"
SR_THREADS=4 cargo test -q --offline -p sr-core localized

# Bench smoke: every bench target builds and runs each body exactly once
# (SR_BENCH_SMOKE=1 skips calibration and suppresses JSON export, so the
# checked-in BENCH_*.json artifacts are untouched). A panic in any bench —
# at either pool budget — fails CI.
for threads in 1 4; do
  echo "==> bench smoke (SR_THREADS=$threads)"
  SR_BENCH_SMOKE=1 SR_THREADS=$threads cargo bench -q -p sr-bench --offline
done

# Bench-threshold gate: the 100k-cell driver must stay under
# SR_GATE_MAX_DRIVER_MS (default 250 ms — sized for the shared 1-vCPU
# reference box; tighten to 120 on dedicated hardware) and a 4-thread
# pool must never be slower than 1 thread by more than
# SR_GATE_MAX_T4_RATIO (default 1.25× — a 1-vCPU box pays a real ~5-10%
# worker-handoff cost; tighten to 1.10 on multicore), and a localized
# 1%-dirty round must stay under SR_GATE_MAX_INCR_MS (default 40 ms).
# Run at both pool budgets so the global-pool path is timed serial and
# fanned out.
for threads in 1 4; do
  echo "==> bench gate (SR_THREADS=$threads)"
  SR_THREADS=$threads cargo run -q --release --offline -p sr-bench --bin bench_gate
done

echo "==> cargo doc --no-deps (warnings denied)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace --offline --quiet

echo "==> cargo test --doc"
cargo test -q --workspace --offline --doc

echo "ci: all green"
