//! Offline stand-in for the `proptest` crate.
//!
//! The build container cannot reach crates.io, so this local path crate
//! re-implements the subset of proptest the workspace's property tests rely
//! on: the [`proptest!`] macro, [`strategy::Strategy`] with `prop_map` /
//! `prop_flat_map`, range and tuple strategies, [`strategy::Just`],
//! `prop::collection::{vec, hash_set}`, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, and [`test_runner::ProptestConfig`].
//!
//! Differences from real proptest, deliberate for a hermetic test
//! environment:
//!
//! - **No shrinking.** A failing case reports its test name, case index,
//!   and message; re-running is deterministic (seeds derive from the test
//!   name and case index), so failures reproduce exactly.
//! - **Rejection via `prop_assume!`** skips the case without counting it
//!   against the case budget, up to a global rejection cap.

pub mod collection;
pub mod strategy;
pub mod test_runner;

/// Mirror of proptest's `prop` facade module (`prop::collection::vec`).
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface the tests use: `use proptest::prelude::*;`.
pub mod prelude {
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{ProptestConfig, TestCaseError, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` that runs `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::proptest!(@with_config ($config) $($rest)*);
    };
    (@with_config ($config:expr) $($(#[$meta:meta])* fn $name:ident ($($pat:pat in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::ProptestConfig = $config;
                let mut rejected: u32 = 0;
                let mut case: u64 = 0;
                let mut passed: u32 = 0;
                while passed < config.cases {
                    let mut __proptest_rng = $crate::test_runner::TestRng::for_case(stringify!($name), case);
                    case += 1;
                    $(let $pat = $crate::strategy::Strategy::generate_value(&($strat), &mut __proptest_rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (move || { $body; ::std::result::Result::Ok(()) })();
                    match outcome {
                        Ok(()) => passed += 1,
                        Err($crate::test_runner::TestCaseError::Reject) => {
                            rejected += 1;
                            if rejected > config.max_global_rejects {
                                panic!(
                                    "proptest '{}': too many prop_assume! rejections ({rejected})",
                                    stringify!($name)
                                );
                            }
                        }
                        Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest '{}' failed at case {} (deterministic; re-run reproduces): {msg}",
                                stringify!($name),
                                case - 1
                            );
                        }
                    }
                }
            }
        )*
    };
    ($($rest:tt)*) => {
        $crate::proptest!(@with_config ($crate::test_runner::ProptestConfig::default()) $($rest)*);
    };
}

/// Fails the current case with a message when the condition is false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fails the current case when the two expressions are unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                    stringify!($left), stringify!($right), l, r
                );
            }
        }
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        match (&$left, &$right) {
            (l, r) => {
                if !(*l == *r) {
                    return ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(
                        format!(
                            "{}\n  left: {:?}\n right: {:?}",
                            format!($($fmt)+), l, r
                        ),
                    ));
                }
            }
        }
    };
}

/// Fails the current case when the two expressions are equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {
        match (&$left, &$right) {
            (l, r) => {
                $crate::prop_assert!(
                    !(*l == *r),
                    "assertion failed: {} != {}\n  both: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l
                );
            }
        }
    };
}

/// Skips the current case (does not count toward the case budget) when the
/// condition is false.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject);
        }
    };
}
