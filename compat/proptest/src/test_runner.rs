//! Test-run configuration, the per-case RNG, and case outcomes.

use rand::rngs::SmallRng;
use rand::{RngCore, SeedableRng};

/// Configuration accepted by `#![proptest_config(...)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of passing cases required per test.
    pub cases: u32,
    /// Cap on total `prop_assume!` rejections before the test aborts.
    pub max_global_rejects: u32,
}

impl ProptestConfig {
    /// Config with an explicit case count.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases, ..ProptestConfig::default() }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 64, max_global_rejects: 4_096 }
    }
}

/// Outcome of one generated case, produced by the assertion macros.
#[derive(Debug)]
pub enum TestCaseError {
    /// The case failed; the string is the assertion message.
    Fail(String),
    /// `prop_assume!` rejected the inputs; try another case.
    Reject,
}

/// Deterministic per-case RNG: the stream is a function of the test name
/// and case index only, so failures reproduce across runs and machines.
#[derive(Debug, Clone)]
pub struct TestRng {
    inner: SmallRng,
}

impl TestRng {
    /// RNG for case `case` of the test named `name`.
    pub fn for_case(name: &str, case: u64) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { inner: SmallRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15)) }
    }
}

impl RngCore for TestRng {
    fn next_u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}
