//! The [`Strategy`] trait and its combinators.
//!
//! A strategy is a recipe for generating random values of one type. Unlike
//! real proptest there is no value tree / shrinking: `generate_value` draws
//! directly from the test RNG.

use crate::test_runner::TestRng;
use rand::Rng;

/// A generator of random values for property tests.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;

    /// Draws one value.
    fn generate_value(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }

    /// Generates a value, then generates from the strategy `f` builds from
    /// it (dependent generation).
    fn prop_flat_map<S: Strategy, F: Fn(Self::Value) -> S>(self, f: F) -> FlatMap<Self, F>
    where
        Self: Sized,
    {
        FlatMap { inner: self, f }
    }

    /// Regenerates until `f` accepts the value (bounded retries).
    fn prop_filter<F: Fn(&Self::Value) -> bool>(self, whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
    {
        Filter { inner: self, whence, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate_value(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate_value(rng)
    }
}

/// Strategy producing one fixed value (cloned per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate_value(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate_value(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate_value(rng))
    }
}

/// See [`Strategy::prop_flat_map`].
pub struct FlatMap<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
    type Value = S2::Value;
    fn generate_value(&self, rng: &mut TestRng) -> Self::Value {
        (self.f)(self.inner.generate_value(rng)).generate_value(rng)
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    f: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate_value(&self, rng: &mut TestRng) -> Self::Value {
        for _ in 0..1_000 {
            let v = self.inner.generate_value(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter '{}' rejected 1000 candidates in a row", self.whence);
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for std::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for std::ops::Range<$t> {
            type Value = $t;
            fn generate_value(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_float_range_strategy!(f64, f32);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate_value(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate_value(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F2);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn ranges_and_combinators_generate_in_domain() {
        let mut rng = TestRng::for_case("strategy_unit", 0);
        for case in 0..200u64 {
            let mut rng2 = TestRng::for_case("strategy_unit", case);
            let v = (1usize..5).generate_value(&mut rng2);
            assert!((1..5).contains(&v));
            let (a, b) = (0.0f64..1.0, 10i32..20).generate_value(&mut rng2);
            assert!((0.0..1.0).contains(&a) && (10..20).contains(&b));
            let m = (0usize..3).prop_map(|x| x * 2).generate_value(&mut rng2);
            assert!(m % 2 == 0 && m < 6);
            let fm = (1usize..4).prop_flat_map(|n| (Just(n), 0usize..n)).generate_value(&mut rng2);
            assert!(fm.1 < fm.0);
        }
        assert_eq!(Just(41).generate_value(&mut rng), 41);
    }
}
