//! Collection strategies: `vec` and `hash_set`.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use rand::Rng;
use std::collections::HashSet;
use std::hash::Hash;

/// A collection size: fixed or drawn from a range per case.
#[derive(Debug, Clone)]
pub enum SizeRange {
    /// Exactly this many elements.
    Fixed(usize),
    /// Uniform in `[lo, hi)`.
    Between(usize, usize),
}

impl SizeRange {
    fn draw(&self, rng: &mut TestRng) -> usize {
        match *self {
            SizeRange::Fixed(n) => n,
            SizeRange::Between(lo, hi) => rng.gen_range(lo..hi),
        }
    }

    fn max(&self) -> usize {
        match *self {
            SizeRange::Fixed(n) => n,
            SizeRange::Between(_, hi) => hi,
        }
    }
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange::Fixed(n)
    }
}

impl From<std::ops::Range<usize>> for SizeRange {
    fn from(r: std::ops::Range<usize>) -> Self {
        SizeRange::Between(r.start, r.end)
    }
}

/// Strategy for `Vec<T>` with element strategy `element` and the given size.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy { element, size: size.into() }
}

/// See [`vec()`].
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        (0..n).map(|_| self.element.generate_value(rng)).collect()
    }
}

/// Strategy for `HashSet<T>`; duplicates are regenerated (bounded retries),
/// so the set size may fall below the drawn target when the element domain
/// is small.
pub fn hash_set<S>(element: S, size: impl Into<SizeRange>) -> HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    HashSetStrategy { element, size: size.into() }
}

/// See [`hash_set`].
pub struct HashSetStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S> Strategy for HashSetStrategy<S>
where
    S: Strategy,
    S::Value: Eq + Hash,
{
    type Value = HashSet<S::Value>;
    fn generate_value(&self, rng: &mut TestRng) -> Self::Value {
        let n = self.size.draw(rng);
        let mut out = HashSet::with_capacity(n);
        let mut attempts = 0usize;
        let budget = (self.size.max() + 1) * 20;
        while out.len() < n && attempts < budget {
            out.insert(self.element.generate_value(rng));
            attempts += 1;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn vec_respects_fixed_and_ranged_sizes() {
        for case in 0..100u64 {
            let mut rng = TestRng::for_case("collection_unit", case);
            let v = vec(0.0f64..1.0, 7).generate_value(&mut rng);
            assert_eq!(v.len(), 7);
            let w = vec(0usize..10, 2..6).generate_value(&mut rng);
            assert!((2..6).contains(&w.len()));
            let s = hash_set((0i32..50, 0i32..50), 3..8).generate_value(&mut rng);
            assert!(s.len() < 8);
        }
    }
}
