//! Sequence helpers: the `SliceRandom` extension trait.

use crate::{RngCore, SampleRange};

/// Random operations on slices (Fisher–Yates shuffle, uniform choice).
pub trait SliceRandom {
    /// Element type of the sequence.
    type Item;

    /// Uniform in-place permutation.
    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

    /// Uniformly chosen element, `None` when empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
        for i in (1..self.len()).rev() {
            let j = (0..=i).sample_from(rng);
            self.swap(i, j);
        }
    }

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            Some(&self[(0..self.len()).sample_from(rng)])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;
    use crate::SeedableRng;

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the identity order");
    }

    #[test]
    fn choose_stays_in_slice() {
        let mut rng = SmallRng::seed_from_u64(12);
        let v = [5, 7, 9];
        for _ in 0..100 {
            assert!(v.contains(v.choose(&mut rng).unwrap()));
        }
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
