//! Offline stand-in for the `rand` crate.
//!
//! The build container has no access to crates.io, so the workspace vendors
//! the narrow slice of the rand 0.8 API it actually uses as a local path
//! dependency: [`rngs::SmallRng`] (xoshiro256++ seeded via SplitMix64),
//! the [`Rng`] extension trait (`gen`, `gen_range`, `gen_bool`),
//! [`SeedableRng::seed_from_u64`], and [`seq::SliceRandom`]
//! (`shuffle`/`choose`). Integer ranges are sampled without modulo bias
//! (Lemire's widening-multiply rejection method); float ranges use the
//! standard 53-bit mantissa construction, matching rand's `Standard`
//! distribution semantics closely enough for the statistical tests in this
//! workspace (which only assume uniformity, not rand's exact streams).

pub mod rngs;
pub mod seq;

pub use rngs::SmallRng;

/// Minimal core RNG interface: everything derives from `next_u64`.
pub trait RngCore {
    /// Next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Next 32 uniformly random bits (high half of `next_u64`).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of RNGs from seeds. Only the `seed_from_u64` entry point is
/// used in this workspace.
pub trait SeedableRng: Sized {
    /// Deterministically derives a full RNG state from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Types that can be sampled uniformly over their whole domain via
/// [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Range types [`Rng::gen_range`] accepts for a given output type.
pub trait SampleRange<T> {
    /// Draws one value inside the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Unbiased integer in `[0, span)` via Lemire's widening-multiply method.
fn uniform_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    let mut m = (rng.next_u64() as u128) * (span as u128);
    let mut lo = m as u64;
    if lo < span {
        let threshold = span.wrapping_neg() % span;
        while lo < threshold {
            m = (rng.next_u64() as u128) * (span as u128);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                let off = uniform_below(rng, span);
                ((self.start as i128) + off as i128) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "gen_range: empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                // Full-domain inclusive ranges (span 2^64) are not used here.
                let off = uniform_below(rng, span);
                ((lo as i128) + off as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, u16, u8, isize, i64, i32, i16, i8);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let u = f64::sample_standard(rng) as $t;
                self.start + u * (self.end - self.start)
            }
        }
    )*};
}

impl_float_range!(f64, f32);

/// The user-facing extension trait, blanket-implemented for every core RNG.
pub trait Rng: RngCore {
    /// Uniform sample over the full domain of `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    /// Uniform sample inside `range`.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Bernoulli draw with success probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::SmallRng;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(8);
        assert_ne!(SmallRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = rng.gen_range(3usize..12);
            assert!((3..12).contains(&v));
            let f = rng.gen_range(-0.5f64..0.5);
            assert!((-0.5..0.5).contains(&f));
            let i = rng.gen_range(-100i32..100);
            assert!((-100..100).contains(&i));
        }
    }

    #[test]
    fn gen_range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(2);
        let mut counts = [0usize; 8];
        for _ in 0..80_000 {
            counts[rng.gen_range(0usize..8)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "count {c}");
        }
    }

    #[test]
    fn float_standard_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v: f64 = f64::sample_standard(&mut rng);
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        assert!((sum / 10_000.0 - 0.5).abs() < 0.02);
    }
}
