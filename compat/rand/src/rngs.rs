//! Concrete RNGs: `SmallRng` (xoshiro256++) and its `StdRng` alias.

use crate::{RngCore, SeedableRng};

/// A small, fast, non-cryptographic RNG — xoshiro256++ (Blackman & Vigna),
/// the same family rand 0.8's `SmallRng` uses on 64-bit targets.
#[derive(Debug, Clone)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    fn from_state(mut sm: u64) -> Self {
        // SplitMix64 stream expands the 64-bit seed into the 256-bit state;
        // this is the canonical seeding procedure for the xoshiro family.
        let mut next = || {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = sm;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        };
        let s = [next(), next(), next(), next()];
        SmallRng { s }
    }
}

impl SeedableRng for SmallRng {
    fn seed_from_u64(seed: u64) -> Self {
        SmallRng::from_state(seed)
    }
}

impl RngCore for SmallRng {
    fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }
}

/// The workspace never relies on `StdRng`'s cryptographic strength, so the
/// alias points at the same xoshiro generator.
pub type StdRng = SmallRng;
