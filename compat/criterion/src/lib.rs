//! Offline stand-in for the `criterion` crate.
//!
//! The build container cannot reach crates.io, so this local path crate
//! provides the criterion API surface the workspace's benches use:
//! [`Criterion::bench_function`], [`Criterion::benchmark_group`] with
//! `sample_size` / `bench_function` / `bench_with_input` / `finish`,
//! [`BenchmarkId`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up briefly, then runs
//! `sample_size` timed samples, each sized so one sample takes roughly
//! `measurement_time / sample_size`; the reported per-iteration time is the
//! median sample. No plots, no statistical regression — but results are
//! recorded in the [`Criterion`] instance and can be dumped with
//! [`Criterion::export_json`], which the workspace's harnesses use to write
//! `BENCH_*.json` artifacts.
//!
//! Setting `SR_BENCH_SMOKE=1` switches every bench to smoke mode: each
//! closure runs exactly once with no warm-up or calibration, and
//! [`Criterion::export_json`] becomes a no-op so checked-in `BENCH_*.json`
//! artifacts are never clobbered by a smoke run. CI uses this to prove the
//! benches still build and execute without paying measurement time.

use std::fmt::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// True when `SR_BENCH_SMOKE` is set (and not `0`): run each bench body
/// once, skip calibration, and suppress JSON export.
fn smoke_mode() -> bool {
    std::env::var_os("SR_BENCH_SMOKE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// Identifier of one benchmark inside a group: `function_id/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Benchmark id from a function name and a displayable parameter.
    pub fn new(function_id: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: format!("{}/{parameter}", function_id.into()) }
    }

    /// Id from just a parameter (criterion parity).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

/// One completed measurement.
#[derive(Debug, Clone)]
pub struct BenchResult {
    /// Full benchmark id (`group/function/parameter`).
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub ns_per_iter: f64,
    /// Total iterations executed across timed samples.
    pub iterations: u64,
    /// Number of timed samples.
    pub samples: usize,
}

/// Passed to benchmark closures; [`Bencher::iter`] runs the measurement.
pub struct Bencher<'a> {
    samples: usize,
    measurement_time: Duration,
    smoke: bool,
    result: &'a mut Option<(f64, u64)>,
}

impl Bencher<'_> {
    /// Measures `f`, storing the median per-iteration nanoseconds.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.smoke {
            let start = Instant::now();
            black_box(f());
            *self.result = Some((start.elapsed().as_nanos() as f64, 1));
            return;
        }
        // Warm-up & calibration: find an iteration count whose sample time
        // is comfortably measurable.
        let mut calib_iters: u64 = 1;
        let per_iter_ns = loop {
            let start = Instant::now();
            for _ in 0..calib_iters {
                black_box(f());
            }
            let elapsed = start.elapsed();
            if elapsed >= Duration::from_millis(2) || calib_iters >= 1 << 24 {
                break (elapsed.as_nanos() as f64 / calib_iters as f64).max(0.1);
            }
            calib_iters *= 4;
        };

        let per_sample_ns = self.measurement_time.as_nanos() as f64 / self.samples.max(1) as f64;
        let iters_per_sample = ((per_sample_ns / per_iter_ns).ceil() as u64).clamp(1, 1 << 24);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..iters_per_sample {
                black_box(f());
            }
            samples_ns.push(start.elapsed().as_nanos() as f64 / iters_per_sample as f64);
            total_iters += iters_per_sample;
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        *self.result = Some((median, total_iters));
    }

    /// Criterion-parity custom measurement: `f` receives an iteration
    /// count, runs that many iterations, and returns only the time it
    /// chooses to count — letting per-iteration setup (input mutation,
    /// cache patching) happen inside the closure without being timed.
    /// Calibration and sampling mirror [`Bencher::iter`], driven by the
    /// durations `f` reports.
    pub fn iter_custom<F: FnMut(u64) -> Duration>(&mut self, mut f: F) {
        if self.smoke {
            let elapsed = f(1);
            *self.result = Some((elapsed.as_nanos() as f64, 1));
            return;
        }
        let mut calib_iters: u64 = 1;
        let per_iter_ns = loop {
            let elapsed = f(calib_iters);
            if elapsed >= Duration::from_millis(2) || calib_iters >= 1 << 24 {
                break (elapsed.as_nanos() as f64 / calib_iters as f64).max(0.1);
            }
            calib_iters *= 4;
        };

        let per_sample_ns = self.measurement_time.as_nanos() as f64 / self.samples.max(1) as f64;
        let iters_per_sample = ((per_sample_ns / per_iter_ns).ceil() as u64).clamp(1, 1 << 24);

        let mut samples_ns: Vec<f64> = Vec::with_capacity(self.samples);
        let mut total_iters = 0u64;
        for _ in 0..self.samples {
            let elapsed = f(iters_per_sample);
            samples_ns.push(elapsed.as_nanos() as f64 / iters_per_sample as f64);
            total_iters += iters_per_sample;
        }
        samples_ns.sort_by(|a, b| a.total_cmp(b));
        let median = samples_ns[samples_ns.len() / 2];
        *self.result = Some((median, total_iters));
    }
}

/// The top-level benchmark driver.
pub struct Criterion {
    results: Vec<BenchResult>,
    default_sample_size: usize,
    default_measurement_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            results: Vec::new(),
            default_sample_size: 20,
            default_measurement_time: Duration::from_millis(600),
        }
    }
}

impl Criterion {
    /// Criterion-parity no-op (CLI args are ignored in the stand-in).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let (sample_size, measurement_time) =
            (self.default_sample_size, self.default_measurement_time);
        self.run_one(id.to_string(), sample_size, measurement_time, f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: None,
            measurement_time: None,
        }
    }

    /// All results measured so far, in execution order.
    pub fn results(&self) -> &[BenchResult] {
        &self.results
    }

    /// Writes the collected results as a JSON array to `path`. A no-op in
    /// smoke mode: one-shot timings would overwrite real measurements.
    pub fn export_json(&self, path: impl AsRef<std::path::Path>) -> std::io::Result<()> {
        if smoke_mode() {
            println!("smoke mode: skipping export to {}", path.as_ref().display());
            return Ok(());
        }
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let _ = write!(
                out,
                "  {{\"id\": \"{}\", \"ns_per_iter\": {:.1}, \"iters_per_sec\": {:.1}, \"iterations\": {}, \"samples\": {}}}",
                r.id.replace('"', "'"),
                r.ns_per_iter,
                1e9 / r.ns_per_iter,
                r.iterations,
                r.samples
            );
            out.push_str(if i + 1 < self.results.len() { ",\n" } else { "\n" });
        }
        out.push_str("]\n");
        std::fs::write(path, out)
    }

    fn run_one<F: FnMut(&mut Bencher)>(
        &mut self,
        id: String,
        samples: usize,
        measurement_time: Duration,
        mut f: F,
    ) {
        let mut result: Option<(f64, u64)> = None;
        let mut bencher =
            Bencher { samples, measurement_time, smoke: smoke_mode(), result: &mut result };
        f(&mut bencher);
        let (ns_per_iter, iterations) = result.unwrap_or((f64::NAN, 0));
        println!("{id:<56} {:>14} /iter", format_ns(ns_per_iter));
        self.results.push(BenchResult { id, ns_per_iter, iterations, samples });
    }
}

/// A group of benchmarks sharing a name prefix and sampling settings.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: Option<usize>,
    measurement_time: Option<Duration>,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = Some(n);
        self
    }

    /// Sets the target total measurement time per benchmark.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.measurement_time = Some(d);
        self
    }

    /// Runs one benchmark in this group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl Into<BenchmarkId>,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id.into().id);
        let samples = self.sample_size.unwrap_or(self.criterion.default_sample_size);
        let time = self.measurement_time.unwrap_or(self.criterion.default_measurement_time);
        self.criterion.run_one(full, samples, time, f);
        self
    }

    /// Runs one parameterized benchmark in this group.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        self.bench_function(id, |b| f(b, input))
    }

    /// Criterion-parity group terminator (results are already recorded).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if !ns.is_finite() {
        "n/a".to_string()
    } else if ns < 1_000.0 {
        format!("{ns:.1} ns")
    } else if ns < 1_000_000.0 {
        format!("{:.2} µs", ns / 1_000.0)
    } else if ns < 1_000_000_000.0 {
        format!("{:.2} ms", ns / 1_000_000.0)
    } else {
        format!("{:.3} s", ns / 1_000_000_000.0)
    }
}

/// Bundles benchmark functions under one name, criterion-style.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        let mut c = Criterion {
            default_sample_size: 5,
            default_measurement_time: Duration::from_millis(10),
            ..Criterion::default()
        };
        c.bench_function("spin", |b| b.iter(|| (0..100u64).sum::<u64>()));
        {
            let mut g = c.benchmark_group("grp");
            g.sample_size(3);
            g.bench_with_input(BenchmarkId::new("param", 42), &42u64, |b, &n| {
                b.iter(|| (0..n).product::<u64>())
            });
            g.finish();
        }
        c.bench_function("custom", |b| {
            b.iter_custom(|iters| {
                let start = Instant::now();
                for _ in 0..iters {
                    black_box((0..100u64).sum::<u64>());
                }
                start.elapsed()
            })
        });
        assert_eq!(c.results().len(), 3);
        assert_eq!(c.results()[1].id, "grp/param/42");
        assert!(c.results()[2].ns_per_iter > 0.0);
        assert!(c.results()[0].ns_per_iter > 0.0);
        let path = std::env::temp_dir().join("criterion_stub_test.json");
        c.export_json(&path).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        assert!(text.contains("\"id\": \"spin\""));
        let _ = std::fs::remove_file(&path);
    }
}
