//! Spatial sampling baseline (Guo et al. \[9\]).
//!
//! Selects `t` individual cells such that selected cells keep a minimum
//! pairwise distance (spread maximization), via a seeded random-order
//! greedy pass over a spatial hash; if the distance constraint leaves the
//! quota unfilled, the remainder is topped up randomly. Each sample keeps
//! its own feature vector — no aggregation — and the sample set's rook
//! adjacency is almost everywhere empty, which is precisely the property
//! the paper blames for sampling's weak spatial-model accuracy.

use crate::reduced::ReducedDataset;
use crate::{BaselineError, Result};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sr_grid::{AdjacencyList, CellId, GridDataset};

/// Reduces `grid` to `t` sampled cells. Deterministic in `seed`.
pub fn spatial_sampling(grid: &GridDataset, t: usize, seed: u64) -> Result<ReducedDataset> {
    let valid: Vec<CellId> = grid.valid_cells().collect();
    if valid.is_empty() {
        return Err(BaselineError::EmptyGrid);
    }
    if t == 0 || t > valid.len() {
        return Err(BaselineError::InvalidTarget { requested: t, available: valid.len() });
    }

    let rows = grid.rows();
    let cols = grid.cols();
    // Minimum separation targeting an even spread of t points over the
    // valid area (in cell units), shrunk slightly so the greedy pass can
    // usually reach the quota on its own.
    let min_dist = (valid.len() as f64 / t as f64).sqrt() * 0.75;
    let min_dist2 = min_dist * min_dist;
    let bucket = min_dist.ceil().max(1.0) as usize;
    let b_rows = rows.div_ceil(bucket);
    let b_cols = cols.div_ceil(bucket);
    let mut buckets: Vec<Vec<(usize, usize, u32)>> = vec![Vec::new(); b_rows * b_cols];

    let mut order = valid.clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    order.shuffle(&mut rng);

    let mut selected: Vec<CellId> = Vec::with_capacity(t);
    let mut rejected: Vec<CellId> = Vec::new();
    for &cell in &order {
        if selected.len() == t {
            break;
        }
        let (r, c) = grid.cell_pos(cell);
        let (br, bc) = (r / bucket, c / bucket);
        let mut ok = true;
        'scan: for dr in br.saturating_sub(1)..=(br + 1).min(b_rows - 1) {
            for dc in bc.saturating_sub(1)..=(bc + 1).min(b_cols - 1) {
                for &(sr, sc, _) in &buckets[dr * b_cols + dc] {
                    let dy = sr as f64 - r as f64;
                    let dx = sc as f64 - c as f64;
                    if dy * dy + dx * dx < min_dist2 {
                        ok = false;
                        break 'scan;
                    }
                }
            }
        }
        if ok {
            buckets[br * b_cols + bc].push((r, c, selected.len() as u32));
            selected.push(cell);
        } else {
            rejected.push(cell);
        }
    }
    // Top up from the rejected pool (random order preserved).
    for &cell in &rejected {
        if selected.len() == t {
            break;
        }
        selected.push(cell);
    }

    // Unit features: the sampled cells' own feature vectors.
    let features: Vec<Vec<f64>> =
        selected.iter().map(|&c| grid.features_unchecked(c).to_vec()).collect();
    let centroids: Vec<(f64, f64)> = selected.iter().map(|&c| grid.cell_centroid(c)).collect();

    // Rook adjacency among samples (sparse by construction).
    let mut sample_at = vec![u32::MAX; rows * cols];
    for (u, &c) in selected.iter().enumerate() {
        sample_at[c as usize] = u as u32;
    }
    let mut neighbors = vec![Vec::new(); selected.len()];
    for (u, &c) in selected.iter().enumerate() {
        let (r, cc) = grid.cell_pos(c);
        let mut probe = |rr: isize, ccc: isize| {
            if rr >= 0 && (rr as usize) < rows && ccc >= 0 && (ccc as usize) < cols {
                let v = sample_at[rr as usize * cols + ccc as usize];
                if v != u32::MAX {
                    neighbors[u].push(v);
                }
            }
        };
        probe(r as isize - 1, cc as isize);
        probe(r as isize + 1, cc as isize);
        probe(r as isize, cc as isize - 1);
        probe(r as isize, cc as isize + 1);
    }

    // Every valid cell maps to its nearest sample (bucketed ring search).
    let cell_to_unit = nearest_sample_map(grid, &selected);
    let mut unit_sizes = vec![0usize; selected.len()];
    for u in cell_to_unit.iter().flatten() {
        unit_sizes[*u as usize] += 1;
    }

    Ok(ReducedDataset {
        agg_counts: vec![1; selected.len()],
        features,
        centroids,
        adjacency: AdjacencyList::from_neighbors(neighbors),
        cell_to_unit,
        unit_sizes,
    })
}

/// Maps every valid cell to its nearest sample using an expanding ring
/// search over a bucket grid (O(cells · ring) in practice).
fn nearest_sample_map(grid: &GridDataset, selected: &[CellId]) -> Vec<Option<u32>> {
    let rows = grid.rows();
    let cols = grid.cols();
    let bucket = ((rows * cols) as f64 / selected.len() as f64).sqrt().ceil() as usize;
    let bucket = bucket.max(1);
    let b_rows = rows.div_ceil(bucket);
    let b_cols = cols.div_ceil(bucket);
    let mut buckets: Vec<Vec<(usize, usize, u32)>> = vec![Vec::new(); b_rows * b_cols];
    for (u, &c) in selected.iter().enumerate() {
        let (r, cc) = grid.cell_pos(c);
        buckets[(r / bucket) * b_cols + cc / bucket].push((r, cc, u as u32));
    }

    let mut out = vec![None; rows * cols];
    for cell in grid.valid_cells() {
        let (r, c) = grid.cell_pos(cell);
        let (br, bc) = (r / bucket, c / bucket);
        let mut best: Option<(f64, u32)> = None;
        let mut ring = 0usize;
        loop {
            let r_lo = br.saturating_sub(ring);
            let r_hi = (br + ring).min(b_rows - 1);
            let c_lo = bc.saturating_sub(ring);
            let c_hi = (bc + ring).min(b_cols - 1);
            for dr in r_lo..=r_hi {
                for dc in c_lo..=c_hi {
                    // Only the new ring's boundary buckets.
                    if ring > 0 && dr != r_lo && dr != r_hi && dc != c_lo && dc != c_hi {
                        continue;
                    }
                    for &(sr, sc, u) in &buckets[dr * b_cols + dc] {
                        let dy = sr as f64 - r as f64;
                        let dx = sc as f64 - c as f64;
                        let d2 = dy * dy + dx * dx;
                        if best.is_none_or(|(b, _)| d2 < b) {
                            best = Some((d2, u));
                        }
                    }
                }
            }
            // One extra ring after the first hit guarantees correctness at
            // bucket boundaries.
            if let Some((d2, _)) = best {
                let safe_rings = (d2.sqrt() / bucket as f64).ceil() as usize + 1;
                if ring >= safe_rings
                    || (r_lo == 0 && c_lo == 0 && r_hi == b_rows - 1 && c_hi == b_cols - 1)
                {
                    break;
                }
            } else if r_lo == 0 && c_lo == 0 && r_hi == b_rows - 1 && c_hi == b_cols - 1 {
                break;
            }
            ring += 1;
        }
        out[cell as usize] = best.map(|(_, u)| u);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_grid(n: usize) -> GridDataset {
        let vals: Vec<f64> =
            (0..n * n).map(|i| 10.0 + (i / n) as f64 + 0.5 * (i % n) as f64).collect();
        GridDataset::univariate(n, n, vals).unwrap()
    }

    #[test]
    fn selects_exactly_t_units() {
        let g = smooth_grid(20);
        for t in [10usize, 50, 200] {
            let r = spatial_sampling(&g, t, 1).unwrap();
            assert_eq!(r.len(), t);
            assert_eq!(r.centroids.len(), t);
            assert_eq!(r.adjacency.len(), t);
        }
    }

    #[test]
    fn samples_are_spread_not_clumped() {
        let g = smooth_grid(30);
        let r = spatial_sampling(&g, 90, 2).unwrap();
        // Adjacency among samples should be nearly empty: spread sampling
        // rarely picks touching cells.
        let adjacent_pairs: usize = (0..r.len() as u32).map(|u| r.adjacency.degree(u)).sum();
        assert!(
            adjacent_pairs < r.len() / 2,
            "sampling produced {adjacent_pairs} adjacent sample pairs"
        );
    }

    #[test]
    fn every_valid_cell_mapped_to_nearest_sample() {
        let mut g = smooth_grid(12);
        g.set_null(0);
        let r = spatial_sampling(&g, 20, 3).unwrap();
        assert!(r.cell_to_unit[0].is_none());
        // Spot-check nearest assignment against brute force.
        let selected_pos: Vec<(usize, usize)> = (0..r.len())
            .map(|u| {
                let (la, lo) = r.centroids[u];
                // invert unit centroid to cell coords
                let rr = (la * 12.0 - 0.5).round() as usize;
                let cc = (lo * 12.0 - 0.5).round() as usize;
                (rr, cc)
            })
            .collect();
        for cell in g.valid_cells().take(40) {
            let (cr, cc) = g.cell_pos(cell);
            let assigned = r.cell_to_unit[cell as usize].unwrap() as usize;
            let d = |u: usize| {
                let (sr, sc) = selected_pos[u];
                let dy = sr as f64 - cr as f64;
                let dx = sc as f64 - cc as f64;
                dy * dy + dx * dx
            };
            let best = (0..r.len()).map(d).fold(f64::INFINITY, f64::min);
            assert!(d(assigned) <= best + 1e-9, "cell {cell} misassigned");
        }
    }

    #[test]
    fn deterministic_in_seed() {
        let g = smooth_grid(15);
        let a = spatial_sampling(&g, 40, 7).unwrap();
        let b = spatial_sampling(&g, 40, 7).unwrap();
        assert_eq!(a.features, b.features);
        let c = spatial_sampling(&g, 40, 8).unwrap();
        assert_ne!(a.features, c.features);
    }

    #[test]
    fn target_validation() {
        let g = smooth_grid(5);
        assert!(spatial_sampling(&g, 0, 1).is_err());
        assert!(spatial_sampling(&g, 26, 1).is_err());
        let mut empty = smooth_grid(3);
        for i in 0..9 {
            empty.set_null(i);
        }
        assert!(spatial_sampling(&empty, 1, 1).is_err());
    }
}
