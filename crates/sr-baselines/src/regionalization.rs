//! Regionalization baseline (Biswas et al. \[13\]).
//!
//! Two phases, as §I describes for this family: an *initialization* phase
//! seeds `p` regions with `p` randomly chosen cells, and a *region growing*
//! phase repeatedly assigns the most similar adjacent unassigned cell to a
//! region until every valid cell belongs somewhere. Growth is globally
//! greedy over a priority queue keyed by the feature distance between the
//! candidate cell and the running region mean (of the normalized grid).
//! Regions are arbitrary-shaped contiguous blobs — the paper's critique
//! (cumbersome adjacency, sensitivity to seeds) applies by construction.

use crate::reduced::{aggregate_members, mean_centroid, ReducedDataset};
use crate::{BaselineError, Result};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;
use sr_grid::{normalize_attributes, AdjacencyList, CellId, GridDataset};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

#[derive(Debug, Clone, Copy, PartialEq)]
struct Cost(f64);

impl Eq for Cost {}

impl PartialOrd for Cost {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Cost {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("finite costs")
    }
}

/// Reduces `grid` to `p` contiguous regions. Deterministic in `seed`.
///
/// Isolated valid cells that no region can reach (disconnected from every
/// seed) become singleton regions appended after the requested `p`.
pub fn regionalize(grid: &GridDataset, p: usize, seed: u64) -> Result<ReducedDataset> {
    let valid: Vec<CellId> = grid.valid_cells().collect();
    if valid.is_empty() {
        return Err(BaselineError::EmptyGrid);
    }
    if p == 0 || p > valid.len() {
        return Err(BaselineError::InvalidTarget { requested: p, available: valid.len() });
    }

    let norm = normalize_attributes(grid);
    let nattrs = norm.num_attrs();
    let rook = AdjacencyList::rook_from_grid(grid);

    // Initialization phase: p random seeds.
    let mut order = valid.clone();
    let mut rng = SmallRng::seed_from_u64(seed);
    order.shuffle(&mut rng);
    let seeds = &order[..p];

    let n_cells = grid.num_cells();
    let mut region_of: Vec<u32> = vec![u32::MAX; n_cells];
    // Region running state for the similarity cost: normalized-feature sums
    // and member counts.
    let mut sums: Vec<Vec<f64>> = vec![vec![0.0; nattrs]; p];
    let mut counts: Vec<usize> = vec![0; p];
    let mut heap: BinaryHeap<Reverse<(Cost, CellId, u32)>> = BinaryHeap::new();

    let absorb = |cell: CellId,
                  region: u32,
                  region_of: &mut Vec<u32>,
                  sums: &mut Vec<Vec<f64>>,
                  counts: &mut Vec<usize>,
                  heap: &mut BinaryHeap<Reverse<(Cost, CellId, u32)>>| {
        region_of[cell as usize] = region;
        let fv = norm.features_unchecked(cell);
        for (s, v) in sums[region as usize].iter_mut().zip(fv) {
            *s += v;
        }
        counts[region as usize] += 1;
        // Enqueue unassigned valid neighbors with the updated region mean.
        let r = region as usize;
        for &nb in rook.neighbors(cell) {
            if region_of[nb as usize] != u32::MAX {
                continue;
            }
            let nfv = norm.features_unchecked(nb);
            let mut d = 0.0;
            for (k, &v) in nfv.iter().enumerate() {
                let mean = sums[r][k] / counts[r] as f64;
                d += (v - mean).abs();
            }
            heap.push(Reverse((Cost(d / nattrs as f64), nb, region)));
        }
    };

    for (r, &cell) in seeds.iter().enumerate() {
        absorb(cell, r as u32, &mut region_of, &mut sums, &mut counts, &mut heap);
    }

    // Region-growing phase.
    while let Some(Reverse((_, cell, region))) = heap.pop() {
        if region_of[cell as usize] != u32::MAX {
            continue; // claimed by an earlier (cheaper) assignment
        }
        absorb(cell, region, &mut region_of, &mut sums, &mut counts, &mut heap);
    }

    // Any still-unassigned valid cells are disconnected islands: give each
    // its own singleton region.
    let mut num_regions = p;
    for &cell in &valid {
        if region_of[cell as usize] == u32::MAX {
            region_of[cell as usize] = num_regions as u32;
            num_regions += 1;
        }
    }

    // Materialize members per region.
    let mut members: Vec<Vec<CellId>> = vec![Vec::new(); num_regions];
    for &cell in &valid {
        members[region_of[cell as usize] as usize].push(cell);
    }

    let features: Vec<Vec<f64>> = members.iter().map(|m| aggregate_members(grid, m)).collect();
    let centroids: Vec<(f64, f64)> = members.iter().map(|m| mean_centroid(grid, m)).collect();
    let unit_sizes: Vec<usize> = members.iter().map(Vec::len).collect();

    // Region adjacency from cell adjacency.
    let mut neighbor_sets: Vec<std::collections::HashSet<u32>> =
        vec![Default::default(); num_regions];
    for &cell in &valid {
        let a = region_of[cell as usize];
        for &nb in rook.neighbors(cell) {
            let b = region_of[nb as usize];
            if b != u32::MAX && b != a {
                neighbor_sets[a as usize].insert(b);
            }
        }
    }
    let adjacency = AdjacencyList::from_neighbors(
        neighbor_sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<u32> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect(),
    );

    let cell_to_unit: Vec<Option<u32>> = (0..n_cells)
        .map(|i| {
            let r = region_of[i];
            (r != u32::MAX).then_some(r)
        })
        .collect();

    let agg_counts = unit_sizes.clone();
    Ok(ReducedDataset { features, centroids, adjacency, cell_to_unit, unit_sizes, agg_counts })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_zone_grid(n: usize) -> GridDataset {
        // Left half ≈ 1, right half ≈ 9.
        let vals: Vec<f64> = (0..n * n).map(|i| if i % n < n / 2 { 1.0 } else { 9.0 }).collect();
        GridDataset::univariate(n, n, vals).unwrap()
    }

    #[test]
    fn produces_requested_region_count() {
        let g = two_zone_grid(10);
        let r = regionalize(&g, 8, 1).unwrap();
        assert_eq!(r.len(), 8);
        assert_eq!(r.unit_sizes.iter().sum::<usize>(), 100);
    }

    #[test]
    fn regions_are_contiguous() {
        let g = two_zone_grid(12);
        let r = regionalize(&g, 10, 2).unwrap();
        let rook = AdjacencyList::rook_from_grid(&g);
        for region in 0..r.len() as u32 {
            let members: Vec<usize> =
                (0..g.num_cells()).filter(|&i| r.cell_to_unit[i] == Some(region)).collect();
            if members.is_empty() {
                continue;
            }
            let mut seen = std::collections::HashSet::new();
            let mut queue = vec![members[0]];
            seen.insert(members[0]);
            while let Some(u) = queue.pop() {
                for &v in rook.neighbors(u as u32) {
                    let v = v as usize;
                    if r.cell_to_unit[v] == Some(region) && seen.insert(v) {
                        queue.push(v);
                    }
                }
            }
            assert_eq!(seen.len(), members.len(), "region {region} disconnected");
        }
    }

    #[test]
    fn growth_respects_similarity() {
        // With 2 regions on a sharply split grid, the cut should land on
        // the value boundary for most cells.
        let g = two_zone_grid(10);
        // Use a seed whose two random seeds fall on different halves (try a
        // few; at least one must produce a near-perfect split).
        let mut best = 0.0f64;
        for seed in 0..5 {
            let r = regionalize(&g, 2, seed).unwrap();
            let mut agree = 0;
            for i in 0..100 {
                let left = i % 10 < 5;
                let unit = r.cell_to_unit[i].unwrap();
                let left_unit = r.cell_to_unit[0].unwrap();
                if (unit == left_unit) == left {
                    agree += 1;
                }
            }
            best = best.max(agree as f64 / 100.0);
        }
        assert!(best > 0.9, "best split agreement {best}");
    }

    #[test]
    fn adjacency_is_symmetric() {
        let g = two_zone_grid(9);
        let r = regionalize(&g, 6, 3).unwrap();
        assert!(r.adjacency.is_symmetric());
    }

    #[test]
    fn islands_become_singletons() {
        // A valid cell fenced off by nulls cannot be reached by any seed
        // planted elsewhere.
        let mut g = GridDataset::univariate(3, 3, vec![5.0; 9]).unwrap();
        g.set_null(1);
        g.set_null(3);
        // cell 0 is isolated from the rest (neighbors 1 and 3 are null).
        let r = regionalize(&g, 1, 11).unwrap();
        // Either the seed landed on cell 0 (rest unreachable → singletons)
        // or elsewhere (cell 0 becomes a singleton); both yield > 1 unit.
        assert!(r.len() >= 2);
        assert_eq!(r.unit_sizes.iter().sum::<usize>(), 7);
    }

    #[test]
    fn validation() {
        let g = two_zone_grid(4);
        assert!(regionalize(&g, 0, 1).is_err());
        assert!(regionalize(&g, 17, 1).is_err());
    }
}
