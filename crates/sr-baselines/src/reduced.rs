//! The common output shape of every reduction baseline.

use sr_grid::{AdjacencyList, AggType, CellId, GridDataset, IflOptions};

/// A reduced dataset: one row of training data per unit (sample, region, or
/// cluster), plus the structures the spatial models and the evaluation
/// harness need.
#[derive(Debug, Clone)]
pub struct ReducedDataset {
    /// One aggregated feature row per unit.
    pub features: Vec<Vec<f64>>,
    /// Geographic centroid of each unit.
    pub centroids: Vec<(f64, f64)>,
    /// Adjacency between units (empty neighbor lists where the method
    /// destroys contiguity, e.g. sampling).
    pub adjacency: AdjacencyList,
    /// For every grid cell: the unit that represents it (`None` for null
    /// cells). Sampling maps unselected cells to their nearest sample.
    pub cell_to_unit: Vec<Option<u32>>,
    /// Number of cells each unit covers / represents.
    pub unit_sizes: Vec<usize>,
    /// Number of cells *aggregated into* each unit's feature vector (1 for
    /// sampling, whose units keep raw single-cell features; the member
    /// count for regionalization/clustering). Sum-typed attributes divide
    /// by this to recover per-cell intensities.
    pub agg_counts: Vec<usize>,
}

impl ReducedDataset {
    /// Number of units.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the reduction produced no units.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Splits the feature rows into target column `target_attr` and the
    /// remaining feature columns (mirrors
    /// `sr_core::PreparedTrainingData::split_target`).
    pub fn split_target(&self, target_attr: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::with_capacity(self.features.len());
        let mut ys = Vec::with_capacity(self.features.len());
        for row in &self.features {
            let mut x = Vec::with_capacity(row.len() - 1);
            for (k, &v) in row.iter().enumerate() {
                if k == target_attr {
                    ys.push(v);
                } else {
                    x.push(v);
                }
            }
            xs.push(x);
        }
        (xs, ys)
    }

    /// Information loss (Eq. 3) of this reduction w.r.t. the original grid,
    /// using the same aggregation-aware representative convention as the
    /// core framework. Lets experiments compare baseline loss against the
    /// re-partitioner's.
    pub fn information_loss(&self, grid: &GridDataset) -> f64 {
        let aggs = grid.agg_types();
        sr_grid::loss::information_loss_with(
            grid,
            |cell, k| {
                let Some(unit) = self.cell_to_unit[cell as usize] else {
                    return 0.0;
                };
                let v = self.features[unit as usize][k];
                match aggs[k] {
                    AggType::Sum => v / self.agg_counts[unit as usize] as f64,
                    AggType::Avg | AggType::Mode => v,
                }
            },
            IflOptions::default(),
        )
    }
}

/// Aggregates the feature vectors of `member_cells` (valid cells only)
/// according to the grid's per-attribute aggregation types: `Sum` sums,
/// `Avg` averages. The plain mean — without the core framework's best-of
/// mean/mode refinement — matches how the baselines' own papers aggregate.
pub(crate) fn aggregate_members(grid: &GridDataset, member_cells: &[CellId]) -> Vec<f64> {
    let p = grid.num_attrs();
    let mut out = vec![0.0f64; p];
    let mut count = 0usize;
    for &c in member_cells {
        if !grid.is_valid(c) {
            continue;
        }
        count += 1;
        for (o, v) in out.iter_mut().zip(grid.features_unchecked(c)) {
            *o += v;
        }
    }
    if count == 0 {
        return out;
    }
    for (k, o) in out.iter_mut().enumerate() {
        match grid.agg_types()[k] {
            AggType::Sum => {}
            AggType::Avg => {
                *o /= count as f64;
                if grid.integer_attrs()[k] {
                    *o = o.round();
                }
            }
            AggType::Mode => {
                // Most frequent code among valid members.
                let mut counts: std::collections::HashMap<u64, usize> = Default::default();
                let mut best = (0usize, 0.0f64);
                for &c in member_cells {
                    if !grid.is_valid(c) {
                        continue;
                    }
                    let v = grid.value(c, k);
                    let e = counts.entry(v.to_bits()).or_insert(0);
                    *e += 1;
                    if *e > best.0 {
                        best = (*e, v);
                    }
                }
                *o = best.1;
            }
        }
    }
    out
}

/// Mean geographic centroid of a set of cells.
pub(crate) fn mean_centroid(grid: &GridDataset, member_cells: &[CellId]) -> (f64, f64) {
    let mut lat = 0.0;
    let mut lon = 0.0;
    for &c in member_cells {
        let (la, lo) = grid.cell_centroid(c);
        lat += la;
        lon += lo;
    }
    let n = member_cells.len().max(1) as f64;
    (lat / n, lon / n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn aggregate_respects_agg_types() {
        use sr_grid::Bounds;
        let g = GridDataset::new(
            1,
            3,
            2,
            vec![1.0, 10.0, 2.0, 20.0, 3.0, 30.0],
            vec![true; 3],
            vec!["count".into(), "price".into()],
            vec![AggType::Sum, AggType::Avg],
            vec![false, false],
            Bounds::unit(),
        )
        .unwrap();
        let fv = aggregate_members(&g, &[0, 1, 2]);
        assert_eq!(fv, vec![6.0, 20.0]);
    }

    #[test]
    fn aggregate_skips_null_members() {
        let mut g = GridDataset::univariate(1, 3, vec![2.0, 4.0, 100.0]).unwrap();
        g.set_null(2);
        let fv = aggregate_members(&g, &[0, 1, 2]);
        assert_eq!(fv, vec![3.0]);
    }

    #[test]
    fn split_target_roundtrip() {
        let r = ReducedDataset {
            features: vec![vec![1.0, 2.0], vec![3.0, 4.0]],
            centroids: vec![(0.0, 0.0); 2],
            adjacency: AdjacencyList::from_neighbors(vec![vec![], vec![]]),
            cell_to_unit: vec![Some(0), Some(1)],
            unit_sizes: vec![1, 1],
            agg_counts: vec![1, 1],
        };
        let (xs, ys) = r.split_target(0);
        assert_eq!(ys, vec![1.0, 3.0]);
        assert_eq!(xs, vec![vec![2.0], vec![4.0]]);
    }

    #[test]
    fn information_loss_zero_for_identity_reduction() {
        let g = GridDataset::univariate(1, 2, vec![5.0, 9.0]).unwrap();
        let r = ReducedDataset {
            features: vec![vec![5.0], vec![9.0]],
            centroids: vec![g.cell_centroid(0), g.cell_centroid(1)],
            adjacency: AdjacencyList::from_neighbors(vec![vec![1], vec![0]]),
            cell_to_unit: vec![Some(0), Some(1)],
            unit_sizes: vec![1, 1],
            agg_counts: vec![1, 1],
        };
        assert_eq!(r.information_loss(&g), 0.0);
    }
}
