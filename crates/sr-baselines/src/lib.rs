//! The paper's data-reduction baselines (§IV-A3).
//!
//! Each baseline reduces an input grid to a *target number of units* — set
//! by the experiment harness to the cell-group count the re-partitioning
//! framework produced at a given IFL threshold, exactly as the paper
//! prescribes for fairness — and emits the same [`ReducedDataset`]
//! structure the training pipelines consume:
//!
//! - [`sampling::spatial_sampling`] — Guo et al. \[9\]: spread-maximizing
//!   selection of individual cells under a minimum-distance constraint.
//!   Deliberately breaks adjacency (most samples are isolated), which is
//!   the paper's explanation for sampling's poor spatial-model quality.
//! - [`regionalization::regionalize`] — Biswas et al. \[13\]: seed `p`
//!   random regions, then grow each by absorbing the adjacent unassigned
//!   cell with the most similar attributes.
//! - [`clustering::contiguous_clustering`] — Kim et al. \[15\]: Ward-linkage
//!   agglomeration restricted to spatially adjacent clusters (reuses
//!   `sr-ml`'s SCHC implementation at the cell level).

pub mod clustering;
pub mod reduced;
pub mod regionalization;
pub mod sampling;

pub use clustering::contiguous_clustering;
pub use reduced::ReducedDataset;
pub use regionalization::regionalize;
pub use sampling::spatial_sampling;

/// Errors from baseline reducers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaselineError {
    /// The grid has no valid cells to reduce.
    EmptyGrid,
    /// The requested unit count is zero or exceeds the valid-cell count.
    InvalidTarget {
        /// Requested number of units.
        requested: usize,
        /// Number of valid cells available.
        available: usize,
    },
}

impl std::fmt::Display for BaselineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaselineError::EmptyGrid => write!(f, "grid has no valid cells"),
            BaselineError::InvalidTarget { requested, available } => {
                write!(f, "target unit count {requested} invalid for {available} valid cells")
            }
        }
    }
}

impl std::error::Error for BaselineError {}

/// Result alias for baseline operations.
pub type Result<T> = std::result::Result<T, BaselineError>;
