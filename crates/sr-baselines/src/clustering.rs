//! Spatially contiguous hierarchical clustering baseline (Kim et al. \[15\]).
//!
//! Runs `sr-ml`'s Ward-under-contiguity agglomeration over the *cells* of
//! the grid (normalized features, rook adjacency) down to `p` clusters,
//! then aggregates each cluster into one training unit. Unlike the core
//! framework, clusters have arbitrary shapes and the merge order never
//! consults the information loss — the paper's explanation for this
//! baseline's higher loss at equal unit counts.

use crate::reduced::{aggregate_members, mean_centroid, ReducedDataset};
use crate::{BaselineError, Result};
use sr_grid::{normalize_attributes, AdjacencyList, CellId, GridDataset};
use sr_ml::{schc_cluster, SchcParams};

/// Reduces `grid` to `p` spatially contiguous clusters.
pub fn contiguous_clustering(grid: &GridDataset, p: usize) -> Result<ReducedDataset> {
    let valid: Vec<CellId> = grid.valid_cells().collect();
    if valid.is_empty() {
        return Err(BaselineError::EmptyGrid);
    }
    if p == 0 || p > valid.len() {
        return Err(BaselineError::InvalidTarget { requested: p, available: valid.len() });
    }

    let norm = normalize_attributes(grid);
    let features: Vec<Vec<f64>> =
        valid.iter().map(|&c| norm.features_unchecked(c).to_vec()).collect();
    let rook = AdjacencyList::rook_from_grid(grid).restrict(&grid.valid_mask());

    let result =
        schc_cluster(&features, &rook, &SchcParams { num_clusters: p }).expect("validated inputs");

    let num_units = result.num_found;
    let mut members: Vec<Vec<CellId>> = vec![Vec::new(); num_units];
    for (vi, &cell) in valid.iter().enumerate() {
        members[result.labels[vi]].push(cell);
    }

    let unit_features: Vec<Vec<f64>> = members.iter().map(|m| aggregate_members(grid, m)).collect();
    let centroids: Vec<(f64, f64)> = members.iter().map(|m| mean_centroid(grid, m)).collect();
    let unit_sizes: Vec<usize> = members.iter().map(Vec::len).collect();

    // Unit adjacency from cell adjacency.
    let n_cells = grid.num_cells();
    let mut unit_of: Vec<u32> = vec![u32::MAX; n_cells];
    for (u, m) in members.iter().enumerate() {
        for &c in m {
            unit_of[c as usize] = u as u32;
        }
    }
    let full_rook = AdjacencyList::rook_from_grid(grid);
    let mut neighbor_sets: Vec<std::collections::HashSet<u32>> =
        vec![Default::default(); num_units];
    for &cell in &valid {
        let a = unit_of[cell as usize];
        for &nb in full_rook.neighbors(cell) {
            let b = unit_of[nb as usize];
            if b != u32::MAX && b != a {
                neighbor_sets[a as usize].insert(b);
            }
        }
    }
    let adjacency = AdjacencyList::from_neighbors(
        neighbor_sets
            .into_iter()
            .map(|s| {
                let mut v: Vec<u32> = s.into_iter().collect();
                v.sort_unstable();
                v
            })
            .collect(),
    );

    let cell_to_unit: Vec<Option<u32>> = (0..n_cells)
        .map(|i| {
            let u = unit_of[i];
            (u != u32::MAX).then_some(u)
        })
        .collect();

    Ok(ReducedDataset {
        agg_counts: unit_sizes.clone(),
        features: unit_features,
        centroids,
        adjacency,
        cell_to_unit,
        unit_sizes,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradient_grid(n: usize) -> GridDataset {
        let vals: Vec<f64> = (0..n * n).map(|i| (i / n) as f64 * 2.0 + 10.0).collect();
        GridDataset::univariate(n, n, vals).unwrap()
    }

    #[test]
    fn reaches_target_count_on_connected_grid() {
        let g = gradient_grid(10);
        for p in [3usize, 10, 40] {
            let r = contiguous_clustering(&g, p).unwrap();
            assert_eq!(r.len(), p);
            assert_eq!(r.unit_sizes.iter().sum::<usize>(), 100);
        }
    }

    #[test]
    fn clusters_follow_value_bands() {
        // Gradient by row: 4 clusters should be horizontal bands, so each
        // cluster's member rows are contiguous.
        let g = gradient_grid(8);
        let r = contiguous_clustering(&g, 4).unwrap();
        for unit in 0..r.len() as u32 {
            let rows: Vec<usize> =
                (0..64).filter(|&i| r.cell_to_unit[i] == Some(unit)).map(|i| i / 8).collect();
            let min = *rows.iter().min().unwrap();
            let max = *rows.iter().max().unwrap();
            // All rows between min and max present (banded shape).
            for row in min..=max {
                assert!(rows.contains(&row), "unit {unit} skips row {row}");
            }
        }
    }

    #[test]
    fn lower_ifl_than_random_merge_shape() {
        // SCHC merges similar neighbors, so its IFL must beat a horrible
        // fixed-band reduction at equal unit count... compare against the
        // worst case of putting the top half and bottom half together (2
        // units) vs SCHC's own 2 units on a split grid.
        let vals: Vec<f64> = (0..100).map(|i| if i < 50 { 1.0 } else { 100.0 }).collect();
        let g = GridDataset::univariate(10, 10, vals).unwrap();
        let r = contiguous_clustering(&g, 2).unwrap();
        // Perfect split ⇒ zero loss.
        assert!(r.information_loss(&g) < 1e-9);
    }

    #[test]
    fn null_cells_excluded() {
        let mut g = gradient_grid(6);
        g.set_null(0);
        g.set_null(35);
        let r = contiguous_clustering(&g, 5).unwrap();
        assert!(r.cell_to_unit[0].is_none());
        assert!(r.cell_to_unit[35].is_none());
        assert_eq!(r.unit_sizes.iter().sum::<usize>(), 34);
    }

    #[test]
    fn adjacency_symmetric() {
        let g = gradient_grid(9);
        let r = contiguous_clustering(&g, 7).unwrap();
        assert!(r.adjacency.is_symmetric());
    }

    #[test]
    fn validation() {
        let g = gradient_grid(4);
        assert!(contiguous_clustering(&g, 0).is_err());
        assert!(contiguous_clustering(&g, 100).is_err());
    }
}
