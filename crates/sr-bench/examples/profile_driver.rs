//! Stage-level wall-clock breakdown of the 100k-cell driver run: prints
//! where a strided `theta = 0.05` walk spends its time. Companion to the
//! criterion benches when chasing pipeline regressions.

use sr_core::{
    extract_with_edges, partition_ifl_groups, EdgeVariations, GroupFeatures, VariationHeap,
};
use sr_datasets::{Dataset, GridSize};
use sr_grid::{normalize_attributes, IflOptions};
use std::time::Instant;

fn main() {
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Custom(320, 320), 1);
    let t0 = Instant::now();
    let norm = normalize_attributes(&grid);
    eprintln!("normalize: {:?}", t0.elapsed());

    let t = Instant::now();
    let heap = VariationHeap::from_grid(&norm);
    eprintln!("heap build: {:?}", t.elapsed());
    let t = Instant::now();
    let thresholds = heap.into_sorted_distinct();
    eprintln!("sorted distinct ({}): {:?}", thresholds.len(), t.elapsed());

    let t = Instant::now();
    let edges = EdgeVariations::build(&norm);
    eprintln!("edge variations: {:?}", t.elapsed());

    // Mimic the Exponential{8, 1.6} walk at theta = 0.05.
    let (mut te, mut ta, mut ti) = (0.0f64, 0.0f64, 0.0f64);
    let mut idx = 0usize;
    let mut stride = 8usize;
    let mut n_iter = 0usize;
    while idx < thresholds.len() {
        let t = Instant::now();
        let part = extract_with_edges(&edges, thresholds[idx]);
        te += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let feats = GroupFeatures::allocate(&grid, &part);
        ta += t.elapsed().as_secs_f64();
        let t = Instant::now();
        let ifl = partition_ifl_groups(&grid, &part, &feats, IflOptions::default());
        ti += t.elapsed().as_secs_f64();
        n_iter += 1;
        if ifl > 0.05 || idx == thresholds.len() - 1 {
            break;
        }
        idx = (idx + stride).min(thresholds.len() - 1);
        stride = ((stride as f64 * 1.6) as usize).max(stride + 1);
    }
    eprintln!("iters: {n_iter}  extract: {te:.3}s  allocate: {ta:.3}s  ifl: {ti:.3}s");
    eprintln!("total: {:?}", t0.elapsed());
}
