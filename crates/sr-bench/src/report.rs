//! Aligned text-table reporting for the experiment binaries.

/// A simple column-aligned table printer.
#[derive(Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Starts a table with the given header.
    pub fn new(header: &[&str]) -> Self {
        Table { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    /// Adds one row (cells must match the header arity).
    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.header.len());
        self.rows.push(cells);
    }

    /// Renders the table with padded columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let mut line = String::new();
            for (i, (c, w)) in cells.iter().zip(widths).enumerate() {
                if i > 0 {
                    line.push_str("  ");
                }
                line.push_str(&format!("{c:<w$}"));
            }
            line.trim_end().to_string()
        };
        out.push_str(&fmt_row(&self.header, &widths));
        out.push('\n');
        let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
        out.push_str(&"-".repeat(total));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Prints the rendered table to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }
}

/// Formats seconds with adaptive precision.
pub fn fmt_secs(s: f64) -> String {
    if s >= 10.0 {
        format!("{s:.1}s")
    } else if s >= 0.1 {
        format!("{s:.2}s")
    } else {
        format!("{:.1}ms", s * 1e3)
    }
}

/// Formats bytes as MiB.
pub fn fmt_mib(bytes: usize) -> String {
    format!("{:.1}MiB", bytes as f64 / (1024.0 * 1024.0))
}

/// Formats a percentage reduction `1 − reduced/original`.
pub fn fmt_reduction(original: f64, reduced: f64) -> String {
    if original <= 0.0 {
        return "n/a".to_string();
    }
    format!("{:.1}%", (1.0 - reduced / original) * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new(&["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["long-name".into(), "22".into()]);
        let r = t.render();
        let lines: Vec<&str> = r.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("a"));
        // Columns align: "value" column starts at the same offset.
        let off = lines[0].find("value").unwrap();
        assert_eq!(lines[3].find("22").unwrap(), off);
    }

    #[test]
    fn formatters() {
        assert_eq!(fmt_secs(12.34), "12.3s");
        assert_eq!(fmt_secs(0.5), "0.50s");
        assert_eq!(fmt_secs(0.005), "5.0ms");
        assert_eq!(fmt_mib(1024 * 1024), "1.0MiB");
        assert_eq!(fmt_reduction(100.0, 40.0), "60.0%");
        assert_eq!(fmt_reduction(0.0, 1.0), "n/a");
    }
}
