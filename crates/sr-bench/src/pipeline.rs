//! Model-training pipelines with time and memory instrumentation.
//!
//! Protocol (§III-B): units are split 80/20 into train/test, the model is
//! fitted on the train split with Table-I hyperparameters, and errors are
//! reported on the test split. Spatial models (lag, error) fit on the
//! train-restricted adjacency and predict test units from the spatial lag
//! of *observed train* targets only — test neighbors never leak their own
//! target into a prediction.

use crate::units::Units;
use sr_datasets::train_test_split;
use sr_grid::AdjacencyList;
use sr_ml::{
    mae_weighted, r2_weighted, rmse_weighted, se_weighted, table1, weighted_f1,
    GradientBoostingClassifier, Gwr, GwrParams, KnnClassifier, OrdinaryKriging, RandomForest,
    SpatialError, SpatialLag, Svr, SvrParams,
};
use std::time::Instant;

/// The five regression models of Fig. 7 / Table II (a–e).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RegModel {
    /// Spatial lag regression (Table II-a).
    Lag,
    /// Spatial error regression (Table II-b).
    ErrorModel,
    /// Geographically weighted regression (Table II-c).
    Gwr,
    /// Support vector regression (Table II-d).
    Svr,
    /// Random forest regression (Table II-e).
    Forest,
}

impl RegModel {
    /// All five, in the paper's presentation order.
    pub const ALL: [RegModel; 5] =
        [RegModel::Lag, RegModel::ErrorModel, RegModel::Gwr, RegModel::Svr, RegModel::Forest];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            RegModel::Lag => "Spatial Lag",
            RegModel::ErrorModel => "Spatial Error",
            RegModel::Gwr => "GWR",
            RegModel::Svr => "SVR",
            RegModel::Forest => "Random Forest",
        }
    }
}

/// Result of one regression run.
#[derive(Debug, Clone, Copy)]
pub struct RegResult {
    /// Training wall time in seconds.
    pub train_secs: f64,
    /// Peak live bytes during training (0 when the tracking allocator is
    /// not installed in the binary).
    pub peak_bytes: usize,
    /// Mean absolute error on the test split.
    pub mae: f64,
    /// Root mean squared error on the test split.
    pub rmse: f64,
    /// Standard error of the regression on the test split.
    pub se: f64,
    /// Pseudo-R² on the test split.
    pub r2: f64,
}

/// Spatial lag of `y` over `adj` restricted to units where `observed` is
/// true; units with no observed neighbor fall back to the observed mean.
fn masked_spatial_lag(adj: &AdjacencyList, y: &[f64], observed: &[bool]) -> Vec<f64> {
    let obs_mean = {
        let (mut s, mut c) = (0.0, 0usize);
        for (i, &o) in observed.iter().enumerate() {
            if o {
                s += y[i];
                c += 1;
            }
        }
        if c > 0 {
            s / c as f64
        } else {
            0.0
        }
    };
    (0..y.len())
        .map(|i| {
            let mut s = 0.0;
            let mut c = 0usize;
            for &j in adj.neighbors(i as u32) {
                if observed[j as usize] {
                    s += y[j as usize];
                    c += 1;
                }
            }
            if c > 0 {
                s / c as f64
            } else {
                obs_mean
            }
        })
        .collect()
}

/// Runs one regression model end to end on a unit set.
pub fn regression(units: &Units, target_attr: usize, model: RegModel, seed: u64) -> RegResult {
    let (xs, ys) = units.split_target(target_attr);
    let n = xs.len();
    let (train_idx, test_idx) = train_test_split(n, 0.2, seed);

    let train_x: Vec<Vec<f64>> = train_idx.iter().map(|&i| xs[i].clone()).collect();
    let train_y: Vec<f64> = train_idx.iter().map(|&i| ys[i]).collect();
    let test_x: Vec<Vec<f64>> = test_idx.iter().map(|&i| xs[i].clone()).collect();
    let test_y: Vec<f64> = test_idx.iter().map(|&i| ys[i]).collect();

    let mut train_mask = vec![false; n];
    for &i in &train_idx {
        train_mask[i] = true;
    }

    // Wall time covers the *fit* only (the paper's "training time"); the
    // memory peak covers the same region.
    let mut train_secs = 0.0;
    let mut timed_fit = |f: &mut dyn FnMut()| {
        let start = Instant::now();
        f();
        train_secs = start.elapsed().as_secs_f64();
    };
    let (pred, num_params, peak_bytes): (Vec<f64>, usize, usize) = match model {
        RegModel::Lag => {
            let train_adj = units.adjacency.restrict(&train_mask);
            let mut fitted = None;
            let (_, peak) = sr_mem::measure_peak(|| {
                timed_fit(&mut || {
                    fitted = Some(SpatialLag::fit(&train_x, &train_y, &train_adj));
                })
            });
            let m = fitted.expect("fit ran").expect("lag fit");
            // Test-time spatial lag from observed (train) targets only.
            let wy_all = masked_spatial_lag(&units.adjacency, &ys, &train_mask);
            let wy_test: Vec<f64> = test_idx.iter().map(|&i| wy_all[i]).collect();
            let p = m.predict(&test_x, &wy_test).expect("lag predict");
            (p, m.num_params(), peak)
        }
        RegModel::ErrorModel => {
            let train_adj = units.adjacency.restrict(&train_mask);
            let mut fitted = None;
            let (_, peak) = sr_mem::measure_peak(|| {
                timed_fit(&mut || {
                    fitted = Some(SpatialError::fit(&train_x, &train_y, &train_adj));
                })
            });
            let m = fitted.expect("fit ran").expect("error fit");
            // Observed residuals on train units feed the BLUP correction.
            let trend_all = m.predict_trend(&xs);
            let resid_all: Vec<f64> = ys.iter().zip(&trend_all).map(|(y, t)| y - t).collect();
            let we_all = masked_spatial_lag(&units.adjacency, &resid_all, &train_mask);
            let we_test: Vec<f64> = test_idx.iter().map(|&i| we_all[i]).collect();
            let p = m.predict(&test_x, &we_test).expect("error predict");
            (p, m.num_params(), peak)
        }
        RegModel::Gwr => {
            let train_c: Vec<(f64, f64)> = train_idx.iter().map(|&i| units.centroids[i]).collect();
            let test_c: Vec<(f64, f64)> = test_idx.iter().map(|&i| units.centroids[i]).collect();
            let mut fitted = None;
            let (_, peak) = sr_mem::measure_peak(|| {
                timed_fit(&mut || {
                    fitted = Some(Gwr::fit(&train_x, &train_y, &train_c, &table1::gwr()));
                })
            });
            let m = fitted.expect("fit ran").expect("gwr fit");
            let p = m.predict(&test_x, &test_c).expect("gwr predict");
            (p, train_x.first().map_or(1, |r| r.len() + 1), peak)
        }
        RegModel::Svr => {
            // Table I's C/γ/ε with a train cap high enough for every
            // experiment size this harness uses.
            let params = SvrParams { max_train: 50_000, ..table1::svr() };
            let mut fitted = None;
            let (_, peak) = sr_mem::measure_peak(|| {
                timed_fit(&mut || {
                    fitted = Some(Svr::fit(&train_x, &train_y, &params));
                })
            });
            let m = fitted.expect("fit ran").expect("svr fit");
            (m.predict(&test_x), train_x.first().map_or(1, |r| r.len() + 1), peak)
        }
        RegModel::Forest => {
            let mut fitted = None;
            let (_, peak) = sr_mem::measure_peak(|| {
                timed_fit(&mut || {
                    fitted = Some(RandomForest::fit(&train_x, &train_y, &table1::random_forest()));
                })
            });
            let m = fitted.expect("fit ran").expect("forest fit");
            (m.predict(&test_x), train_x.first().map_or(1, |r| r.len() + 1), peak)
        }
    };

    let test_w: Vec<f64> = test_idx.iter().map(|&i| units.weights[i]).collect();
    RegResult {
        train_secs,
        peak_bytes,
        mae: mae_weighted(&test_y, &pred, &test_w),
        rmse: rmse_weighted(&test_y, &pred, &test_w),
        se: se_weighted(&test_y, &pred, &test_w, num_params),
        r2: r2_weighted(&test_y, &pred, &test_w),
    }
}

/// GWR hyperparameters trimmed for very large unit sets (bandwidth search
/// cost is quadratic); unused by default but available to binaries.
pub fn gwr_params_for(n: usize) -> GwrParams {
    let mut p = table1::gwr();
    if n > 4000 {
        p.search_iters = 6;
    }
    p
}

/// The two classification models of Fig. 9 / Table III.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClassModel {
    /// Gradient boosting (Table III-a).
    GradientBoosting,
    /// K-nearest neighbors (Table III-b).
    Knn,
}

impl ClassModel {
    /// Both models, paper order.
    pub const ALL: [ClassModel; 2] = [ClassModel::GradientBoosting, ClassModel::Knn];

    /// Display name.
    pub fn name(&self) -> &'static str {
        match self {
            ClassModel::GradientBoosting => "Gradient Boosting",
            ClassModel::Knn => "KNN",
        }
    }
}

/// Result of one classification run.
#[derive(Debug, Clone, Copy)]
pub struct ClassResult {
    /// Training wall time in seconds.
    pub train_secs: f64,
    /// Peak live bytes during training.
    pub peak_bytes: usize,
    /// Weighted F1 on the test split.
    pub f1: f64,
}

/// Runs one classifier: the target attribute is quantile-binned into five
/// classes (§IV-C2), split 80/20, fitted, and scored by weighted F1.
pub fn classification(
    units: &Units,
    target_attr: usize,
    model: ClassModel,
    seed: u64,
) -> ClassResult {
    let (xs, ys) = units.split_target(target_attr);
    let labels = sr_ml::bin_into_quantiles(&ys, table1::NUM_CLASSES);
    let n = xs.len();
    let (train_idx, test_idx) = train_test_split(n, 0.2, seed);
    let train_x: Vec<Vec<f64>> = train_idx.iter().map(|&i| xs[i].clone()).collect();
    let train_l: Vec<usize> = train_idx.iter().map(|&i| labels[i]).collect();
    let test_x: Vec<Vec<f64>> = test_idx.iter().map(|&i| xs[i].clone()).collect();
    let test_l: Vec<usize> = test_idx.iter().map(|&i| labels[i]).collect();

    let start = Instant::now();
    let (pred, peak_bytes) = match model {
        ClassModel::GradientBoosting => {
            let (m, peak) = sr_mem::measure_peak(|| {
                GradientBoostingClassifier::fit(
                    &train_x,
                    &train_l,
                    table1::NUM_CLASSES,
                    &table1::gradient_boosting(),
                )
            });
            (m.expect("gb fit").predict(&test_x), peak)
        }
        ClassModel::Knn => {
            let (m, peak) = sr_mem::measure_peak(|| {
                KnnClassifier::fit(&train_x, &train_l, table1::NUM_CLASSES, &table1::knn())
            });
            (m.expect("knn fit").predict(&test_x), peak)
        }
    };
    let train_secs = start.elapsed().as_secs_f64();
    // KNN "training" is the kd-tree build; prediction dominates instead,
    // but the paper reports the same convention, so we keep fit-only here.

    ClassResult { train_secs, peak_bytes, f1: weighted_f1(&test_l, &pred, table1::NUM_CLASSES) }
}

/// Result of one kriging run (univariate datasets, Table II-f).
#[derive(Debug, Clone, Copy)]
pub struct KrigingResult {
    /// Training (variogram-fit) plus prediction wall time in seconds.
    pub train_secs: f64,
    /// Peak live bytes during fit + prediction.
    pub peak_bytes: usize,
    /// MAE on the held-out units.
    pub mae: f64,
    /// RMSE on the held-out units.
    pub rmse: f64,
}

/// Runs ordinary kriging: 80/20 split on units, variogram fitted on train,
/// values interpolated at test centroids.
pub fn kriging_run(units: &Units, seed: u64) -> KrigingResult {
    let values: Vec<f64> = units.features.iter().map(|f| f[0]).collect();
    let n = values.len();
    let (train_idx, test_idx) = train_test_split(n, 0.2, seed);
    let train_c: Vec<(f64, f64)> = train_idx.iter().map(|&i| units.centroids[i]).collect();
    let train_v: Vec<f64> = train_idx.iter().map(|&i| values[i]).collect();
    let test_c: Vec<(f64, f64)> = test_idx.iter().map(|&i| units.centroids[i]).collect();
    let test_v: Vec<f64> = test_idx.iter().map(|&i| values[i]).collect();

    let start = Instant::now();
    let ((model, pred), peak_bytes) = sr_mem::measure_peak(|| {
        let m = OrdinaryKriging::fit(&train_c, &train_v, &table1::kriging()).expect("kriging fit");
        let p = m.predict(&test_c);
        (m, p)
    });
    let train_secs = start.elapsed().as_secs_f64();
    drop(model);

    let test_w: Vec<f64> = test_idx.iter().map(|&i| units.weights[i]).collect();
    KrigingResult {
        train_secs,
        peak_bytes,
        mae: mae_weighted(&test_v, &pred, &test_w),
        rmse: rmse_weighted(&test_v, &pred, &test_w),
    }
}

/// Result of one clustering run.
#[derive(Debug, Clone)]
pub struct ClusterResult {
    /// Clustering wall time in seconds.
    pub train_secs: f64,
    /// Peak live bytes during clustering.
    pub peak_bytes: usize,
    /// Cluster label per *grid cell* (None for null cells), for Table IV's
    /// cell-level agreement.
    pub cell_labels: Vec<Option<usize>>,
}

/// Number of clusters used by the clustering experiments (§IV-C4 does not
/// fix a count; 10 keeps every dataset's clusters non-trivial).
pub const NUM_CLUSTERS: usize = 10;

/// Runs SCHC over the unit set and projects cluster labels back to cells.
///
/// Units whose adjacency is too sparse to be clusterable (sampling breaks
/// contiguity, leaving most samples isolated) get a symmetrized 4-nearest-
/// neighbor graph over centroids instead — the standard way to define
/// spatial contiguity for scattered points.
pub fn clustering(units: &Units) -> ClusterResult {
    let norm = normalize_rows(&units.features);
    let fragmented = num_components(&units.adjacency) > NUM_CLUSTERS;
    let knn_graph;
    let graph: &AdjacencyList = if fragmented {
        knn_graph = knn_adjacency(&units.centroids, 4);
        &knn_graph
    } else {
        &units.adjacency
    };
    let start = Instant::now();
    let (res, peak_bytes) = sr_mem::measure_peak(|| {
        sr_ml::schc_cluster(&norm, graph, &sr_ml::SchcParams { num_clusters: NUM_CLUSTERS })
            .expect("schc")
    });
    let train_secs = start.elapsed().as_secs_f64();

    let cell_labels =
        units.cell_to_unit.iter().map(|u| u.map(|u| res.labels[u as usize])).collect();
    ClusterResult { train_secs, peak_bytes, cell_labels }
}

/// Number of connected components of a unit graph (union-find).
fn num_components(adj: &AdjacencyList) -> usize {
    let n = adj.len();
    let mut parent: Vec<u32> = (0..n as u32).collect();
    fn find(parent: &mut [u32], mut x: u32) -> u32 {
        while parent[x as usize] != x {
            parent[x as usize] = parent[parent[x as usize] as usize];
            x = parent[x as usize];
        }
        x
    }
    for i in 0..n as u32 {
        for &j in adj.neighbors(i) {
            let (a, b) = (find(&mut parent, i), find(&mut parent, j));
            if a != b {
                parent[a as usize] = b;
            }
        }
    }
    (0..n as u32).map(|i| find(&mut parent, i)).collect::<std::collections::HashSet<_>>().len()
}

/// Symmetrized k-nearest-neighbor graph over centroids (brute force; the
/// sampled unit sets this serves are modest).
fn knn_adjacency(centroids: &[(f64, f64)], k: usize) -> AdjacencyList {
    let n = centroids.len();
    let mut neighbors: Vec<Vec<u32>> = vec![Vec::new(); n];
    let mut dists: Vec<(f64, u32)> = Vec::with_capacity(n);
    for i in 0..n {
        dists.clear();
        let (la, lo) = centroids[i];
        for (j, &(lb, lj)) in centroids.iter().enumerate() {
            if j == i {
                continue;
            }
            let d = (la - lb) * (la - lb) + (lo - lj) * (lo - lj);
            dists.push((d, j as u32));
        }
        let kk = k.min(dists.len());
        if kk > 0 {
            dists.select_nth_unstable_by(kk - 1, |a, b| a.0.partial_cmp(&b.0).expect("finite"));
            for &(_, j) in &dists[..kk] {
                neighbors[i].push(j);
            }
        }
    }
    // Symmetrize.
    for i in 0..n {
        let ns = neighbors[i].clone();
        for j in ns {
            if !neighbors[j as usize].contains(&(i as u32)) {
                neighbors[j as usize].push(i as u32);
            }
        }
    }
    AdjacencyList::from_neighbors(neighbors)
}

/// Per-column max-normalization of feature rows (clustering treats
/// attributes equally, like the core framework does).
fn normalize_rows(rows: &[Vec<f64>]) -> Vec<Vec<f64>> {
    if rows.is_empty() {
        return Vec::new();
    }
    let p = rows[0].len();
    let mut maxes = vec![0.0f64; p];
    for r in rows {
        for (m, v) in maxes.iter_mut().zip(r) {
            *m = m.max(v.abs());
        }
    }
    rows.iter()
        .map(|r| r.iter().zip(&maxes).map(|(v, m)| if *m > 0.0 { v / m } else { 0.0 }).collect())
        .collect()
}
