//! The common "unit set" a training pipeline consumes, regardless of which
//! reduction (or none) produced it.

use sr_baselines::ReducedDataset;
use sr_core::PreparedTrainingData;
use sr_grid::{AdjacencyList, AggType, GridDataset};

/// One training instance per unit: features, centroid, adjacency, and the
/// cell→unit mapping needed for Table IV's cell-level agreement scoring.
///
/// Features are stored in **per-cell intensity units**: `Sum`-aggregated
/// attributes of multi-cell units are divided by the number of aggregated
/// cells (the §III-C reconstruction convention). This keeps feature and
/// error scales comparable across the original grid, the re-partitioned
/// grid, and every baseline, regardless of unit size.
#[derive(Debug, Clone)]
pub struct Units {
    /// Feature rows (all attributes, target included), intensity-scaled.
    pub features: Vec<Vec<f64>>,
    /// Geographic centroids.
    pub centroids: Vec<(f64, f64)>,
    /// Unit adjacency with binary weights.
    pub adjacency: AdjacencyList,
    /// For every grid cell, the unit representing it (`None` = null cell).
    pub cell_to_unit: Vec<Option<u32>>,
    /// Number of cells each unit represents — the weight test metrics use
    /// so that every method's errors are expressed per represented cell.
    pub weights: Vec<f64>,
}

/// Divides `Sum` attribute columns by the per-unit aggregation count.
fn to_intensity(
    mut features: Vec<Vec<f64>>,
    agg_types: &[AggType],
    agg_counts: impl Fn(usize) -> usize,
) -> Vec<Vec<f64>> {
    for (u, row) in features.iter_mut().enumerate() {
        let count = agg_counts(u).max(1) as f64;
        if count == 1.0 {
            continue;
        }
        for (v, agg) in row.iter_mut().zip(agg_types) {
            if *agg == AggType::Sum {
                *v /= count;
            }
        }
    }
    features
}

impl Units {
    /// The unreduced baseline: every valid cell is a unit.
    pub fn from_grid(grid: &GridDataset) -> Self {
        let mut features = Vec::with_capacity(grid.num_valid_cells());
        let mut centroids = Vec::with_capacity(grid.num_valid_cells());
        let mut cell_to_unit = vec![None; grid.num_cells()];
        for (u, id) in grid.valid_cells().enumerate() {
            features.push(grid.features_unchecked(id).to_vec());
            centroids.push(grid.cell_centroid(id));
            cell_to_unit[id as usize] = Some(u as u32);
        }
        let adjacency = AdjacencyList::rook_from_grid(grid).restrict(&grid.valid_mask());
        let weights = vec![1.0; features.len()];
        Units { features, centroids, adjacency, cell_to_unit, weights }
    }

    /// Units from the re-partitioning framework's prepared training data.
    pub fn from_prepared(p: &PreparedTrainingData, rep: &sr_core::Repartitioned) -> Self {
        // Dense unit index per (valid) group id.
        let mut unit_of_group = vec![u32::MAX; rep.num_groups()];
        for (u, &gid) in p.group_ids.iter().enumerate() {
            unit_of_group[gid as usize] = u as u32;
        }
        let partition = rep.partition();
        let n_cells = partition.rows() * partition.cols();
        let cell_to_unit = (0..n_cells)
            .map(|c| {
                let g = partition.group_of(c as u32);
                let u = unit_of_group[g as usize];
                (u != u32::MAX).then_some(u)
            })
            .collect();
        let features = to_intensity(p.features.clone(), rep.agg_types(), |u| p.group_sizes[u]);
        let weights = p.group_sizes.iter().map(|&s| s as f64).collect();
        Units {
            features,
            centroids: p.centroids.clone(),
            adjacency: p.adjacency.clone(),
            cell_to_unit,
            weights,
        }
    }

    /// Units from a baseline reduction. `agg_types` comes from the source
    /// grid.
    pub fn from_reduced(r: &ReducedDataset, agg_types: &[AggType]) -> Self {
        let features = to_intensity(r.features.clone(), agg_types, |u| r.agg_counts[u]);
        let weights = r.unit_sizes.iter().map(|&s| s as f64).collect();
        Units {
            features,
            centroids: r.centroids.clone(),
            adjacency: r.adjacency.clone(),
            cell_to_unit: r.cell_to_unit.clone(),
            weights,
        }
    }

    /// Number of units.
    pub fn len(&self) -> usize {
        self.features.len()
    }

    /// Whether the unit set is empty.
    pub fn is_empty(&self) -> bool {
        self.features.is_empty()
    }

    /// Splits off the target column: returns `(X rows, y)`.
    pub fn split_target(&self, target_attr: usize) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut xs = Vec::with_capacity(self.features.len());
        let mut ys = Vec::with_capacity(self.features.len());
        for row in &self.features {
            let mut x = Vec::with_capacity(row.len().saturating_sub(1));
            for (k, &v) in row.iter().enumerate() {
                if k == target_attr {
                    ys.push(v);
                } else {
                    x.push(v);
                }
            }
            xs.push(x);
        }
        (xs, ys)
    }
}
