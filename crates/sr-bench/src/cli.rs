//! Minimal argument parsing shared by the experiment binaries.
//!
//! Convention: `--size <mini|tiny|small|36k|78k|100k|RxC>`, `--seed <u64>`,
//! `--quick` (shrink sweeps for smoke runs), `--help`.

use sr_datasets::GridSize;

/// Parsed experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExpConfig {
    /// Grid size for the experiment (each binary has its own default).
    pub size: GridSize,
    /// Whether the caller passed `--size` explicitly.
    pub size_overridden: bool,
    /// Master seed for dataset generation and splits.
    pub seed: u64,
    /// Smoke-run mode: fewer sweep points.
    pub quick: bool,
}

impl ExpConfig {
    /// Parses `std::env::args`, exiting with usage on `--help` or malformed
    /// input. `default_size` is the binary's preferred grid size.
    pub fn parse(binary: &str, default_size: GridSize) -> ExpConfig {
        let mut cfg =
            ExpConfig { size: default_size, size_overridden: false, seed: 42, quick: false };
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            match args[i].as_str() {
                "--size" => {
                    i += 1;
                    let v = args.get(i).unwrap_or_else(|| usage(binary));
                    cfg.size = parse_size(v).unwrap_or_else(|| usage(binary));
                    cfg.size_overridden = true;
                }
                "--seed" => {
                    i += 1;
                    let v = args.get(i).unwrap_or_else(|| usage(binary));
                    cfg.seed = v.parse().unwrap_or_else(|_| usage(binary));
                }
                "--quick" => cfg.quick = true,
                "--help" | "-h" => usage(binary),
                _ => usage(binary),
            }
            i += 1;
        }
        cfg
    }
}

/// Parses a size token.
pub fn parse_size(token: &str) -> Option<GridSize> {
    match token {
        "mini" => Some(GridSize::Mini),
        "tiny" => Some(GridSize::Tiny),
        "small" => Some(GridSize::Small),
        "36k" => Some(GridSize::Cells36k),
        "78k" => Some(GridSize::Cells78k),
        "100k" => Some(GridSize::Cells100k),
        other => {
            let (r, c) = other.split_once('x')?;
            Some(GridSize::Custom(r.parse().ok()?, c.parse().ok()?))
        }
    }
}

fn usage(binary: &str) -> ! {
    eprintln!("usage: {binary} [--size mini|tiny|small|36k|78k|100k|RxC] [--seed N] [--quick]");
    std::process::exit(2);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn size_tokens_parse() {
        assert_eq!(parse_size("tiny"), Some(GridSize::Tiny));
        assert_eq!(parse_size("100k"), Some(GridSize::Cells100k));
        assert_eq!(parse_size("12x34"), Some(GridSize::Custom(12, 34)));
        assert_eq!(parse_size("bogus"), None);
        assert_eq!(parse_size("12y34"), None);
    }
}
