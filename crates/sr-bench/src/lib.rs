//! Shared infrastructure for the experiment binaries (one binary per paper
//! table/figure — see DESIGN.md's per-experiment index).
//!
//! The pieces: [`Units`] normalizes "a training set" across the three data
//! sources the paper compares (original grid, re-partitioned grid, baseline
//! reductions); [`pipeline`] runs one model on one unit set with wall-time
//! and peak-memory instrumentation; [`cli`] parses the tiny
//! `--size/--seed/--quick` argument convention the binaries share; and
//! [`report`] prints aligned text tables.

pub mod cli;
pub mod pipeline;
pub mod report;
pub mod units;

pub use cli::ExpConfig;
pub use pipeline::{
    classification, clustering, kriging_run, regression, ClassModel, ClassResult, ClusterResult,
    KrigingResult, RegModel, RegResult,
};
pub use units::Units;

use sr_core::{IterationStrategy, RepartitionConfig, RepartitionOutcome, Repartitioner};
use sr_grid::GridDataset;

/// Re-partitions `grid` at `theta` with the strategy appropriate for the
/// grid's size: the paper-faithful every-distinct walk for small grids, the
/// strided walk with binary-search backoff for large ones (DESIGN.md,
/// substitution 5).
pub fn repartition_auto(grid: &GridDataset, theta: f64) -> RepartitionOutcome {
    let strategy = if grid.num_cells() > 2_000 {
        IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 }
    } else {
        IterationStrategy::EveryDistinct
    };
    let cfg = RepartitionConfig::new(theta)
        .expect("thresholds are validated by callers")
        .with_strategy(strategy);
    Repartitioner::with_config(cfg)
        .expect("config is valid")
        .run(grid)
        .expect("re-partitioning is total for valid thresholds")
}

/// The IFL thresholds the paper evaluates throughout §IV.
pub const PAPER_THRESHOLDS: [f64; 3] = [0.05, 0.10, 0.15];

/// The four reduction methods compared in Tables II–IV, each reduced to the
/// *same* unit count: the paper sets the baselines' target
/// samples/regions/clusters to the cell-group count the re-partitioning
/// framework produced at the given threshold (§IV-A3).
pub fn all_reductions(grid: &GridDataset, theta: f64, seed: u64) -> Vec<(&'static str, Units)> {
    let out = repartition_auto(grid, theta);
    let prep = sr_core::PreparedTrainingData::from_repartitioned(&out.repartitioned);
    let rp_units = Units::from_prepared(&prep, &out.repartitioned);
    let t = rp_units.len().max(2);

    let sampling = sr_baselines::spatial_sampling(grid, t, seed).expect("valid target count");
    let regional = sr_baselines::regionalize(grid, t, seed).expect("valid target count");
    let cluster = sr_baselines::contiguous_clustering(grid, t).expect("valid target count");

    let aggs = grid.agg_types();
    vec![
        ("Re-partitioning", rp_units),
        ("Sampling", Units::from_reduced(&sampling, aggs)),
        ("Regionalization", Units::from_reduced(&regional, aggs)),
        ("Clustering", Units::from_reduced(&cluster, aggs)),
    ]
}

#[cfg(test)]
mod tests;
