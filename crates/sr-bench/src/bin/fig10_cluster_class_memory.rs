//! Figure 10: peak-memory reduction for the classification models and the
//! SCHC clustering application — the same sweep as Fig. 9 with peak live
//! bytes instead of wall time.
//!
//! Paper reference points: clustering memory reduction 11–42% at θ = 0.05;
//! consistent reductions for both classifiers.
//!
//! Run: `cargo run -p sr-bench --release --bin fig10_cluster_class_memory`

use sr_bench::report::{fmt_mib, fmt_reduction, Table};
use sr_bench::{
    classification, clustering, repartition_auto, ClassModel, ExpConfig, Units, PAPER_THRESHOLDS,
};
use sr_core::PreparedTrainingData;
use sr_datasets::{Dataset, GridSize};

#[global_allocator]
static ALLOC: sr_mem::TrackingAllocator = sr_mem::TrackingAllocator;

fn main() {
    let cfg = ExpConfig::parse("fig10_cluster_class_memory", GridSize::Small);

    println!("== Figure 10: classification & clustering peak memory ==");
    println!("(grid: {} cells; peak live bytes during the fit)\n", cfg.size.num_cells());

    println!("-- Classification (Figs. 10a/10b) --");
    let mut table = Table::new(&[
        "dataset",
        "model",
        "original",
        "theta=0.05",
        "(saved)",
        "theta=0.10",
        "(saved)",
        "theta=0.15",
        "(saved)",
    ]);
    for ds in Dataset::MULTIVARIATE {
        let grid = ds.generate(cfg.size, cfg.seed);
        let orig_units = Units::from_grid(&grid);
        let reduced: Vec<Units> = PAPER_THRESHOLDS
            .iter()
            .map(|&theta| {
                let out = repartition_auto(&grid, theta);
                let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
                Units::from_prepared(&prep, &out.repartitioned)
            })
            .collect();
        for model in ClassModel::ALL {
            let orig = classification(&orig_units, ds.target_attr(), model, cfg.seed);
            let mut row =
                vec![ds.name().to_string(), model.name().to_string(), fmt_mib(orig.peak_bytes)];
            for units in &reduced {
                let r = classification(units, ds.target_attr(), model, cfg.seed);
                row.push(fmt_mib(r.peak_bytes));
                row.push(fmt_reduction(orig.peak_bytes as f64, r.peak_bytes as f64));
            }
            table.row(row);
        }
    }
    table.print();

    println!("\n-- Spatially constrained hierarchical clustering (Fig. 10c) --");
    let mut table = Table::new(&[
        "dataset",
        "original",
        "theta=0.05",
        "(saved)",
        "theta=0.10",
        "(saved)",
        "theta=0.15",
        "(saved)",
    ]);
    for ds in Dataset::ALL {
        let grid = ds.generate(cfg.size, cfg.seed);
        let orig_units = Units::from_grid(&grid);
        let orig = clustering(&orig_units);
        let mut row = vec![ds.name().to_string(), fmt_mib(orig.peak_bytes)];
        for &theta in &PAPER_THRESHOLDS {
            let out = repartition_auto(&grid, theta);
            let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
            let units = Units::from_prepared(&prep, &out.repartitioned);
            let r = clustering(&units);
            row.push(fmt_mib(r.peak_bytes));
            row.push(fmt_reduction(orig.peak_bytes as f64, r.peak_bytes as f64));
        }
        table.row(row);
    }
    table.print();
}
