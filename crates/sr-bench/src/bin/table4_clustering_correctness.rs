//! Table IV: clustering correctness — the percentage of cells assigned to
//! matching clusters when SCHC runs on the original grid vs on each reduced
//! dataset (labels projected back to cells, aligned by maximum overlap).
//!
//! Paper reference shape: re-partitioning 95–99.5%, always the best;
//! sampling the worst (87–96%); regionalization and clustering baselines in
//! between; correctness decays as θ grows.
//!
//! Run: `cargo run -p sr-bench --release --bin table4_clustering_correctness`

use sr_bench::report::Table;
use sr_bench::{all_reductions, clustering, ExpConfig, Units, PAPER_THRESHOLDS};
use sr_datasets::{Dataset, GridSize};
use sr_ml::cluster_agreement;

#[global_allocator]
static ALLOC: sr_mem::TrackingAllocator = sr_mem::TrackingAllocator;

fn main() {
    let cfg = ExpConfig::parse("table4_clustering_correctness", GridSize::Small);

    println!("== Table IV: clustering correctness (%) vs original grid ==");
    println!(
        "(grid: {} cells; {} clusters)\n",
        cfg.size.num_cells(),
        sr_bench::pipeline::NUM_CLUSTERS
    );

    let mut table = Table::new(&["Dataset", "Method", "IFL = 0.05", "IFL = 0.1", "IFL = 0.15"]);
    for ds in Dataset::ALL {
        let grid = ds.generate(cfg.size, cfg.seed);
        let orig_labels = clustering(&Units::from_grid(&grid)).cell_labels;

        // method -> per-theta correctness
        let methods = ["Re-partitioning", "Sampling", "Regionalization", "Clustering"];
        let mut scores: Vec<Vec<String>> = vec![Vec::new(); methods.len()];
        for &theta in &PAPER_THRESHOLDS {
            for (mi, (_, units)) in all_reductions(&grid, theta, cfg.seed).into_iter().enumerate() {
                let reduced_labels = clustering(&units).cell_labels;
                let score = cell_agreement(&orig_labels, &reduced_labels);
                scores[mi].push(format!("{score:.2}"));
            }
        }
        for (mi, method) in methods.iter().enumerate() {
            table.row(vec![
                ds.name().to_string(),
                method.to_string(),
                scores[mi][0].clone(),
                scores[mi][1].clone(),
                scores[mi][2].clone(),
            ]);
        }
    }
    table.print();
}

/// Agreement over cells labeled in both clusterings.
fn cell_agreement(a: &[Option<usize>], b: &[Option<usize>]) -> f64 {
    let mut la = Vec::new();
    let mut lb = Vec::new();
    for (x, y) in a.iter().zip(b) {
        if let (Some(x), Some(y)) = (x, y) {
            la.push(*x);
            lb.push(*y);
        }
    }
    cluster_agreement(&la, &lb)
}
