//! Ablation: the paper-faithful every-distinct heap walk vs the strided
//! walk with binary-search backoff (DESIGN.md, substitution 5).
//!
//! Reports, per dataset and threshold: extraction passes, wall time, final
//! group count, and achieved IFL for both strategies. The claim under test:
//! the strided walk reaches (nearly) the same partition in O(log) passes.
//!
//! Run: `cargo run -p sr-bench --release --bin ablation_iteration_strategy`

use sr_bench::report::{fmt_secs, Table};
use sr_bench::{ExpConfig, PAPER_THRESHOLDS};
use sr_core::{IterationStrategy, RepartitionConfig, Repartitioner};
use sr_datasets::{Dataset, GridSize};
use std::time::Instant;

fn main() {
    let cfg = ExpConfig::parse("ablation_iteration_strategy", GridSize::Custom(60, 60));
    let datasets = if cfg.quick {
        vec![Dataset::TaxiMultivariate]
    } else {
        vec![Dataset::TaxiMultivariate, Dataset::HomeSalesMultivariate, Dataset::VehiclesUnivariate]
    };

    println!("== Ablation: iteration strategy (faithful vs strided) ==");
    println!("(grid: {} cells)\n", cfg.size.num_cells());

    let mut table =
        Table::new(&["dataset", "theta", "strategy", "passes", "time", "groups", "IFL"]);
    for ds in &datasets {
        let grid = ds.generate(cfg.size, cfg.seed);
        for &theta in &PAPER_THRESHOLDS {
            for (name, strategy) in [
                ("every-distinct", IterationStrategy::EveryDistinct),
                ("strided", IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 }),
            ] {
                let config =
                    RepartitionConfig::new(theta).expect("valid threshold").with_strategy(strategy);
                let start = Instant::now();
                let out = Repartitioner::with_config(config)
                    .expect("valid config")
                    .run(&grid)
                    .expect("run succeeds");
                let secs = start.elapsed().as_secs_f64();
                table.row(vec![
                    ds.name().to_string(),
                    format!("{theta:.2}"),
                    name.to_string(),
                    out.iterations.len().to_string(),
                    fmt_secs(secs),
                    out.repartitioned.num_groups().to_string(),
                    format!("{:.4}", out.repartitioned.ifl()),
                ]);
            }
        }
    }
    table.print();
}
