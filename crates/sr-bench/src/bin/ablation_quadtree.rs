//! Ablation: the paper's bottom-up greedy merging (Algorithm 1) vs a
//! top-down quadtree splitter producing the same class of rectangular
//! partitions.
//!
//! At each min-adjacent variation both produce homogeneous rectangles; the
//! question is how many. The greedy can anchor rectangles anywhere, while
//! the quadtree is pinned to recursive halving, so the greedy should need
//! fewer groups for the same bound — quantified here along with the IFL
//! each achieves.
//!
//! Run: `cargo run -p sr-bench --release --bin ablation_quadtree`

use sr_bench::report::{fmt_secs, Table};
use sr_bench::ExpConfig;
use sr_core::{allocate_features, extract_cell_groups, partition_ifl, quadtree_partition};
use sr_datasets::{Dataset, GridSize};
use sr_grid::{normalize_attributes, IflOptions};
use std::time::Instant;

fn main() {
    let cfg = ExpConfig::parse("ablation_quadtree", GridSize::Custom(96, 96));

    println!("== Ablation: greedy merging (Algorithm 1) vs quadtree splitting ==");
    println!("(grid: {} cells)\n", cfg.size.num_cells());

    let mut table = Table::new(&["dataset", "variation", "method", "groups", "IFL", "time"]);
    for ds in
        [Dataset::TaxiMultivariate, Dataset::HomeSalesMultivariate, Dataset::VehiclesUnivariate]
    {
        let grid = ds.generate(cfg.size, cfg.seed);
        let norm = normalize_attributes(&grid);
        for variation in [0.01, 0.02, 0.05] {
            for (name, run) in [("greedy", true), ("quadtree", false)] {
                let start = Instant::now();
                let partition = if run {
                    extract_cell_groups(&norm, variation)
                } else {
                    quadtree_partition(&norm, variation)
                };
                let secs = start.elapsed().as_secs_f64();
                let feats = allocate_features(&grid, &partition);
                let ifl = partition_ifl(&grid, &partition, &feats, IflOptions::default());
                table.row(vec![
                    ds.name().to_string(),
                    format!("{variation:.2}"),
                    name.to_string(),
                    partition.num_groups().to_string(),
                    format!("{ifl:.4}"),
                    fmt_secs(secs),
                ]);
            }
        }
    }
    table.print();
    println!("\nFewer groups at the same variation bound = better reduction; the");
    println!("greedy's freedom to anchor rectangles anywhere is what Algorithm 1 buys.");
}
