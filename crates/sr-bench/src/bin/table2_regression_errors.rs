//! Table II: prediction errors of the spatial regression and kriging
//! models — original dataset vs four reduction methods (re-partitioning,
//! sampling, regionalization, clustering) at three IFL thresholds.
//!
//! Sub-tables: (a) spatial lag and (b) spatial error report SE of
//! regression and pseudo-R²; (c) GWR, (d) SVR, (e) random forest, and
//! (f) kriging report MAE and RMSE.
//!
//! Paper reference shape: re-partitioning always closest to the original
//! (≤ 4–5% degradation at θ ≤ 0.1), beating the baselines by 3–14% on
//! regression; sampling is the worst.
//!
//! Run: `cargo run -p sr-bench --release --bin table2_regression_errors`

use sr_bench::report::Table;
use sr_bench::{
    all_reductions, kriging_run, regression, ExpConfig, RegModel, Units, PAPER_THRESHOLDS,
};
use sr_datasets::{Dataset, GridSize};

/// Metrics are averaged over this many train/test splits to damp
/// split-to-split variance at the reduced experiment sizes.
const SPLITS: u64 = 3;

fn avg_regression(
    units: &Units,
    target: usize,
    model: RegModel,
    seed: u64,
    se_r2: bool,
) -> (f64, f64) {
    let mut a = 0.0;
    let mut b = 0.0;
    for s in 0..SPLITS {
        let r = regression(units, target, model, seed + s);
        let (v1, v2) = if se_r2 { (r.se, r.r2) } else { (r.mae, r.rmse) };
        a += v1;
        b += v2;
    }
    (a / SPLITS as f64, b / SPLITS as f64)
}

fn avg_kriging(units: &Units, seed: u64) -> (f64, f64) {
    let mut a = 0.0;
    let mut b = 0.0;
    for s in 0..SPLITS {
        let r = kriging_run(units, seed + s);
        a += r.mae;
        b += r.rmse;
    }
    (a / SPLITS as f64, b / SPLITS as f64)
}

#[global_allocator]
static ALLOC: sr_mem::TrackingAllocator = sr_mem::TrackingAllocator;

fn main() {
    let cfg = ExpConfig::parse("table2_regression_errors", GridSize::Tiny);
    let models: &[RegModel] = if cfg.quick { &[RegModel::Lag] } else { &RegModel::ALL };

    println!("== Table II: prediction errors (original vs reduced datasets) ==");
    println!("(grid: {} cells)\n", cfg.size.num_cells());

    for &model in models {
        let uses_se_r2 = matches!(model, RegModel::Lag | RegModel::ErrorModel);
        let (m1, m2) = if uses_se_r2 { ("SE", "R2") } else { ("MAE", "RMSE") };
        println!("-- Table II: {} --", model.name());
        let mut table = Table::new(&["dataset", "theta", "method", m1, m2]);
        for ds in Dataset::MULTIVARIATE {
            let grid = ds.generate(cfg.size, cfg.seed);
            let (o1, o2) = avg_regression(
                &Units::from_grid(&grid),
                ds.target_attr(),
                model,
                cfg.seed,
                uses_se_r2,
            );
            table.row(vec![
                ds.name().to_string(),
                "-".into(),
                "Original".into(),
                format!("{o1:.3}"),
                format!("{o2:.3}"),
            ]);
            for &theta in &PAPER_THRESHOLDS {
                for (method, units) in all_reductions(&grid, theta, cfg.seed) {
                    let (v1, v2) =
                        avg_regression(&units, ds.target_attr(), model, cfg.seed, uses_se_r2);
                    table.row(vec![
                        ds.name().to_string(),
                        format!("{theta:.2}"),
                        method.to_string(),
                        format!("{v1:.3}"),
                        format!("{v2:.3}"),
                    ]);
                }
            }
        }
        table.print();
        println!();
    }

    println!("-- Table II(f): Spatial Kriging (univariate datasets) --");
    let mut table = Table::new(&["dataset", "theta", "method", "MAE", "RMSE"]);
    for ds in Dataset::UNIVARIATE {
        let grid = ds.generate(cfg.size, cfg.seed);
        let (omae, ormse) = avg_kriging(&Units::from_grid(&grid), cfg.seed);
        table.row(vec![
            ds.name().to_string(),
            "-".into(),
            "Original".into(),
            format!("{omae:.3}"),
            format!("{ormse:.3}"),
        ]);
        for &theta in &PAPER_THRESHOLDS {
            for (method, units) in all_reductions(&grid, theta, cfg.seed) {
                let (kmae, krmse) = avg_kriging(&units, cfg.seed);
                table.row(vec![
                    ds.name().to_string(),
                    format!("{theta:.2}"),
                    method.to_string(),
                    format!("{kmae:.3}"),
                    format!("{krmse:.3}"),
                ]);
            }
        }
    }
    table.print();
}
