//! Ablation: Algorithm 2's best-of mean/mode representative vs a plain
//! mean for `Avg`-aggregated attributes.
//!
//! The paper argues (§III-A3) that the most frequent value sometimes beats
//! the average for local loss. This ablation quantifies the effect: the IFL
//! of the same partitions when group features use the plain mean only,
//! compared against the full Algorithm 2. Lower IFL at the same partition
//! means more merging headroom under a fixed threshold.
//!
//! Run: `cargo run -p sr-bench --release --bin ablation_allocator`

use sr_bench::report::Table;
use sr_bench::ExpConfig;
use sr_core::{extract_cell_groups, partition_ifl};
use sr_datasets::{Dataset, GridSize};
use sr_grid::{local_loss, normalize_attributes, AggType, IflOptions};

fn main() {
    let cfg = ExpConfig::parse("ablation_allocator", GridSize::Custom(80, 80));

    println!("== Ablation: feature allocator (best-of mean/mode vs mean-only) ==");
    println!("(grid: {} cells)\n", cfg.size.num_cells());

    let mut table = Table::new(&[
        "dataset",
        "variation",
        "groups",
        "IFL alg2",
        "IFL mean-only",
        "mode wins (%)",
    ]);
    for ds in Dataset::ALL {
        let grid = ds.generate(cfg.size, cfg.seed);
        let norm = normalize_attributes(&grid);
        // Sweep a few extraction granularities directly.
        for variation in [0.01, 0.03, 0.06] {
            let partition = extract_cell_groups(&norm, variation);
            let alg2 = sr_core::allocate_features(&grid, &partition);
            let ifl_alg2 = partition_ifl(&grid, &partition, &alg2, IflOptions::default());

            // Mean-only allocation for Avg attributes.
            let mut mode_wins = 0usize;
            let mut avg_groups = 0usize;
            let mut mean_only = Vec::with_capacity(partition.num_groups());
            for gid in 0..partition.num_groups() as u32 {
                let mut fv = vec![0.0f64; grid.num_attrs()];
                let mut any = false;
                for (k, slot) in fv.iter_mut().enumerate() {
                    let values: Vec<f64> = partition
                        .cells_iter(gid)
                        .filter(|&c| grid.is_valid(c))
                        .map(|c| grid.value(c, k))
                        .collect();
                    if values.is_empty() {
                        continue;
                    }
                    any = true;
                    *slot = match grid.agg_types()[k] {
                        AggType::Sum => values.iter().sum(),
                        AggType::Mode => values[0],
                        AggType::Avg => {
                            let mean = values.iter().sum::<f64>() / values.len() as f64;
                            let mean = if grid.integer_attrs()[k] { mean.round() } else { mean };
                            // Track how often Algorithm 2 disagreed (mode won).
                            if values.len() > 1 {
                                avg_groups += 1;
                                if let Some(a2) = &alg2[gid as usize] {
                                    if (a2[k] - mean).abs() > 1e-12
                                        && local_loss(&values, a2[k]) < local_loss(&values, mean)
                                    {
                                        mode_wins += 1;
                                    }
                                }
                            }
                            mean
                        }
                    };
                }
                mean_only.push(any.then_some(fv));
            }
            let ifl_mean = partition_ifl(&grid, &partition, &mean_only, IflOptions::default());
            let win_pct =
                if avg_groups > 0 { 100.0 * mode_wins as f64 / avg_groups as f64 } else { 0.0 };
            table.row(vec![
                ds.name().to_string(),
                format!("{variation:.2}"),
                partition.num_groups().to_string(),
                format!("{ifl_alg2:.4}"),
                format!("{ifl_mean:.4}"),
                format!("{win_pct:.1}"),
            ]);
        }
    }
    table.print();
    println!("\nIFL alg2 ≤ IFL mean-only everywhere: the best-of selection never hurts.");
}
