//! Figure 5: spatial-cell reduction achieved by the re-partitioning
//! framework, per dataset (a–f), per initial cell count (≈36k/78k/100k),
//! per IFL threshold (0.05 / 0.10 / 0.15).
//!
//! Paper reference points: ≈30% reduction at θ = 0.05, ≈37% at 0.1,
//! ≈42% at 0.15, roughly independent of #attributes.
//!
//! Run: `cargo run -p sr-bench --release --bin fig5_cell_reduction`
//! (`--quick` restricts to the 36k grids; `--size` overrides the sweep with
//! a single size).

use sr_bench::report::Table;
use sr_bench::{repartition_auto, ExpConfig, PAPER_THRESHOLDS};
use sr_datasets::{Dataset, GridSize};

fn main() {
    let cfg = ExpConfig::parse("fig5_cell_reduction", GridSize::Cells36k);
    let sizes: Vec<GridSize> = if cfg.size_overridden {
        vec![cfg.size]
    } else if cfg.quick {
        vec![GridSize::Cells36k]
    } else {
        GridSize::PAPER_SIZES.to_vec()
    };

    println!("== Figure 5: cell reduction vs information-loss threshold ==\n");
    for ds in Dataset::ALL {
        println!("-- {} --", ds.name());
        let mut table = Table::new(&[
            "initial cells",
            "theta",
            "cell-groups",
            "reduction",
            "achieved IFL",
            "iterations",
        ]);
        for &size in &sizes {
            let grid = ds.generate(size, cfg.seed);
            for &theta in &PAPER_THRESHOLDS {
                let out = repartition_auto(&grid, theta);
                table.row(vec![
                    format!("{} ({})", grid.num_cells(), size.label()),
                    format!("{theta:.2}"),
                    out.repartitioned.num_groups().to_string(),
                    format!("{:.1}%", out.cell_reduction() * 100.0),
                    format!("{:.4}", out.repartitioned.ifl()),
                    out.iterations.len().to_string(),
                ]);
            }
        }
        table.print();
        println!();
    }
}
