//! CI bench-threshold gate for the 100k-cell driver.
//!
//! Runs the headline benchmark workload — the 320×320 taxi grid through
//! the strided driver at θ = 0.05 — a few times and enforces two
//! regressions gates:
//!
//! 1. **Absolute**: the best run on the process-global pool (so
//!    `SR_THREADS` applies, and CI exercises the gate at 1 and 4) must
//!    finish within `SR_GATE_MAX_DRIVER_MS` milliseconds.
//! 2. **Fan-out**: a 4-thread pool must never be slower than a 1-thread
//!    pool by more than `SR_GATE_MAX_T4_RATIO` — the regression the
//!    hardware-parallelism cap in `sr-par` exists to prevent.
//!
//! Both thresholds are env-overridable because wall-clock gates are
//! hardware statements: the defaults (250 ms, 1.25×) are sized for the
//! 1-vCPU shared reference container, whose best case for this workload
//! is ~135–160 ms with ±1.5× scheduler drift, and where a 4-thread pool
//! pays a real per-region worker-handoff cost (~5–10%, measured
//! 1.05–1.10×) that multicore hardware does not (docs/PERFORMANCE.md).
//! On a dedicated multi-core box, tighten with
//! `SR_GATE_MAX_DRIVER_MS=120 SR_GATE_MAX_T4_RATIO=1.10`.
//!
//! The timing loop doubles as a determinism check: the t1 and t4 runs
//! must produce bit-identical outcomes, or the timings compare different
//! work and the gate aborts.

use sr_core::{IterationStrategy, RepartitionConfig, RepartitionOutcome, Repartitioner};
use sr_datasets::{Dataset, GridSize};
use std::time::Instant;

/// Samples per timed configuration; the minimum is compared, because on a
/// shared box the minimum is the only statistic that measures the code.
const SAMPLES: usize = 5;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn driver() -> Repartitioner {
    let cfg = RepartitionConfig::new(0.05)
        .unwrap()
        .with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
    Repartitioner::with_config(cfg).unwrap()
}

/// Best-of-[`SAMPLES`] wall clock of one configuration, plus the outcome
/// of the last run for the determinism cross-check.
fn time_best(run: impl Fn() -> RepartitionOutcome) -> (f64, RepartitionOutcome) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let out = run();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.unwrap())
}

fn main() {
    let max_driver_ms = env_f64("SR_GATE_MAX_DRIVER_MS", 250.0);
    let max_t4_ratio = env_f64("SR_GATE_MAX_T4_RATIO", 1.25);

    let grid = Dataset::TaxiMultivariate.generate(GridSize::Custom(320, 320), 1);
    let drv = driver();

    let (global_ms, _) = time_best(|| drv.run(&grid).unwrap());
    let pool1 = sr_par::Pool::new(1);
    let pool4 = sr_par::Pool::new(4);
    let (t1_ms, out1) = time_best(|| drv.run_with_pool(&grid, &pool1).unwrap());
    let (t4_ms, out4) = time_best(|| drv.run_with_pool(&grid, &pool4).unwrap());

    println!(
        "bench_gate: 320x320_100k driver best-of-{SAMPLES}: global {global_ms:.1} ms, \
         t1 {t1_ms:.1} ms, t4 {t4_ms:.1} ms (gates: ≤{max_driver_ms:.0} ms, t4 ≤ {max_t4_ratio:.2}×t1)"
    );

    // Determinism cross-check: the two pools must have done identical work.
    let (r1, r4) = (&out1.repartitioned, &out4.repartitioned);
    assert_eq!(r1.num_groups(), r4.num_groups(), "t1/t4 group counts differ");
    assert_eq!(r1.ifl().to_bits(), r4.ifl().to_bits(), "t1/t4 IFL bits differ");
    assert_eq!(out1.iterations.len(), out4.iterations.len(), "t1/t4 iteration counts differ");

    let mut failed = false;
    if global_ms > max_driver_ms {
        eprintln!(
            "bench_gate: FAIL — driver {global_ms:.1} ms exceeds SR_GATE_MAX_DRIVER_MS={max_driver_ms:.0}"
        );
        failed = true;
    }
    if t4_ms > t1_ms * max_t4_ratio {
        eprintln!(
            "bench_gate: FAIL — t4 {t4_ms:.1} ms exceeds {max_t4_ratio:.2}× t1 ({t1_ms:.1} ms): \
             pool fan-out is costing wall-clock"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_gate: ok");
}
