//! CI bench-threshold gate for the 100k-cell driver.
//!
//! Runs the headline benchmark workload — the 320×320 taxi grid through
//! the strided driver at θ = 0.05 — a few times and enforces two
//! regressions gates:
//!
//! 1. **Absolute**: the best run on the process-global pool (so
//!    `SR_THREADS` applies, and CI exercises the gate at 1 and 4) must
//!    finish within `SR_GATE_MAX_DRIVER_MS` milliseconds.
//! 2. **Fan-out**: a 4-thread pool must never be slower than a 1-thread
//!    pool by more than `SR_GATE_MAX_T4_RATIO` — the regression the
//!    hardware-parallelism cap in `sr-par` exists to prevent.
//!
//! 3. **Incremental**: one localized re-partition round over a 1%-dirty
//!    320×320 grid (value writes + scan-cache patch +
//!    [`Repartitioner::run_localized`] on a warmed state) must finish
//!    within `SR_GATE_MAX_INCR_MS` milliseconds — the regression gate for
//!    the dirty-region walk (`docs/PERFORMANCE.md`).
//!
//! All thresholds are env-overridable because wall-clock gates are
//! hardware statements: the defaults (250 ms, 1.25×, 40 ms) are sized for
//! the 1-vCPU shared reference container, whose best case for the driver
//! workload is ~135–160 ms with ±1.5× scheduler drift, and where a
//! 4-thread pool pays a real per-region worker-handoff cost (~5–10%,
//! measured 1.05–1.10×) that multicore hardware does not
//! (docs/PERFORMANCE.md). On a dedicated multi-core box, tighten with
//! `SR_GATE_MAX_DRIVER_MS=120 SR_GATE_MAX_T4_RATIO=1.10
//! SR_GATE_MAX_INCR_MS=15`.
//!
//! The timing loops double as determinism checks: the t1 and t4 runs
//! must produce bit-identical outcomes, and the localized rounds must
//! match a non-localized run over the same patched scan inputs — or the
//! timings compare different work and the gate aborts.

use sr_core::{
    IterationStrategy, LocalizedState, RepartitionConfig, RepartitionOutcome, Repartitioner,
    ScanCache,
};
use sr_datasets::{Dataset, GridSize};
use sr_grid::{CellId, GridDataset, IflOptions};
use std::time::Instant;

/// Samples per timed configuration; the minimum is compared, because on a
/// shared box the minimum is the only statistic that measures the code.
const SAMPLES: usize = 5;

fn env_f64(name: &str, default: f64) -> f64 {
    std::env::var(name).ok().and_then(|v| v.parse().ok()).unwrap_or(default)
}

fn driver() -> Repartitioner {
    let cfg = RepartitionConfig::new(0.05)
        .unwrap()
        .with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
    Repartitioner::with_config(cfg).unwrap()
}

/// Best-of-[`SAMPLES`] wall clock of one configuration, plus the outcome
/// of the last run for the determinism cross-check.
fn time_best(mut run: impl FnMut() -> RepartitionOutcome) -> (f64, RepartitionOutcome) {
    let mut best = f64::INFINITY;
    let mut last = None;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        let out = run();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some(out);
    }
    (best, last.unwrap())
}

/// Deterministic xorshift64* (same generator as the bench suite) so the
/// gate's dirty batches are identical on every machine.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn frac(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

fn main() {
    let max_driver_ms = env_f64("SR_GATE_MAX_DRIVER_MS", 250.0);
    let max_t4_ratio = env_f64("SR_GATE_MAX_T4_RATIO", 1.25);

    let grid = Dataset::TaxiMultivariate.generate(GridSize::Custom(320, 320), 1);
    let drv = driver();

    let (global_ms, _) = time_best(|| drv.run(&grid).unwrap());
    let pool1 = sr_par::Pool::new(1);
    let pool4 = sr_par::Pool::new(4);
    let (t1_ms, out1) = time_best(|| drv.run_with_pool(&grid, &pool1).unwrap());
    let (t4_ms, out4) = time_best(|| drv.run_with_pool(&grid, &pool4).unwrap());

    println!(
        "bench_gate: 320x320_100k driver best-of-{SAMPLES}: global {global_ms:.1} ms, \
         t1 {t1_ms:.1} ms, t4 {t4_ms:.1} ms (gates: ≤{max_driver_ms:.0} ms, t4 ≤ {max_t4_ratio:.2}×t1)"
    );

    // Determinism cross-check: the two pools must have done identical work.
    let (r1, r4) = (&out1.repartitioned, &out4.repartitioned);
    assert_eq!(r1.num_groups(), r4.num_groups(), "t1/t4 group counts differ");
    assert_eq!(r1.ifl().to_bits(), r4.ifl().to_bits(), "t1/t4 IFL bits differ");
    assert_eq!(out1.iterations.len(), out4.iterations.len(), "t1/t4 iteration counts differ");

    // Gate 3: localized incremental rounds on a warmed state — a smooth
    // 320×320 univariate surface with a pinned maximum (so scan updates
    // patch in place), 1% of the cells rewritten per round. Each timed
    // round is the full incremental unit of work: value writes + scan
    // patch + localized driver run.
    let max_incr_ms = env_f64("SR_GATE_MAX_INCR_MS", 40.0);
    let (rows, cols) = (320usize, 320usize);
    let n = rows * cols;
    let mut rng = Rng(0x1745_90D1);
    let mut vals = vec![0.0f64; n];
    for r in 0..rows {
        for c in 0..cols {
            let x = (c as f64 + 0.5) / cols as f64;
            let y = (r as f64 + 0.5) / rows as f64;
            vals[r * cols + c] = 50.0 + 40.0 * x + 25.0 * y + 10.0 * rng.frac();
        }
    }
    vals[0] = 200.0; // pinned maximum: deltas below never move normalization
    let mut igrid = GridDataset::univariate(rows, cols, vals).unwrap();
    let pool = sr_par::Pool::global();
    let mut scan = ScanCache::build(&igrid, IflOptions::default());
    let mut state = LocalizedState::new();
    drv.run_localized(&igrid, &scan, &mut state, &[], pool).unwrap();
    let mut incr_ms = f64::INFINITY;
    let mut last: Option<(Option<f64>, RepartitionOutcome)> = None;
    for _ in 0..SAMPLES {
        let mut dirty: Vec<CellId> = Vec::with_capacity(n / 100);
        let mut writes: Vec<(CellId, f64)> = Vec::with_capacity(n / 100);
        for _ in 0..n / 100 {
            // Never cell 0 — it holds the pinned maximum.
            let id = 1 + (rng.next() % (n - 1) as u64) as CellId;
            writes.push((id, 50.0 + 140.0 * rng.frac()));
            dirty.push(id);
        }
        let hint = state.planned_hint(dirty.len(), n);
        let t = Instant::now();
        for &(id, v) in &writes {
            igrid.set_value(id, 0, v);
        }
        scan.update(&igrid, &dirty);
        let out = drv.run_localized(&igrid, &scan, &mut state, &dirty, pool).unwrap();
        incr_ms = incr_ms.min(t.elapsed().as_secs_f64() * 1e3);
        last = Some((hint, out));
    }
    println!(
        "bench_gate: localized 1%-dirty round best-of-{SAMPLES}: {incr_ms:.1} ms \
         (gate: ≤{max_incr_ms:.0} ms)"
    );

    // Determinism cross-check: the last localized round must equal the
    // batch driver's hinted walk over the same patched grid.
    let (hint, out) = last.unwrap();
    let reference = drv.run_with_pool_warm(&igrid, pool, hint).unwrap();
    let (rl, rr) = (&out.repartitioned, &reference.repartitioned);
    assert_eq!(rl.num_groups(), rr.num_groups(), "localized/batch group counts differ");
    assert_eq!(rl.ifl().to_bits(), rr.ifl().to_bits(), "localized/batch IFL bits differ");
    assert_eq!(
        out.iterations.len(),
        reference.iterations.len(),
        "localized/batch iteration counts differ"
    );

    let mut failed = false;
    if global_ms > max_driver_ms {
        eprintln!(
            "bench_gate: FAIL — driver {global_ms:.1} ms exceeds SR_GATE_MAX_DRIVER_MS={max_driver_ms:.0}"
        );
        failed = true;
    }
    if t4_ms > t1_ms * max_t4_ratio {
        eprintln!(
            "bench_gate: FAIL — t4 {t4_ms:.1} ms exceeds {max_t4_ratio:.2}× t1 ({t1_ms:.1} ms): \
             pool fan-out is costing wall-clock"
        );
        failed = true;
    }
    if incr_ms > max_incr_ms {
        eprintln!(
            "bench_gate: FAIL — localized round {incr_ms:.1} ms exceeds \
             SR_GATE_MAX_INCR_MS={max_incr_ms:.0}"
        );
        failed = true;
    }
    if failed {
        std::process::exit(1);
    }
    println!("bench_gate: ok");
}
