//! Figure 9: training-time reduction for the classification models
//! (gradient boosting, KNN — multivariate datasets) and the SCHC
//! clustering application (all six datasets).
//!
//! Paper reference points: consistent reduction rates for both
//! classifiers; clustering time reduction 28–35% at θ = 0.05, lower on
//! univariate than multivariate datasets.
//!
//! Run: `cargo run -p sr-bench --release --bin fig9_cluster_class_time`

use sr_bench::report::{fmt_reduction, fmt_secs, Table};
use sr_bench::{
    classification, clustering, repartition_auto, ClassModel, ExpConfig, Units, PAPER_THRESHOLDS,
};
use sr_core::PreparedTrainingData;
use sr_datasets::{Dataset, GridSize};

#[global_allocator]
static ALLOC: sr_mem::TrackingAllocator = sr_mem::TrackingAllocator;

fn main() {
    let cfg = ExpConfig::parse("fig9_cluster_class_time", GridSize::Small);

    println!("== Figure 9: classification & clustering training time ==");
    println!("(grid: {} cells)\n", cfg.size.num_cells());

    println!("-- Classification (Figs. 9a/9b) --");
    let mut table = Table::new(&[
        "dataset",
        "model",
        "original",
        "theta=0.05",
        "(saved)",
        "theta=0.10",
        "(saved)",
        "theta=0.15",
        "(saved)",
    ]);
    for ds in Dataset::MULTIVARIATE {
        let grid = ds.generate(cfg.size, cfg.seed);
        let orig_units = Units::from_grid(&grid);
        let reduced: Vec<Units> = PAPER_THRESHOLDS
            .iter()
            .map(|&theta| {
                let out = repartition_auto(&grid, theta);
                let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
                Units::from_prepared(&prep, &out.repartitioned)
            })
            .collect();
        for model in ClassModel::ALL {
            let orig = classification(&orig_units, ds.target_attr(), model, cfg.seed);
            let mut row =
                vec![ds.name().to_string(), model.name().to_string(), fmt_secs(orig.train_secs)];
            for units in &reduced {
                let r = classification(units, ds.target_attr(), model, cfg.seed);
                row.push(fmt_secs(r.train_secs));
                row.push(fmt_reduction(orig.train_secs, r.train_secs));
            }
            table.row(row);
        }
    }
    table.print();

    println!("\n-- Spatially constrained hierarchical clustering (Fig. 9c) --");
    let mut table = Table::new(&[
        "dataset",
        "original",
        "theta=0.05",
        "(saved)",
        "theta=0.10",
        "(saved)",
        "theta=0.15",
        "(saved)",
    ]);
    for ds in Dataset::ALL {
        let grid = ds.generate(cfg.size, cfg.seed);
        let orig_units = Units::from_grid(&grid);
        let orig = clustering(&orig_units);
        let mut row = vec![ds.name().to_string(), fmt_secs(orig.train_secs)];
        for &theta in &PAPER_THRESHOLDS {
            let out = repartition_auto(&grid, theta);
            let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
            let units = Units::from_prepared(&prep, &out.repartitioned);
            let r = clustering(&units);
            row.push(fmt_secs(r.train_secs));
            row.push(fmt_reduction(orig.train_secs, r.train_secs));
        }
        table.row(row);
    }
    table.print();
}
