//! Table III: weighted F1-scores of the classification models (gradient
//! boosting, KNN) — original dataset vs the four reduction methods at three
//! IFL thresholds, on the three multivariate datasets with quantile-binned
//! 5-class targets (§IV-C2).
//!
//! Paper reference shape: re-partitioned F1 within a few points of the
//! original and 5–20 points above the baselines; sampling worst.
//!
//! Run: `cargo run -p sr-bench --release --bin table3_classification_f1`

use sr_bench::report::Table;
use sr_bench::{all_reductions, classification, ClassModel, ExpConfig, Units, PAPER_THRESHOLDS};
use sr_datasets::{Dataset, GridSize};

/// Splits averaged per configuration.
const SPLITS: u64 = 3;

fn avg_f1(units: &Units, target: usize, model: ClassModel, seed: u64) -> f64 {
    (0..SPLITS).map(|s| classification(units, target, model, seed + s).f1).sum::<f64>()
        / SPLITS as f64
}

#[global_allocator]
static ALLOC: sr_mem::TrackingAllocator = sr_mem::TrackingAllocator;

fn main() {
    let cfg = ExpConfig::parse("table3_classification_f1", GridSize::Small);

    println!("== Table III: weighted F1 of classification models ==");
    println!("(grid: {} cells; 5 quantile classes)\n", cfg.size.num_cells());

    for model in ClassModel::ALL {
        println!("-- Table III: {} --", model.name());
        let mut table = Table::new(&["dataset", "theta", "method", "F1 score"]);
        for ds in Dataset::MULTIVARIATE {
            let grid = ds.generate(cfg.size, cfg.seed);
            let orig = avg_f1(&Units::from_grid(&grid), ds.target_attr(), model, cfg.seed);
            table.row(vec![
                ds.name().to_string(),
                "-".into(),
                "Original".into(),
                format!("{orig:.3}"),
            ]);
            for &theta in &PAPER_THRESHOLDS {
                for (method, units) in all_reductions(&grid, theta, cfg.seed) {
                    let f1 = avg_f1(&units, ds.target_attr(), model, cfg.seed);
                    table.row(vec![
                        ds.name().to_string(),
                        format!("{theta:.2}"),
                        method.to_string(),
                        format!("{f1:.3}"),
                    ]);
                }
            }
        }
        table.print();
        println!();
    }
}
