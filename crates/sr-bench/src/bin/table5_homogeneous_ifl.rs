//! Table V: information loss of the homogeneous re-partitioning variant
//! (§III-D) after its first iteration — merging 2 rows, 2 columns, or both.
//!
//! Paper reference: IFL > 0.4 on every dataset, far above the largest
//! useful threshold (0.15), which is why the similarity-driven framework is
//! needed.
//!
//! Run: `cargo run -p sr-bench --release --bin table5_homogeneous_ifl`

use sr_bench::report::Table;
use sr_bench::ExpConfig;
use sr_core::homogeneous_ifl;
use sr_datasets::{Dataset, GridSize};

fn main() {
    let cfg = ExpConfig::parse("table5_homogeneous_ifl", GridSize::Cells36k);

    println!("== Table V: information loss for homogeneous grid merging ==\n");
    let mut table = Table::new(&[
        "Dataset",
        "Merging 2 rows",
        "Merging 2 columns",
        "Merging 2 rows & 2 columns",
    ]);
    for ds in Dataset::ALL {
        let grid = ds.generate(cfg.size, cfg.seed);
        let rows2 = homogeneous_ifl(&grid, 2, 1).expect("factor 2 valid");
        let cols2 = homogeneous_ifl(&grid, 1, 2).expect("factor 2 valid");
        let both = homogeneous_ifl(&grid, 2, 2).expect("factor 2 valid");
        table.row(vec![
            ds.name().to_string(),
            format!("{rows2:.3}"),
            format!("{cols2:.3}"),
            format!("{both:.3}"),
        ]);
    }
    table.print();
    println!(
        "\nFor comparison: the similarity-driven framework keeps IFL below the\n\
         user threshold (0.05-0.15) by construction."
    );
}
