//! Figure 8: memory-usage reduction from training on the re-partitioned
//! dataset — the same model × dataset sweep as Fig. 7, measuring peak live
//! allocated bytes during each fit (DESIGN.md, substitution 4).
//!
//! Paper reference points (θ = 0.05): 9.5–47% memory reduction; the
//! biggest savings for the models that consume the most memory (spatial
//! lag, spatial error, random forest); kriging saves 43–57%.
//!
//! Run: `cargo run -p sr-bench --release --bin fig8_memory`

use sr_bench::report::{fmt_mib, fmt_reduction, Table};
use sr_bench::{
    kriging_run, regression, repartition_auto, ExpConfig, RegModel, Units, PAPER_THRESHOLDS,
};
use sr_core::PreparedTrainingData;
use sr_datasets::{Dataset, GridSize};

#[global_allocator]
static ALLOC: sr_mem::TrackingAllocator = sr_mem::TrackingAllocator;

fn main() {
    let cfg = ExpConfig::parse("fig8_memory", GridSize::Tiny);
    let models: &[RegModel] =
        if cfg.quick { &[RegModel::Lag, RegModel::Forest] } else { &RegModel::ALL };

    println!("== Figure 8: peak-memory reduction (regression + kriging) ==");
    println!("(grid: {} cells; peak live bytes during the fit)\n", cfg.size.num_cells());

    for ds in Dataset::MULTIVARIATE {
        let grid = ds.generate(cfg.size, cfg.seed);
        let orig_units = Units::from_grid(&grid);
        let reduced: Vec<(f64, Units)> = PAPER_THRESHOLDS
            .iter()
            .map(|&theta| {
                let out = repartition_auto(&grid, theta);
                let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
                (theta, Units::from_prepared(&prep, &out.repartitioned))
            })
            .collect();

        println!("-- {} ({} original units) --", ds.name(), orig_units.len());
        let mut table = Table::new(&[
            "model",
            "original",
            "theta=0.05",
            "(saved)",
            "theta=0.10",
            "(saved)",
            "theta=0.15",
            "(saved)",
        ]);
        for &model in models {
            let orig = regression(&orig_units, ds.target_attr(), model, cfg.seed);
            let mut row = vec![model.name().to_string(), fmt_mib(orig.peak_bytes)];
            for (_, units) in &reduced {
                let r = regression(units, ds.target_attr(), model, cfg.seed);
                row.push(fmt_mib(r.peak_bytes));
                row.push(fmt_reduction(orig.peak_bytes as f64, r.peak_bytes as f64));
            }
            table.row(row);
        }
        table.print();
        println!();
    }

    println!("-- Spatial kriging (univariate datasets, Fig. 8f) --");
    let mut table = Table::new(&[
        "dataset",
        "original",
        "theta=0.05",
        "(saved)",
        "theta=0.10",
        "(saved)",
        "theta=0.15",
        "(saved)",
    ]);
    for ds in Dataset::UNIVARIATE {
        let grid = ds.generate(cfg.size, cfg.seed);
        let orig_units = Units::from_grid(&grid);
        let orig = kriging_run(&orig_units, cfg.seed);
        let mut row = vec![ds.name().to_string(), fmt_mib(orig.peak_bytes)];
        for &theta in &PAPER_THRESHOLDS {
            let out = repartition_auto(&grid, theta);
            let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
            let units = Units::from_prepared(&prep, &out.repartitioned);
            let r = kriging_run(&units, cfg.seed);
            row.push(fmt_mib(r.peak_bytes));
            row.push(fmt_reduction(orig.peak_bytes as f64, r.peak_bytes as f64));
        }
        table.row(row);
    }
    table.print();
}
