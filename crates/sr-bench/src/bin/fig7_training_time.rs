//! Figure 7: training-time reduction from training on the re-partitioned
//! dataset instead of the original grid — five regression models on the
//! three multivariate datasets (a–c…e) plus ordinary kriging on the three
//! univariate datasets (f).
//!
//! Paper reference points (θ = 0.05): 40–77% training-time reduction, the
//! most for SVR, the least for random forest; kriging saves 48–58%.
//!
//! The paper runs ≈100k-cell grids for hours; this binary defaults to the
//! `tiny` (48×48) resolution so the full sweep finishes in minutes while
//! preserving the comparison's shape (DESIGN.md, substitution 3). Raise it
//! with `--size small` or beyond when you have the budget.
//!
//! Run: `cargo run -p sr-bench --release --bin fig7_training_time`

use sr_bench::report::{fmt_reduction, fmt_secs, Table};
use sr_bench::{
    kriging_run, regression, repartition_auto, ExpConfig, RegModel, Units, PAPER_THRESHOLDS,
};
use sr_core::PreparedTrainingData;
use sr_datasets::{Dataset, GridSize};

#[global_allocator]
static ALLOC: sr_mem::TrackingAllocator = sr_mem::TrackingAllocator;

fn main() {
    let cfg = ExpConfig::parse("fig7_training_time", GridSize::Tiny);
    let models: &[RegModel] =
        if cfg.quick { &[RegModel::Lag, RegModel::Forest] } else { &RegModel::ALL };

    println!("== Figure 7: training-time reduction (regression + kriging) ==");
    println!(
        "(grid: {} cells; paper shape: biggest savings for SVR/GWR/lag)\n",
        cfg.size.num_cells()
    );

    for ds in Dataset::MULTIVARIATE {
        let grid = ds.generate(cfg.size, cfg.seed);
        let orig_units = Units::from_grid(&grid);
        // Pre-compute the re-partitioned unit sets per threshold.
        let reduced: Vec<(f64, Units)> = PAPER_THRESHOLDS
            .iter()
            .map(|&theta| {
                let out = repartition_auto(&grid, theta);
                let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
                (theta, Units::from_prepared(&prep, &out.repartitioned))
            })
            .collect();

        println!("-- {} ({} original units) --", ds.name(), orig_units.len());
        let mut table = Table::new(&[
            "model",
            "original",
            "theta=0.05",
            "(saved)",
            "theta=0.10",
            "(saved)",
            "theta=0.15",
            "(saved)",
        ]);
        for &model in models {
            let orig = regression(&orig_units, ds.target_attr(), model, cfg.seed);
            let mut row = vec![model.name().to_string(), fmt_secs(orig.train_secs)];
            for (_, units) in &reduced {
                let r = regression(units, ds.target_attr(), model, cfg.seed);
                row.push(fmt_secs(r.train_secs));
                row.push(fmt_reduction(orig.train_secs, r.train_secs));
            }
            table.row(row);
        }
        table.print();
        println!();
    }

    println!("-- Spatial kriging (univariate datasets, Fig. 7f) --");
    let mut table = Table::new(&[
        "dataset",
        "original",
        "theta=0.05",
        "(saved)",
        "theta=0.10",
        "(saved)",
        "theta=0.15",
        "(saved)",
    ]);
    for ds in Dataset::UNIVARIATE {
        let grid = ds.generate(cfg.size, cfg.seed);
        let orig_units = Units::from_grid(&grid);
        let orig = kriging_run(&orig_units, cfg.seed);
        let mut row = vec![ds.name().to_string(), fmt_secs(orig.train_secs)];
        for &theta in &PAPER_THRESHOLDS {
            let out = repartition_auto(&grid, theta);
            let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
            let units = Units::from_prepared(&prep, &out.repartitioned);
            let r = kriging_run(&units, cfg.seed);
            row.push(fmt_secs(r.train_secs));
            row.push(fmt_reduction(orig.train_secs, r.train_secs));
        }
        table.row(row);
    }
    table.print();
}
