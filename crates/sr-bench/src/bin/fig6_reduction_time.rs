//! Figure 6: wall time of the re-partitioning algorithm until convergence,
//! per dataset, initial cell count, and IFL threshold.
//!
//! Paper reference points: 50–390 s on multivariate datasets and 2–15 s on
//! univariate ones (their Python implementation walks every distinct heap
//! value); time grows with both the threshold and the initial cell count.
//! Our Rust implementation with the strided strategy is far faster in
//! absolute terms — the *shape* (multivariate ≫ univariate, growth in both
//! axes) is the reproduction target.
//!
//! Run: `cargo run -p sr-bench --release --bin fig6_reduction_time`

use sr_bench::report::{fmt_secs, Table};
use sr_bench::{repartition_auto, ExpConfig, PAPER_THRESHOLDS};
use sr_datasets::{Dataset, GridSize};
use std::time::Instant;

fn main() {
    let cfg = ExpConfig::parse("fig6_reduction_time", GridSize::Cells36k);
    let sizes: Vec<GridSize> = if cfg.size_overridden {
        vec![cfg.size]
    } else if cfg.quick {
        vec![GridSize::Cells36k]
    } else {
        GridSize::PAPER_SIZES.to_vec()
    };

    println!("== Figure 6: cell-reduction time vs information-loss threshold ==\n");
    for ds in Dataset::ALL {
        println!("-- {} --", ds.name());
        let mut table = Table::new(&["initial cells", "theta", "reduction time", "iterations"]);
        for &size in &sizes {
            let grid = ds.generate(size, cfg.seed);
            for &theta in &PAPER_THRESHOLDS {
                let start = Instant::now();
                let out = repartition_auto(&grid, theta);
                let elapsed = start.elapsed().as_secs_f64();
                table.row(vec![
                    format!("{} ({})", grid.num_cells(), size.label()),
                    format!("{theta:.2}"),
                    fmt_secs(elapsed),
                    out.iterations.len().to_string(),
                ]);
            }
        }
        table.print();
        println!();
    }
}
