//! Unit tests for the experiment harness: the unit-set abstraction, the
//! model pipelines, and the matched-count reduction builder.

use crate::{
    all_reductions, classification, clustering, kriging_run, regression, repartition_auto,
};
use crate::{ClassModel, RegModel, Units};
use sr_core::PreparedTrainingData;
use sr_datasets::{Dataset, GridSize};

fn taxi_units() -> Units {
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Mini, 41);
    Units::from_grid(&grid)
}

#[test]
fn units_from_grid_are_consistent() {
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Mini, 41);
    let u = Units::from_grid(&grid);
    assert_eq!(u.len(), grid.num_valid_cells());
    assert_eq!(u.adjacency.len(), u.len());
    assert!(u.adjacency.is_symmetric());
    assert!(u.weights.iter().all(|&w| w == 1.0));
    // Every valid cell maps to a unit, null cells to none.
    for id in 0..grid.num_cells() as u32 {
        assert_eq!(u.cell_to_unit[id as usize].is_some(), grid.is_valid(id));
    }
}

#[test]
fn units_from_prepared_intensity_scaling() {
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Mini, 42);
    let out = repartition_auto(&grid, 0.10);
    let prep = PreparedTrainingData::from_repartitioned(&out.repartitioned);
    let u = Units::from_prepared(&prep, &out.repartitioned);
    assert_eq!(u.len(), prep.len());
    // Sum attributes are per-cell intensities: group total / size.
    for (i, row) in u.features.iter().enumerate() {
        let size = prep.group_sizes[i] as f64;
        let raw = &prep.features[i];
        // Attribute 0 (pickups) is Sum-typed in the taxi schema.
        assert!((row[0] - raw[0] / size).abs() < 1e-12);
    }
    // Weights mirror group sizes.
    for (w, &s) in u.weights.iter().zip(&prep.group_sizes) {
        assert_eq!(*w, s as f64);
    }
}

#[test]
fn split_target_drops_exactly_one_column() {
    let u = taxi_units();
    let p = u.features[0].len();
    let (xs, ys) = u.split_target(3);
    assert_eq!(xs.len(), u.len());
    assert_eq!(ys.len(), u.len());
    assert_eq!(xs[0].len(), p - 1);
}

#[test]
fn regression_pipeline_produces_finite_metrics() {
    let u = taxi_units();
    for model in [RegModel::Lag, RegModel::Forest] {
        let r = regression(&u, 3, model, 7);
        assert!(r.train_secs >= 0.0);
        assert!(r.mae.is_finite() && r.mae >= 0.0, "{model:?}");
        assert!(r.rmse >= r.mae, "{model:?}: RMSE {} < MAE {}", r.rmse, r.mae);
        assert!(r.r2 <= 1.0, "{model:?}");
    }
}

#[test]
fn classification_pipeline_beats_chance() {
    let u = taxi_units();
    let r = classification(&u, 3, ClassModel::Knn, 7);
    // Five quantile classes: chance F1 ≈ 0.2.
    assert!(r.f1 > 0.25, "F1 {}", r.f1);
}

#[test]
fn kriging_pipeline_on_univariate_units() {
    let grid = Dataset::VehiclesUnivariate.generate(GridSize::Mini, 43);
    let u = Units::from_grid(&grid);
    let r = kriging_run(&u, 5);
    assert!(r.mae.is_finite() && r.rmse.is_finite());
    assert!(r.rmse >= r.mae);
}

#[test]
fn clustering_pipeline_labels_all_valid_cells() {
    let grid = Dataset::EarningsUnivariate.generate(GridSize::Mini, 44);
    let u = Units::from_grid(&grid);
    let r = clustering(&u);
    let labeled = r.cell_labels.iter().filter(|l| l.is_some()).count();
    assert_eq!(labeled, grid.num_valid_cells());
    let max = r.cell_labels.iter().flatten().max().copied().unwrap();
    assert!(max < crate::pipeline::NUM_CLUSTERS);
}

#[test]
fn all_reductions_matched_counts() {
    let grid = Dataset::TaxiUnivariate.generate(GridSize::Mini, 45);
    let reductions = all_reductions(&grid, 0.10, 9);
    assert_eq!(reductions.len(), 4);
    let t = reductions[0].1.len(); // re-partitioning sets the target
    for (name, u) in &reductions {
        assert!(u.len() >= t && u.len() <= t + 10, "{name}: {} vs target {t}", u.len());
        assert_eq!(u.adjacency.len(), u.len(), "{name}");
    }
}

#[test]
fn repartition_auto_strategy_switch() {
    // Small grid → EveryDistinct (many iterations); big → strided (few).
    let small = Dataset::TaxiUnivariate.generate(GridSize::Custom(10, 10), 46);
    let big = Dataset::TaxiUnivariate.generate(GridSize::Custom(60, 60), 46);
    let a = repartition_auto(&small, 0.10);
    let b = repartition_auto(&big, 0.10);
    assert!(a.repartitioned.ifl() <= 0.10);
    assert!(b.repartitioned.ifl() <= 0.10);
    assert!(b.iterations.len() < 60, "strided should need few passes");
}
