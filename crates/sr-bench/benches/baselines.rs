//! Micro-benchmarks of the reduction methods at a matched unit count: the
//! core re-partitioner against the three baselines it is compared with in
//! Tables II–IV.

use criterion::{criterion_group, criterion_main, Criterion};
use sr_baselines::{contiguous_clustering, regionalize, spatial_sampling};
use sr_core::{IterationStrategy, RepartitionConfig, Repartitioner};
use sr_datasets::{Dataset, GridSize};
use std::hint::black_box;

fn bench_reducers(c: &mut Criterion) {
    let grid = Dataset::EarningsMultivariate.generate(GridSize::Tiny, 1);
    // Match all baselines to the re-partitioner's output size at θ = 0.05.
    let cfg = RepartitionConfig::new(0.05)
        .unwrap()
        .with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
    let driver = Repartitioner::with_config(cfg).unwrap();
    let t = driver.run(&grid).unwrap().repartitioned.num_valid_groups();

    let mut group = c.benchmark_group(format!("reducers_{}cells_to_{t}units", grid.num_cells()));
    group.sample_size(10);

    group.bench_function("repartition_theta_0.05", |b| {
        b.iter(|| driver.run(black_box(&grid)).unwrap())
    });
    group.bench_function("spatial_sampling", |b| {
        b.iter(|| spatial_sampling(black_box(&grid), t, 1).unwrap())
    });
    group.bench_function("regionalization", |b| {
        b.iter(|| regionalize(black_box(&grid), t, 1).unwrap())
    });
    group.bench_function("contiguous_clustering", |b| {
        b.iter(|| contiguous_clustering(black_box(&grid), t).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_reducers);
criterion_main!(benches);
