//! Micro-benchmarks of the sr-linalg numeric core: the blocked GEMM against
//! a model-sized and a cache-busting operand, gram, blocked Cholesky/LU
//! factorization, and the factor-once/stream-RHS multi-solve APIs the model
//! layer leans on.
//!
//! Results are exported to `BENCH_linalg.json` at the workspace root so the
//! kernel-layer performance trajectory is tracked in-repo alongside
//! `BENCH_models.json`.

use criterion::{criterion_group, criterion_main, Criterion};
use sr_linalg::{Cholesky, LuFactor, Matrix};
use std::hint::black_box;

/// Deterministic xorshift fill, so every run measures identical operands.
fn filled(rows: usize, cols: usize, seed: u64) -> Matrix {
    let mut m = Matrix::zeros(rows, cols);
    let mut s = seed | 1;
    for v in m.as_mut_slice() {
        s ^= s << 13;
        s ^= s >> 7;
        s ^= s << 17;
        *v = (s >> 11) as f64 / (1u64 << 53) as f64 * 2.0 - 1.0;
    }
    m
}

/// A well-conditioned SPD matrix: `AᵀA + n·I`.
fn spd(n: usize, seed: u64) -> Matrix {
    let a = filled(n, n, seed);
    let mut g = a.gram();
    for i in 0..n {
        g[(i, i)] += n as f64;
    }
    g
}

fn bench_matmul(c: &mut Criterion) {
    let mut group = c.benchmark_group("matmul");
    group.sample_size(10);

    // Below the blocking threshold: the naive streaming path.
    let a64 = filled(64, 64, 1);
    let b64 = filled(64, 64, 2);
    group.bench_function("naive_64", |b| {
        b.iter(|| black_box(&a64).matmul(black_box(&b64)).unwrap())
    });

    // Above the blocking threshold, serial blocked kernel.
    let a256 = filled(256, 256, 3);
    let b256 = filled(256, 256, 4);
    group.bench_function("blocked_256", |b| {
        b.iter(|| black_box(&a256).matmul(black_box(&b256)).unwrap())
    });

    // Above the parallel threshold, at both pool budgets (bit-identical
    // results by contract; only wall-clock may differ).
    let a512 = filled(512, 512, 5);
    let b512 = filled(512, 512, 6);
    for threads in [1usize, 4] {
        sr_par::Pool::global().set_threads(threads);
        group.bench_function(format!("blocked_512_t{threads}"), |b| {
            b.iter(|| black_box(&a512).matmul(black_box(&b512)).unwrap())
        });
    }
    sr_par::Pool::global().set_threads(sr_par::default_threads());
    group.finish();
}

fn bench_gram(c: &mut Criterion) {
    let mut group = c.benchmark_group("gram");
    group.sample_size(10);

    // Model-shaped: many rows, few columns (the zero-skip historical path).
    let tall = filled(4096, 8, 7);
    group.bench_function("tall_4096x8", |b| b.iter(|| black_box(&tall).gram()));

    // Wide enough for the tiled branch-free path.
    let wide = filled(512, 128, 8);
    group.bench_function("wide_512x128", |b| b.iter(|| black_box(&wide).gram()));
    group.finish();
}

fn bench_factorizations(c: &mut Criterion) {
    let mut group = c.benchmark_group("factor");
    group.sample_size(10);

    let spd_small = spd(48, 9); // unblocked path (model-sized)
    let spd_large = spd(256, 10); // blocked panels
    group.bench_function("cholesky_48", |b| {
        b.iter(|| Cholesky::new(black_box(&spd_small)).unwrap())
    });
    group.bench_function("cholesky_256", |b| {
        b.iter(|| Cholesky::new(black_box(&spd_large)).unwrap())
    });

    let sq_small = filled(48, 48, 11);
    let sq_large = filled(256, 256, 12);
    group.bench_function("lu_48", |b| b.iter(|| LuFactor::new(black_box(&sq_small)).unwrap()));
    group.bench_function("lu_256", |b| b.iter(|| LuFactor::new(black_box(&sq_large)).unwrap()));
    group.finish();
}

fn bench_multi_rhs(c: &mut Criterion) {
    let mut group = c.benchmark_group("multi_rhs");
    group.sample_size(10);

    // Factor once, stream 64 right-hand sides — the kriging-group /
    // GWR-search usage pattern.
    let n = 96;
    let g = spd(n, 13);
    let chol = Cholesky::new(&g).unwrap();
    let lu = LuFactor::new(&g).unwrap();
    let rhs = filled(64, n, 14); // one RHS per row

    group.bench_function("cholesky_solve_many_96x64", |b| {
        b.iter(|| chol.solve_many(black_box(&rhs)).unwrap())
    });
    group.bench_function("lu_solve_many_96x64", |b| {
        b.iter(|| lu.solve_many(black_box(&rhs)).unwrap())
    });
    // The per-call baseline the multi-RHS APIs exist to beat.
    group.bench_function("cholesky_solve_repeat_96x64", |b| {
        b.iter(|| {
            for r in 0..rhs.rows() {
                black_box(chol.solve(black_box(rhs.row(r))).unwrap());
            }
        })
    });
    group.finish();
}

fn export(c: &mut Criterion) {
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_linalg.json");
    c.export_json(out).expect("write BENCH_linalg.json");
}

criterion_group!(benches, bench_matmul, bench_gram, bench_factorizations, bench_multi_rhs, export);
criterion_main!(benches);
