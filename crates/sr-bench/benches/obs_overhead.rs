//! Overhead of the sr-obs instrumentation on the repartition driver.
//!
//! Three configurations of the same workload:
//!
//! - `disabled` — no subscriber installed; every `span()` call is a single
//!   relaxed atomic load and every counter bump one atomic add. This is
//!   the production default and must stay within noise (<2%) of the
//!   pre-instrumentation driver.
//! - `memory` — spans collected into an in-memory buffer (the test
//!   subscriber), isolating the cost of timing + record construction.
//! - `json_sink` — spans serialized as JSON-lines into `io::sink()`,
//!   the full serialization cost without terminal I/O.
//!
//! Report the `disabled` numbers next to `repartition_driver` results when
//! quoting pipeline performance (`docs/OBSERVABILITY.md`, "Benchmarks").

use criterion::{criterion_group, criterion_main, Criterion};
use sr_core::{IterationStrategy, RepartitionConfig, Repartitioner};
use sr_datasets::{Dataset, GridSize};
use std::hint::black_box;
use std::sync::Arc;

fn driver() -> Repartitioner {
    let cfg = RepartitionConfig::new(0.05)
        .unwrap()
        .with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
    Repartitioner::with_config(cfg).unwrap()
}

fn bench_tracing_overhead(c: &mut Criterion) {
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Tiny, 1);
    let driver = driver();

    let mut group = c.benchmark_group("obs_overhead");
    group.sample_size(10);

    sr_obs::clear_subscriber();
    group.bench_function("repartition_48x48_disabled", |b| {
        b.iter(|| driver.run(black_box(&grid)).unwrap())
    });

    let collector = Arc::new(sr_obs::MemoryCollector::new());
    sr_obs::set_subscriber(collector.clone());
    group.bench_function("repartition_48x48_memory", |b| {
        b.iter(|| {
            collector.clear();
            driver.run(black_box(&grid)).unwrap()
        })
    });

    sr_obs::set_subscriber(Arc::new(sr_obs::JsonLines::new(std::io::sink())));
    group.bench_function("repartition_48x48_json_sink", |b| {
        b.iter(|| driver.run(black_box(&grid)).unwrap())
    });
    sr_obs::clear_subscriber();

    group.finish();
}

criterion_group!(benches, bench_tracing_overhead);
criterion_main!(benches);
