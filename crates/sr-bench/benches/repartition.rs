//! Micro-benchmarks of the re-partitioning pipeline's stages: heap
//! construction, cell-group extraction (Algorithm 1), feature allocation
//! (Algorithm 2), IFL computation, group adjacency (Algorithm 3), and the
//! full driver at paper-relevant grid sizes.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_core::{
    allocate_features, extract_cell_groups, group_adjacency, partition_ifl, IterationStrategy,
    RepartitionConfig, Repartitioner, VariationHeap,
};
use sr_datasets::{Dataset, GridSize};
use sr_grid::{normalize_attributes, IflOptions};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Custom(60, 60), 1);
    let norm = normalize_attributes(&grid);
    let partition = extract_cell_groups(&norm, 0.02);
    let features = allocate_features(&grid, &partition);

    c.bench_function("heap_build_3600_cells", |b| {
        b.iter(|| VariationHeap::from_grid(black_box(&norm)))
    });

    c.bench_function("extract_cell_groups_3600_cells", |b| {
        b.iter(|| extract_cell_groups(black_box(&norm), black_box(0.02)))
    });

    c.bench_function("allocate_features_3600_cells", |b| {
        b.iter(|| allocate_features(black_box(&grid), black_box(&partition)))
    });

    c.bench_function("partition_ifl_3600_cells", |b| {
        b.iter(|| {
            partition_ifl(
                black_box(&grid),
                black_box(&partition),
                black_box(&features),
                IflOptions::default(),
            )
        })
    });

    c.bench_function("group_adjacency_3600_cells", |b| {
        b.iter(|| group_adjacency(black_box(&partition)))
    });
}

fn bench_full_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("repartition_driver");
    group.sample_size(10);
    for (label, size) in
        [("20x20", GridSize::Mini), ("48x48", GridSize::Tiny), ("80x80", GridSize::Small)]
    {
        let grid = Dataset::TaxiMultivariate.generate(size, 1);
        group.bench_with_input(BenchmarkId::new("strided_theta_0.05", label), &grid, |b, g| {
            let cfg = RepartitionConfig::new(0.05)
                .unwrap()
                .with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
            let driver = Repartitioner::with_config(cfg).unwrap();
            b.iter(|| driver.run(black_box(g)).unwrap())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_stages, bench_full_driver);
criterion_main!(benches);
