//! Micro-benchmarks of the re-partitioning pipeline's stages: heap
//! construction, cell-group extraction (Algorithm 1), feature allocation
//! (Algorithm 2), IFL computation, group adjacency (Algorithm 3), and the
//! full driver at paper-relevant grid sizes — including the 100k-cell grid
//! used as the scaling reference point.
//!
//! Results are exported to `BENCH_repartition.json` at the workspace root
//! so the pipeline's performance trajectory is tracked in-repo.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use sr_core::{
    allocate_features, extract_cell_groups, group_adjacency, partition_ifl, IterationStrategy,
    RepartitionConfig, Repartitioner, VariationHeap,
};
use sr_datasets::{Dataset, GridSize};
use sr_grid::{normalize_attributes, IflOptions};
use std::hint::black_box;

fn bench_stages(c: &mut Criterion) {
    for (label, rows, cols) in [("3600_cells", 60usize, 60usize), ("100k_cells", 320, 320)] {
        let grid = Dataset::TaxiMultivariate.generate(GridSize::Custom(rows, cols), 1);
        let norm = normalize_attributes(&grid);
        let partition = extract_cell_groups(&norm, 0.02);
        let features = allocate_features(&grid, &partition);

        c.bench_function(&format!("heap_build_{label}"), |b| {
            b.iter(|| VariationHeap::from_grid(black_box(&norm)))
        });

        c.bench_function(&format!("extract_cell_groups_{label}"), |b| {
            b.iter(|| extract_cell_groups(black_box(&norm), black_box(0.02)))
        });

        c.bench_function(&format!("allocate_features_{label}"), |b| {
            b.iter(|| allocate_features(black_box(&grid), black_box(&partition)))
        });

        c.bench_function(&format!("partition_ifl_{label}"), |b| {
            b.iter(|| {
                partition_ifl(
                    black_box(&grid),
                    black_box(&partition),
                    black_box(&features),
                    IflOptions::default(),
                )
            })
        });

        c.bench_function(&format!("group_adjacency_{label}"), |b| {
            b.iter(|| group_adjacency(black_box(&partition)))
        });
    }
}

fn bench_full_driver(c: &mut Criterion) {
    let mut group = c.benchmark_group("repartition_driver");
    group.sample_size(10);
    for (label, size) in [
        ("20x20", GridSize::Mini),
        ("48x48", GridSize::Tiny),
        ("80x80", GridSize::Small),
        ("320x320_100k", GridSize::Custom(320, 320)),
    ] {
        let grid = Dataset::TaxiMultivariate.generate(size, 1);
        group.bench_with_input(BenchmarkId::new("strided_theta_0.05", label), &grid, |b, g| {
            let cfg = RepartitionConfig::new(0.05)
                .unwrap()
                .with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
            let driver = Repartitioner::with_config(cfg).unwrap();
            b.iter(|| driver.run(black_box(g)).unwrap())
        });
    }

    // Explicit thread-count variants on the 100k grid: t1 pins the serial
    // fast paths, t4 exercises the pool fan-out (results are identical by
    // the sr-par determinism contract; see docs/PERFORMANCE.md).
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Custom(320, 320), 1);
    for threads in [1usize, 4] {
        let pool = sr_par::Pool::new(threads);
        group.bench_with_input(
            BenchmarkId::new(format!("strided_theta_0.05_t{threads}"), "320x320_100k"),
            &grid,
            |b, g| {
                let cfg = RepartitionConfig::new(0.05).unwrap().with_strategy(
                    IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 },
                );
                let driver = Repartitioner::with_config(cfg).unwrap();
                b.iter(|| driver.run_with_pool(black_box(g), &pool).unwrap())
            },
        );
    }
    group.finish();
}

fn export(c: &mut Criterion) {
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_repartition.json");
    c.export_json(out).expect("write BENCH_repartition.json");
}

criterion_group!(benches, bench_stages, bench_full_driver, export);
criterion_main!(benches);
