//! Serving-path benchmarks on a paper-scale (≈36k-cell) snapshot:
//! snapshot encode/decode for both `sr-snap` formats, query-engine
//! construction (v1 owned build vs v2 validate-and-borrow), and the three
//! online query kinds. Results are exported to `BENCH_serve.json` at the
//! workspace root; `prior/`-prefixed rows keep the v1 startup numbers the
//! v2 rows are compared against in `docs/PERFORMANCE.md`.
//!
//! Run: `cargo bench -p sr-bench --bench serve_queries`

use criterion::{black_box, Criterion};
use sr_core::{IterationStrategy, RepartitionConfig, Repartitioner};
use sr_datasets::{Dataset, GridSize};
use sr_serve::{
    snapshot_from_bytes, snapshot_to_bytes, snapshot_to_bytes_v2, snapshot_v2_from_bytes,
    QueryEngine, Snapshot,
};

fn main() {
    let size = GridSize::Cells36k;
    let theta = 0.05;
    let grid = Dataset::TaxiMultivariate.generate(size, 1);
    println!(
        "preparing: {}x{} = {} cells, theta {theta}",
        grid.rows(),
        grid.cols(),
        grid.num_cells()
    );
    let cfg = RepartitionConfig::new(theta)
        .unwrap()
        .with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
    let start = std::time::Instant::now();
    let outcome = Repartitioner::with_config(cfg).unwrap().run(&grid).unwrap();
    let rep = &outcome.repartitioned;
    println!(
        "repartitioned to {} groups (IFL {:.4}) in {:.1}s",
        rep.num_groups(),
        rep.ifl(),
        start.elapsed().as_secs_f64()
    );
    let snap = Snapshot::build(rep, &grid, theta).unwrap();
    let bytes = snapshot_to_bytes(&snap);
    let bytes_v2 = snapshot_to_bytes_v2(&snap);
    println!("snapshot: {} bytes v1, {} bytes v2\n", bytes.len(), bytes_v2.len());
    let engine = QueryEngine::new(snap.clone());
    let b = grid.bounds();
    let (lat, lon) = grid.cell_centroid(grid.cell_id(grid.rows() / 2, grid.cols() / 2));
    // A window covering roughly 10% of the grid's area.
    let lat_span = b.lat_max - b.lat_min;
    let lon_span = b.lon_max - b.lon_min;
    let window = (
        b.lat_min + 0.45 * lat_span,
        b.lat_min + 0.55 * lat_span + 0.2 * lat_span,
        b.lon_min + 0.45 * lon_span,
        b.lon_min + 0.55 * lon_span + 0.2 * lon_span,
    );

    let mut c = Criterion::default();
    c.bench_function("snapshot_encode_36k", |bench| {
        bench.iter(|| snapshot_to_bytes(black_box(&snap)))
    });
    c.bench_function("snapshot_decode_36k", |bench| {
        bench.iter(|| snapshot_from_bytes(black_box(&bytes)).unwrap())
    });
    c.bench_function("query_engine_build_36k", |bench| {
        bench.iter(|| QueryEngine::new(black_box(snap.clone())))
    });
    // v2 startup path: encode, validate (the whole load-time cost), and
    // borrowed-engine construction on top of a validated buffer.
    c.bench_function("snapshot_encode_v2_36k", |bench| {
        bench.iter(|| snapshot_to_bytes_v2(black_box(&snap)))
    });
    c.bench_function("snapshot_validate_v2_36k", |bench| {
        bench.iter(|| snapshot_v2_from_bytes(black_box(&bytes_v2)).unwrap())
    });
    let v2 = snapshot_v2_from_bytes(&bytes_v2).unwrap();
    c.bench_function("engine_build_v2_36k", |bench| {
        bench.iter(|| QueryEngine::from_v2(black_box(v2.clone())))
    });
    c.bench_function("point_query", |bench| {
        bench.iter(|| engine.point(black_box(lat), black_box(lon)))
    });
    c.bench_function("window_query_10pct_area", |bench| {
        bench.iter(|| {
            engine.window(
                black_box(window.0),
                black_box(window.1),
                black_box(window.2),
                black_box(window.3),
            )
        })
    });
    c.bench_function("knn_query_k8", |bench| {
        bench.iter(|| engine.knn(black_box(lat), black_box(lon), black_box(8)))
    });

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    c.export_json(out).expect("write BENCH_serve.json");
    println!("\nwrote {out}");
}
