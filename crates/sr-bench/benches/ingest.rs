//! Ingestion-tier benchmarks on the paper-scale 100k-cell workload
//! (320×320 grid): raw binning throughput, the per-batch cost of keeping
//! a living partition current *incrementally* versus the full recompute a
//! batch pipeline pays, and the exact-repartition cost with and without
//! the maintained scan cache. Results are exported to `BENCH_ingest.json`
//! at the workspace root.
//!
//! The acceptance bar (`docs/INGESTION.md` §7): at ≤10% dirty cells per
//! batch, incremental maintenance (`ingest/maintain/incremental_*`) must
//! be at least 3× faster than the full recompute
//! (`ingest/maintain/full_*`). Both sides leave a partition whose IFL is
//! within θ after every batch — the batch pipeline by re-running the
//! driver from scratch, the engine by patching the scan inputs and
//! absorbing the dirty cells into its live split-on-write tier; the exact
//! driver walk then re-runs on demand over the patched inputs
//! (`ingest/repartition/*` reports that cost transparently — the walk
//! dominates it, so the scan cache alone is a modest win; the per-batch
//! rows are where incremental maintenance earns its keep).
//!
//! Delta values stay below the seeded per-attribute maximum on purpose:
//! a new maximum re-normalizes every cell and forces the documented
//! full scan rebuild (`docs/INGESTION.md` §4), which would benchmark the
//! rebuild guard instead of the incremental path.
//!
//! Run: `cargo bench -p sr-bench --bench ingest`

use criterion::{black_box, Criterion};
use sr_core::{IterationStrategy, LocalizedState, RepartitionConfig, Repartitioner, ScanCache};
use sr_grid::{Bounds, CellId, GridDataset, IflOptions};
use sr_ingest::{CellAccumulators, IngestConfig, IngestEngine, IngestSchema, PointChunk};
use std::time::Duration;

const ROWS: usize = 320;
const COLS: usize = 320;
const THETA: f64 = 0.05;
/// Pre-generated distinct delta batches, cycled so consecutive
/// iterations never replay identical points.
const DELTAS: usize = 8;

/// Deterministic xorshift64* so runs are comparable across machines.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn frac(&mut self) -> f64 {
        (self.next() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// One point per cell with a smooth surface in [50, 150), plus a pinned
/// 200.0 sample in cell 0 so later deltas (all < 190) never move the
/// per-attribute maximum — the incremental path, not the rebuild guard,
/// is what the deltas exercise.
fn seed_chunk(rng: &mut Rng) -> PointChunk {
    let mut chunk = PointChunk::with_capacity(ROWS * COLS + 1, 1);
    chunk.push(0.5 / COLS as f64, 0.5 / ROWS as f64, &[200.0]);
    for r in 0..ROWS {
        for c in 0..COLS {
            let x = (c as f64 + 0.5) / COLS as f64;
            let y = (r as f64 + 0.5) / ROWS as f64;
            chunk.push(x, y, &[50.0 + 40.0 * x + 25.0 * y + 10.0 * rng.frac()]);
        }
    }
    chunk
}

/// A delta batch touching roughly `dirty` distinct cells, values in
/// [50, 190) — below the pinned maximum.
fn delta_chunk(rng: &mut Rng, dirty: usize) -> PointChunk {
    let mut chunk = PointChunk::with_capacity(dirty, 1);
    for _ in 0..dirty {
        let r = (rng.next() % ROWS as u64) as f64;
        let c = (rng.next() % COLS as u64) as f64;
        let x = (c + 0.5) / COLS as f64;
        let y = (r + 0.5) / ROWS as f64;
        chunk.push(x, y, &[50.0 + 140.0 * rng.frac()]);
    }
    chunk
}

/// The driver configuration [`IngestEngine`] uses on this grid size, for
/// the from-scratch side of the comparison.
fn batch_driver() -> Repartitioner {
    let cfg = RepartitionConfig::new(THETA)
        .unwrap()
        .with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
    Repartitioner::with_config(cfg).unwrap()
}

/// The batch pipeline's state: accumulators + grid, recomputed from
/// scratch by the driver after every delta.
struct BatchPipeline {
    accum: CellAccumulators,
    grid: GridDataset,
    driver: Repartitioner,
    dirty: Vec<CellId>,
}

impl BatchPipeline {
    fn new(schema: &IngestSchema, seed: &PointChunk) -> Self {
        let mut accum = CellAccumulators::new(ROWS, COLS, schema);
        let mut grid = schema.empty_grid(ROWS, COLS, Bounds::unit()).unwrap();
        let mut dirty = Vec::new();
        accum.bin_chunk(seed, &Bounds::unit(), &mut dirty);
        accum.write_into(&mut grid, &dirty);
        BatchPipeline { accum, grid, driver: batch_driver(), dirty }
    }

    /// Absorb one delta the only way a batch pipeline can: fold it in,
    /// then re-run the whole driver.
    fn absorb(&mut self, delta: &PointChunk) -> usize {
        self.dirty.clear();
        self.accum.bin_chunk(delta, &Bounds::unit(), &mut self.dirty);
        self.accum.write_into(&mut self.grid, &self.dirty);
        self.driver.run(&self.grid).unwrap().repartitioned.num_groups()
    }
}

fn main() {
    let mut rng = Rng(0x1745_90D1);
    let schema = IngestSchema::parse("v:mean").unwrap();
    let seed = seed_chunk(&mut rng);
    println!("preparing: {ROWS}x{COLS} = {} cells, theta {THETA}", ROWS * COLS);

    let mut c = Criterion::default();

    // Raw binning throughput: fold + collapse of a full-coverage
    // 100k-point batch (points/sec = iters_per_sec × points).
    {
        let mut accum = CellAccumulators::new(ROWS, COLS, &schema);
        let mut grid = schema.empty_grid(ROWS, COLS, Bounds::unit()).unwrap();
        let mut dirty = Vec::new();
        let mut g = c.benchmark_group("ingest");
        g.sample_size(10).measurement_time(Duration::from_secs(2));
        g.bench_function("bin/point_stream_102k", |bench| {
            bench.iter(|| {
                dirty.clear();
                let n = accum.bin_chunk(black_box(&seed), &Bounds::unit(), &mut dirty);
                accum.write_into(&mut grid, &dirty);
                n
            })
        });
        g.finish();
    }

    for pct in [1usize, 10] {
        let dirty = ROWS * COLS * pct / 100;
        let deltas: Vec<PointChunk> = (0..DELTAS).map(|_| delta_chunk(&mut rng, dirty)).collect();

        // Incremental side: a warmed engine (seed batch + one exact
        // re-partition) absorbs each delta by patching scan inputs and
        // the live tier.
        let mut engine =
            IngestEngine::new(IngestConfig::new(ROWS, COLS, schema.clone(), THETA)).unwrap();
        engine.apply_batch(&seed).unwrap();
        engine.repartition().unwrap();
        let mut i = 0usize;
        let mut g = c.benchmark_group("ingest");
        g.sample_size(10).measurement_time(Duration::from_secs(2));
        g.bench_function(format!("maintain/incremental_{pct}pct_dirty"), |bench| {
            bench.iter(|| {
                let report = engine.apply_batch(&deltas[i % DELTAS]).unwrap();
                i += 1;
                report.dirty_cells
            })
        });
        g.finish();

        // Full-recompute side: the same deltas into a batch pipeline
        // that must re-run the driver from scratch each time.
        let mut pipeline = BatchPipeline::new(&schema, &seed);
        let mut i = 0usize;
        let mut g = c.benchmark_group("ingest");
        g.sample_size(10).measurement_time(Duration::from_secs(4));
        g.bench_function(format!("maintain/full_{pct}pct_dirty"), |bench| {
            bench.iter(|| {
                let groups = pipeline.absorb(&deltas[i % DELTAS]);
                i += 1;
                groups
            })
        });
        g.finish();
    }

    // Exact re-partition, with and without the maintained scan cache —
    // reported transparently: the threshold walk dominates both, so the
    // cached variation scan is a modest (not 3×) win here. `scan_cached`
    // deliberately measures the *non*-localized walk over patched inputs
    // ([`Repartitioner::run_with_scan`]) so the localized rows below have
    // a stable baseline to be compared against.
    {
        let mut engine =
            IngestEngine::new(IngestConfig::new(ROWS, COLS, schema.clone(), THETA)).unwrap();
        engine.apply_batch(&seed).unwrap();
        let driver = batch_driver();
        let grid = engine.grid().clone();
        let scan = ScanCache::build(&grid, IflOptions::default());
        let pool = sr_par::Pool::global();
        let mut g = c.benchmark_group("ingest");
        g.sample_size(10).measurement_time(Duration::from_secs(4));
        g.bench_function("repartition/scan_cached", |bench| {
            bench.iter(|| {
                driver.run_with_scan(&grid, &scan, pool).unwrap().repartitioned.num_groups()
            })
        });
        g.bench_function("repartition/from_scratch", |bench| {
            bench.iter(|| driver.run(black_box(&grid)).unwrap().repartitioned.num_groups())
        });
        g.finish();
    }

    // Localized exact re-partition: a warmed LocalizedState absorbs a
    // delta's dirty cells instead of re-walking the whole grid. This is
    // the tentpole row: cost proportional to the dirty region,
    // bit-identical to `scan_cached` output. Each iteration mutates the
    // grid and patches the scan cache *outside* the timed window
    // (`iter_custom`) — those costs are the `maintain/incremental_*` rows
    // — so the row times exactly what `scan_cached` times: one driver
    // run over patched inputs. Values stay below the pinned 200.0
    // maximum so the scan cache patches in place (see the module docs).
    {
        let mut engine =
            IngestEngine::new(IngestConfig::new(ROWS, COLS, schema.clone(), THETA)).unwrap();
        engine.apply_batch(&seed).unwrap();
        let mut grid = engine.grid().clone();
        let driver = batch_driver();
        let mut scan = ScanCache::build(&grid, IflOptions::default());
        let mut state = LocalizedState::new();
        let pool = sr_par::Pool::global();
        driver.run_localized(&grid, &scan, &mut state, &[], pool).unwrap();
        for pct in [1usize, 10] {
            let dirty = ROWS * COLS * pct / 100;
            let deltas: Vec<Vec<(CellId, f64)>> = (0..DELTAS)
                .map(|_| {
                    (0..dirty)
                        .map(|_| {
                            // Never cell 0 — it holds the pinned maximum;
                            // overwriting it would hit the rebuild guard.
                            let id = 1 + (rng.next() % (ROWS * COLS - 1) as u64) as CellId;
                            (id, 50.0 + 140.0 * rng.frac())
                        })
                        .collect()
                })
                .collect();
            let mut i = 0usize;
            let mut g = c.benchmark_group("ingest");
            g.sample_size(10).measurement_time(Duration::from_secs(2));
            g.bench_function(format!("repartition/localized_{pct}pct_dirty"), |bench| {
                bench.iter_custom(|iters| {
                    let mut elapsed = Duration::ZERO;
                    for _ in 0..iters {
                        let delta = &deltas[i % DELTAS];
                        i += 1;
                        for &(id, v) in delta {
                            grid.set_value(id, 0, v);
                        }
                        let dirty_ids: Vec<CellId> = delta.iter().map(|&(id, _)| id).collect();
                        scan.update(&grid, &dirty_ids);
                        let start = std::time::Instant::now();
                        let out = driver
                            .run_localized(&grid, &scan, &mut state, &dirty_ids, pool)
                            .unwrap();
                        elapsed += start.elapsed();
                        black_box(out.repartitioned.num_groups());
                    }
                    elapsed
                })
            });
            g.finish();
        }
    }

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ingest.json");
    c.export_json(out).expect("write BENCH_ingest.json");
    println!("\nwrote {out}");
}
