//! Micro-benchmarks of the spatial ML substrate: one fit per model at a
//! fixed small training size, so regressions in any estimator's complexity
//! show up immediately, plus batch-prediction benches for the
//! embarrassingly-parallel kernels (kriging, KNN).
//!
//! Results are exported to `BENCH_models.json` at the workspace root so the
//! model-layer performance trajectory is tracked in-repo.

use criterion::{criterion_group, criterion_main, Criterion};
use sr_bench::Units;
use sr_datasets::{Dataset, GridSize};
use sr_ml::{
    table1, GradientBoostingClassifier, Gwr, KnnClassifier, KnnRegressor, OrdinaryKriging,
    RandomForest, SpatialError, SpatialLag, Svr, SvrParams,
};
use std::hint::black_box;

type TrainingData = (Vec<Vec<f64>>, Vec<f64>, Vec<(f64, f64)>, sr_grid::AdjacencyList);

fn training_data() -> TrainingData {
    let ds = Dataset::TaxiMultivariate;
    let grid = ds.generate(GridSize::Mini, 1);
    let units = Units::from_grid(&grid);
    let (xs, ys) = units.split_target(ds.target_attr());
    (xs, ys, units.centroids.clone(), units.adjacency.clone())
}

fn bench_regressors(c: &mut Criterion) {
    let (xs, ys, coords, adj) = training_data();
    let n = xs.len();
    let mut group = c.benchmark_group(format!("regressors_n{n}"));
    group.sample_size(10);

    group.bench_function("spatial_lag", |b| {
        b.iter(|| SpatialLag::fit(black_box(&xs), black_box(&ys), black_box(&adj)).unwrap())
    });
    group.bench_function("spatial_error", |b| {
        b.iter(|| SpatialError::fit(black_box(&xs), black_box(&ys), black_box(&adj)).unwrap())
    });
    group.bench_function("gwr", |b| {
        b.iter(|| {
            Gwr::fit(black_box(&xs), black_box(&ys), black_box(&coords), &table1::gwr()).unwrap()
        })
    });
    group.bench_function("svr", |b| {
        let params = SvrParams { max_train: 10_000, ..table1::svr() };
        b.iter(|| Svr::fit(black_box(&xs), black_box(&ys), &params).unwrap())
    });
    group.bench_function("random_forest", |b| {
        b.iter(|| {
            RandomForest::fit(black_box(&xs), black_box(&ys), &table1::random_forest()).unwrap()
        })
    });
    group.finish();
}

fn bench_classifiers_and_kriging(c: &mut Criterion) {
    let (xs, ys, coords, _) = training_data();
    let labels = sr_ml::bin_into_quantiles(&ys, table1::NUM_CLASSES);
    let n = xs.len();
    let mut group = c.benchmark_group(format!("classifiers_n{n}"));
    group.sample_size(10);

    group.bench_function("gradient_boosting", |b| {
        b.iter(|| {
            GradientBoostingClassifier::fit(
                black_box(&xs),
                black_box(&labels),
                table1::NUM_CLASSES,
                &table1::gradient_boosting(),
            )
            .unwrap()
        })
    });
    group.bench_function("knn_fit", |b| {
        b.iter(|| {
            KnnClassifier::fit(
                black_box(&xs),
                black_box(&labels),
                table1::NUM_CLASSES,
                &table1::knn(),
            )
            .unwrap()
        })
    });
    group.bench_function("kriging_fit", |b| {
        b.iter(|| {
            OrdinaryKriging::fit(black_box(&coords), black_box(&ys), &table1::kriging()).unwrap()
        })
    });
    group.finish();
}

fn bench_batch_predictions(c: &mut Criterion) {
    let (xs, ys, coords, _) = training_data();
    let labels = sr_ml::bin_into_quantiles(&ys, table1::NUM_CLASSES);
    let n = xs.len();
    let mut group = c.benchmark_group(format!("predict_n{n}"));
    group.sample_size(10);

    let kriging = OrdinaryKriging::fit(&coords, &ys, &table1::kriging()).unwrap();
    group.bench_function("kriging_predict_batch", |b| {
        b.iter(|| kriging.predict(black_box(&coords)))
    });

    let knn_c = KnnClassifier::fit(&xs, &labels, table1::NUM_CLASSES, &table1::knn()).unwrap();
    group.bench_function("knn_classify_batch", |b| b.iter(|| knn_c.predict(black_box(&xs))));

    let knn_r = KnnRegressor::fit(&xs, &ys, &table1::knn()).unwrap();
    group.bench_function("knn_regress_batch", |b| b.iter(|| knn_r.predict(black_box(&xs))));

    // Explicit thread-count variants: the batch kernels fan out on the
    // global pool, so pin its budget per variant (results are identical at
    // every thread count; see docs/PERFORMANCE.md).
    for threads in [1usize, 4] {
        sr_par::Pool::global().set_threads(threads);
        group.bench_function(format!("kriging_predict_batch_t{threads}"), |b| {
            b.iter(|| kriging.predict(black_box(&coords)))
        });
        group.bench_function(format!("knn_classify_batch_t{threads}"), |b| {
            b.iter(|| knn_c.predict(black_box(&xs)))
        });
        group.bench_function(format!("knn_regress_batch_t{threads}"), |b| {
            b.iter(|| knn_r.predict(black_box(&xs)))
        });
    }
    sr_par::Pool::global().set_threads(sr_par::default_threads());

    group.finish();
}

fn export(c: &mut Criterion) {
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_models.json");
    c.export_json(out).expect("write BENCH_models.json");
}

criterion_group!(
    benches,
    bench_regressors,
    bench_classifiers_and_kriging,
    bench_batch_predictions,
    export
);
criterion_main!(benches);
