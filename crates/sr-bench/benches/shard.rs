//! Sharded vs unsharded serving on a paper-scale (≈36k-cell) snapshot:
//! point/window/knn latency through a [`sr_shard::ShardRouter`] at
//! `K ∈ {1, 4, 8}` shards against the plain [`sr_serve::QueryEngine`],
//! plus the split/write cost itself. Results are exported to
//! `BENCH_shard.json` at the workspace root.
//!
//! The acceptance bar (`docs/SHARDING.md`): at `K = 4`, window and knn
//! p50 must be no worse than unsharded. The default (fused fast path)
//! serves all-healthy deployments through the merged engine — those are
//! the `k{K}` rows. The `k{K}_scatter` rows force the per-shard
//! scatter-gather path (`RouterConfig::scatter_only`), which is what a
//! request pays under degradation or in a distributed deployment.
//!
//! Run: `cargo bench -p sr-bench --bench shard`

use criterion::{black_box, Criterion};
use sr_core::{IterationStrategy, RepartitionConfig, Repartitioner};
use sr_datasets::{Dataset, GridSize};
use sr_serve::{QueryBackend, QueryEngine, Snapshot};
use sr_shard::{write_shards, RouterConfig, ShardRouter, SplitOptions};

fn main() {
    let theta = 0.05;
    let grid = Dataset::TaxiMultivariate.generate(GridSize::Cells36k, 1);
    println!(
        "preparing: {}x{} = {} cells, theta {theta}",
        grid.rows(),
        grid.cols(),
        grid.num_cells()
    );
    let cfg = RepartitionConfig::new(theta)
        .unwrap()
        .with_strategy(IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 });
    let start = std::time::Instant::now();
    let outcome = Repartitioner::with_config(cfg).unwrap().run(&grid).unwrap();
    let rep = &outcome.repartitioned;
    println!(
        "repartitioned to {} groups (IFL {:.4}) in {:.1}s",
        rep.num_groups(),
        rep.ifl(),
        start.elapsed().as_secs_f64()
    );
    let snap = Snapshot::build(rep, &grid, theta).unwrap();
    let engine = QueryEngine::new(snap.clone());

    let b = grid.bounds();
    let (lat, lon) = grid.cell_centroid(grid.cell_id(grid.rows() / 2, grid.cols() / 2));
    let lat_span = b.lat_max - b.lat_min;
    let lon_span = b.lon_max - b.lon_min;
    // A window covering roughly 10% of the grid's area.
    let window = (
        b.lat_min + 0.45 * lat_span,
        b.lat_min + 0.65 * lat_span,
        b.lon_min + 0.45 * lon_span,
        b.lon_min + 0.65 * lon_span,
    );

    let mut c = Criterion::default();

    // Unsharded baselines the K-sharded numbers are judged against.
    c.bench_function("shard/point/unsharded", |bench| {
        bench.iter(|| engine.point(black_box(lat), black_box(lon)))
    });
    c.bench_function("shard/window/unsharded", |bench| {
        bench.iter(|| {
            engine.window(
                black_box(window.0),
                black_box(window.1),
                black_box(window.2),
                black_box(window.3),
            )
        })
    });
    c.bench_function("shard/knn/unsharded", |bench| {
        bench.iter(|| engine.knn(black_box(lat), black_box(lon), black_box(8)))
    });

    let base = std::env::temp_dir().join(format!("sr_bench_shard_{}", std::process::id()));
    for k in [1usize, 4, 8] {
        let dir = base.join(format!("k{k}"));
        std::fs::remove_dir_all(&dir).ok();
        let opts = SplitOptions { shards: k, replicas: 1 };
        c.bench_function(&format!("shard/split_write/k{k}"), |bench| {
            bench.iter(|| {
                write_shards(black_box(&snap), &dir, &opts, sr_par::Pool::global()).unwrap()
            })
        });
        let router = ShardRouter::open(dir.join("manifest.txt"), RouterConfig::default()).unwrap();
        c.bench_function(&format!("shard/point/k{k}"), |bench| {
            bench.iter(|| router.point(black_box(lat), black_box(lon)).unwrap())
        });
        c.bench_function(&format!("shard/window/k{k}"), |bench| {
            bench.iter(|| {
                router
                    .window(
                        black_box(window.0),
                        black_box(window.1),
                        black_box(window.2),
                        black_box(window.3),
                    )
                    .unwrap()
            })
        });
        c.bench_function(&format!("shard/knn/k{k}"), |bench| {
            bench.iter(|| router.knn(black_box(lat), black_box(lon), black_box(8)).unwrap())
        });

        // The degraded/distributed cost: same queries with the fused
        // fast path disabled.
        let scatter_config = RouterConfig { scatter_only: true, ..RouterConfig::default() };
        let scatter = ShardRouter::open(dir.join("manifest.txt"), scatter_config).unwrap();
        c.bench_function(&format!("shard/window/k{k}_scatter"), |bench| {
            bench.iter(|| {
                scatter
                    .window(
                        black_box(window.0),
                        black_box(window.1),
                        black_box(window.2),
                        black_box(window.3),
                    )
                    .unwrap()
            })
        });
        c.bench_function(&format!("shard/knn/k{k}_scatter"), |bench| {
            bench.iter(|| scatter.knn(black_box(lat), black_box(lon), black_box(8)).unwrap())
        });
    }
    std::fs::remove_dir_all(&base).ok();

    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_shard.json");
    c.export_json(out).expect("write BENCH_shard.json");
    println!("\nwrote {out}");
}
