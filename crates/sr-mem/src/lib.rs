//! Peak-memory tracking for the paper's memory-usage experiments
//! (Figs. 8 and 10).
//!
//! The paper reports process memory of Python model training; the cleaner
//! Rust analogue is the peak of *live allocated bytes* during the training
//! call, measured by wrapping the system allocator (DESIGN.md,
//! substitution 4). Experiment binaries install [`TrackingAllocator`] as
//! their global allocator and wrap each training call in
//! [`measure_peak`]:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: sr_mem::TrackingAllocator = sr_mem::TrackingAllocator;
//!
//! let (model, peak_bytes) = sr_mem::measure_peak(|| train(&data));
//! ```
//!
//! Counters are atomic and the tracking overhead is two relaxed RMW
//! operations per allocation; when the allocator is *not* installed, the
//! measurement functions still work but report zero.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicUsize, Ordering};

static LIVE: AtomicUsize = AtomicUsize::new(0);
static PEAK: AtomicUsize = AtomicUsize::new(0);

/// A [`System`]-backed allocator that tracks live and peak bytes.
pub struct TrackingAllocator;

impl TrackingAllocator {
    #[inline]
    fn add(size: usize) {
        let live = LIVE.fetch_add(size, Ordering::Relaxed) + size;
        // Lock-free peak update.
        let mut peak = PEAK.load(Ordering::Relaxed);
        while live > peak {
            match PEAK.compare_exchange_weak(peak, live, Ordering::Relaxed, Ordering::Relaxed) {
                Ok(_) => break,
                Err(p) => peak = p,
            }
        }
    }

    #[inline]
    fn sub(size: usize) {
        LIVE.fetch_sub(size, Ordering::Relaxed);
    }
}

// SAFETY: defers to `System` for every allocation; the counter updates have
// no safety impact.
unsafe impl GlobalAlloc for TrackingAllocator {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            Self::add(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout);
        Self::sub(layout.size());
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() {
            Self::sub(layout.size());
            Self::add(new_size);
        }
        p
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            Self::add(layout.size());
        }
        p
    }
}

/// Currently live tracked bytes.
pub fn live_bytes() -> usize {
    LIVE.load(Ordering::Relaxed)
}

/// Peak live bytes since the last [`reset_peak`].
pub fn peak_bytes() -> usize {
    PEAK.load(Ordering::Relaxed)
}

/// Resets the peak to the current live count.
pub fn reset_peak() {
    PEAK.store(LIVE.load(Ordering::Relaxed), Ordering::Relaxed);
}

/// Runs `f` and returns `(result, peak_delta_bytes)`: the highest number of
/// bytes live during `f` beyond what was live at entry.
///
/// Single-measurement discipline: concurrent allocations from other threads
/// are attributed to whichever measurement is active, so experiment
/// binaries measure one training call at a time (worker threads *inside*
/// the call are fine — their memory belongs to the measurement).
pub fn measure_peak<T>(f: impl FnOnce() -> T) -> (T, usize) {
    let baseline = live_bytes();
    reset_peak();
    let out = f();
    let peak = peak_bytes();
    (out, peak.saturating_sub(baseline))
}

#[cfg(test)]
mod tests {
    use super::*;

    // NOTE: the allocator is not installed as #[global_allocator] in unit
    // tests (that would affect every test in the binary); these tests
    // exercise the counter plumbing directly.

    // One combined test: the counters are process-global, so concurrent
    // test functions would race each other's exact-equality assertions.
    #[test]
    fn counter_plumbing_end_to_end() {
        // add/sub move the live counter and ratchet the peak.
        reset_peak();
        let before_live = live_bytes();
        TrackingAllocator::add(1024);
        assert_eq!(live_bytes(), before_live + 1024);
        assert!(peak_bytes() >= before_live + 1024);
        TrackingAllocator::sub(1024);
        assert_eq!(live_bytes(), before_live);

        // Peak is monotone until reset.
        TrackingAllocator::add(4096);
        let p1 = peak_bytes();
        TrackingAllocator::sub(4096);
        assert!(peak_bytes() >= p1);
        reset_peak();
        assert!(peak_bytes() <= p1);

        // measure_peak returns the closure result and the transient peak.
        let (v, peak) = measure_peak(|| {
            TrackingAllocator::add(2048);
            TrackingAllocator::sub(2048);
            42
        });
        assert_eq!(v, 42);
        assert!(peak >= 2048);
    }
}
