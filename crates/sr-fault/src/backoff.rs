//! [`Backoff`]: a seeded decorrelated-jitter retry policy.
//!
//! The policy is the "decorrelated jitter" variant: each delay is drawn
//! uniformly from `[base, 3 · previous]` and clamped to `cap`, which
//! spreads retries out (avoiding the synchronized herds of plain
//! exponential backoff) while still growing toward the cap. It is
//! **hermetic**: delays are a pure function of `(base, cap, seed, call
//! count)` — the policy never reads a clock and never sleeps, so callers
//! decide whether a delay is slept, scheduled, or just asserted on in a
//! test.

use crate::rng::SplitMix64;
use std::time::Duration;

/// A deterministic decorrelated-jitter backoff schedule.
///
/// ```
/// use sr_fault::Backoff;
/// use std::time::Duration;
///
/// let base = Duration::from_millis(2);
/// let cap = Duration::from_millis(50);
/// let mut backoff = Backoff::new(base, cap, 7);
/// let first = backoff.next_delay();
/// assert!(first >= base && first <= cap);
/// // Same parameters, same seed: the schedule replays exactly.
/// assert_eq!(Backoff::new(base, cap, 7).next_delay(), first);
/// ```
#[derive(Debug, Clone)]
pub struct Backoff {
    base: Duration,
    cap: Duration,
    seed: u64,
    prev: Duration,
    rng: SplitMix64,
}

impl Backoff {
    /// A schedule starting at `base`, clamped to `cap`, drawing jitter
    /// from `seed`. A zero `base` is clamped to 1 ns so the schedule can
    /// grow; `cap < base` clamps to `base`.
    pub fn new(base: Duration, cap: Duration, seed: u64) -> Self {
        let base = base.max(Duration::from_nanos(1));
        let cap = cap.max(base);
        Backoff { base, cap, seed, prev: base, rng: SplitMix64::new(seed) }
    }

    /// The next delay: uniform in `[base, 3 · previous]`, clamped to
    /// `cap`. Consumes one PRNG draw.
    pub fn next_delay(&mut self) -> Duration {
        let low = self.base.as_nanos().min(u128::from(u64::MAX)) as u64;
        let high =
            self.prev.saturating_mul(3).min(self.cap).as_nanos().min(u128::from(u64::MAX)) as u64;
        let delay = Duration::from_nanos(self.rng.next_in_range(low, high.max(low)));
        self.prev = delay;
        delay
    }

    /// Rewinds the schedule to its initial state (same seed, first delay
    /// again) — call after a success so the next failure starts cheap.
    pub fn reset(&mut self) {
        self.prev = self.base;
        self.rng = SplitMix64::new(self.seed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delays_stay_within_bounds_and_replay() {
        let base = Duration::from_millis(1);
        let cap = Duration::from_millis(20);
        let mut a = Backoff::new(base, cap, 42);
        let mut b = Backoff::new(base, cap, 42);
        for _ in 0..32 {
            let d = a.next_delay();
            assert!(d >= base && d <= cap, "{d:?}");
            assert_eq!(d, b.next_delay());
        }
    }

    #[test]
    fn reset_replays_from_the_start() {
        let mut backoff = Backoff::new(Duration::from_millis(1), Duration::from_millis(50), 5);
        let first: Vec<Duration> = (0..4).map(|_| backoff.next_delay()).collect();
        backoff.reset();
        let again: Vec<Duration> = (0..4).map(|_| backoff.next_delay()).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn grows_toward_the_cap() {
        // With jitter, individual delays wobble, but the running max over
        // a long schedule must reach a meaningful fraction of the cap.
        let cap = Duration::from_millis(100);
        let mut backoff = Backoff::new(Duration::from_millis(1), cap, 3);
        let max = (0..64).map(|_| backoff.next_delay()).max().unwrap();
        assert!(max > cap / 4, "schedule never grew: max {max:?}");
    }

    #[test]
    fn degenerate_params_are_clamped() {
        let mut zero = Backoff::new(Duration::ZERO, Duration::ZERO, 0);
        let d = zero.next_delay();
        assert!(d >= Duration::from_nanos(1));
        let mut inverted = Backoff::new(Duration::from_millis(5), Duration::from_millis(1), 0);
        let d = inverted.next_delay();
        assert_eq!(d, Duration::from_millis(5), "cap below base clamps to base");
    }
}
