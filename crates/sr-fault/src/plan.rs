//! [`FaultPlan`]: what to inject, at which rate, from which seed.
//!
//! A plan is parsed from a small `key = value` text format (one decision
//! knob per line, `#` comments — the full grammar is in
//! `docs/ROBUSTNESS.md`) and is cheap to clone: clones share the same PRNG
//! state and counters, so one plan threaded through a cache, a server, and
//! a test observes a single global decision sequence.
//!
//! ## Determinism
//!
//! Every probabilistic decision draws from one seeded SplitMix64 stream,
//! in a fixed order per operation (read: latency → error → EOF; write:
//! latency → error). A draw is only consumed for *fractional* rates — a
//! rate of exactly `0` is always "no" and exactly `1` is always "yes"
//! without touching the PRNG — so all-or-nothing plans stay deterministic
//! regardless of operation interleaving, and a disabled plan never
//! perturbs anything.

use crate::rng::SplitMix64;
use sr_obs::{Counter, Registry};
use std::io::{Read, Write};
use std::path::Path;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// Injection knobs for one I/O direction (reads or writes).
#[derive(Debug, Clone, Copy, Default)]
struct OpFaults {
    /// Probability a call fails with an injected `io::Error`.
    error_rate: f64,
    /// Probability a call sleeps for `latency` first.
    latency_rate: f64,
    /// Injected sleep duration.
    latency: Duration,
    /// Probability a read reports EOF early (sticky once fired; models a
    /// torn/truncated file). Ignored for writes.
    eof_rate: f64,
}

#[derive(Debug)]
struct Inner {
    seed: u64,
    read: OpFaults,
    write: OpFaults,
    panic_rate: f64,
    rng: Mutex<SplitMix64>,
    errors: Counter,
    latencies: Counter,
    eofs: Counter,
    panics: Counter,
}

/// A deterministic, shareable fault-injection plan.
///
/// Inert by default ([`FaultPlan::disabled`]); parsed from text or a file
/// for tests and demos. All clones share PRNG state and `fault.*`
/// counters.
#[derive(Debug, Clone)]
pub struct FaultPlan {
    inner: Arc<Inner>,
}

/// Errors from loading or parsing a fault-plan file.
#[derive(Debug)]
pub enum PlanError {
    /// The plan file could not be read.
    Io(std::io::Error),
    /// A line did not parse.
    Parse {
        /// 1-based line number of the offending line.
        line: usize,
        /// What went wrong.
        message: String,
    },
}

impl std::fmt::Display for PlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlanError::Io(e) => write!(f, "fault plan i/o error: {e}"),
            PlanError::Parse { line, message } => {
                write!(f, "fault plan parse error at line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for PlanError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            PlanError::Io(e) => Some(e),
            PlanError::Parse { .. } => None,
        }
    }
}

impl From<std::io::Error> for PlanError {
    fn from(e: std::io::Error) -> Self {
        PlanError::Io(e)
    }
}

impl FaultPlan {
    fn from_parts(
        seed: u64,
        read: OpFaults,
        write: OpFaults,
        panic_rate: f64,
        registry: &Registry,
    ) -> Self {
        FaultPlan {
            inner: Arc::new(Inner {
                seed,
                read,
                write,
                panic_rate,
                rng: Mutex::new(SplitMix64::new(seed)),
                errors: registry.counter("fault.injected_errors_total"),
                latencies: registry.counter("fault.injected_latency_total"),
                eofs: registry.counter("fault.injected_eofs_total"),
                panics: registry.counter("fault.injected_panics_total"),
            }),
        }
    }

    /// A plan that injects nothing and consumes no randomness. Counters are
    /// private (not bound to any registry), so threading a disabled plan
    /// through production code has no observable effect.
    pub fn disabled() -> Self {
        FaultPlan {
            inner: Arc::new(Inner {
                seed: 0,
                read: OpFaults::default(),
                write: OpFaults::default(),
                panic_rate: 0.0,
                rng: Mutex::new(SplitMix64::new(0)),
                errors: Counter::new(),
                latencies: Counter::new(),
                eofs: Counter::new(),
                panics: Counter::new(),
            }),
        }
    }

    /// Parses the plan text format (see `docs/ROBUSTNESS.md`), binding the
    /// `fault.*` counters into `registry` so injections are observable
    /// next to the metrics of the code under test.
    pub fn parse(text: &str, registry: &Registry) -> Result<FaultPlan, PlanError> {
        let mut seed = 0u64;
        let mut read = OpFaults::default();
        let mut write = OpFaults::default();
        let mut panic_rate = 0.0f64;
        let mut read_latency_rate_set = false;
        let mut write_latency_rate_set = false;
        for (idx, raw) in text.lines().enumerate() {
            let line = idx + 1;
            let stripped = raw.split('#').next().unwrap_or("").trim();
            if stripped.is_empty() {
                continue;
            }
            let (key, value) = stripped.split_once('=').ok_or(PlanError::Parse {
                line,
                message: format!("expected 'key = value', got '{stripped}'"),
            })?;
            let (key, value) = (key.trim(), value.trim());
            let rate = |v: &str| parse_rate(v, line);
            match key {
                "seed" => {
                    seed = value.parse().map_err(|_| PlanError::Parse {
                        line,
                        message: format!("seed must be a u64, got '{value}'"),
                    })?;
                }
                "read.error_rate" => read.error_rate = rate(value)?,
                "read.latency_ms" => read.latency = parse_ms(value, line)?,
                "read.latency_rate" => {
                    read.latency_rate = rate(value)?;
                    read_latency_rate_set = true;
                }
                "read.eof_rate" => read.eof_rate = rate(value)?,
                "write.error_rate" => write.error_rate = rate(value)?,
                "write.latency_ms" => write.latency = parse_ms(value, line)?,
                "write.latency_rate" => {
                    write.latency_rate = rate(value)?;
                    write_latency_rate_set = true;
                }
                "panic.rate" => panic_rate = rate(value)?,
                other => {
                    return Err(PlanError::Parse {
                        line,
                        message: format!("unknown key '{other}'"),
                    })
                }
            }
        }
        // Setting a latency without a rate means "always": the common case
        // for a "this disk is slow" plan.
        if read.latency > Duration::ZERO && !read_latency_rate_set {
            read.latency_rate = 1.0;
        }
        if write.latency > Duration::ZERO && !write_latency_rate_set {
            write.latency_rate = 1.0;
        }
        Ok(FaultPlan::from_parts(seed, read, write, panic_rate, registry))
    }

    /// Reads and parses a plan file (`srtool serve --fault-plan FILE`).
    pub fn load(path: impl AsRef<Path>, registry: &Registry) -> Result<FaultPlan, PlanError> {
        FaultPlan::parse(&std::fs::read_to_string(path)?, registry)
    }

    /// The plan's PRNG seed.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// Whether the plan can never inject anything (all rates zero).
    pub fn is_disabled(&self) -> bool {
        let i = &self.inner;
        i.read.error_rate == 0.0
            && i.read.latency_rate == 0.0
            && i.read.eof_rate == 0.0
            && i.write.error_rate == 0.0
            && i.write.latency_rate == 0.0
            && i.panic_rate == 0.0
    }

    /// One probabilistic decision. Rates of exactly 0 / 1 short-circuit
    /// without consuming a PRNG draw (see the module docs).
    fn decide(&self, rate: f64) -> bool {
        if rate <= 0.0 {
            return false;
        }
        if rate >= 1.0 {
            return true;
        }
        self.inner.rng.lock().expect("fault plan rng poisoned").next_f64() < rate
    }

    /// Wraps a reader so reads are subject to this plan's `read.*` faults.
    pub fn wrap_read<R: Read>(&self, inner: R) -> FaultyRead<R> {
        FaultyRead { inner, plan: self.clone(), eof: false }
    }

    /// Wraps a writer so writes are subject to this plan's `write.*`
    /// faults.
    pub fn wrap_write<W: Write>(&self, inner: W) -> FaultyWrite<W> {
        FaultyWrite { inner, plan: self.clone() }
    }

    /// Panic-injection hook for worker threads: panics (with a
    /// recognizable `sr-fault: injected panic at <site>` message) when the
    /// plan's `panic.rate` decision fires. Call it at the top of a unit of
    /// work whose supervisor claims panic-safety.
    pub fn maybe_panic(&self, site: &str) {
        if self.decide(self.inner.panic_rate) {
            self.inner.panics.inc();
            panic!("sr-fault: injected panic at {site}");
        }
    }

    /// Injected-error count so far (same cell as
    /// `fault.injected_errors_total`).
    pub fn injected_errors(&self) -> u64 {
        self.inner.errors.get()
    }

    /// Injected-latency count so far.
    pub fn injected_latency(&self) -> u64 {
        self.inner.latencies.get()
    }

    /// Injected premature-EOF count so far.
    pub fn injected_eofs(&self) -> u64 {
        self.inner.eofs.get()
    }

    /// Injected panic count so far.
    pub fn injected_panics(&self) -> u64 {
        self.inner.panics.get()
    }
}

fn parse_rate(value: &str, line: usize) -> Result<f64, PlanError> {
    let rate: f64 = value.parse().map_err(|_| PlanError::Parse {
        line,
        message: format!("rate must be a number in [0, 1], got '{value}'"),
    })?;
    if !(0.0..=1.0).contains(&rate) {
        return Err(PlanError::Parse {
            line,
            message: format!("rate must be in [0, 1], got {rate}"),
        });
    }
    Ok(rate)
}

fn parse_ms(value: &str, line: usize) -> Result<Duration, PlanError> {
    let ms: u64 = value.parse().map_err(|_| PlanError::Parse {
        line,
        message: format!("latency must be whole milliseconds, got '{value}'"),
    })?;
    Ok(Duration::from_millis(ms))
}

/// A reader whose `read` calls are subject to a [`FaultPlan`]'s `read.*`
/// faults. Decision order per call: latency → error → EOF. An injected
/// EOF is sticky — every later read also reports EOF, exactly like a
/// file truncated mid-write.
#[derive(Debug)]
pub struct FaultyRead<R> {
    inner: R,
    plan: FaultPlan,
    eof: bool,
}

impl<R> FaultyRead<R> {
    /// Unwraps the underlying reader.
    pub fn into_inner(self) -> R {
        self.inner
    }
}

impl<R: Read> Read for FaultyRead<R> {
    fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
        if self.eof {
            return Ok(0);
        }
        let p = &self.plan;
        if p.decide(p.inner.read.latency_rate) {
            p.inner.latencies.inc();
            std::thread::sleep(p.inner.read.latency);
        }
        if p.decide(p.inner.read.error_rate) {
            p.inner.errors.inc();
            return Err(std::io::Error::other("sr-fault: injected read error"));
        }
        if p.decide(p.inner.read.eof_rate) {
            p.inner.eofs.inc();
            self.eof = true;
            return Ok(0);
        }
        self.inner.read(buf)
    }
}

/// A writer whose `write` calls are subject to a [`FaultPlan`]'s `write.*`
/// faults. Decision order per call: latency → error. `flush` passes
/// through untouched.
#[derive(Debug)]
pub struct FaultyWrite<W> {
    inner: W,
    plan: FaultPlan,
}

impl<W> FaultyWrite<W> {
    /// Unwraps the underlying writer (e.g. to `sync_all` a file).
    pub fn into_inner(self) -> W {
        self.inner
    }
}

impl<W: Write> Write for FaultyWrite<W> {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        let p = &self.plan;
        if p.decide(p.inner.write.latency_rate) {
            p.inner.latencies.inc();
            std::thread::sleep(p.inner.write.latency);
        }
        if p.decide(p.inner.write.error_rate) {
            p.inner.errors.inc();
            return Err(std::io::Error::other("sr-fault: injected write error"));
        }
        self.inner.write(buf)
    }

    fn flush(&mut self) -> std::io::Result<()> {
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_plan_and_defaults_latency_rate() {
        let registry = Registry::new();
        let text = "# a demo plan\nseed = 99\nread.error_rate = 0.5\nread.latency_ms = 3\n\
                    write.error_rate=0.25 # inline comment\npanic.rate = 0.125\n";
        let plan = FaultPlan::parse(text, &registry).unwrap();
        assert_eq!(plan.seed(), 99);
        assert!(!plan.is_disabled());
        // latency_ms without latency_rate means "always".
        assert_eq!(plan.inner.read.latency_rate, 1.0);
        assert_eq!(plan.inner.read.latency, Duration::from_millis(3));
        assert_eq!(plan.inner.write.error_rate, 0.25);
    }

    #[test]
    fn rejects_unknown_keys_bad_rates_and_bad_lines() {
        let registry = Registry::new();
        for (text, needle) in [
            ("bogus.key = 1\n", "unknown key"),
            ("read.error_rate = 1.5\n", "must be in [0, 1]"),
            ("read.error_rate = x\n", "must be a number"),
            ("seed = -3\n", "seed must be a u64"),
            ("just words\n", "expected 'key = value'"),
        ] {
            match FaultPlan::parse(text, &registry) {
                Err(PlanError::Parse { line: 1, message }) => {
                    assert!(message.contains(needle), "{text:?}: {message}");
                }
                other => panic!("{text:?}: expected parse error, got {other:?}"),
            }
        }
    }

    #[test]
    fn disabled_plan_is_inert() {
        let plan = FaultPlan::disabled();
        assert!(plan.is_disabled());
        let mut r = plan.wrap_read(&b"abc"[..]);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert_eq!(out, b"abc");
        assert_eq!(plan.injected_errors() + plan.injected_eofs() + plan.injected_latency(), 0);
        plan.maybe_panic("test.site"); // must not panic
    }

    #[test]
    fn injected_eof_is_sticky_and_counted_once() {
        let registry = Registry::new();
        let plan = FaultPlan::parse("read.eof_rate = 1.0\n", &registry).unwrap();
        let mut r = plan.wrap_read(&b"payload"[..]);
        let mut out = Vec::new();
        r.read_to_end(&mut out).unwrap();
        assert!(out.is_empty(), "EOF injection must hide all bytes");
        let mut buf = [0u8; 4];
        assert_eq!(r.read(&mut buf).unwrap(), 0, "EOF is sticky");
        assert_eq!(registry.counter("fault.injected_eofs_total").get(), 1);
    }

    #[test]
    fn injected_write_errors_are_counted() {
        let registry = Registry::new();
        let plan = FaultPlan::parse("write.error_rate = 1.0\n", &registry).unwrap();
        let mut sink = Vec::new();
        let mut w = plan.wrap_write(&mut sink);
        assert!(w.write_all(b"data").is_err());
        assert_eq!(plan.injected_errors(), 1);
        assert!(sink.is_empty());
    }

    #[test]
    fn panic_hook_panics_with_recognizable_message() {
        let registry = Registry::new();
        let plan = FaultPlan::parse("panic.rate = 1.0\n", &registry).unwrap();
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            plan.maybe_panic("unit.test");
        }));
        let payload = caught.expect_err("must panic");
        let message = payload.downcast_ref::<String>().expect("string payload");
        assert!(message.contains("sr-fault: injected panic at unit.test"), "{message}");
        assert_eq!(plan.injected_panics(), 1);
    }

    #[test]
    fn fractional_rates_replay_identically_for_a_seed() {
        let text = "seed = 1234\nread.error_rate = 0.5\n";
        let run = |text: &str| -> Vec<bool> {
            let registry = Registry::new();
            let plan = FaultPlan::parse(text, &registry).unwrap();
            (0..64)
                .map(|_| {
                    let mut r = plan.wrap_read(&b"x"[..]);
                    r.read(&mut [0u8; 1]).is_err()
                })
                .collect()
        };
        let a = run(text);
        let b = run(text);
        assert_eq!(a, b, "same seed must replay the same decision sequence");
        assert!(a.iter().any(|&e| e) && a.iter().any(|&e| !e), "rate 0.5 mixes outcomes: {a:?}");
        let c = run("seed = 4321\nread.error_rate = 0.5\n");
        assert_ne!(a, c, "different seeds should diverge");
    }
}
