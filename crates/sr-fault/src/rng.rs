//! The one PRNG every fault decision draws from: SplitMix64.
//!
//! Chosen for statelessness of implementation (a single `u64`), full-period
//! behavior on any seed (including 0), and trivial reproducibility across
//! platforms — the same seed always yields the same decision sequence,
//! which is the determinism contract `docs/ROBUSTNESS.md` pins down.

#[derive(Debug, Clone)]
pub(crate) struct SplitMix64(u64);

impl SplitMix64 {
    pub(crate) fn new(seed: u64) -> Self {
        SplitMix64(seed)
    }

    pub(crate) fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform draw in `[0, 1)` with 53 bits of precision.
    pub(crate) fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform draw in `[low, high]` (inclusive); `low > high` clamps to
    /// `low`.
    pub(crate) fn next_in_range(&mut self, low: u64, high: u64) -> u64 {
        if high <= low {
            return low;
        }
        let span = high - low + 1;
        low + self.next_u64() % span
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMix64::new(43);
        assert_ne!(SplitMix64::new(42).next_u64(), c.next_u64());
    }

    #[test]
    fn f64_draws_stay_in_unit_interval() {
        let mut rng = SplitMix64::new(0);
        for _ in 0..1024 {
            let v = rng.next_f64();
            assert!((0.0..1.0).contains(&v), "{v}");
        }
    }

    #[test]
    fn range_draws_are_inclusive_and_clamped() {
        let mut rng = SplitMix64::new(9);
        for _ in 0..256 {
            let v = rng.next_in_range(10, 12);
            assert!((10..=12).contains(&v), "{v}");
        }
        assert_eq!(rng.next_in_range(5, 5), 5);
        assert_eq!(rng.next_in_range(7, 3), 7);
    }
}
