//! Deterministic fault injection for the serving stack.
//!
//! Production robustness claims ("a corrupt snapshot degrades to stale
//! serving", "a stalled disk cannot wedge a request past its deadline")
//! are only worth anything if they are *tested*, and they are only
//! testable if failures can be produced on demand, repeatably. This crate
//! is that substrate: a [`FaultPlan`] describes which failures to inject
//! (I/O errors, extra latency, premature EOF, worker panics) at which
//! rates, every probabilistic decision is drawn from one seeded PRNG so a
//! fixed plan replays the exact same fault sequence, and every injection
//! increments a `fault.*` counter in an [`sr_obs::Registry`] so tests and
//! operators can reconcile what happened against `GET /metrics`.
//!
//! The crate is std-only and inert by default: [`FaultPlan::disabled`]
//! injects nothing and consumes no randomness, so production code can
//! thread a plan unconditionally. `docs/ROBUSTNESS.md` documents the plan
//! file format and the decision-draw order that determinism relies on.
//!
//! ```
//! use sr_fault::FaultPlan;
//! use sr_obs::Registry;
//! use std::io::Read;
//!
//! let registry = Registry::new();
//! let plan = FaultPlan::parse("seed = 7\nread.error_rate = 1.0\n", &registry).unwrap();
//! let mut failing = plan.wrap_read(&b"payload"[..]);
//! assert!(failing.read(&mut [0u8; 8]).is_err());
//! assert_eq!(registry.counter("fault.injected_errors_total").get(), 1);
//! ```

#![deny(missing_docs)]

mod backoff;
mod plan;
mod rng;

pub use backoff::Backoff;
pub use plan::{FaultPlan, FaultyRead, FaultyWrite, PlanError};
