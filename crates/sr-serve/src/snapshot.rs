//! The `sr-snap v1` binary snapshot format.
//!
//! A snapshot freezes everything the online query path needs from one
//! accepted re-partitioning run: the partition (`gIndex` + `cIndex`), the
//! allocated group feature vectors (Algorithm 2 output), the group
//! adjacency lists (Algorithm 3 output), the input grid's validity bitmap
//! (needed to un-sum `Sum` attributes per §III-C), the attribute schema,
//! the geographic bounds, and the run parameters (`θ`, achieved IFL,
//! accepted min-adjacent variation).
//!
//! ## Layout (all integers little-endian, all `f64` as IEEE-754 bits)
//!
//! | section        | contents                                              |
//! |----------------|-------------------------------------------------------|
//! | magic          | `b"SRSNAP"` (6 bytes)                                 |
//! | version        | `u16` = 1                                             |
//! | shape          | `rows: u32`, `cols: u32`, `num_groups: u32`, `num_attrs: u32` |
//! | run params     | `theta: f64`, `ifl: f64`, `min_adjacent_variation: f64` |
//! | bounds         | `lat_min, lat_max, lon_min, lon_max: f64`             |
//! | attrs          | per attribute: `name_len: u16`, UTF-8 name, `agg: u8` (0=Sum, 1=Avg, 2=Mode), `integer: u8` (0/1) |
//! | valid bitmap   | `⌈rows·cols / 8⌉` bytes, cell `i` at bit `i % 8` (LSB-first) of byte `i / 8` |
//! | groups         | per group: `r0, r1, c0, c1: u32` (inclusive)          |
//! | cell_to_group  | `rows·cols × u32`, row-major                          |
//! | features       | per group: `present: u8` (0/1), then `num_attrs × f64` if present |
//! | adjacency      | per group: `degree: u32`, then `degree × u32` neighbor ids |
//! | trailer        | CRC-32 (IEEE 802.3) over every preceding byte, `u32`  |
//!
//! `f64` values travel as raw bit patterns, so write → read → write
//! reproduces the input byte-for-byte (including negative zeros and NaN
//! payloads). The trailer rejects any single-byte corruption.

use crate::{Result, ServeError};
use sr_core::{GroupRect, Partition, Repartitioned};
use sr_grid::{AdjacencyList, AggType, Bounds, GridDataset};
use std::io::{Read, Write};
use std::path::Path;

pub(crate) const MAGIC: &[u8; 6] = b"SRSNAP";
const VERSION: u16 = 1;
/// Upper bound on `rows · cols`, a guard against pathological headers
/// driving allocation (well above the paper's 100k-cell grids).
pub(crate) const MAX_CELLS: usize = 1 << 28;
/// Upper bound on attributes per cell.
pub(crate) const MAX_ATTRS: usize = 4096;

/// An immutable, serializable view of one accepted re-partitioning run.
#[derive(Debug, Clone, PartialEq)]
pub struct Snapshot {
    rows: usize,
    cols: usize,
    theta: f64,
    ifl: f64,
    min_adjacent_variation: f64,
    bounds: Bounds,
    attr_names: Vec<String>,
    agg_types: Vec<AggType>,
    integer_attrs: Vec<bool>,
    valid: Vec<bool>,
    partition: Partition,
    features: Vec<Option<Vec<f64>>>,
    adjacency: AdjacencyList,
}

impl Snapshot {
    /// Freezes an accepted run into a snapshot. `original` must be the grid
    /// `rep` was computed from (it supplies the validity bitmap); `theta` is
    /// the loss budget the run was given, kept for cache keying.
    pub fn build(rep: &Repartitioned, original: &GridDataset, theta: f64) -> Result<Snapshot> {
        if rep.partition().rows() != original.rows()
            || rep.partition().cols() != original.cols()
            || rep.attr_names().len() != original.num_attrs()
        {
            return Err(ServeError::Invalid(
                "repartitioned result does not match the original grid's shape".into(),
            ));
        }
        Snapshot::from_parts(
            theta,
            rep.ifl(),
            rep.min_adjacent_variation(),
            original.bounds(),
            rep.attr_names().to_vec(),
            rep.agg_types().to_vec(),
            rep.integer_attrs().to_vec(),
            original.valid_mask().to_vec(),
            rep.partition().clone(),
            rep.features().to_vec(),
            rep.adjacency(),
        )
    }

    /// Assembles a snapshot from raw parts, checking every cross-section
    /// invariant the binary reader also enforces.
    #[allow(clippy::too_many_arguments)]
    pub fn from_parts(
        theta: f64,
        ifl: f64,
        min_adjacent_variation: f64,
        bounds: Bounds,
        attr_names: Vec<String>,
        agg_types: Vec<AggType>,
        integer_attrs: Vec<bool>,
        valid: Vec<bool>,
        partition: Partition,
        features: Vec<Option<Vec<f64>>>,
        adjacency: AdjacencyList,
    ) -> Result<Snapshot> {
        let s = Snapshot {
            rows: partition.rows(),
            cols: partition.cols(),
            theta,
            ifl,
            min_adjacent_variation,
            bounds,
            attr_names,
            agg_types,
            integer_attrs,
            valid,
            partition,
            features,
            adjacency,
        };
        s.validate()?;
        Ok(s)
    }

    fn validate(&self) -> Result<()> {
        let invalid = |msg: String| Err(ServeError::Invalid(msg));
        let cells = self.rows * self.cols;
        let p = self.attr_names.len();
        if self.rows == 0 || self.cols == 0 || p == 0 {
            return invalid("empty grid or schema".into());
        }
        if cells > MAX_CELLS || p > MAX_ATTRS {
            return invalid("grid or schema exceeds format limits".into());
        }
        if self.agg_types.len() != p || self.integer_attrs.len() != p {
            return invalid("attribute metadata lengths differ".into());
        }
        if self.valid.len() != cells {
            return invalid("validity bitmap length != rows * cols".into());
        }
        let t = self.partition.num_groups();
        if t == 0 || t > cells {
            return invalid(format!("group count {t} out of range for {cells} cells"));
        }
        if self.features.len() != t {
            return invalid("feature table length != group count".into());
        }
        if self.adjacency.len() != t {
            return invalid("adjacency length != group count".into());
        }
        // The rectangles must tile the grid, and cIndex must agree with
        // gIndex exactly (the release-mode version of Partition::new's
        // debug assertions — snapshot bytes are untrusted input).
        let mut counted = 0usize;
        for gid in 0..t as u32 {
            let rect = self.partition.rect(gid);
            if rect.r0 > rect.r1
                || rect.c0 > rect.c1
                || rect.r1 as usize >= self.rows
                || rect.c1 as usize >= self.cols
            {
                return invalid(format!("group {gid} rectangle out of grid bounds"));
            }
            counted += rect.len();
            if counted > cells {
                return invalid("group rectangles overlap or exceed the grid".into());
            }
            for cell in self.partition.cells_iter(gid) {
                if self.partition.group_of(cell) != gid {
                    return invalid(format!(
                        "cell {cell} not mapped to its containing group {gid}"
                    ));
                }
            }
        }
        if counted != cells {
            return invalid("group rectangles do not tile the grid".into());
        }
        for (gid, fv) in self.features.iter().enumerate() {
            if let Some(fv) = fv {
                if fv.len() != p {
                    return invalid(format!("group {gid} feature vector length != num_attrs"));
                }
            }
        }
        // A valid cell must belong to a featured group (Algorithm 2 gives
        // features to every group with at least one valid member); the
        // query engine relies on this to equate the validity bitmap with
        // reconstruction validity.
        for (cell, &v) in self.valid.iter().enumerate() {
            if v && self.features[self.partition.group_of(cell as u32) as usize].is_none() {
                return invalid(format!("valid cell {cell} belongs to a null group"));
            }
        }
        for gid in 0..t as u32 {
            for &nb in self.adjacency.neighbors(gid) {
                if nb as usize >= t {
                    return invalid(format!("group {gid} has out-of-range neighbor {nb}"));
                }
            }
        }
        Ok(())
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total cells, `rows · cols`.
    pub fn num_cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Attributes per cell.
    pub fn num_attrs(&self) -> usize {
        self.attr_names.len()
    }

    /// The loss budget `θ` the run was given.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The achieved IFL of the frozen partition.
    pub fn ifl(&self) -> f64 {
        self.ifl
    }

    /// The accepted min-adjacent variation.
    pub fn min_adjacent_variation(&self) -> f64 {
        self.min_adjacent_variation
    }

    /// Geographic bounds of the grid.
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Attribute names.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Per-attribute aggregation types.
    pub fn agg_types(&self) -> &[AggType] {
        &self.agg_types
    }

    /// Per-attribute integer-typed flags.
    pub fn integer_attrs(&self) -> &[bool] {
        &self.integer_attrs
    }

    /// The original grid's validity bitmap (cell id → non-null).
    pub fn valid_mask(&self) -> &[bool] {
        &self.valid
    }

    /// The frozen partition.
    pub fn partition(&self) -> &Partition {
        &self.partition
    }

    /// Allocated group feature vectors (`None` = null group).
    pub fn features(&self) -> &[Option<Vec<f64>>] {
        &self.features
    }

    /// Group adjacency lists (Algorithm 3 output).
    pub fn adjacency(&self) -> &AdjacencyList {
        &self.adjacency
    }
}

// ---------------------------------------------------------------------------
// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320)
// ---------------------------------------------------------------------------

/// Eight shifted lookup tables for slicing-by-8: `CRC_TABLES[0]` is the
/// classic byte-at-a-time table, `CRC_TABLES[j][b]` is the CRC of byte
/// `b` followed by `j` zero bytes.
const CRC_TABLES: [[u32; 256]; 8] = crc_tables();

const fn crc_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            k += 1;
        }
        tables[0][i] = c;
        i += 1;
    }
    let mut j = 1;
    while j < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[j - 1][i];
            tables[j][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        j += 1;
    }
    tables
}

/// CRC-32 of `bytes` (the standard zlib/PNG checksum).
///
/// The v2 snapshot path checksums whole multi-megabyte sections on
/// every load, so throughput here is startup latency. Large inputs go
/// through a carry-less-multiplication kernel (`PCLMULQDQ` folding,
/// ~an order of magnitude faster than table lookup) when the CPU has
/// it; everything else — short inputs, tails, other architectures —
/// uses slicing-by-8 table lookups. Both produce the exact values of
/// the byte-at-a-time definition (reflected polynomial 0xEDB88320).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut state = 0xFFFF_FFFFu32;
    let mut rest = bytes;
    #[cfg(target_arch = "x86_64")]
    if rest.len() >= 64
        && std::arch::is_x86_feature_detected!("pclmulqdq")
        && std::arch::is_x86_feature_detected!("sse4.1")
    {
        let split = rest.len() & !15;
        // SAFETY: the required CPU features were just detected, and the
        // kernel's preconditions hold (len >= 64 and a multiple of 16).
        state = unsafe { crc32_pclmul(state, &rest[..split]) };
        rest = &rest[split..];
    }
    !crc32_table(state, rest)
}

/// Slicing-by-8 continuation: folds `bytes` into the running (inverted)
/// CRC `state`.
fn crc32_table(mut c: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        let lo = u32::from_le_bytes(chunk[0..4].try_into().unwrap()) ^ c;
        let hi = u32::from_le_bytes(chunk[4..8].try_into().unwrap());
        c = CRC_TABLES[7][(lo & 0xFF) as usize]
            ^ CRC_TABLES[6][(lo >> 8 & 0xFF) as usize]
            ^ CRC_TABLES[5][(lo >> 16 & 0xFF) as usize]
            ^ CRC_TABLES[4][(lo >> 24) as usize]
            ^ CRC_TABLES[3][(hi & 0xFF) as usize]
            ^ CRC_TABLES[2][(hi >> 8 & 0xFF) as usize]
            ^ CRC_TABLES[1][(hi >> 16 & 0xFF) as usize]
            ^ CRC_TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = CRC_TABLES[0][((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

/// CRC-32 folding with carry-less multiplication, after the classic
/// Intel recipe (also used by zlib): four 128-bit lanes fold 64 bytes
/// per step under the constants `x^(512+k) mod P`, the lanes are folded
/// into one, then Barrett reduction brings the 128-bit remainder down
/// to the 32-bit CRC. Takes and returns the *inverted* running state,
/// like [`crc32_table`].
///
/// # Safety
///
/// Caller must ensure the CPU supports `pclmulqdq` and `sse4.1`, and
/// that `buf.len() >= 64` and `buf.len() % 16 == 0`.
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "pclmulqdq", enable = "sse2", enable = "sse4.1")]
unsafe fn crc32_pclmul(crc: u32, buf: &[u8]) -> u32 {
    use std::arch::x86_64::*;
    debug_assert!(buf.len() >= 64 && buf.len().is_multiple_of(16));
    // Folding constants for the reflected polynomial 0xEDB88320:
    // k1 = x^576 mod P, k2 = x^512 mod P (64-byte fold);
    // k3 = x^192 mod P, k4 = x^128 mod P (16-byte fold);
    // k5 = x^96 mod P; mu/P' for the Barrett step.
    let k1k2 = _mm_set_epi64x(0x1_c6e4_1596, 0x1_5444_2bd4);
    let k3k4 = _mm_set_epi64x(0xccaa_009e, 0x1_7519_97d0);
    let k5 = _mm_set_epi64x(0, 0x1_63cd_6124);
    let poly = _mm_set_epi64x(0x1_f701_1641, 0x1_db71_0641);
    // fold(x, k, y) = (x.lo · k.lo) ^ (x.hi · k.hi) ^ y
    let fold = |x: __m128i, k: __m128i, y: __m128i| -> __m128i {
        _mm_xor_si128(
            _mm_xor_si128(_mm_clmulepi64_si128(x, k, 0x00), _mm_clmulepi64_si128(x, k, 0x11)),
            y,
        )
    };

    let mut ptr = buf.as_ptr().cast::<__m128i>();
    let mut len = buf.len();
    let mut x1 = _mm_loadu_si128(ptr);
    let mut x2 = _mm_loadu_si128(ptr.add(1));
    let mut x3 = _mm_loadu_si128(ptr.add(2));
    let mut x4 = _mm_loadu_si128(ptr.add(3));
    x1 = _mm_xor_si128(x1, _mm_cvtsi32_si128(crc as i32));
    ptr = ptr.add(4);
    len -= 64;
    while len >= 64 {
        x1 = fold(x1, k1k2, _mm_loadu_si128(ptr));
        x2 = fold(x2, k1k2, _mm_loadu_si128(ptr.add(1)));
        x3 = fold(x3, k1k2, _mm_loadu_si128(ptr.add(2)));
        x4 = fold(x4, k1k2, _mm_loadu_si128(ptr.add(3)));
        ptr = ptr.add(4);
        len -= 64;
    }
    // Fold the four lanes into one, then any remaining 16-byte blocks.
    x1 = fold(x1, k3k4, x2);
    x1 = fold(x1, k3k4, x3);
    x1 = fold(x1, k3k4, x4);
    while len >= 16 {
        x1 = fold(x1, k3k4, _mm_loadu_si128(ptr));
        ptr = ptr.add(1);
        len -= 16;
    }
    // 128 -> 64 bits.
    let mask32 = _mm_set_epi32(0, -1, 0, -1);
    let folded = _mm_clmulepi64_si128(x1, k3k4, 0x10);
    x1 = _mm_xor_si128(_mm_srli_si128(x1, 8), folded);
    let hi = _mm_srli_si128(x1, 4);
    x1 = _mm_and_si128(x1, mask32);
    x1 = _mm_clmulepi64_si128(x1, k5, 0x00);
    x1 = _mm_xor_si128(x1, hi);
    // Barrett reduction 64 -> 32 bits.
    let mut t = _mm_and_si128(x1, mask32);
    t = _mm_clmulepi64_si128(t, poly, 0x10);
    t = _mm_and_si128(t, mask32);
    t = _mm_clmulepi64_si128(t, poly, 0x00);
    x1 = _mm_xor_si128(x1, t);
    _mm_extract_epi32(x1, 1) as u32
}

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes a snapshot to its `sr-snap v1` byte representation
/// (checksum trailer included). Deterministic: equal snapshots produce
/// equal bytes.
pub fn snapshot_to_bytes(s: &Snapshot) -> Vec<u8> {
    let cells = s.num_cells();
    let p = s.num_attrs();
    let t = s.partition.num_groups();
    let mut buf = Vec::with_capacity(64 + cells.div_ceil(8) + cells * 4 + t * (17 + p * 8));

    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&VERSION.to_le_bytes());
    buf.extend_from_slice(&(s.rows as u32).to_le_bytes());
    buf.extend_from_slice(&(s.cols as u32).to_le_bytes());
    buf.extend_from_slice(&(t as u32).to_le_bytes());
    buf.extend_from_slice(&(p as u32).to_le_bytes());
    for v in [s.theta, s.ifl, s.min_adjacent_variation] {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for v in [s.bounds.lat_min, s.bounds.lat_max, s.bounds.lon_min, s.bounds.lon_max] {
        buf.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    for k in 0..p {
        let name = s.attr_names[k].as_bytes();
        buf.extend_from_slice(&(name.len() as u16).to_le_bytes());
        buf.extend_from_slice(name);
        buf.push(match s.agg_types[k] {
            AggType::Sum => 0,
            AggType::Avg => 1,
            AggType::Mode => 2,
        });
        buf.push(s.integer_attrs[k] as u8);
    }
    let mut bitmap = vec![0u8; cells.div_ceil(8)];
    for (i, &v) in s.valid.iter().enumerate() {
        if v {
            bitmap[i / 8] |= 1 << (i % 8);
        }
    }
    buf.extend_from_slice(&bitmap);
    for rect in s.partition.rects() {
        for v in [rect.r0, rect.r1, rect.c0, rect.c1] {
            buf.extend_from_slice(&v.to_le_bytes());
        }
    }
    for &g in s.partition.cell_to_group() {
        buf.extend_from_slice(&g.to_le_bytes());
    }
    for fv in &s.features {
        match fv {
            Some(fv) => {
                buf.push(1);
                for &v in fv {
                    buf.extend_from_slice(&v.to_bits().to_le_bytes());
                }
            }
            None => buf.push(0),
        }
    }
    for gid in 0..t as u32 {
        let nbs = s.adjacency.neighbors(gid);
        buf.extend_from_slice(&(nbs.len() as u32).to_le_bytes());
        for &nb in nbs {
            buf.extend_from_slice(&nb.to_le_bytes());
        }
    }
    let crc = crc32(&buf);
    buf.extend_from_slice(&crc.to_le_bytes());
    buf
}

/// A bounds-checked little-endian reader over the payload bytes.
struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn err<T>(&self, message: impl Into<String>) -> Result<T> {
        Err(ServeError::Format { offset: self.pos, message: message.into() })
    }

    fn bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.buf.len() - self.pos < n {
            return self
                .err(format!("truncated: need {n} bytes, {} remain", self.buf.len() - self.pos));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.bytes(1)?[0])
    }

    fn u16(&mut self) -> Result<u16> {
        Ok(u16::from_le_bytes(self.bytes(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.bytes(4)?.try_into().unwrap()))
    }

    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(u64::from_le_bytes(self.bytes(8)?.try_into().unwrap())))
    }
}

/// Parses `sr-snap v1` bytes back into a [`Snapshot`], verifying the
/// checksum first and every structural invariant afterwards.
pub fn snapshot_from_bytes(buf: &[u8]) -> Result<Snapshot> {
    if buf.len() < MAGIC.len() + 2 + 4 {
        return Err(ServeError::Format {
            offset: usize::MAX,
            message: format!("file too short ({} bytes) to be a snapshot", buf.len()),
        });
    }
    let (payload, trailer) = buf.split_at(buf.len() - 4);
    let stored = u32::from_le_bytes(trailer.try_into().unwrap());
    let computed = crc32(payload);
    if stored != computed {
        return Err(ServeError::Checksum { stored, computed });
    }

    let mut r = Reader { buf: payload, pos: 0 };
    if r.bytes(MAGIC.len())? != MAGIC {
        return Err(ServeError::Format {
            offset: 0,
            message: "bad magic: not an sr-snap file".into(),
        });
    }
    let version = r.u16()?;
    if version != VERSION {
        return r.err(format!("unsupported snapshot version {version} (expected {VERSION})"));
    }
    let rows = r.u32()? as usize;
    let cols = r.u32()? as usize;
    let num_groups = r.u32()? as usize;
    let num_attrs = r.u32()? as usize;
    if rows == 0 || cols == 0 {
        return r.err("zero rows or columns");
    }
    let cells =
        rows.checked_mul(cols).filter(|&n| n <= MAX_CELLS).ok_or_else(|| ServeError::Format {
            offset: r.pos,
            message: format!("grid {rows}x{cols} exceeds the format's cell limit"),
        })?;
    if num_groups == 0 || num_groups > cells {
        return r.err(format!("group count {num_groups} out of range for {cells} cells"));
    }
    if num_attrs == 0 || num_attrs > MAX_ATTRS {
        return r.err(format!("attribute count {num_attrs} out of range"));
    }
    let theta = r.f64()?;
    let ifl = r.f64()?;
    let min_adjacent_variation = r.f64()?;
    let bounds =
        Bounds { lat_min: r.f64()?, lat_max: r.f64()?, lon_min: r.f64()?, lon_max: r.f64()? };

    let mut attr_names = Vec::with_capacity(num_attrs);
    let mut agg_types = Vec::with_capacity(num_attrs);
    let mut integer_attrs = Vec::with_capacity(num_attrs);
    for _ in 0..num_attrs {
        let len = r.u16()? as usize;
        let name_pos = r.pos;
        let name = std::str::from_utf8(r.bytes(len)?)
            .map_err(|e| ServeError::Format {
                offset: name_pos,
                message: format!("attribute name is not UTF-8: {e}"),
            })?
            .to_string();
        let agg = match r.u8()? {
            0 => AggType::Sum,
            1 => AggType::Avg,
            2 => AggType::Mode,
            other => return r.err(format!("unknown aggregation code {other}")),
        };
        let integer = match r.u8()? {
            0 => false,
            1 => true,
            other => return r.err(format!("integer flag must be 0/1, got {other}")),
        };
        attr_names.push(name);
        agg_types.push(agg);
        integer_attrs.push(integer);
    }

    let bitmap = r.bytes(cells.div_ceil(8))?;
    let valid: Vec<bool> = (0..cells).map(|i| bitmap[i / 8] >> (i % 8) & 1 == 1).collect();

    let mut groups = Vec::with_capacity(num_groups);
    for _ in 0..num_groups {
        groups.push(GroupRect { r0: r.u32()?, r1: r.u32()?, c0: r.u32()?, c1: r.u32()? });
    }
    let mut cell_to_group = Vec::with_capacity(cells);
    for _ in 0..cells {
        let g = r.u32()?;
        if g as usize >= num_groups {
            return r.err(format!("cell mapped to out-of-range group {g}"));
        }
        cell_to_group.push(g);
    }
    // Rectangle sanity must hold before Partition::new (whose debug
    // assertions index cells by rectangle coordinates).
    for (gid, rect) in groups.iter().enumerate() {
        if rect.r0 > rect.r1
            || rect.c0 > rect.c1
            || rect.r1 as usize >= rows
            || rect.c1 as usize >= cols
        {
            return r.err(format!("group {gid} rectangle out of grid bounds"));
        }
    }
    let mut counted = 0usize;
    for (gid, rect) in groups.iter().enumerate() {
        counted += rect.len();
        if counted > cells {
            return r.err("group rectangles overlap or exceed the grid");
        }
        for (row, col) in rect.cells() {
            if cell_to_group[row as usize * cols + col as usize] as usize != gid {
                return r.err(format!("cell ({row},{col}) not mapped to its group {gid}"));
            }
        }
    }
    if counted != cells {
        return r.err("group rectangles do not tile the grid");
    }
    let partition = Partition::new(rows, cols, groups, cell_to_group);

    let mut features = Vec::with_capacity(num_groups);
    for gid in 0..num_groups {
        match r.u8()? {
            0 => features.push(None),
            1 => {
                let mut fv = Vec::with_capacity(num_attrs);
                for _ in 0..num_attrs {
                    fv.push(r.f64()?);
                }
                features.push(Some(fv));
            }
            other => return r.err(format!("group {gid} presence flag must be 0/1, got {other}")),
        }
    }

    let mut neighbors = Vec::with_capacity(num_groups);
    for gid in 0..num_groups {
        let degree = r.u32()? as usize;
        if degree > num_groups {
            return r.err(format!("group {gid} degree {degree} exceeds group count"));
        }
        let mut nbs = Vec::with_capacity(degree);
        for _ in 0..degree {
            let nb = r.u32()?;
            if nb as usize >= num_groups {
                return r.err(format!("group {gid} has out-of-range neighbor {nb}"));
            }
            nbs.push(nb);
        }
        neighbors.push(nbs);
    }
    if r.pos != payload.len() {
        return r.err(format!("{} trailing bytes after the last section", payload.len() - r.pos));
    }

    Snapshot::from_parts(
        theta,
        ifl,
        min_adjacent_variation,
        bounds,
        attr_names,
        agg_types,
        integer_attrs,
        valid,
        partition,
        features,
        AdjacencyList::from_neighbors(neighbors),
    )
}

/// Writes a snapshot to `w` in `sr-snap v1` format.
pub fn write_snapshot<W: Write>(mut w: W, s: &Snapshot) -> Result<()> {
    w.write_all(&snapshot_to_bytes(s))?;
    Ok(())
}

/// Reads a snapshot from `r`, consuming it to EOF.
pub fn read_snapshot<R: Read>(mut r: R) -> Result<Snapshot> {
    let mut buf = Vec::new();
    r.read_to_end(&mut buf)?;
    snapshot_from_bytes(&buf)
}

/// Saves a snapshot to a file **atomically**: the bytes are written to a
/// sibling temp file, fsynced, and renamed over `path`. A crash (or an
/// injected fault) at any point leaves either the old file or the new one
/// — never a torn mixture — and the CRC-32 trailer rejects whatever a
/// non-atomic writer might have left behind (`docs/ROBUSTNESS.md`).
pub fn save_snapshot(s: &Snapshot, path: impl AsRef<Path>) -> Result<()> {
    save_snapshot_with(s, path, None)
}

/// [`save_snapshot`] with the write path subject to a
/// [`sr_fault::FaultPlan`] (`write.*` faults). On any failure the temp
/// file is removed and the previous file at `path` is left untouched.
pub fn save_snapshot_with(
    s: &Snapshot,
    path: impl AsRef<Path>,
    plan: Option<&sr_fault::FaultPlan>,
) -> Result<()> {
    write_bytes_atomic(&snapshot_to_bytes(s), path.as_ref(), plan)
}

/// The atomic temp-file + fsync + rename writer shared by the v1 and v2
/// save paths. On any failure the temp file is removed and the previous
/// file at `path` is left untouched.
pub(crate) fn write_bytes_atomic(
    bytes: &[u8],
    path: &Path,
    plan: Option<&sr_fault::FaultPlan>,
) -> Result<()> {
    let mut tmp = path.as_os_str().to_owned();
    tmp.push(format!(".tmp.{}", std::process::id()));
    let tmp = std::path::PathBuf::from(tmp);
    let result = (|| -> Result<()> {
        let file = std::fs::File::create(&tmp)?;
        let file = match plan {
            Some(plan) => {
                let mut w = plan.wrap_write(file);
                w.write_all(bytes)?;
                w.into_inner()
            }
            None => {
                let mut w = file;
                w.write_all(bytes)?;
                w
            }
        };
        // Flush to disk before the rename publishes the file: otherwise a
        // power loss could publish a name pointing at unwritten blocks.
        file.sync_all()?;
        std::fs::rename(&tmp, path)?;
        Ok(())
    })();
    if result.is_err() {
        std::fs::remove_file(&tmp).ok();
    }
    result
}

/// Loads a snapshot from a file, accepting **either** format version:
/// v1 decodes directly, v2 is validated and materialized into the owned
/// form. Use [`crate::load_engine`] when the goal is serving — it keeps
/// v2 bytes borrowed instead of materializing them.
pub fn load_snapshot(path: impl AsRef<Path>) -> Result<Snapshot> {
    load_snapshot_with(path, None)
}

/// [`load_snapshot`] with the read path subject to a
/// [`sr_fault::FaultPlan`] (`read.*` faults). An injected premature EOF
/// surfaces exactly like a torn write: the checksum/format checks reject
/// the truncated bytes, never returning garbage.
pub fn load_snapshot_with(
    path: impl AsRef<Path>,
    plan: Option<&sr_fault::FaultPlan>,
) -> Result<Snapshot> {
    let buf = read_file_bytes(path.as_ref(), plan)?;
    match crate::v2::peek_version(&buf) {
        Some(2) => crate::v2::snapshot_v2_from_bytes(&buf)?.to_snapshot(),
        _ => snapshot_from_bytes(&buf),
    }
}

/// Reads a whole file, optionally through a [`sr_fault::FaultPlan`]'s
/// `read.*` faults. Shared by the v1 and v2 load paths so both see the
/// same injected failures.
pub(crate) fn read_file_bytes(path: &Path, plan: Option<&sr_fault::FaultPlan>) -> Result<Vec<u8>> {
    let file = std::fs::File::open(path)?;
    let mut buf = Vec::new();
    match plan {
        Some(plan) => {
            plan.wrap_read(file).read_to_end(&mut buf)?;
        }
        None => {
            let mut file = file;
            file.read_to_end(&mut buf)?;
        }
    }
    Ok(buf)
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_core::repartition;

    fn sample_snapshot() -> Snapshot {
        let vals: Vec<f64> =
            (0..64).map(|i| 100.0 + (i / 8) as f64 * 0.7 + (i % 8) as f64 * 0.4).collect();
        let mut grid = GridDataset::univariate(8, 8, vals).unwrap();
        grid.set_null(63);
        let out = repartition(&grid, 0.05).unwrap();
        Snapshot::build(&out.repartitioned, &grid, 0.05).unwrap()
    }

    #[test]
    fn crc32_known_vectors() {
        // Standard test vectors for CRC-32/IEEE.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    /// Bit-at-a-time reference CRC-32, straight from the polynomial
    /// definition — the oracle both fast paths must match.
    fn crc32_reference(bytes: &[u8]) -> u32 {
        let mut c = 0xFFFF_FFFFu32;
        for &b in bytes {
            c ^= b as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
        }
        !c
    }

    #[test]
    fn crc32_matches_reference_at_every_length() {
        // Pseudo-random bytes; lengths sweep across every dispatch
        // boundary (empty, sub-word tails, the 64-byte kernel threshold,
        // non-multiple-of-16 tails after the kernel).
        let mut seed = 0x1234_5678_9ABC_DEF0u64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                seed = seed.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                (seed >> 33) as u8
            })
            .collect();
        for len in (0..=300).chain([511, 1024, 1025, 4000, 4096]) {
            assert_eq!(
                crc32(&data[..len]),
                crc32_reference(&data[..len]),
                "crc32 disagrees with the reference at length {len}"
            );
        }
    }

    #[test]
    fn roundtrip_is_bit_exact() {
        let snap = sample_snapshot();
        let bytes = snapshot_to_bytes(&snap);
        let back = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(back, snap);
        // Write → read → write must reproduce identical bytes.
        assert_eq!(snapshot_to_bytes(&back), bytes);
    }

    #[test]
    fn every_corrupted_byte_is_rejected() {
        let snap = sample_snapshot();
        let bytes = snapshot_to_bytes(&snap);
        // Flipping any single bit anywhere must fail (checksum for payload
        // bytes, checksum mismatch for trailer bytes). Exhaustive over a
        // stride to keep the test fast.
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(snapshot_from_bytes(&bad).is_err(), "corruption at byte {i} went undetected");
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = snapshot_to_bytes(&sample_snapshot());
        for cut in [0, 1, 5, 11, bytes.len() / 2, bytes.len() - 1] {
            assert!(snapshot_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn bad_magic_and_version() {
        let bytes = snapshot_to_bytes(&sample_snapshot());
        let mut wrong_magic = bytes.clone();
        wrong_magic[0] = b'X';
        // Re-seal the checksum so the magic check itself is exercised.
        let n = wrong_magic.len();
        let crc = crc32(&wrong_magic[..n - 4]).to_le_bytes();
        wrong_magic[n - 4..].copy_from_slice(&crc);
        assert!(matches!(
            snapshot_from_bytes(&wrong_magic),
            Err(ServeError::Format { offset: 0, .. })
        ));

        let mut wrong_version = bytes.clone();
        wrong_version[6] = 9;
        let crc = crc32(&wrong_version[..n - 4]).to_le_bytes();
        wrong_version[n - 4..].copy_from_slice(&crc);
        assert!(matches!(snapshot_from_bytes(&wrong_version), Err(ServeError::Format { .. })));
    }

    #[test]
    fn file_roundtrip() {
        let snap = sample_snapshot();
        let path = std::env::temp_dir().join(format!("sr_snap_test_{}.snap", std::process::id()));
        save_snapshot(&snap, &path).unwrap();
        let back = load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(back, snap);
    }

    #[test]
    fn build_rejects_mismatched_grid() {
        let vals: Vec<f64> = (0..36).map(|i| i as f64).collect();
        let grid = GridDataset::univariate(6, 6, vals).unwrap();
        let out = repartition(&grid, 0.2).unwrap();
        let other = GridDataset::univariate(3, 3, vec![1.0; 9]).unwrap();
        assert!(matches!(
            Snapshot::build(&out.repartitioned, &other, 0.2),
            Err(ServeError::Invalid(_))
        ));
    }

    #[test]
    fn failed_atomic_save_leaves_previous_file_intact() {
        let registry = sr_obs::Registry::new();
        let plan = sr_fault::FaultPlan::parse("write.error_rate = 1.0\n", &registry).unwrap();
        let snap = sample_snapshot();
        let dir = std::env::temp_dir().join(format!("sr_snap_atomic_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("current.snap");
        save_snapshot(&snap, &path).unwrap();
        let good_bytes = std::fs::read(&path).unwrap();
        // The faulty save fails...
        assert!(matches!(save_snapshot_with(&snap, &path, Some(&plan)), Err(ServeError::Io(_))));
        assert!(plan.injected_errors() >= 1);
        // ...but the previous file is byte-identical and no temp junk
        // remains next to it.
        assert_eq!(std::fs::read(&path).unwrap(), good_bytes);
        let leftovers: Vec<_> = std::fs::read_dir(&dir)
            .unwrap()
            .map(|e| e.unwrap().file_name().into_string().unwrap())
            .filter(|n| n != "current.snap")
            .collect();
        assert!(leftovers.is_empty(), "temp files left behind: {leftovers:?}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_premature_eof_is_rejected_cleanly() {
        let registry = sr_obs::Registry::new();
        let plan = sr_fault::FaultPlan::parse("read.eof_rate = 1.0\n", &registry).unwrap();
        let snap = sample_snapshot();
        let path = std::env::temp_dir().join(format!("sr_snap_eof_{}.snap", std::process::id()));
        save_snapshot(&snap, &path).unwrap();
        // The torn read must surface as a structured Format error (the
        // zero bytes that survive the injected EOF are "file too short"),
        // never as a garbage snapshot.
        let result = load_snapshot_with(&path, Some(&plan));
        std::fs::remove_file(&path).ok();
        assert!(
            matches!(result, Err(ServeError::Format { .. }) | Err(ServeError::Checksum { .. })),
            "torn read must be rejected: {result:?}"
        );
        assert_eq!(plan.injected_eofs(), 1);
    }

    #[test]
    fn nan_and_negative_zero_survive() {
        // Bit-exactness must cover non-finite and signed-zero payloads in
        // the run-parameter fields.
        let vals = vec![1.0, 1.0, 1.0, 1.0];
        let grid = GridDataset::univariate(2, 2, vals).unwrap();
        let out = repartition(&grid, 0.05).unwrap();
        let mut snap = Snapshot::build(&out.repartitioned, &grid, 0.05).unwrap();
        snap.theta = -0.0;
        snap.min_adjacent_variation = f64::NAN;
        let bytes = snapshot_to_bytes(&snap);
        let back = snapshot_from_bytes(&bytes).unwrap();
        assert_eq!(back.theta.to_bits(), (-0.0f64).to_bits());
        assert!(back.min_adjacent_variation.is_nan());
        assert_eq!(snapshot_to_bytes(&back), bytes);
    }
}
