//! Online spatial queries against a frozen snapshot.
//!
//! All values the engine serves are *representative* cell values in the
//! §III-C sense: `Avg`/`Mode` group values apply to each member cell
//! directly, `Sum` group values are divided by the group's valid-member
//! count. The engine precomputes these per-(group, attribute)
//! representatives once at load, using the same
//! [`sr_core::representative`] function as [`sr_core::reconstruct_grid`],
//! so a served value is bit-identical to the reconstructed grid's value
//! for the same cell.
//!
//! ## Two representations, one answer
//!
//! The engine serves from either of two internal representations:
//!
//! - **Owned** ([`QueryEngine::new`]): a decoded [`Snapshot`] plus the
//!   derived serving data (`Derived`) computed at build time.
//! - **Borrowed** ([`QueryEngine::from_v2`]): a validated sr-snap v2
//!   buffer ([`SnapshotV2`]) whose sections — including the precomputed
//!   representatives, centroids, and rectangle index — are served as
//!   typed slices straight out of the snapshot bytes, with no decode
//!   allocation.
//!
//! Every query routes through the same accessor layer, and v2
//! validation proves the stored derived sections bit-equal to what
//! `Derived` would compute, so the two representations answer every
//! point/window/knn query bit-identically (`docs/SNAPSHOT_FORMAT.md`).

use crate::index::{RectIndex, RectIndexView};
use crate::snapshot::Snapshot;
use crate::v2::SnapshotV2;
use sr_core::{representative, GroupId, GroupRect, Partition};
use sr_grid::{AdjacencyList, AggType, Bounds, CellId};

/// Answer to a point lookup.
#[derive(Debug, Clone, PartialEq)]
pub struct PointAnswer {
    /// Grid row of the queried location.
    pub row: usize,
    /// Grid column of the queried location.
    pub col: usize,
    /// Flat cell id.
    pub cell: CellId,
    /// Cell-group containing the cell.
    pub group: GroupId,
    /// Representative values per attribute; `None` when the cell is null
    /// in the original dataset (it reconstructs to nothing).
    pub values: Option<Vec<f64>>,
}

/// Per-attribute aggregate over a window.
#[derive(Debug, Clone, PartialEq)]
pub struct AttrAggregate {
    /// Number of contributing (valid) cells.
    pub count: usize,
    /// Sum of representative values over contributing cells.
    pub sum: f64,
    /// Minimum representative value (`None` when no cell contributed).
    pub min: Option<f64>,
    /// Maximum representative value (`None` when no cell contributed).
    pub max: Option<f64>,
}

impl AttrAggregate {
    /// Mean representative value over contributing cells.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then(|| self.sum / self.count as f64)
    }
}

/// Answer to a rectangular window query.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowAnswer {
    /// Total cells inside the window (valid or not).
    pub cells: usize,
    /// Valid cells inside the window.
    pub valid_cells: usize,
    /// Distinct cell-groups intersecting the window.
    pub groups: usize,
    /// One aggregate per attribute.
    pub per_attr: Vec<AttrAggregate>,
}

impl WindowAnswer {
    fn empty(num_attrs: usize) -> Self {
        WindowAnswer {
            cells: 0,
            valid_cells: 0,
            groups: 0,
            per_attr: vec![AttrAggregate { count: 0, sum: 0.0, min: None, max: None }; num_attrs],
        }
    }

    /// Folds one group's contribution into the answer. The canonical
    /// accumulation order is ascending group id — both the unsharded
    /// [`QueryEngine::window`] and the sharded merge feed parts through
    /// this same function in that order, which is what makes sharded
    /// window answers bit-identical to unsharded ones (floating-point
    /// addition order is part of the contract).
    fn fold_part(&mut self, count: usize, rep: Option<&[f64]>) {
        self.groups += 1;
        if count == 0 {
            return;
        }
        self.valid_cells += count;
        if let Some(rep) = rep {
            for (agg, &v) in self.per_attr.iter_mut().zip(rep) {
                agg.count += count;
                agg.sum += v * count as f64;
                agg.min = Some(agg.min.map_or(v, |m| m.min(v)));
                agg.max = Some(agg.max.map_or(v, |m| m.max(v)));
            }
        }
    }

    /// Merges gid-ascending [`WindowGroupPart`]s (e.g. concatenated from
    /// several shards, then sorted by group id) into a full answer.
    /// `cells` is the geometric cell count of the clamped window — a
    /// shard-invariant, so any scatter's value works.
    pub fn merge(num_attrs: usize, cells: usize, parts: &[WindowGroupPart]) -> WindowAnswer {
        debug_assert!(parts.windows(2).all(|w| w[0].group < w[1].group), "parts must ascend");
        let mut out = WindowAnswer::empty(num_attrs);
        out.cells = cells;
        for part in parts {
            out.fold_part(part.count, part.values.as_deref());
        }
        out
    }
}

/// One group's contribution to a window query, as produced by
/// [`QueryEngine::window_scatter`]: enough to replay the canonical
/// accumulation on another process or after a scatter-gather merge.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowGroupPart {
    /// The contributing group.
    pub group: GroupId,
    /// Valid cells of the group inside the window (may be 0 — the group
    /// still counts toward [`WindowAnswer::groups`]).
    pub count: usize,
    /// The group's representative vector; `None` for null groups.
    pub values: Option<Vec<f64>>,
}

/// The scatter half of a window query: the clamped window's geometric
/// cell count plus per-group parts in ascending group-id order.
#[derive(Debug, Clone, PartialEq)]
pub struct WindowScatter {
    /// Total cells inside the clamped window (valid or not); `0` when the
    /// window misses the grid entirely.
    pub cells: usize,
    /// Per-group contributions, ascending by group id.
    pub parts: Vec<WindowGroupPart>,
}

/// One result of a k-nearest-group query.
#[derive(Debug, Clone, PartialEq)]
pub struct NearestGroup {
    /// The group id.
    pub group: GroupId,
    /// Geographic centroid latitude of the group's rectangle.
    pub lat: f64,
    /// Geographic centroid longitude of the group's rectangle.
    pub lon: f64,
    /// Euclidean distance (in coordinate units) from the query point.
    pub distance: f64,
    /// Representative values per attribute.
    pub values: Vec<f64>,
}

/// Summary statistics of a loaded snapshot.
#[derive(Debug, Clone, PartialEq)]
pub struct Stats {
    /// Grid rows.
    pub rows: usize,
    /// Grid columns.
    pub cols: usize,
    /// Total cells.
    pub cells: usize,
    /// Valid (non-null) cells.
    pub valid_cells: usize,
    /// Total cell-groups.
    pub groups: usize,
    /// Groups with a feature vector (the training instances).
    pub valid_groups: usize,
    /// Attributes per cell.
    pub attrs: usize,
    /// The loss budget the run was given.
    pub theta: f64,
    /// The achieved IFL.
    pub ifl: f64,
    /// Fraction of spatial cells removed, `1 − t / (m·n)`.
    pub cell_reduction: f64,
}

/// Serving data derived from a snapshot: valid-member counts, dense
/// per-(group, attribute) representatives, geographic centroids, and the
/// packed rectangle index.
///
/// This is the *single* derivation path: the owned engine computes it at
/// build time, and the v2 encoder serializes exactly these arrays into
/// the snapshot's derived sections (which v2 validation then proves
/// bit-equal on load). One code path → bit-identical serving from both
/// representations.
#[derive(Debug, Clone)]
pub(crate) struct Derived {
    /// Valid-member count per group (the §III-C divisor for `Sum`).
    pub(crate) valid_counts: Vec<u32>,
    /// Dense `t × p` representatives, row-major by group; rows of null
    /// groups are all-zero bits.
    pub(crate) reps: Vec<f64>,
    /// Geographic centroid per group rectangle.
    pub(crate) centroids: Vec<[f64; 2]>,
    /// Hilbert-sorted packed rectangle index over the group bounds.
    pub(crate) index: RectIndex,
}

impl Derived {
    /// Computes the serving data for `snapshot`.
    pub(crate) fn compute(snapshot: &Snapshot) -> Derived {
        let partition = snapshot.partition();
        let t = partition.num_groups();
        let p = snapshot.num_attrs();
        let mut valid_counts = vec![0u32; t];
        for (cell, &v) in snapshot.valid_mask().iter().enumerate() {
            if v {
                valid_counts[partition.group_of(cell as CellId) as usize] += 1;
            }
        }
        let aggs = snapshot.agg_types();
        let mut reps = vec![0.0f64; t * p];
        for (g, fv) in snapshot.features().iter().enumerate() {
            if let Some(fv) = fv {
                for (k, &v) in fv.iter().enumerate() {
                    reps[g * p + k] = representative(v, aggs[k], valid_counts[g] as usize);
                }
            }
        }
        let bounds = snapshot.bounds();
        let centroids: Vec<[f64; 2]> = partition
            .rects()
            .iter()
            .map(|rect| centroid_of(rect, bounds, snapshot.rows(), snapshot.cols()))
            .collect();
        let index =
            RectIndex::build(partition.rects(), &centroids, snapshot.rows(), snapshot.cols());
        Derived { valid_counts, reps, centroids, index }
    }
}

/// The geographic centroid of a group rectangle — the exact expression
/// both [`Derived::compute`] and v2 section validation evaluate, so the
/// stored and recomputed centroids compare bit-for-bit.
pub(crate) fn centroid_of(rect: &GroupRect, bounds: Bounds, rows: usize, cols: usize) -> [f64; 2] {
    let lat_step = (bounds.lat_max - bounds.lat_min) / rows as f64;
    let lon_step = (bounds.lon_max - bounds.lon_min) / cols as f64;
    [
        bounds.lat_min + (rect.r0 + rect.r1 + 1) as f64 / 2.0 * lat_step,
        bounds.lon_min + (rect.c0 + rect.c1 + 1) as f64 / 2.0 * lon_step,
    ]
}

/// Owned representation: a decoded snapshot plus its derived serving
/// data.
#[derive(Debug, Clone)]
struct OwnedRepr {
    snapshot: Snapshot,
    derived: Derived,
}

/// The engine's internal representation (see the module docs).
#[derive(Debug, Clone)]
enum Repr {
    Owned(Box<OwnedRepr>),
    V2(Box<SnapshotV2>),
}

/// A query engine over one snapshot, with precomputed per-group
/// representatives and centroids — decoded and owned (v1 path) or
/// borrowed out of a validated sr-snap v2 buffer (zero-copy path).
/// Identical answers either way.
///
/// ```
/// use sr_serve::{QueryEngine, Snapshot};
/// let grid = sr_grid::GridDataset::univariate(
///     8, 8, (0..64).map(|i| 10.0 + (i % 8) as f64).collect(),
/// ).unwrap();
/// let out = sr_core::repartition(&grid, 0.1).unwrap();
/// let snap = Snapshot::build(&out.repartitioned, &grid, 0.1).unwrap();
/// let engine = QueryEngine::new(snap);
/// assert_eq!(engine.stats().cells, 64);
/// assert_eq!(engine.format_version(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct QueryEngine {
    repr: Repr,
}

impl QueryEngine {
    /// Builds an owned engine, precomputing representatives for every
    /// group.
    pub fn new(snapshot: Snapshot) -> Self {
        let derived = Derived::compute(&snapshot);
        QueryEngine { repr: Repr::Owned(Box::new(OwnedRepr { snapshot, derived })) }
    }

    /// Wraps a validated sr-snap v2 buffer as a borrowed engine. No
    /// allocation, no copies: every query serves typed slices straight
    /// out of the snapshot bytes.
    ///
    /// ```
    /// use sr_serve::{snapshot_to_bytes_v2, snapshot_v2_from_bytes, QueryEngine, Snapshot};
    /// let grid = sr_grid::GridDataset::univariate(
    ///     8, 8, (0..64).map(|i| 10.0 + (i % 8) as f64).collect(),
    /// ).unwrap();
    /// let out = sr_core::repartition(&grid, 0.1).unwrap();
    /// let snap = Snapshot::build(&out.repartitioned, &grid, 0.1).unwrap();
    /// let bytes = snapshot_to_bytes_v2(&snap);
    /// let engine = QueryEngine::from_v2(snapshot_v2_from_bytes(&bytes).unwrap());
    /// assert_eq!(engine.format_version(), 2);
    /// assert_eq!(engine.stats(), QueryEngine::new(snap).stats());
    /// ```
    pub fn from_v2(snapshot: SnapshotV2) -> Self {
        QueryEngine { repr: Repr::V2(Box::new(snapshot)) }
    }

    /// The snapshot format version this engine serves from: `1` for the
    /// owned (decoded) representation, `2` for the borrowed zero-copy
    /// one.
    pub fn format_version(&self) -> u16 {
        match &self.repr {
            Repr::Owned(_) => 1,
            Repr::V2(_) => 2,
        }
    }

    // -- accessor layer: every query below reads through these ---------

    fn rows(&self) -> usize {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.rows(),
            Repr::V2(v) => v.rows(),
        }
    }

    fn cols(&self) -> usize {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.cols(),
            Repr::V2(v) => v.cols(),
        }
    }

    /// Total cells, `rows · cols`.
    pub fn num_cells(&self) -> usize {
        self.rows() * self.cols()
    }

    /// Attributes per cell.
    pub fn num_attrs(&self) -> usize {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.num_attrs(),
            Repr::V2(v) => v.num_attrs(),
        }
    }

    /// Total cell-groups.
    pub fn num_groups(&self) -> usize {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.partition().num_groups(),
            Repr::V2(v) => v.num_groups(),
        }
    }

    /// The loss budget `θ` the run was given.
    pub fn theta(&self) -> f64 {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.theta(),
            Repr::V2(v) => v.theta(),
        }
    }

    /// The achieved IFL of the frozen partition.
    pub fn ifl(&self) -> f64 {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.ifl(),
            Repr::V2(v) => v.ifl(),
        }
    }

    /// The accepted min-adjacent variation.
    pub fn min_adjacent_variation(&self) -> f64 {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.min_adjacent_variation(),
            Repr::V2(v) => v.min_adjacent_variation(),
        }
    }

    /// Geographic bounds of the grid.
    pub fn bounds(&self) -> Bounds {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.bounds(),
            Repr::V2(v) => v.bounds(),
        }
    }

    /// Attribute names.
    pub fn attr_names(&self) -> &[String] {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.attr_names(),
            Repr::V2(v) => v.attr_names(),
        }
    }

    /// Per-attribute aggregation types.
    pub fn agg_types(&self) -> &[AggType] {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.agg_types(),
            Repr::V2(v) => v.agg_types(),
        }
    }

    /// Per-attribute integer-typed flags.
    pub fn integer_attrs(&self) -> &[bool] {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.integer_attrs(),
            Repr::V2(v) => v.integer_attrs(),
        }
    }

    /// Whether `cell` is valid (non-null) in the original dataset.
    pub fn cell_valid(&self, cell: CellId) -> bool {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.valid_mask()[cell as usize],
            Repr::V2(v) => v.cell_valid(cell),
        }
    }

    /// The group containing `cell`.
    pub fn group_of(&self, cell: CellId) -> GroupId {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.partition().group_of(cell),
            Repr::V2(v) => v.group_of(cell),
        }
    }

    /// One group's rectangle.
    pub fn group_rect(&self, g: GroupId) -> GroupRect {
        self.rects()[g as usize]
    }

    fn rects(&self) -> &[GroupRect] {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.partition().rects(),
            Repr::V2(v) => v.rects(),
        }
    }

    /// The group's *raw* allocated feature vector (Algorithm 2 output,
    /// before the §III-C representative transform); `None` for null
    /// groups.
    pub fn feature(&self, g: GroupId) -> Option<&[f64]> {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.features()[g as usize].as_deref(),
            Repr::V2(v) => v.feature(g),
        }
    }

    /// The group's representative vector; `None` for null groups.
    fn rep(&self, g: GroupId) -> Option<&[f64]> {
        match &self.repr {
            Repr::Owned(o) => {
                let p = o.snapshot.num_attrs();
                o.snapshot.features()[g as usize]
                    .is_some()
                    .then(|| &o.derived.reps[g as usize * p..(g as usize + 1) * p])
            }
            Repr::V2(v) => v.rep(g),
        }
    }

    fn featured(&self, g: GroupId) -> bool {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.features()[g as usize].is_some(),
            Repr::V2(v) => v.featured(g),
        }
    }

    fn centroids(&self) -> &[[f64; 2]] {
        match &self.repr {
            Repr::Owned(o) => &o.derived.centroids,
            Repr::V2(v) => v.centroids(),
        }
    }

    fn index_view(&self) -> RectIndexView<'_> {
        match &self.repr {
            Repr::Owned(o) => o.derived.index.view(),
            Repr::V2(v) => v.index_view(),
        }
    }

    fn valid_counts_sum(&self) -> usize {
        let counts: &[u32] = match &self.repr {
            Repr::Owned(o) => &o.derived.valid_counts,
            Repr::V2(v) => v.valid_counts(),
        };
        counts.iter().map(|&c| c as usize).sum()
    }

    // -- owned materialization -----------------------------------------

    /// Materializes the engine's snapshot as an owned [`Snapshot`] —
    /// a clone for the owned representation, a decode for the borrowed
    /// one. This is the bridge for code that genuinely needs owned data
    /// (shard splitting, engine fusing, v2 → v1 migration); the query
    /// path never calls it.
    pub fn to_snapshot(&self) -> Snapshot {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.clone(),
            Repr::V2(v) => v
                .to_snapshot()
                .expect("a validated v2 snapshot always materializes to a valid v1 snapshot"),
        }
    }

    /// Clones the frozen partition out of the engine.
    pub fn clone_partition(&self) -> Partition {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.partition().clone(),
            Repr::V2(v) => v.clone_partition(),
        }
    }

    /// Clones the group adjacency lists out of the engine.
    pub fn clone_adjacency(&self) -> AdjacencyList {
        match &self.repr {
            Repr::Owned(o) => o.snapshot.adjacency().clone(),
            Repr::V2(v) => v.clone_adjacency(),
        }
    }

    // -- queries --------------------------------------------------------

    /// Representative values of one cell — exactly what
    /// [`sr_core::reconstruct_grid`] would put there. `None` when the cell
    /// is null in the original dataset.
    pub fn cell_values(&self, cell: CellId) -> Option<&[f64]> {
        if !self.cell_valid(cell) {
            return None;
        }
        self.rep(self.group_of(cell))
    }

    /// Valid-member count of one group.
    pub fn valid_count(&self, g: GroupId) -> usize {
        match &self.repr {
            Repr::Owned(o) => o.derived.valid_counts[g as usize] as usize,
            Repr::V2(v) => v.valid_counts()[g as usize] as usize,
        }
    }

    /// Point lookup: maps `(lat, lon)` to its cell and serves the cell's
    /// representative values. `None` when the location falls outside the
    /// grid's bounds.
    pub fn point(&self, lat: f64, lon: f64) -> Option<PointAnswer> {
        let (row, col) = self.bounds().locate(lat, lon, self.rows(), self.cols())?;
        let cell = (row * self.cols() + col) as CellId;
        let group = self.group_of(cell);
        Some(PointAnswer {
            row,
            col,
            cell,
            group,
            values: self.cell_values(cell).map(<[f64]>::to_vec),
        })
    }

    /// Rectangular window aggregate: per-attribute count/sum/min/max of the
    /// representative values of all valid cells whose cell rectangle center
    /// falls in the window's cell range.
    ///
    /// The window is given in geographic coordinates; latitude and
    /// longitude pairs may come in either order. Only the part overlapping
    /// the grid's bounds contributes. The walk is over the cell-groups
    /// whose rectangles intersect the window, so cost scales with the
    /// number of intersecting groups (found through the packed rectangle
    /// index), not cells.
    pub fn window(&self, lat_a: f64, lat_b: f64, lon_a: f64, lon_b: f64) -> WindowAnswer {
        let p = self.num_attrs();
        let groups = self.num_groups();
        let Some((cells, parts)) = self.window_parts(lat_a, lat_b, lon_a, lon_b, 0, groups) else {
            return WindowAnswer::empty(p);
        };
        let mut out = WindowAnswer::empty(p);
        out.cells = cells;
        for (g, count) in parts {
            out.fold_part(count, self.rep(g));
        }
        out
    }

    /// The scatter half of [`Self::window`]: per-group contributions in
    /// ascending group-id order, with representative vectors attached so
    /// a router can replay the canonical fold without this engine. The
    /// whole answer is recovered by [`WindowAnswer::merge`]; a sharded
    /// deployment concatenates each shard's *owned* parts first.
    pub fn window_scatter(&self, lat_a: f64, lat_b: f64, lon_a: f64, lon_b: f64) -> WindowScatter {
        let groups = self.num_groups();
        self.window_scatter_range(lat_a, lat_b, lon_a, lon_b, 0, groups)
    }

    /// [`Self::window_scatter`] restricted to Hilbert curve positions
    /// `[pos_lo, pos_hi)` of the index's group order — the same pure
    /// function of the partition a shard split uses, so a router can hand
    /// each shard exactly its own contiguous range and the per-shard
    /// scans sum to one unsharded scan instead of duplicating it K times.
    pub fn window_scatter_range(
        &self,
        lat_a: f64,
        lat_b: f64,
        lon_a: f64,
        lon_b: f64,
        pos_lo: usize,
        pos_hi: usize,
    ) -> WindowScatter {
        match self.window_parts(lat_a, lat_b, lon_a, lon_b, pos_lo, pos_hi) {
            None => WindowScatter { cells: 0, parts: Vec::new() },
            Some((cells, parts)) => WindowScatter {
                cells,
                parts: parts
                    .into_iter()
                    .map(|(g, count)| WindowGroupPart {
                        group: g,
                        count,
                        values: self.rep(g).map(<[f64]>::to_vec),
                    })
                    .collect(),
            },
        }
    }

    /// Shared window walk: clamps the window, finds intersecting groups
    /// through the index, and counts each group's valid cells inside the
    /// intersection. `None` when the window misses the grid (or has NaN
    /// corners). Parts ascend by group id — the canonical fold order.
    fn window_parts(
        &self,
        lat_a: f64,
        lat_b: f64,
        lon_a: f64,
        lon_b: f64,
        pos_lo: usize,
        pos_hi: usize,
    ) -> Option<(usize, Vec<(GroupId, usize)>)> {
        let (lat_lo, lat_hi) = (lat_a.min(lat_b), lat_a.max(lat_b));
        let (lon_lo, lon_hi) = (lon_a.min(lon_b), lon_a.max(lon_b));
        let b = self.bounds();
        if lat_lo.is_nan()
            || lon_lo.is_nan()
            || lat_hi < b.lat_min
            || lat_lo > b.lat_max
            || lon_hi < b.lon_min
            || lon_lo > b.lon_max
        {
            return None;
        }
        let (rows, cols) = (self.rows(), self.cols());
        let (r_lo, c_lo) = b.locate_clamped(lat_lo, lon_lo, rows, cols);
        let (r_hi, c_hi) = b.locate_clamped(lat_hi, lon_hi, rows, cols);
        let cells = (r_hi - r_lo + 1) * (c_hi - c_lo + 1);

        let rects = self.rects();
        let mut gids = Vec::new();
        self.index_view().intersecting_in_range(
            rects,
            r_lo as u32,
            r_hi as u32,
            c_lo as u32,
            c_hi as u32,
            pos_lo,
            pos_hi,
            &mut gids,
        );
        let parts = gids
            .into_iter()
            .map(|g| {
                let rect = &rects[g as usize];
                let ir0 = rect.r0.max(r_lo as u32);
                let ir1 = rect.r1.min(r_hi as u32);
                let ic0 = rect.c0.max(c_lo as u32);
                let ic1 = rect.c1.min(c_hi as u32);
                // Every valid member in the intersection carries the same
                // representative vector, so one bitmap pass gives the
                // count and the per-attribute update is O(p).
                let mut count = 0usize;
                for r in ir0..=ir1 {
                    for c in ic0..=ic1 {
                        if self.cell_valid(r * cols as u32 + c) {
                            count += 1;
                        }
                    }
                }
                (g, count)
            })
            .collect();
        Some((cells, parts))
    }

    /// The `k` featured groups whose rectangle centroids lie nearest to
    /// `(lat, lon)` (Euclidean in coordinate units), nearest first; ties
    /// break toward the lower group id for determinism. Answered by a
    /// best-first search over the packed rectangle index — the result
    /// (order and bits) is identical to the full `(d2, gid)` sort it
    /// replaced, at a fraction of the groups visited.
    pub fn knn(&self, lat: f64, lon: f64, k: usize) -> Vec<NearestGroup> {
        let groups = self.num_groups();
        self.knn_range(lat, lon, k, 0, groups)
    }

    /// [`Self::knn`] restricted to Hilbert curve positions
    /// `[pos_lo, pos_hi)` of the index's group order — the knn analogue
    /// of [`Self::window_scatter_range`]. A sharded engine that owns a
    /// contiguous slice of the deployment's curve order searches a tree
    /// of its own size instead of pruning through the whole grid's.
    pub fn knn_range(
        &self,
        lat: f64,
        lon: f64,
        k: usize,
        pos_lo: usize,
        pos_hi: usize,
    ) -> Vec<NearestGroup> {
        let centroids = self.centroids();
        self.index_view()
            .nearest_in_range(centroids, lat, lon, k, pos_lo, pos_hi, |g| self.featured(g))
            .into_iter()
            .map(|(d2, g)| {
                let [clat, clon] = centroids[g as usize];
                NearestGroup {
                    group: g,
                    lat: clat,
                    lon: clon,
                    distance: d2.sqrt(),
                    values: self.rep(g).expect("featured group").to_vec(),
                }
            })
            .collect()
    }

    /// Snapshot summary statistics.
    pub fn stats(&self) -> Stats {
        let cells = self.num_cells();
        let groups = self.num_groups();
        let valid_groups = (0..groups as GroupId).filter(|&g| self.featured(g)).count();
        Stats {
            rows: self.rows(),
            cols: self.cols(),
            cells,
            valid_cells: self.valid_counts_sum(),
            groups,
            valid_groups,
            attrs: self.num_attrs(),
            theta: self.theta(),
            ifl: self.ifl(),
            cell_reduction: 1.0 - groups as f64 / cells as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_core::{reconstruct_grid, repartition};
    use sr_grid::{AggType, Bounds, GridDataset};

    fn engine_and_grid() -> (QueryEngine, GridDataset) {
        // Mixed-aggregation multivariate grid with a null hole.
        let (rows, cols) = (10, 12);
        let mut data = Vec::new();
        for i in 0..rows * cols {
            let (r, c) = (i / cols, i % cols);
            data.push(50.0 + r as f64 * 0.6 + c as f64 * 0.3); // Avg
            data.push((5 + (r + c) % 4) as f64); // Sum
        }
        let mut grid = GridDataset::new(
            rows,
            cols,
            2,
            data,
            vec![true; rows * cols],
            vec!["price".into(), "count".into()],
            vec![AggType::Avg, AggType::Sum],
            vec![false, false],
            Bounds { lat_min: 40.0, lat_max: 41.0, lon_min: -74.0, lon_max: -73.0 },
        )
        .unwrap();
        grid.set_null(17);
        grid.set_null(18);
        let out = repartition(&grid, 0.08).unwrap();
        let snap = crate::Snapshot::build(&out.repartitioned, &grid, 0.08).unwrap();
        (QueryEngine::new(snap), grid)
    }

    #[test]
    fn cell_values_match_reconstruct_grid_exactly() {
        let (engine, grid) = engine_and_grid();
        let snap = engine.to_snapshot();
        let rec = reconstruct_grid(&grid, snap.partition(), snap.features()).unwrap();
        for cell in 0..grid.num_cells() as CellId {
            match engine.cell_values(cell) {
                Some(vals) => assert_eq!(Some(vals), rec.features(cell).as_deref(), "cell {cell}"),
                None => assert!(rec.features(cell).is_none(), "cell {cell}"),
            }
        }
    }

    #[test]
    fn point_lookup_hits_the_right_cell() {
        let (engine, grid) = engine_and_grid();
        for cell in [0u32, 5, 40, 119] {
            let (lat, lon) = grid.cell_centroid(cell);
            let ans = engine.point(lat, lon).unwrap();
            assert_eq!(ans.cell, cell);
            assert_eq!((ans.row, ans.col), grid.cell_pos(cell));
            assert_eq!(ans.group, engine.group_of(cell));
        }
        // Null cell: located, but no values.
        let (lat, lon) = grid.cell_centroid(17);
        assert!(engine.point(lat, lon).unwrap().values.is_none());
        // Outside the bounds: no answer.
        assert!(engine.point(0.0, 0.0).is_none());
        assert!(engine.point(f64::NAN, -73.5).is_none());
    }

    #[test]
    fn window_matches_per_cell_scan() {
        let (engine, grid) = engine_and_grid();
        let snap = engine.to_snapshot();
        let rec = reconstruct_grid(&grid, snap.partition(), snap.features()).unwrap();
        let b = grid.bounds();
        // A window covering cell rows 2..=6, cols 3..=9.
        let lat_lo = b.lat_min + 2.05 * 0.1;
        let lat_hi = b.lat_min + 6.05 * 0.1;
        let lon_lo = b.lon_min + 3.05 * (1.0 / 12.0);
        let lon_hi = b.lon_min + 9.05 * (1.0 / 12.0);
        let ans = engine.window(lat_lo, lat_hi, lon_lo, lon_hi);
        // Reference: direct scan over the reconstructed grid.
        let mut count = 0usize;
        let mut sum = [0.0f64; 2];
        let (mut min, mut max) = ([f64::INFINITY; 2], [f64::NEG_INFINITY; 2]);
        for r in 2..=6usize {
            for c in 3..=9usize {
                let id = grid.cell_id(r, c);
                if let Some(fv) = rec.features(id) {
                    count += 1;
                    for k in 0..2 {
                        sum[k] += fv[k];
                        min[k] = min[k].min(fv[k]);
                        max[k] = max[k].max(fv[k]);
                    }
                }
            }
        }
        assert_eq!(ans.cells, 5 * 7);
        assert_eq!(ans.valid_cells, count);
        for k in 0..2 {
            assert_eq!(ans.per_attr[k].count, count);
            assert!((ans.per_attr[k].sum - sum[k]).abs() < 1e-9);
            assert_eq!(ans.per_attr[k].min, Some(min[k]));
            assert_eq!(ans.per_attr[k].max, Some(max[k]));
            let mean = ans.per_attr[k].mean().unwrap();
            assert!((mean - sum[k] / count as f64).abs() < 1e-12);
        }
    }

    #[test]
    fn window_outside_bounds_is_empty() {
        let (engine, _) = engine_and_grid();
        let ans = engine.window(10.0, 20.0, 10.0, 20.0);
        assert_eq!(ans.cells, 0);
        assert_eq!(ans.groups, 0);
        assert!(ans.per_attr[0].mean().is_none());
    }

    #[test]
    fn window_swapped_corners_agree() {
        let (engine, _) = engine_and_grid();
        let a = engine.window(40.2, 40.7, -73.9, -73.2);
        let b = engine.window(40.7, 40.2, -73.2, -73.9);
        assert_eq!(a, b);
    }

    #[test]
    fn knn_orders_by_distance() {
        let (engine, grid) = engine_and_grid();
        let (lat, lon) = grid.cell_centroid(0);
        let k = 5;
        let nbs = engine.knn(lat, lon, k);
        assert_eq!(nbs.len(), k.min(engine.stats().valid_groups));
        for w in nbs.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
        // The nearest group must contain (or be closest to) the cell.
        let brute_best = (0..engine.num_groups() as u32)
            .filter(|&g| engine.feature(g).is_some())
            .map(|g| {
                let rect = engine.group_rect(g);
                let b = grid.bounds();
                let clat = b.lat_min + (rect.r0 + rect.r1 + 1) as f64 / 2.0 * 0.1;
                let clon = b.lon_min + (rect.c0 + rect.c1 + 1) as f64 / 2.0 / 12.0;
                (g, ((clat - lat).powi(2) + (clon - lon).powi(2)).sqrt())
            })
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .unwrap();
        assert_eq!(nbs[0].group, brute_best.0);
        assert!((nbs[0].distance - brute_best.1).abs() < 1e-12);
    }

    #[test]
    fn knn_k_larger_than_groups_returns_all() {
        let (engine, _) = engine_and_grid();
        let nbs = engine.knn(40.5, -73.5, 10_000);
        assert_eq!(nbs.len(), engine.stats().valid_groups);
    }

    #[test]
    fn stats_are_consistent() {
        let (engine, grid) = engine_and_grid();
        let st = engine.stats();
        assert_eq!(st.rows, 10);
        assert_eq!(st.cols, 12);
        assert_eq!(st.cells, 120);
        assert_eq!(st.valid_cells, 118);
        assert_eq!(st.groups, engine.num_groups());
        assert!(st.valid_groups <= st.groups);
        assert_eq!(st.attrs, 2);
        assert!(st.ifl <= st.theta);
        assert!((st.cell_reduction - (1.0 - st.groups as f64 / 120.0)).abs() < 1e-12);
        assert_eq!(grid.num_valid_cells(), st.valid_cells);
    }

    #[test]
    fn borrowed_v2_engine_answers_match_owned_everywhere() {
        let (owned, grid) = engine_and_grid();
        let bytes = crate::v2::snapshot_to_bytes_v2(&owned.to_snapshot());
        let v2 = QueryEngine::from_v2(crate::v2::snapshot_v2_from_bytes(&bytes).unwrap());
        assert_eq!(v2.format_version(), 2);
        assert_eq!(owned.stats(), v2.stats());
        for cell in 0..grid.num_cells() as CellId {
            assert_eq!(owned.cell_values(cell), v2.cell_values(cell), "cell {cell}");
            let (lat, lon) = grid.cell_centroid(cell);
            assert_eq!(owned.point(lat, lon), v2.point(lat, lon));
        }
        let b = grid.bounds();
        let a1 = owned.window(b.lat_min, b.lat_max, b.lon_min, b.lon_max);
        let a2 = v2.window(b.lat_min, b.lat_max, b.lon_min, b.lon_max);
        assert_eq!(a1, a2);
        for k in [1usize, 3, 10_000] {
            let n1 = owned.knn(40.33, -73.21, k);
            let n2 = v2.knn(40.33, -73.21, k);
            assert_eq!(n1, n2);
        }
    }
}
