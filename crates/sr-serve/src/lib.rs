//! Online serving layer for re-partitioned spatial datasets.
//!
//! The framework's offline side (sr-core) turns an `m × n` grid into a
//! compact set of rectangular cell-groups under an information-loss budget
//! `θ`. This crate is the online side: it freezes an accepted
//! [`sr_core::Repartitioned`] result into a versioned, checksummed binary
//! *snapshot* — either the stream-decoded `sr-snap v1` ([`snapshot`]) or
//! the zero-copy, section-mapped `sr-snap v2` ([`v2`]) that is validated
//! once and then served borrowed — answers spatial queries against it at
//! cell-group granularity ([`query`]) with exactly the §III-C
//! reconstruction semantics, keeps recently used snapshots warm in an LRU
//! cache ([`cache`]), and exposes the whole thing over a dependency-free
//! HTTP/1.1 server ([`http`]). `docs/SNAPSHOT_FORMAT.md` is the normative
//! byte-level spec of both formats.
//!
//! The invariant tying the layers together: for any cell, the value served
//! by [`query::QueryEngine`] is bit-identical to the value
//! [`sr_core::reconstruct_grid`] would materialize for that cell — serving
//! never re-derives representatives with different arithmetic.
//!
//! Serving is instrumented with [`sr_obs`] (re-exported here as
//! [`Registry`]): per-endpoint spans, request/error counters, and latency
//! histograms, surfaced over `GET /metrics` and folded into `GET /stats`.
//! `docs/OBSERVABILITY.md` documents the exact names.
//!
//! The serving path is also hardened against overload and storage faults:
//! snapshot saves are atomic (temp file + fsync + rename), loads reject
//! torn or corrupted files before parsing, the cache retries failed
//! reloads with seeded jittered backoff and then serves the last good
//! snapshot *stale*, and the HTTP server supports per-request deadlines
//! and bounded admission with load shedding. Deterministic fault
//! injection for all of it comes from [`sr_fault`] (re-exported here as
//! [`FaultPlan`]); `docs/ROBUSTNESS.md` is the full degradation contract.
//! The summary below round-trips a snapshot and queries it directly:
//!
//! ```
//! use sr_serve::{snapshot_from_bytes, snapshot_to_bytes, QueryEngine, Snapshot};
//!
//! // Offline: partition a small grid and freeze it into snapshot bytes.
//! let vals: Vec<f64> = (0..36).map(|i| 10.0 + (i / 6) as f64 * 0.2).collect();
//! let grid = sr_grid::GridDataset::univariate(6, 6, vals).unwrap();
//! let out = sr_core::repartition(&grid, 0.05).unwrap();
//! let snap = Snapshot::build(&out.repartitioned, &grid, 0.05).unwrap();
//! let bytes = snapshot_to_bytes(&snap);
//!
//! // Online: decode and answer a point query at group granularity.
//! let engine = QueryEngine::new(snapshot_from_bytes(&bytes).unwrap());
//! let answer = engine.point(0.5, 0.5).expect("inside the grid bounds");
//! assert!(answer.values.is_some());
//! assert!(engine.stats().groups >= 1);
//! ```

#![deny(missing_docs)]

pub mod cache;
pub mod http;
mod index;
pub mod query;
pub mod snapshot;
pub mod v2;

pub use cache::{ReloadPolicy, Served, SnapshotCache};
pub use http::{
    serve, serve_backend, serve_cached, BackendAnswer, BackendResult, BackendUnavailable,
    EngineBackend, QueryBackend, ServerConfig, ServerHandle,
};
pub use query::{
    NearestGroup, PointAnswer, QueryEngine, Stats, WindowAnswer, WindowGroupPart, WindowScatter,
};
pub use snapshot::{
    load_snapshot, load_snapshot_with, read_snapshot, save_snapshot, save_snapshot_with,
    snapshot_from_bytes, snapshot_to_bytes, write_snapshot, Snapshot,
};
pub use sr_fault::{Backoff, FaultPlan};
pub use sr_obs::Registry;
pub use v2::{
    engine_from_bytes, load_engine, load_engine_with, migrate_snapshot_bytes, peek_version,
    save_snapshot_v2, save_snapshot_v2_with, section_table, snapshot_to_bytes_v2,
    snapshot_v2_from_aligned, snapshot_v2_from_bytes, AlignedBytes, SectionInfo, SnapshotV2,
};

/// Errors from the serving layer.
#[derive(Debug)]
pub enum ServeError {
    /// An underlying I/O operation failed.
    Io(std::io::Error),
    /// The snapshot bytes are structurally malformed.
    Format {
        /// Byte offset at which parsing failed (`usize::MAX` when the
        /// failure is not tied to a position, e.g. a truncated file).
        offset: usize,
        /// What went wrong.
        message: String,
    },
    /// The CRC-32 trailer does not match the payload — the file was
    /// corrupted or truncated after writing.
    Checksum {
        /// Checksum stored in the trailer.
        stored: u32,
        /// Checksum computed over the payload.
        computed: u32,
    },
    /// A semantically invalid request or snapshot (consistent bytes, but
    /// the described partition breaks a framework invariant).
    Invalid(String),
}

impl std::fmt::Display for ServeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ServeError::Io(e) => write!(f, "i/o error: {e}"),
            ServeError::Format { offset, message } if *offset == usize::MAX => {
                write!(f, "snapshot format error: {message}")
            }
            ServeError::Format { offset, message } => {
                write!(f, "snapshot format error at byte {offset}: {message}")
            }
            ServeError::Checksum { stored, computed } => write!(
                f,
                "snapshot checksum mismatch: stored {stored:#010x}, computed {computed:#010x}"
            ),
            ServeError::Invalid(msg) => write!(f, "invalid snapshot: {msg}"),
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ServeError {
    fn from(e: std::io::Error) -> Self {
        ServeError::Io(e)
    }
}

/// Result alias for serving operations.
pub type Result<T> = std::result::Result<T, ServeError>;
