//! A dependency-free HTTP/1.1 front end for the query engine.
//!
//! Built entirely on `std::net`: a listener thread accepts connections and
//! hands them to a fixed pool of worker threads over a channel; workers
//! parse one `GET` request per connection, answer from the shared
//! [`QueryEngine`], and close (`Connection: close` keeps the protocol
//! state machine trivial). Shutdown is graceful: a flag flips, a wake-up
//! connection unblocks the accept loop, the channel closes, and every
//! worker drains before the handle's `shutdown` returns.
//!
//! Endpoints (all responses JSON):
//!
//! - `GET /point?lat=F&lon=F` — the cell under a location and its
//!   representative values.
//! - `GET /window?lat0=F&lat1=F&lon0=F&lon1=F` — per-attribute aggregates
//!   over the cells in a geographic rectangle.
//! - `GET /knn?lat=F&lon=F&k=N` — the `k` nearest featured cell-groups by
//!   rectangle centroid.
//! - `GET /stats` — snapshot summary plus request/shed counts.
//! - `GET /metrics` — the full metrics registry in the `sr-metrics v1`
//!   text format (see `docs/OBSERVABILITY.md`). Served even while the
//!   snapshot itself is unavailable.
//!
//! Malformed requests get `400` with an `error` body; unknown paths `404`;
//! non-`GET` methods `405`. The server never panics on bad input, and a
//! panic inside a handler (including one injected through
//! [`ServerConfig::fault_plan`]) is caught by the worker — the connection
//! drops, `serve.panics_recovered_total` increments, and the pool keeps
//! serving.
//!
//! ## Overload and degradation (`docs/ROBUSTNESS.md` is the contract)
//!
//! - **Admission control**: with [`ServerConfig::max_inflight`] set, a
//!   connection arriving while that many requests are queued or being
//!   handled is *shed* — answered `503` with a `Retry-After` header
//!   straight from the acceptor, never parsed, counted in
//!   `shed.queue_total`.
//! - **Deadlines**: with [`ServerConfig::deadline`] set, each request's
//!   deadline starts at accept time and is checked when a worker picks the
//!   connection up and again after the request head is parsed; on expiry
//!   the response is `503` + `Retry-After` and `shed.deadline_total`
//!   increments. A deadline that expires *during* a handler does not abort
//!   it (handlers are short; the next check is the client's).
//! - **Stale serving**: a server started with [`serve_cached`] resolves
//!   its engine through a [`SnapshotCache`] on every engine-backed
//!   request; when the snapshot file changes but the replacement fails to
//!   load, the last good snapshot answers with an `X-SR-Stale: 1` header
//!   (`stale.serves_total`). If no snapshot was ever loadable, engine
//!   endpoints answer `503` (`serve.snapshot_unavailable_total`) while
//!   `/metrics` keeps working.
//!
//! Every routed request increments `serve.requests_total` and its
//! endpoint's `serve.<endpoint>.requests_total` counter *before* the
//! handler runs (so `/stats` and `/metrics` responses count themselves),
//! records its latency into `serve.<endpoint>.latency_ns` *after* the
//! response body is built, and runs under a `serve.<endpoint>` tracing
//! span. Responses with status ≥ 400 also increment `serve.errors_total`;
//! shed responses (never routed) count in `shed.*` and
//! `serve.errors_total` only.

use crate::cache::{Served, SnapshotCache};
use crate::query::{NearestGroup, PointAnswer, QueryEngine, WindowAnswer};
use crate::Result;
use sr_fault::FaultPlan;
use sr_obs::{Counter, Histogram, Registry};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
///
/// The robustness fields compose: admission shedding is decided first
/// (a shed request is never queued, so its deadline is moot), then the
/// deadline, then the handler. `docs/ROBUSTNESS.md` documents the
/// precedence and every observable outcome.
///
/// ```
/// use sr_serve::ServerConfig;
/// use std::time::Duration;
///
/// let config = ServerConfig {
///     // Requests older than 250ms (accept → handling) answer 503.
///     deadline: Some(Duration::from_millis(250)),
///     // At most 64 requests queued + in flight; beyond that, shed.
///     max_inflight: 64,
///     ..ServerConfig::default()
/// };
/// assert_eq!(config.retry_after, Duration::from_secs(1));
/// assert!(config.fault_plan.is_none(), "fault injection is opt-in");
/// ```
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub threads: usize,
    /// Cap on the request head (request line + headers) in bytes.
    pub max_request_bytes: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Per-request deadline, measured from the moment the connection is
    /// accepted. `None` (the default) disables deadline shedding.
    ///
    /// ```
    /// use sr_serve::ServerConfig;
    /// use std::time::Duration;
    /// let cfg = ServerConfig { deadline: Some(Duration::ZERO), ..ServerConfig::default() };
    /// // A zero deadline is legal and sheds every request — useful for
    /// // drills and the fault-matrix test.
    /// assert_eq!(cfg.deadline, Some(Duration::ZERO));
    /// ```
    pub deadline: Option<Duration>,
    /// Bound on requests queued + being handled; `0` (the default) means
    /// unbounded. Arrivals past the bound are shed with `503`.
    ///
    /// ```
    /// use sr_serve::ServerConfig;
    /// let cfg = ServerConfig { max_inflight: 2, threads: 2, ..ServerConfig::default() };
    /// assert!(cfg.max_inflight >= cfg.threads, "a bound below `threads` idles workers");
    /// ```
    pub max_inflight: usize,
    /// Value of the `Retry-After` header on shed (`503`) responses,
    /// rounded up to whole seconds (minimum 1).
    pub retry_after: Duration,
    /// Optional fault-injection plan: the worker panic hook
    /// (`panic.rate`) runs once per parsed request. Snapshot-I/O faults
    /// belong on the [`SnapshotCache`] instead (see
    /// [`SnapshotCache::with_fault_plan`]).
    pub fault_plan: Option<FaultPlan>,
    /// Metrics registry the server reports into and `/metrics` renders.
    /// Defaults to [`Registry::global`]; pass a fresh [`Registry::new`] for
    /// an isolated server (e.g. in tests hosting several servers).
    pub registry: Registry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            max_request_bytes: 8 * 1024,
            read_timeout: Duration::from_secs(5),
            deadline: None,
            max_inflight: 0,
            retry_after: Duration::from_secs(1),
            fault_plan: None,
            registry: Registry::global(),
        }
    }
}

/// One endpoint's instruments: a request counter and a latency histogram.
#[derive(Debug, Clone)]
struct EndpointMetrics {
    requests: Counter,
    latency: Histogram,
}

impl EndpointMetrics {
    fn new(registry: &Registry, endpoint: &str) -> Self {
        EndpointMetrics {
            requests: registry.counter(&format!("serve.{endpoint}.requests_total")),
            latency: registry.histogram(&format!("serve.{endpoint}.latency_ns")),
        }
    }
}

/// All instruments one server records into, resolved once at startup so
/// the per-request path never touches the registry's locks.
#[derive(Debug)]
struct ServerMetrics {
    registry: Registry,
    requests_total: Counter,
    errors_total: Counter,
    shed_queue: Counter,
    shed_deadline: Counter,
    unavailable: Counter,
    panics_recovered: Counter,
    stale_serves: Counter,
    point: EndpointMetrics,
    window: EndpointMetrics,
    knn: EndpointMetrics,
    stats: EndpointMetrics,
    metrics: EndpointMetrics,
    healthz: EndpointMetrics,
}

impl ServerMetrics {
    fn new(registry: Registry) -> Self {
        ServerMetrics {
            requests_total: registry.counter("serve.requests_total"),
            errors_total: registry.counter("serve.errors_total"),
            shed_queue: registry.counter("shed.queue_total"),
            shed_deadline: registry.counter("shed.deadline_total"),
            unavailable: registry.counter("serve.snapshot_unavailable_total"),
            panics_recovered: registry.counter("serve.panics_recovered_total"),
            // The same cell a cache built over this registry increments,
            // so /stats can report stale serves without reaching into the
            // cache.
            stale_serves: registry.counter("stale.serves_total"),
            point: EndpointMetrics::new(&registry, "point"),
            window: EndpointMetrics::new(&registry, "window"),
            knn: EndpointMetrics::new(&registry, "knn"),
            stats: EndpointMetrics::new(&registry, "stats"),
            metrics: EndpointMetrics::new(&registry, "metrics"),
            healthz: EndpointMetrics::new(&registry, "healthz"),
            registry,
        }
    }
}

/// A successful backend answer, annotated with how degraded it is.
///
/// `stale` surfaces as the `X-SR-Stale: 1` response header; a non-empty
/// `missing_shards` surfaces as `X-SR-Partial: <comma-separated ids>` —
/// the response is correct for every shard that answered, and silent
/// about the ones that did not (`docs/SHARDING.md` is the contract).
#[derive(Debug, Clone)]
pub struct BackendAnswer<T> {
    /// The answer itself.
    pub value: T,
    /// `true` when any contributing snapshot was served stale.
    pub stale: bool,
    /// Shards whose contribution is missing (browned out or past their
    /// per-shard deadline). Empty for complete answers and for
    /// single-engine backends.
    pub missing_shards: Vec<u32>,
}

impl<T> BackendAnswer<T> {
    /// A complete, fresh answer.
    pub fn fresh(value: T) -> Self {
        BackendAnswer { value, stale: false, missing_shards: Vec::new() }
    }
}

/// The backend cannot answer at all — the HTTP layer turns this into a
/// `503` with the message in the `error` body and counts it in
/// `serve.snapshot_unavailable_total`.
#[derive(Debug, Clone)]
pub struct BackendUnavailable(pub String);

/// Result alias for [`QueryBackend`] calls.
pub type BackendResult<T> = std::result::Result<BackendAnswer<T>, BackendUnavailable>;

/// What the HTTP server serves from. [`EngineBackend`] answers from one
/// `QueryEngine` (static or cache-resolved); `sr-shard`'s router
/// implements the same trait to scatter each query over shards and
/// gather the merged answer, which is how the whole sharded tier plugs
/// into this server unchanged.
pub trait QueryBackend: Send + Sync + 'static {
    /// Point lookup; `None` when the location is outside the grid.
    fn point(&self, lat: f64, lon: f64) -> BackendResult<Option<PointAnswer>>;
    /// Window aggregate, plus the attribute names the answer refers to.
    fn window(
        &self,
        lat0: f64,
        lat1: f64,
        lon0: f64,
        lon1: f64,
    ) -> BackendResult<(Vec<String>, WindowAnswer)>;
    /// The `k` nearest featured groups.
    fn knn(&self, lat: f64, lon: f64, k: usize) -> BackendResult<Vec<NearestGroup>>;
    /// The backend-specific fields of the `/stats` body: a JSON fragment
    /// of `"key":value` pairs (no surrounding braces). The server appends
    /// its own request/shed counters after it.
    fn stats_fields(&self) -> BackendResult<String>;
    /// The `/healthz` body: per-shard/replica status JSON. Never fails —
    /// health reporting must survive snapshot loss (a fully degraded
    /// backend reports itself degraded with a `200`).
    fn health(&self) -> String;
    /// `(cells, groups)` for the startup gauges, when already known.
    fn snapshot_shape(&self) -> Option<(usize, usize)> {
        None
    }
}

/// Where an [`EngineBackend`]'s engine comes from: fixed at startup, or
/// re-resolved per request through a cache (which is what enables reloads
/// and stale degradation).
enum Source {
    Static(Arc<QueryEngine>),
    Cached { cache: Arc<SnapshotCache>, path: PathBuf, theta: f64 },
}

impl Source {
    fn resolve(&self) -> Result<Served> {
        match self {
            Source::Static(engine) => Ok(Served { engine: Arc::clone(engine), stale: false }),
            Source::Cached { cache, path, theta } => cache.get_serve(path, *theta),
        }
    }
}

/// The single-engine backend: one `QueryEngine`, static or resolved
/// through a [`SnapshotCache`] per request. This is what [`serve`] and
/// [`serve_cached`] wrap.
pub struct EngineBackend {
    source: Source,
}

impl EngineBackend {
    /// A backend over a fixed engine.
    pub fn from_engine(engine: Arc<QueryEngine>) -> Self {
        EngineBackend { source: Source::Static(engine) }
    }

    /// A backend that resolves its engine through `cache` on every call,
    /// picking up file edits and degrading to stale serves on failed
    /// reloads.
    pub fn from_cache(cache: Arc<SnapshotCache>, path: impl AsRef<Path>, theta: f64) -> Self {
        EngineBackend { source: Source::Cached { cache, path: path.as_ref().to_path_buf(), theta } }
    }

    fn resolve(&self) -> std::result::Result<Served, BackendUnavailable> {
        self.source.resolve().map_err(|e| BackendUnavailable(format!("snapshot unavailable: {e}")))
    }
}

impl QueryBackend for EngineBackend {
    fn point(&self, lat: f64, lon: f64) -> BackendResult<Option<PointAnswer>> {
        let served = self.resolve()?;
        Ok(BackendAnswer {
            value: served.engine.point(lat, lon),
            stale: served.stale,
            missing_shards: Vec::new(),
        })
    }

    fn window(
        &self,
        lat0: f64,
        lat1: f64,
        lon0: f64,
        lon1: f64,
    ) -> BackendResult<(Vec<String>, WindowAnswer)> {
        let served = self.resolve()?;
        let names = served.engine.attr_names().to_vec();
        Ok(BackendAnswer {
            value: (names, served.engine.window(lat0, lat1, lon0, lon1)),
            stale: served.stale,
            missing_shards: Vec::new(),
        })
    }

    fn knn(&self, lat: f64, lon: f64, k: usize) -> BackendResult<Vec<NearestGroup>> {
        let served = self.resolve()?;
        Ok(BackendAnswer {
            value: served.engine.knn(lat, lon, k),
            stale: served.stale,
            missing_shards: Vec::new(),
        })
    }

    fn stats_fields(&self) -> BackendResult<String> {
        let served = self.resolve()?;
        let st = served.engine.stats();
        let names: Vec<String> =
            served.engine.attr_names().iter().map(|n| json_string(n)).collect();
        let fields = format!(
            "\"rows\":{},\"cols\":{},\"cells\":{},\"valid_cells\":{},\"groups\":{},\
             \"valid_groups\":{},\"attrs\":{},\"attr_names\":[{}],\"theta\":{},\"ifl\":{},\
             \"cell_reduction\":{},\"shards\":{{\"healthy\":1,\"browned_out\":0}}",
            st.rows,
            st.cols,
            st.cells,
            st.valid_cells,
            st.groups,
            st.valid_groups,
            st.attrs,
            names.join(","),
            json_f64(st.theta),
            json_f64(st.ifl),
            json_f64(st.cell_reduction),
        );
        Ok(BackendAnswer { value: fields, stale: served.stale, missing_shards: Vec::new() })
    }

    fn health(&self) -> String {
        // The single engine reports itself as one pseudo-shard with one
        // replica, in the same schema the sharded router uses.
        let (status, state) = match self.source.resolve() {
            Ok(served) if served.stale => ("stale", "stale"),
            Ok(_) => ("ok", "healthy"),
            Err(_) => ("degraded", "browned_out"),
        };
        format!(
            "{{\"status\":\"{status}\",\"shards\":[{{\"id\":0,\"state\":\"{state}\",\
             \"replicas\":1,\"active_replica\":0}}]}}"
        )
    }

    fn snapshot_shape(&self) -> Option<(usize, usize)> {
        let served = self.source.resolve().ok()?;
        let st = served.engine.stats();
        Some((st.cells, st.groups))
    }
}

/// Decrements the shared in-flight count when dropped — including when
/// the handler panicked, so a crashed request can never leak admission
/// slots.
struct InflightGuard(Arc<AtomicUsize>);

impl Drop for InflightGuard {
    fn drop(&mut self) {
        self.0.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Handle to a running server. Dropping it shuts the server down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port of `addr:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and blocks until the acceptor and every worker
    /// have exited. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in accept(); a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts serving `engine` on `addr` (e.g. `"127.0.0.1:0"` for an
/// ephemeral port). Returns once the listener is bound and the workers
/// are running.
pub fn serve(engine: Arc<QueryEngine>, addr: &str, config: ServerConfig) -> Result<ServerHandle> {
    serve_backend(Arc::new(EngineBackend::from_engine(engine)), addr, config)
}

/// Starts a server whose engine is resolved through `cache` on every
/// engine-backed request: the snapshot at `path` (cache-keyed together
/// with `theta`) is reloaded when the file changes, and serves **stale**
/// (with an `X-SR-Stale: 1` header) when a reload fails. The server
/// starts even if the snapshot is currently unloadable — engine endpoints
/// answer `503` until a load succeeds, `/metrics` works throughout.
pub fn serve_cached(
    cache: Arc<SnapshotCache>,
    path: impl AsRef<Path>,
    theta: f64,
    addr: &str,
    config: ServerConfig,
) -> Result<ServerHandle> {
    serve_backend(Arc::new(EngineBackend::from_cache(cache, path, theta)), addr, config)
}

/// Starts a server over any [`QueryBackend`] — the entry point the
/// sharded router uses. [`serve`] and [`serve_cached`] are thin wrappers
/// over this with an [`EngineBackend`].
pub fn serve_backend(
    backend: Arc<dyn QueryBackend>,
    addr: &str,
    config: ServerConfig,
) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    // Snapshot-shape gauges let `/metrics` describe what is being served.
    // A cached source may not be loadable yet — the server still starts
    // (degraded), so a warm-up failure only skips the gauges.
    if let Some((cells, groups)) = backend.snapshot_shape() {
        config.registry.gauge("serve.snapshot.cells").set(cells as f64);
        config.registry.gauge("serve.snapshot.groups").set(groups as f64);
    }
    let metrics = Arc::new(ServerMetrics::new(config.registry.clone()));
    let source = backend;
    let inflight = Arc::new(AtomicUsize::new(0));

    let (tx, rx) = mpsc::channel::<(TcpStream, Instant)>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..config.threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let source = Arc::clone(&source);
            let config = config.clone();
            let metrics = Arc::clone(&metrics);
            let inflight = Arc::clone(&inflight);
            std::thread::spawn(move || loop {
                // Holding the lock only while receiving keeps the pool
                // work-stealing: whichever worker is free takes the next
                // connection.
                let (stream, accepted) = match rx.lock().expect("worker queue poisoned").recv() {
                    Ok(s) => s,
                    Err(_) => return, // channel closed: shutting down
                };
                let _guard = InflightGuard(Arc::clone(&inflight));
                // A panicking handler (bug, or an injected fault) must not
                // shrink the pool: catch it, count it, drop the
                // connection, move on.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    handle_connection(stream, &source, &config, &metrics, accepted);
                }));
                if outcome.is_err() {
                    metrics.panics_recovered.inc();
                }
            })
        })
        .collect();

    let flag = Arc::clone(&shutdown);
    let acceptor_config = config.clone();
    let acceptor_metrics = Arc::clone(&metrics);
    let acceptor = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                // Admission control: past the in-flight bound, shed right
                // here — a tiny fixed write, so a full pool can never grow
                // an unbounded backlog of parked connections.
                if acceptor_config.max_inflight > 0
                    && inflight.load(Ordering::SeqCst) >= acceptor_config.max_inflight
                {
                    acceptor_metrics.shed_queue.inc();
                    acceptor_metrics.errors_total.inc();
                    respond(
                        &stream,
                        503,
                        CONTENT_TYPE_JSON,
                        &json_error("server at capacity, request shed"),
                        &retry_after(&acceptor_config),
                    );
                    continue;
                }
                inflight.fetch_add(1, Ordering::SeqCst);
                // A send only fails when every worker died; stop accepting
                // rather than spin.
                if tx.send((stream, Instant::now())).is_err() {
                    inflight.fetch_sub(1, Ordering::SeqCst);
                    break;
                }
            }
        }
        drop(tx); // close the channel so idle workers exit
        for w in workers {
            let _ = w.join();
        }
    });

    Ok(ServerHandle { addr: local, shutdown, acceptor: Some(acceptor) })
}

/// The `Retry-After` header for shed responses, whole seconds ≥ 1.
fn retry_after(config: &ServerConfig) -> [(&'static str, String); 1] {
    let secs = config.retry_after.as_secs().max(1);
    [("Retry-After", secs.to_string())]
}

fn handle_connection(
    stream: TcpStream,
    source: &Arc<dyn QueryBackend>,
    config: &ServerConfig,
    metrics: &ServerMetrics,
    accepted: Instant,
) {
    let deadline = config.deadline.map(|d| accepted + d);
    let expired = |deadline: Option<Instant>| deadline.is_some_and(|d| Instant::now() >= d);
    let shed_deadline = |stream: &TcpStream| {
        metrics.shed_deadline.inc();
        metrics.errors_total.inc();
        respond(
            stream,
            503,
            CONTENT_TYPE_JSON,
            &json_error("deadline exceeded, request shed"),
            &retry_after(config),
        );
    };
    // Deadline check 1: the request may have aged out while queued.
    if expired(deadline) {
        shed_deadline(&stream);
        return;
    }
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    let mut total = 0usize;
    if reader.read_line(&mut request_line).is_err() {
        return; // timeout or reset before a full request line
    }
    total += request_line.len();
    // Drain the headers (ignored — no endpoint needs them) up to the cap.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(n) => {
                total += n;
                if line == "\r\n" || line == "\n" {
                    break;
                }
                if total > config.max_request_bytes {
                    metrics.requests_total.inc();
                    metrics.errors_total.inc();
                    respond(
                        &stream,
                        431,
                        CONTENT_TYPE_JSON,
                        &json_error("request head too large"),
                        &[],
                    );
                    return;
                }
            }
            Err(_) => return,
        }
    }
    // The panic-injection hook: models a handler crash after a complete
    // request was read. The worker's catch_unwind recovers the pool; the
    // client sees the connection close with no response.
    if let Some(plan) = &config.fault_plan {
        plan.maybe_panic("serve.worker");
    }
    // Deadline check 2: a slow client may have eaten the budget.
    if expired(deadline) {
        shed_deadline(&stream);
        return;
    }
    let (status, content_type, body, stale, partial) =
        route(request_line.trim_end(), source.as_ref(), metrics);
    let mut headers: Vec<(&'static str, String)> = Vec::new();
    if stale {
        headers.push(("X-SR-Stale", "1".to_string()));
    }
    if let Some(missing) = partial {
        headers.push(("X-SR-Partial", missing));
    }
    respond(&stream, status, content_type, &body, &headers);
}

const CONTENT_TYPE_JSON: &str = "application/json";
const CONTENT_TYPE_METRICS: &str = "text/plain; version=sr-metrics-v1";

/// Parses the request line and dispatches to the endpoint handlers, with
/// per-endpoint telemetry. Returns
/// `(status, content_type, body, stale, partial)` — `partial` is the
/// `X-SR-Partial` header value when shards are missing — and never panics
/// on malformed input.
fn route(
    request_line: &str,
    source: &dyn QueryBackend,
    m: &ServerMetrics,
) -> (u16, &'static str, String, bool, Option<String>) {
    // Any parsed-enough-to-answer request counts, even a malformed one.
    m.requests_total.inc();
    let bad = |status: u16, message: &str| {
        m.errors_total.inc();
        (status, CONTENT_TYPE_JSON, json_error(message), false, None)
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return bad(400, "malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return bad(400, "unsupported protocol version");
    }
    if method != "GET" {
        return bad(405, "only GET is supported");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params: HashMap<&str, &str> =
        query.split('&').filter(|kv| !kv.is_empty()).filter_map(|kv| kv.split_once('=')).collect();

    let (em, span_name): (&EndpointMetrics, &'static str) = match path {
        "/point" => (&m.point, "serve.point"),
        "/window" => (&m.window, "serve.window"),
        "/knn" => (&m.knn, "serve.knn"),
        "/stats" => (&m.stats, "serve.stats"),
        "/metrics" => (&m.metrics, "serve.metrics"),
        "/healthz" => (&m.healthz, "serve.healthz"),
        _ => return bad(404, "unknown path"),
    };
    // Count before the handler runs so /stats and /metrics include the
    // request being served; record latency after the body is built.
    em.requests.inc();
    let start = Instant::now();
    let mut span = sr_obs::span(span_name);
    // Engine-backed endpoints resolve their engine(s) per request (a
    // static source is free; a cached source reloads / degrades here).
    // /metrics and /healthz deliberately do not: telemetry and health
    // reporting must survive snapshot loss.
    type Routed = std::result::Result<(u16, String, bool, Vec<u32>), BackendUnavailable>;
    let routed: Routed = match path {
        "/point" => handle_point(source, &params),
        "/window" => handle_window(source, &params),
        "/knn" => handle_knn(source, &params),
        "/stats" => {
            source.stats_fields().map(|a| (200, stats_json(&a.value, m), a.stale, a.missing_shards))
        }
        "/healthz" => Ok((200, source.health(), false, Vec::new())),
        _ => Ok((200, m.registry.render_text(), false, Vec::new())),
    };
    let (status, content_type, body, stale, missing) = match routed {
        Ok((status, body, stale, missing)) => {
            let ct = if path == "/metrics" { CONTENT_TYPE_METRICS } else { CONTENT_TYPE_JSON };
            (status, ct, body, stale, missing)
        }
        Err(BackendUnavailable(message)) => {
            m.unavailable.inc();
            (503, CONTENT_TYPE_JSON, json_error(&message), false, Vec::new())
        }
    };
    em.latency.record(start.elapsed());
    span.record("status", u64::from(status));
    if stale {
        span.record("stale", true);
    }
    if !missing.is_empty() {
        span.record("missing_shards", missing.len() as u64);
    }
    if status >= 400 {
        m.errors_total.inc();
    }
    let partial = (!missing.is_empty())
        .then(|| missing.iter().map(u32::to_string).collect::<Vec<_>>().join(","));
    (status, content_type, body, stale, partial)
}

fn param_f64(params: &HashMap<&str, &str>, key: &str) -> std::result::Result<f64, String> {
    let raw = params.get(key).ok_or_else(|| format!("missing parameter '{key}'"))?;
    raw.parse::<f64>().map_err(|_| format!("parameter '{key}' is not a number"))
}

type Handled = std::result::Result<(u16, String, bool, Vec<u32>), BackendUnavailable>;

fn handle_point(backend: &dyn QueryBackend, params: &HashMap<&str, &str>) -> Handled {
    let (lat, lon) = match (param_f64(params, "lat"), param_f64(params, "lon")) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return Ok((400, json_error(&e), false, Vec::new())),
    };
    let answer = backend.point(lat, lon)?;
    let body = match &answer.value {
        None => "{\"inside\":false}".to_string(),
        Some(ans) => {
            let values = match &ans.values {
                Some(vals) => json_f64_array(vals),
                None => "null".to_string(),
            };
            format!(
                "{{\"inside\":true,\"row\":{},\"col\":{},\"cell\":{},\"group\":{},\"values\":{values}}}",
                ans.row, ans.col, ans.cell, ans.group
            )
        }
    };
    Ok((200, body, answer.stale, answer.missing_shards))
}

fn handle_window(backend: &dyn QueryBackend, params: &HashMap<&str, &str>) -> Handled {
    let mut coords = [0.0f64; 4];
    for (slot, key) in coords.iter_mut().zip(["lat0", "lat1", "lon0", "lon1"]) {
        match param_f64(params, key) {
            Ok(v) => *slot = v,
            Err(e) => return Ok((400, json_error(&e), false, Vec::new())),
        }
    }
    let answer = backend.window(coords[0], coords[1], coords[2], coords[3])?;
    let (names, ans) = &answer.value;
    let attrs: Vec<String> = ans
        .per_attr
        .iter()
        .enumerate()
        .map(|(k, a)| {
            format!(
                "{{\"name\":{},\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
                json_string(&names[k]),
                a.count,
                json_f64(a.sum),
                a.mean().map_or("null".to_string(), json_f64),
                a.min.map_or("null".to_string(), json_f64),
                a.max.map_or("null".to_string(), json_f64),
            )
        })
        .collect();
    let body = format!(
        "{{\"cells\":{},\"valid_cells\":{},\"groups\":{},\"attrs\":[{}]}}",
        ans.cells,
        ans.valid_cells,
        ans.groups,
        attrs.join(",")
    );
    Ok((200, body, answer.stale, answer.missing_shards))
}

fn handle_knn(backend: &dyn QueryBackend, params: &HashMap<&str, &str>) -> Handled {
    let (lat, lon) = match (param_f64(params, "lat"), param_f64(params, "lon")) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return Ok((400, json_error(&e), false, Vec::new())),
    };
    let k = match params.get("k").map_or(Ok(5), |raw| raw.parse::<usize>()) {
        Ok(k) if k > 0 && k <= 10_000 => k,
        _ => {
            return Ok((
                400,
                json_error("parameter 'k' must be an integer in 1..=10000"),
                false,
                Vec::new(),
            ))
        }
    };
    let answer = backend.knn(lat, lon, k)?;
    let neighbors: Vec<String> = answer
        .value
        .iter()
        .map(|nb| {
            format!(
                "{{\"group\":{},\"lat\":{},\"lon\":{},\"distance\":{},\"values\":{}}}",
                nb.group,
                json_f64(nb.lat),
                json_f64(nb.lon),
                json_f64(nb.distance),
                json_f64_array(&nb.values)
            )
        })
        .collect();
    let body = format!("{{\"neighbors\":[{}]}}", neighbors.join(","));
    Ok((200, body, answer.stale, answer.missing_shards))
}

/// Backend summary fields plus the same request/shed counters `/metrics`
/// reports — both read the very same [`Counter`]s, so the two endpoints
/// can never disagree.
fn stats_json(backend_fields: &str, m: &ServerMetrics) -> String {
    format!(
        "{{{backend_fields},\"requests\":{{\"point\":{},\"window\":{},\"knn\":{},\
         \"stats\":{},\"metrics\":{},\"healthz\":{},\"total\":{},\"errors\":{}}},\
         \"shed\":{{\"queue\":{},\"deadline\":{}}},\"stale_serves\":{}}}",
        m.point.requests.get(),
        m.window.requests.get(),
        m.knn.requests.get(),
        m.stats.requests.get(),
        m.metrics.requests.get(),
        m.healthz.requests.get(),
        m.requests_total.get(),
        m.errors_total.get(),
        m.shed_queue.get(),
        m.shed_deadline.get(),
        m.stale_serves.get(),
    )
}

fn respond(
    mut stream: &TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
    extra_headers: &[(&'static str, String)],
) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let mut headers = String::new();
    for (name, value) in extra_headers {
        headers.push_str(name);
        headers.push_str(": ");
        headers.push_str(value);
        headers.push_str("\r\n");
    }
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\n{headers}Connection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn json_error(message: &str) -> String {
    format!("{{\"error\":{}}}", json_string(message))
}

/// JSON number for an `f64`. Rust's `Display` prints the shortest string
/// that parses back to the same bits, so finite values round-trip exactly;
/// non-finite values (unrepresentable in JSON) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_f64_array(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|&v| json_f64(v)).collect();
    format!("[{}]", items.join(","))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_round_trips_and_handles_nonfinite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        let v = 1.0 / 3.0;
        assert_eq!(json_f64(v).parse::<f64>().unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn route_rejects_malformed_without_panicking() {
        let source = test_source();
        let m = test_metrics();
        for bad in [
            "",
            "GARBAGE",
            "GET",
            "GET /point",
            "FOO /point?lat=1&lon=1 HTTP/1.1",
            "GET /point?lat=abc&lon=1 HTTP/1.1",
            "GET /point?lon=1 HTTP/1.1",
            "GET /knn?lat=1&lon=1&k=0 HTTP/1.1",
            "GET /knn?lat=1&lon=1&k=-3 HTTP/1.1",
            "GET /window?lat0=1 HTTP/1.1",
            "GET /point?lat=1&lon=1 SPDY/9",
        ] {
            let (status, _, body, _, _) = route(bad, &source, &m);
            assert!((400..=405).contains(&status), "'{bad}' gave status {status}");
            assert!(body.contains("error"), "'{bad}' body: {body}");
        }
        let (status, _, _, _, _) = route("GET /nope HTTP/1.1", &source, &m);
        assert_eq!(status, 404);
        assert_eq!(m.errors_total.get(), 12);
        assert_eq!(m.requests_total.get(), 12);
    }

    #[test]
    fn route_answers_wellformed() {
        let source = test_source();
        let m = test_metrics();
        let (status, ct, body, stale, partial) = route("GET /stats HTTP/1.1", &source, &m);
        assert_eq!(status, 200);
        assert_eq!(ct, CONTENT_TYPE_JSON);
        assert!(body.contains("\"groups\""));
        assert!(body.contains("\"shards\":{\"healthy\":1,\"browned_out\":0}"), "{body}");
        assert!(body.contains("\"shed\":{\"queue\":0,\"deadline\":0}"), "{body}");
        assert!(!stale, "a static source is never stale");
        assert!(partial.is_none(), "a static source is never partial");
        let (status, _, body, _, _) = route("GET /point?lat=0.5&lon=0.5 HTTP/1.1", &source, &m);
        assert_eq!(status, 200);
        assert!(body.contains("\"inside\":true"));
        let (status, _, body, _, _) = route("GET /point?lat=9&lon=9 HTTP/1.1", &source, &m);
        assert_eq!(status, 200);
        assert!(body.contains("\"inside\":false"));
        let (status, _, body, _, _) =
            route("GET /window?lat0=0&lat1=1&lon0=0&lon1=1 HTTP/1.1", &source, &m);
        assert_eq!(status, 200);
        assert!(body.contains("\"attrs\""));
        let (status, _, body, _, _) = route("GET /knn?lat=0.5&lon=0.5&k=2 HTTP/1.1", &source, &m);
        assert_eq!(status, 200);
        assert!(body.contains("\"neighbors\""));
        let (status, _, body, _, _) = route("GET /healthz HTTP/1.1", &source, &m);
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"ok\""), "{body}");
        assert!(body.contains("\"shards\":[{\"id\":0,\"state\":\"healthy\""), "{body}");
    }

    #[test]
    fn route_serves_metrics_and_counts_requests() {
        let source = test_source();
        let m = test_metrics();
        route("GET /point?lat=0.5&lon=0.5 HTTP/1.1", &source, &m);
        route("GET /point?lat=0.5&lon=0.5 HTTP/1.1", &source, &m);
        let (status, _, stats, _, _) = route("GET /stats HTTP/1.1", &source, &m);
        assert_eq!(status, 200);
        assert!(stats.contains("\"requests\":{\"point\":2,"), "stats: {stats}");
        let (status, ct, body, _, _) = route("GET /metrics HTTP/1.1", &source, &m);
        assert_eq!(status, 200);
        assert_eq!(ct, CONTENT_TYPE_METRICS);
        assert!(body.contains("counter serve.point.requests_total 2"), "metrics: {body}");
        assert!(body.contains("counter serve.requests_total 4"), "metrics: {body}");
        assert!(body.contains("histogram serve.point.latency_ns count 2"), "metrics: {body}");
        assert!(body.contains("counter shed.queue_total 0"), "metrics: {body}");
        // /stats and /metrics read the same counters: re-render agrees.
        assert_eq!(m.point.requests.get(), 2);
        assert_eq!(m.metrics.requests.get(), 1);
        assert_eq!(m.stats.requests.get(), 1);
    }

    #[test]
    fn missing_cached_snapshot_degrades_engine_endpoints_only() {
        let cache = Arc::new(SnapshotCache::new(1));
        let source = EngineBackend::from_cache(cache, "/nonexistent/missing.snap", 0.05);
        let m = test_metrics();
        let (status, _, body, stale, _) = route("GET /point?lat=0&lon=0 HTTP/1.1", &source, &m);
        assert_eq!(status, 503);
        assert!(body.contains("snapshot unavailable"), "{body}");
        assert!(!stale);
        assert_eq!(m.unavailable.get(), 1);
        // Telemetry and health reporting must survive snapshot loss.
        let (status, _, body, _, _) = route("GET /metrics HTTP/1.1", &source, &m);
        assert_eq!(status, 200);
        assert!(body.contains("counter serve.snapshot_unavailable_total 1"), "{body}");
        let (status, _, body, _, _) = route("GET /healthz HTTP/1.1", &source, &m);
        assert_eq!(status, 200);
        assert!(body.contains("\"status\":\"degraded\""), "{body}");
        assert!(body.contains("\"state\":\"browned_out\""), "{body}");
    }

    fn test_metrics() -> ServerMetrics {
        ServerMetrics::new(Registry::new())
    }

    fn test_source() -> EngineBackend {
        use crate::snapshot::Snapshot;
        let vals: Vec<f64> = (0..36).map(|i| 10.0 + (i / 6) as f64 * 0.2).collect();
        let grid = sr_grid::GridDataset::univariate(6, 6, vals).unwrap();
        let out = sr_core::repartition(&grid, 0.05).unwrap();
        EngineBackend::from_engine(Arc::new(QueryEngine::new(
            Snapshot::build(&out.repartitioned, &grid, 0.05).unwrap(),
        )))
    }
}
