//! A dependency-free HTTP/1.1 front end for the query engine.
//!
//! Built entirely on `std::net`: a listener thread accepts connections and
//! hands them to a fixed pool of worker threads over a channel; workers
//! parse one `GET` request per connection, answer from the shared
//! [`QueryEngine`], and close (`Connection: close` keeps the protocol
//! state machine trivial). Shutdown is graceful: a flag flips, a wake-up
//! connection unblocks the accept loop, the channel closes, and every
//! worker drains before the handle's `shutdown` returns.
//!
//! Endpoints (all responses JSON):
//!
//! - `GET /point?lat=F&lon=F` — the cell under a location and its
//!   representative values.
//! - `GET /window?lat0=F&lat1=F&lon0=F&lon1=F` — per-attribute aggregates
//!   over the cells in a geographic rectangle.
//! - `GET /knn?lat=F&lon=F&k=N` — the `k` nearest featured cell-groups by
//!   rectangle centroid.
//! - `GET /stats` — snapshot summary plus request counts.
//! - `GET /metrics` — the full metrics registry in the `sr-metrics v1`
//!   text format (see `docs/OBSERVABILITY.md`).
//!
//! Malformed requests get `400` with an `error` body; unknown paths `404`;
//! non-`GET` methods `405`. The server never panics on bad input.
//!
//! Every request increments `serve.requests_total` and its endpoint's
//! `serve.<endpoint>.requests_total` counter *before* the handler runs (so
//! `/stats` and `/metrics` responses count themselves), records its latency
//! into `serve.<endpoint>.latency_ns` *after* the response body is built,
//! and runs under a `serve.<endpoint>` tracing span. Responses with status
//! ≥ 400 also increment `serve.errors_total`.

use crate::query::QueryEngine;
use crate::Result;
use sr_obs::{Counter, Histogram, Registry};
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{mpsc, Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Worker threads handling connections.
    pub threads: usize,
    /// Cap on the request head (request line + headers) in bytes.
    pub max_request_bytes: usize,
    /// Per-connection read timeout.
    pub read_timeout: Duration,
    /// Metrics registry the server reports into and `/metrics` renders.
    /// Defaults to [`Registry::global`]; pass a fresh [`Registry::new`] for
    /// an isolated server (e.g. in tests hosting several servers).
    pub registry: Registry,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            threads: 4,
            max_request_bytes: 8 * 1024,
            read_timeout: Duration::from_secs(5),
            registry: Registry::global(),
        }
    }
}

/// One endpoint's instruments: a request counter and a latency histogram.
#[derive(Debug, Clone)]
struct EndpointMetrics {
    requests: Counter,
    latency: Histogram,
}

impl EndpointMetrics {
    fn new(registry: &Registry, endpoint: &str) -> Self {
        EndpointMetrics {
            requests: registry.counter(&format!("serve.{endpoint}.requests_total")),
            latency: registry.histogram(&format!("serve.{endpoint}.latency_ns")),
        }
    }
}

/// All instruments one server records into, resolved once at startup so
/// the per-request path never touches the registry's locks.
#[derive(Debug)]
struct ServerMetrics {
    registry: Registry,
    requests_total: Counter,
    errors_total: Counter,
    point: EndpointMetrics,
    window: EndpointMetrics,
    knn: EndpointMetrics,
    stats: EndpointMetrics,
    metrics: EndpointMetrics,
}

impl ServerMetrics {
    fn new(registry: Registry) -> Self {
        ServerMetrics {
            requests_total: registry.counter("serve.requests_total"),
            errors_total: registry.counter("serve.errors_total"),
            point: EndpointMetrics::new(&registry, "point"),
            window: EndpointMetrics::new(&registry, "window"),
            knn: EndpointMetrics::new(&registry, "knn"),
            stats: EndpointMetrics::new(&registry, "stats"),
            metrics: EndpointMetrics::new(&registry, "metrics"),
            registry,
        }
    }
}

/// Handle to a running server. Dropping it shuts the server down.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves the ephemeral port of `addr:0` binds).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Signals shutdown and blocks until the acceptor and every worker
    /// have exited. Idempotent.
    pub fn shutdown(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // The accept loop blocks in accept(); a throwaway connection wakes
        // it so it can observe the flag.
        let _ = TcpStream::connect(self.addr);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Starts serving `engine` on `addr` (e.g. `"127.0.0.1:0"` for an
/// ephemeral port). Returns once the listener is bound and the workers
/// are running.
pub fn serve(engine: Arc<QueryEngine>, addr: &str, config: ServerConfig) -> Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let local = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));

    // Snapshot-shape gauges let `/metrics` describe what is being served.
    let st = engine.stats();
    config.registry.gauge("serve.snapshot.cells").set(st.cells as f64);
    config.registry.gauge("serve.snapshot.groups").set(st.groups as f64);
    let metrics = Arc::new(ServerMetrics::new(config.registry.clone()));

    let (tx, rx) = mpsc::channel::<TcpStream>();
    let rx = Arc::new(Mutex::new(rx));
    let workers: Vec<JoinHandle<()>> = (0..config.threads.max(1))
        .map(|_| {
            let rx = Arc::clone(&rx);
            let engine = Arc::clone(&engine);
            let config = config.clone();
            let metrics = Arc::clone(&metrics);
            std::thread::spawn(move || loop {
                // Holding the lock only while receiving keeps the pool
                // work-stealing: whichever worker is free takes the next
                // connection.
                let stream = match rx.lock().expect("worker queue poisoned").recv() {
                    Ok(s) => s,
                    Err(_) => return, // channel closed: shutting down
                };
                handle_connection(stream, &engine, &config, &metrics);
            })
        })
        .collect();

    let flag = Arc::clone(&shutdown);
    let acceptor = std::thread::spawn(move || {
        for stream in listener.incoming() {
            if flag.load(Ordering::SeqCst) {
                break;
            }
            if let Ok(stream) = stream {
                // A send only fails when every worker died; stop accepting
                // rather than spin.
                if tx.send(stream).is_err() {
                    break;
                }
            }
        }
        drop(tx); // close the channel so idle workers exit
        for w in workers {
            let _ = w.join();
        }
    });

    Ok(ServerHandle { addr: local, shutdown, acceptor: Some(acceptor) })
}

fn handle_connection(
    stream: TcpStream,
    engine: &QueryEngine,
    config: &ServerConfig,
    metrics: &ServerMetrics,
) {
    let _ = stream.set_read_timeout(Some(config.read_timeout));
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut request_line = String::new();
    let mut total = 0usize;
    if reader.read_line(&mut request_line).is_err() {
        return; // timeout or reset before a full request line
    }
    total += request_line.len();
    // Drain the headers (ignored — no endpoint needs them) up to the cap.
    loop {
        let mut line = String::new();
        match reader.read_line(&mut line) {
            Ok(0) => break,
            Ok(n) => {
                total += n;
                if line == "\r\n" || line == "\n" {
                    break;
                }
                if total > config.max_request_bytes {
                    metrics.requests_total.inc();
                    metrics.errors_total.inc();
                    respond(&stream, 431, CONTENT_TYPE_JSON, &json_error("request head too large"));
                    return;
                }
            }
            Err(_) => return,
        }
    }
    let (status, content_type, body) = route(request_line.trim_end(), engine, metrics);
    respond(&stream, status, content_type, &body);
}

const CONTENT_TYPE_JSON: &str = "application/json";
const CONTENT_TYPE_METRICS: &str = "text/plain; version=sr-metrics-v1";

/// Parses the request line and dispatches to the endpoint handlers, with
/// per-endpoint telemetry. Returns `(status, content_type, body)` and never
/// panics on malformed input.
fn route(
    request_line: &str,
    engine: &QueryEngine,
    m: &ServerMetrics,
) -> (u16, &'static str, String) {
    // Any parsed-enough-to-answer request counts, even a malformed one.
    m.requests_total.inc();
    let bad = |status: u16, message: &str| {
        m.errors_total.inc();
        (status, CONTENT_TYPE_JSON, json_error(message))
    };
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) = (parts.next(), parts.next(), parts.next())
    else {
        return bad(400, "malformed request line");
    };
    if !version.starts_with("HTTP/1.") {
        return bad(400, "unsupported protocol version");
    }
    if method != "GET" {
        return bad(405, "only GET is supported");
    }
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let params: HashMap<&str, &str> =
        query.split('&').filter(|kv| !kv.is_empty()).filter_map(|kv| kv.split_once('=')).collect();

    let (em, span_name): (&EndpointMetrics, &'static str) = match path {
        "/point" => (&m.point, "serve.point"),
        "/window" => (&m.window, "serve.window"),
        "/knn" => (&m.knn, "serve.knn"),
        "/stats" => (&m.stats, "serve.stats"),
        "/metrics" => (&m.metrics, "serve.metrics"),
        _ => return bad(404, "unknown path"),
    };
    // Count before the handler runs so /stats and /metrics include the
    // request being served; record latency after the body is built.
    em.requests.inc();
    let start = Instant::now();
    let mut span = sr_obs::span(span_name);
    let (status, content_type, body) = match path {
        "/point" => with_json(handle_point(engine, &params)),
        "/window" => with_json(handle_window(engine, &params)),
        "/knn" => with_json(handle_knn(engine, &params)),
        "/stats" => (200, CONTENT_TYPE_JSON, stats_json(engine, m)),
        _ => (200, CONTENT_TYPE_METRICS, m.registry.render_text()),
    };
    em.latency.record(start.elapsed());
    span.record("status", u64::from(status));
    if status >= 400 {
        m.errors_total.inc();
    }
    (status, content_type, body)
}

fn with_json((status, body): (u16, String)) -> (u16, &'static str, String) {
    (status, CONTENT_TYPE_JSON, body)
}

fn param_f64(params: &HashMap<&str, &str>, key: &str) -> std::result::Result<f64, String> {
    let raw = params.get(key).ok_or_else(|| format!("missing parameter '{key}'"))?;
    raw.parse::<f64>().map_err(|_| format!("parameter '{key}' is not a number"))
}

fn handle_point(engine: &QueryEngine, params: &HashMap<&str, &str>) -> (u16, String) {
    let (lat, lon) = match (param_f64(params, "lat"), param_f64(params, "lon")) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return (400, json_error(&e)),
    };
    match engine.point(lat, lon) {
        None => (200, "{\"inside\":false}".to_string()),
        Some(ans) => {
            let values = match &ans.values {
                Some(vals) => json_f64_array(vals),
                None => "null".to_string(),
            };
            (
                200,
                format!(
                    "{{\"inside\":true,\"row\":{},\"col\":{},\"cell\":{},\"group\":{},\"values\":{values}}}",
                    ans.row, ans.col, ans.cell, ans.group
                ),
            )
        }
    }
}

fn handle_window(engine: &QueryEngine, params: &HashMap<&str, &str>) -> (u16, String) {
    let mut coords = [0.0f64; 4];
    for (slot, key) in coords.iter_mut().zip(["lat0", "lat1", "lon0", "lon1"]) {
        match param_f64(params, key) {
            Ok(v) => *slot = v,
            Err(e) => return (400, json_error(&e)),
        }
    }
    let ans = engine.window(coords[0], coords[1], coords[2], coords[3]);
    let names = engine.snapshot().attr_names();
    let attrs: Vec<String> = ans
        .per_attr
        .iter()
        .enumerate()
        .map(|(k, a)| {
            format!(
                "{{\"name\":{},\"count\":{},\"sum\":{},\"mean\":{},\"min\":{},\"max\":{}}}",
                json_string(&names[k]),
                a.count,
                json_f64(a.sum),
                a.mean().map_or("null".to_string(), json_f64),
                a.min.map_or("null".to_string(), json_f64),
                a.max.map_or("null".to_string(), json_f64),
            )
        })
        .collect();
    (
        200,
        format!(
            "{{\"cells\":{},\"valid_cells\":{},\"groups\":{},\"attrs\":[{}]}}",
            ans.cells,
            ans.valid_cells,
            ans.groups,
            attrs.join(",")
        ),
    )
}

fn handle_knn(engine: &QueryEngine, params: &HashMap<&str, &str>) -> (u16, String) {
    let (lat, lon) = match (param_f64(params, "lat"), param_f64(params, "lon")) {
        (Ok(a), Ok(b)) => (a, b),
        (Err(e), _) | (_, Err(e)) => return (400, json_error(&e)),
    };
    let k = match params.get("k").map_or(Ok(5), |raw| raw.parse::<usize>()) {
        Ok(k) if k > 0 && k <= 10_000 => k,
        _ => return (400, json_error("parameter 'k' must be an integer in 1..=10000")),
    };
    let neighbors: Vec<String> = engine
        .knn(lat, lon, k)
        .iter()
        .map(|nb| {
            format!(
                "{{\"group\":{},\"lat\":{},\"lon\":{},\"distance\":{},\"values\":{}}}",
                nb.group,
                json_f64(nb.lat),
                json_f64(nb.lon),
                json_f64(nb.distance),
                json_f64_array(&nb.values)
            )
        })
        .collect();
    (200, format!("{{\"neighbors\":[{}]}}", neighbors.join(",")))
}

/// Snapshot summary plus the same request counters `/metrics` reports —
/// both read the very same [`Counter`]s, so the two endpoints can never
/// disagree.
fn stats_json(engine: &QueryEngine, m: &ServerMetrics) -> String {
    let st = engine.stats();
    let names: Vec<String> =
        engine.snapshot().attr_names().iter().map(|n| json_string(n)).collect();
    format!(
        "{{\"rows\":{},\"cols\":{},\"cells\":{},\"valid_cells\":{},\"groups\":{},\
         \"valid_groups\":{},\"attrs\":{},\"attr_names\":[{}],\"theta\":{},\"ifl\":{},\
         \"cell_reduction\":{},\"requests\":{{\"point\":{},\"window\":{},\"knn\":{},\
         \"stats\":{},\"metrics\":{},\"total\":{},\"errors\":{}}}}}",
        st.rows,
        st.cols,
        st.cells,
        st.valid_cells,
        st.groups,
        st.valid_groups,
        st.attrs,
        names.join(","),
        json_f64(st.theta),
        json_f64(st.ifl),
        json_f64(st.cell_reduction),
        m.point.requests.get(),
        m.window.requests.get(),
        m.knn.requests.get(),
        m.stats.requests.get(),
        m.metrics.requests.get(),
        m.requests_total.get(),
        m.errors_total.get(),
    )
}

fn respond(mut stream: &TcpStream, status: u16, content_type: &str, body: &str) {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        431 => "Request Header Fields Too Large",
        _ => "Internal Server Error",
    };
    let response = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.write_all(response.as_bytes());
    let _ = stream.flush();
}

fn json_error(message: &str) -> String {
    format!("{{\"error\":{}}}", json_string(message))
}

/// JSON number for an `f64`. Rust's `Display` prints the shortest string
/// that parses back to the same bits, so finite values round-trip exactly;
/// non-finite values (unrepresentable in JSON) become `null`.
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

fn json_f64_array(vals: &[f64]) -> String {
    let items: Vec<String> = vals.iter().map(|&v| json_f64(v)).collect();
    format!("[{}]", items.join(","))
}

fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_f64_round_trips_and_handles_nonfinite() {
        assert_eq!(json_f64(1.5), "1.5");
        assert_eq!(json_f64(0.1), "0.1");
        assert_eq!(json_f64(f64::NAN), "null");
        assert_eq!(json_f64(f64::INFINITY), "null");
        let v = 1.0 / 3.0;
        assert_eq!(json_f64(v).parse::<f64>().unwrap().to_bits(), v.to_bits());
    }

    #[test]
    fn json_string_escapes() {
        assert_eq!(json_string("plain"), "\"plain\"");
        assert_eq!(json_string("a\"b\\c\nd"), "\"a\\\"b\\\\c\\nd\"");
        assert_eq!(json_string("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn route_rejects_malformed_without_panicking() {
        let engine = test_engine();
        let m = test_metrics();
        for bad in [
            "",
            "GARBAGE",
            "GET",
            "GET /point",
            "FOO /point?lat=1&lon=1 HTTP/1.1",
            "GET /point?lat=abc&lon=1 HTTP/1.1",
            "GET /point?lon=1 HTTP/1.1",
            "GET /knn?lat=1&lon=1&k=0 HTTP/1.1",
            "GET /knn?lat=1&lon=1&k=-3 HTTP/1.1",
            "GET /window?lat0=1 HTTP/1.1",
            "GET /point?lat=1&lon=1 SPDY/9",
        ] {
            let (status, _, body) = route(bad, &engine, &m);
            assert!((400..=405).contains(&status), "'{bad}' gave status {status}");
            assert!(body.contains("error"), "'{bad}' body: {body}");
        }
        let (status, _, _) = route("GET /nope HTTP/1.1", &engine, &m);
        assert_eq!(status, 404);
        assert_eq!(m.errors_total.get(), 12);
        assert_eq!(m.requests_total.get(), 12);
    }

    #[test]
    fn route_answers_wellformed() {
        let engine = test_engine();
        let m = test_metrics();
        let (status, ct, body) = route("GET /stats HTTP/1.1", &engine, &m);
        assert_eq!(status, 200);
        assert_eq!(ct, CONTENT_TYPE_JSON);
        assert!(body.contains("\"groups\""));
        let (status, _, body) = route("GET /point?lat=0.5&lon=0.5 HTTP/1.1", &engine, &m);
        assert_eq!(status, 200);
        assert!(body.contains("\"inside\":true"));
        let (status, _, body) = route("GET /point?lat=9&lon=9 HTTP/1.1", &engine, &m);
        assert_eq!(status, 200);
        assert!(body.contains("\"inside\":false"));
        let (status, _, body) =
            route("GET /window?lat0=0&lat1=1&lon0=0&lon1=1 HTTP/1.1", &engine, &m);
        assert_eq!(status, 200);
        assert!(body.contains("\"attrs\""));
        let (status, _, body) = route("GET /knn?lat=0.5&lon=0.5&k=2 HTTP/1.1", &engine, &m);
        assert_eq!(status, 200);
        assert!(body.contains("\"neighbors\""));
    }

    #[test]
    fn route_serves_metrics_and_counts_requests() {
        let engine = test_engine();
        let m = test_metrics();
        route("GET /point?lat=0.5&lon=0.5 HTTP/1.1", &engine, &m);
        route("GET /point?lat=0.5&lon=0.5 HTTP/1.1", &engine, &m);
        let (status, _, stats) = route("GET /stats HTTP/1.1", &engine, &m);
        assert_eq!(status, 200);
        assert!(stats.contains("\"requests\":{\"point\":2,"), "stats: {stats}");
        let (status, ct, body) = route("GET /metrics HTTP/1.1", &engine, &m);
        assert_eq!(status, 200);
        assert_eq!(ct, CONTENT_TYPE_METRICS);
        assert!(body.contains("counter serve.point.requests_total 2"), "metrics: {body}");
        assert!(body.contains("counter serve.requests_total 4"), "metrics: {body}");
        assert!(body.contains("histogram serve.point.latency_ns count 2"), "metrics: {body}");
        // /stats and /metrics read the same counters: re-render agrees.
        assert_eq!(m.point.requests.get(), 2);
        assert_eq!(m.metrics.requests.get(), 1);
        assert_eq!(m.stats.requests.get(), 1);
    }

    fn test_metrics() -> ServerMetrics {
        ServerMetrics::new(Registry::new())
    }

    fn test_engine() -> QueryEngine {
        use crate::snapshot::Snapshot;
        let vals: Vec<f64> = (0..36).map(|i| 10.0 + (i / 6) as f64 * 0.2).collect();
        let grid = sr_grid::GridDataset::univariate(6, 6, vals).unwrap();
        let out = sr_core::repartition(&grid, 0.05).unwrap();
        QueryEngine::new(Snapshot::build(&out.repartitioned, &grid, 0.05).unwrap())
    }
}
