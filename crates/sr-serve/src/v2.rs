//! The `sr-snap v2` zero-copy snapshot format.
//!
//! v1 (see [`crate::snapshot`]) is a stream format: variable-length
//! fields packed back to back, decoded into owned vectors. v2 is a
//! *mapped* format: a fixed 40-byte header, a section table, and
//! alignment-padded little-endian sections laid out so that a validated
//! buffer can be **served borrowed** — [`crate::QueryEngine`] casts
//! section byte ranges to `&[u32]` / `&[f64]` / `&[GroupRect]` /
//! index-node slices and answers queries with no decode allocation.
//! Startup cost collapses from a full parse + engine build to one
//! checksum-and-validate pass over the bytes.
//!
//! The byte-level layout, CRC coverage, alignment rules, and version
//! negotiation are specified normatively in `docs/SNAPSHOT_FORMAT.md`.
//! In short:
//!
//! - **Header** (40 bytes): magic `b"SRSNAP"`, version `2`, the total
//!   file length, the grid shape (`rows`, `cols`, `groups`, `attrs`),
//!   the section count, and a CRC-32 over the preceding header bytes.
//! - **Section table**: one 24-byte entry per section (`id`, `crc`,
//!   `offset`, `len`), sealed by its own CRC-32; sections are
//!   contiguous, ascending, 8-byte aligned, and cover the rest of the
//!   file exactly.
//! - **Sections** 1–10: run parameters + bounds, attribute schema,
//!   validity bitmap, partition (rectangles + cell→group), raw feature
//!   table, adjacency (CSR), valid-member counts, dense
//!   representatives, centroids, and the packed Hilbert rectangle
//!   index. The last four are *derived* — precomputed by the exact
//!   code path the owned engine uses ([`crate::query`]'s `Derived`),
//!   which is what makes borrowed serving bit-identical to owned
//!   serving.
//!
//! Loading checks every checksum and every bound the accessors and
//! query traversals index by, then serves straight from the buffer; a
//! validated snapshot cannot read out of bounds or panic, whatever the
//! bytes said. The deeper bit-level audit of the derived sections
//! against recomputation — [`SnapshotV2::verify_derived`] — is kept off
//! the load path (it costs more than the rest of startup combined) and
//! run by the property suites and `srtool info`. The only owned data
//! after validation is the decoded attribute schema (`O(attrs)`).

use crate::index::{self, Node, RectIndexView};
use crate::query::{centroid_of, Derived, QueryEngine};
use crate::snapshot::{
    crc32, read_file_bytes, snapshot_from_bytes, write_bytes_atomic, Snapshot, MAGIC, MAX_ATTRS,
    MAX_CELLS,
};
use crate::{Result, ServeError};
use sr_core::{representative, GroupRect, Partition};
use sr_grid::{AdjacencyList, AggType, Bounds, CellId};
use std::ops::Range;
use std::path::Path;
use std::sync::Arc;

// The borrowed serving path casts little-endian section bytes to typed
// slices in place; on a big-endian host those casts would misread every
// multi-byte value. The owned v1 path could still work there, but this
// reproduction only targets little-endian hosts — fail loudly instead
// of corrupting silently.
#[cfg(target_endian = "big")]
compile_error!("sr-snap v2 serves snapshot bytes borrowed and requires a little-endian host");

/// The v2 format version tag stored after the magic.
pub const FORMAT_V2: u16 = 2;
/// The v1 format version tag.
pub const FORMAT_V1: u16 = 1;

const HEADER_LEN: usize = 40;
/// Bytes of the header covered by the header CRC (everything before the
/// CRC field itself).
const HEADER_CRC_COVER: usize = HEADER_LEN - 4;
const SECTION_COUNT: usize = 10;
const TABLE_ENTRY_LEN: usize = 24;
const TABLE_LEN: usize = SECTION_COUNT * TABLE_ENTRY_LEN;
/// Offset of the first section payload: header + table + table CRC +
/// zero pad (the pad keeps the data start 8-aligned).
const DATA_START: usize = HEADER_LEN + TABLE_LEN + 8;

const SEC_PARAMS: u32 = 1;
const SEC_SCHEMA: u32 = 2;
const SEC_VALIDITY: u32 = 3;
const SEC_PARTITION: u32 = 4;
const SEC_FEATURES: u32 = 5;
const SEC_ADJACENCY: u32 = 6;
const SEC_COUNTS: u32 = 7;
const SEC_REPS: u32 = 8;
const SEC_CENTROIDS: u32 = 9;
const SEC_INDEX: u32 = 10;

/// Human-readable name of a section id, for errors and `srtool info`.
fn section_name(id: u32) -> &'static str {
    match id {
        SEC_PARAMS => "params",
        SEC_SCHEMA => "schema",
        SEC_VALIDITY => "validity",
        SEC_PARTITION => "partition",
        SEC_FEATURES => "features",
        SEC_ADJACENCY => "adjacency",
        SEC_COUNTS => "counts",
        SEC_REPS => "reps",
        SEC_CENTROIDS => "centroids",
        SEC_INDEX => "index",
        _ => "unknown",
    }
}

fn align8(n: usize) -> usize {
    n.div_ceil(8) * 8
}

// ---------------------------------------------------------------------------
// Aligned buffer + typed slice casts
// ---------------------------------------------------------------------------

/// An owned byte buffer guaranteed to start on an 8-byte boundary.
///
/// `std::fs::read` returns a `Vec<u8>` with alignment 1; the v2 serving
/// path casts buffer ranges to `&[f64]` and 56-byte index nodes, which
/// need the buffer base 8-aligned. Backing the bytes with a `Vec<u64>`
/// guarantees that without any platform-specific allocation.
///
/// ```
/// use sr_serve::AlignedBytes;
/// let a = AlignedBytes::from_slice(&[1, 2, 3]);
/// assert_eq!(a.as_slice(), &[1, 2, 3]);
/// assert_eq!(a.as_slice().as_ptr() as usize % 8, 0);
/// ```
#[derive(Clone)]
pub struct AlignedBytes {
    words: Vec<u64>,
    len: usize,
}

impl AlignedBytes {
    /// A zero-filled aligned buffer of `len` bytes.
    pub fn zeroed(len: usize) -> AlignedBytes {
        AlignedBytes { words: vec![0u64; len.div_ceil(8)], len }
    }

    /// Copies `bytes` into a fresh aligned buffer.
    pub fn from_slice(bytes: &[u8]) -> AlignedBytes {
        let mut a = AlignedBytes::zeroed(bytes.len());
        a.as_mut_slice().copy_from_slice(bytes);
        a
    }

    /// Length in bytes.
    pub fn len(&self) -> usize {
        self.len
    }

    /// `true` when the buffer holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The buffer as a byte slice (8-aligned base pointer).
    pub fn as_slice(&self) -> &[u8] {
        // SAFETY: `words` owns at least `len` initialized bytes (u64s are
        // fully initialized, including the zero tail), u8 has alignment 1,
        // and the borrow ties the slice to `self`.
        unsafe { std::slice::from_raw_parts(self.words.as_ptr().cast::<u8>(), self.len) }
    }

    /// The buffer as a mutable byte slice.
    pub fn as_mut_slice(&mut self) -> &mut [u8] {
        // SAFETY: as in `as_slice`, plus exclusive access through `&mut
        // self`.
        unsafe { std::slice::from_raw_parts_mut(self.words.as_mut_ptr().cast::<u8>(), self.len) }
    }
}

impl std::fmt::Debug for AlignedBytes {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "AlignedBytes({} bytes)", self.len)
    }
}

/// Marker for types a section byte range may be reinterpreted as: no
/// padding bytes, every bit pattern valid, alignment ≤ 8.
///
/// # Safety
///
/// Implementors must be `#[repr(C)]` (or primitive) compositions of
/// `u32`/`f64` with no padding.
unsafe trait SectionPod: Copy {}
unsafe impl SectionPod for u32 {}
unsafe impl SectionPod for f64 {}
unsafe impl SectionPod for [f64; 2] {}
unsafe impl SectionPod for GroupRect {}
unsafe impl SectionPod for Node {}

/// Reinterprets a little-endian byte slice as a slice of `T`.
/// Panics on misalignment or a length that is not a multiple of
/// `size_of::<T>()` — both are excluded by the layout checks the
/// validator runs before any cast.
fn cast_slice<T: SectionPod>(bytes: &[u8]) -> &[T] {
    let size = std::mem::size_of::<T>();
    assert_eq!(bytes.len() % size, 0, "cast length not a multiple of the element size");
    assert_eq!(bytes.as_ptr() as usize % std::mem::align_of::<T>(), 0, "cast misaligned");
    // SAFETY: length and alignment are checked above; `T: SectionPod`
    // guarantees every bit pattern is a valid `T` and the layout has no
    // padding; the lifetime is inherited from `bytes`.
    unsafe { std::slice::from_raw_parts(bytes.as_ptr().cast::<T>(), bytes.len() / size) }
}

/// The little-endian bytes of a `SectionPod` slice — the inverse of
/// [`cast_slice`], used by the encoder to emit whole typed arrays as one
/// copy instead of an element-at-a-time loop.
fn pod_bytes<T: SectionPod>(vals: &[T]) -> &[u8] {
    // SAFETY: `T: SectionPod` guarantees a padding-free layout, so every
    // byte is initialized; u8 has alignment 1; the lifetime is inherited
    // from `vals`. (Byte order is the host's, which the crate pins to
    // little-endian above.)
    unsafe { std::slice::from_raw_parts(vals.as_ptr().cast::<u8>(), std::mem::size_of_val(vals)) }
}

// ---------------------------------------------------------------------------
// Version negotiation
// ---------------------------------------------------------------------------

/// Reads the format version from the 8-byte magic prefix shared by v1
/// and v2. `None` when the bytes are too short or not an sr-snap file.
///
/// ```
/// assert_eq!(sr_serve::peek_version(b"SRSNAP\x02\x00..."), Some(2));
/// assert_eq!(sr_serve::peek_version(b"not a snapshot"), None);
/// ```
pub fn peek_version(bytes: &[u8]) -> Option<u16> {
    (bytes.len() >= 8 && &bytes[..6] == MAGIC).then(|| u16::from_le_bytes([bytes[6], bytes[7]]))
}

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

/// Copies `bytes` into `buf` at `off`; returns the offset one past the
/// copy.
fn put(buf: &mut [u8], off: usize, bytes: &[u8]) -> usize {
    buf[off..off + bytes.len()].copy_from_slice(bytes);
    off + bytes.len()
}

/// Serializes the index nodes exactly as stored in the INDEX section, so
/// the validator can recompute and `memcmp` them.
fn nodes_to_bytes(nodes: &[Node]) -> &[u8] {
    pod_bytes(nodes)
}

/// Serializes a snapshot to its `sr-snap v2` byte representation.
/// Deterministic: equal snapshots produce equal bytes. The derived
/// sections (counts, representatives, centroids, index) are computed by
/// the same code path [`QueryEngine::new`] uses, which is what makes
/// borrowed v2 serving bit-identical to owned serving.
///
/// The writer is single-pass over one exactly-sized buffer: every
/// section length is computable up front, so the payloads are copied —
/// typed arrays as whole-slice `memcpy`s — straight to their final
/// offsets (the zero initialization doubles as every pad byte), and the
/// section table is filled in afterwards with one CRC pass per section
/// over the finished ranges. No intermediate per-section buffers, no
/// reallocation, no second copy.
pub fn snapshot_to_bytes_v2(s: &Snapshot) -> Vec<u8> {
    let derived = Derived::compute(s);
    let cells = s.num_cells();
    let p = s.num_attrs();
    let t = s.partition().num_groups();
    let idx = &derived.index;
    let num_levels = idx.level_offsets.len() - 1;

    // Exact section lengths (zero padding to 8 included).
    let schema_content: usize = (0..p).map(|k| 4 + s.attr_names()[k].len()).sum();
    let adj_total: usize = (0..t as u32).map(|g| s.adjacency().neighbors(g).len()).sum();
    let presence_padded = align8(t.div_ceil(8));
    let adj_offsets_padded = align8(4 * (t + 1));
    let idx_lo_padded = align8(4 * (num_levels + 1));
    let sec_lens: [usize; SECTION_COUNT] = [
        56,                                                       // 1 params
        align8(schema_content),                                   // 2 schema
        align8(cells.div_ceil(8)),                                // 3 validity
        align8(16 * t + 4 * cells),                               // 4 partition
        presence_padded + 8 * t * p,                              // 5 features
        adj_offsets_padded + align8(4 * adj_total),               // 6 adjacency
        align8(4 * t),                                            // 7 counts
        8 * t * p,                                                // 8 reps
        16 * t,                                                   // 9 centroids
        8 + idx_lo_padded + align8(4 * t) + 56 * idx.nodes.len(), // 10 index
    ];
    let mut starts = [0usize; SECTION_COUNT];
    let mut off = DATA_START;
    for (start, len) in starts.iter_mut().zip(&sec_lens) {
        *start = off;
        off += len;
    }
    let file_len = off;
    let mut buf = vec![0u8; file_len];

    // Header (its CRC covers everything before the CRC field).
    put(&mut buf, 0, MAGIC);
    put(&mut buf, 6, &FORMAT_V2.to_le_bytes());
    put(&mut buf, 8, &(file_len as u64).to_le_bytes());
    for (i, v) in [s.rows() as u32, s.cols() as u32, t as u32, p as u32, SECTION_COUNT as u32]
        .into_iter()
        .enumerate()
    {
        put(&mut buf, 16 + 4 * i, &v.to_le_bytes());
    }
    let header_crc = crc32(&buf[..HEADER_CRC_COVER]);
    put(&mut buf, HEADER_CRC_COVER, &header_crc.to_le_bytes());

    // 1 params: theta, ifl, min_adjacent_variation, bounds (7 × f64).
    let b = s.bounds();
    let params = [
        s.theta(),
        s.ifl(),
        s.min_adjacent_variation(),
        b.lat_min,
        b.lat_max,
        b.lon_min,
        b.lon_max,
    ];
    put(&mut buf, starts[0], pod_bytes(&params));

    // 2 schema: per attribute name_len u16 + UTF-8 name + agg u8 +
    // integer u8, zero-padded to 8.
    let mut o = starts[1];
    for k in 0..p {
        let name = s.attr_names()[k].as_bytes();
        o = put(&mut buf, o, &(name.len() as u16).to_le_bytes());
        o = put(&mut buf, o, name);
        buf[o] = match s.agg_types()[k] {
            AggType::Sum => 0,
            AggType::Avg => 1,
            AggType::Mode => 2,
        };
        buf[o + 1] = s.integer_attrs()[k] as u8;
        o += 2;
    }

    // 3 validity: LSB-first cell bitmap, zero-padded to 8.
    let sec = &mut buf[starts[2]..];
    for (i, &v) in s.valid_mask().iter().enumerate() {
        if v {
            sec[i / 8] |= 1 << (i % 8);
        }
    }

    // 4 partition: t rectangles (4 × u32 each) then cells × u32
    // cell→group, zero-padded to 8.
    let o = put(&mut buf, starts[3], pod_bytes(s.partition().rects()));
    put(&mut buf, o, pod_bytes(s.partition().cell_to_group()));

    // 5 features: LSB-first group presence bitmap (padded to 8), then the
    // dense t × p raw feature table; rows of null groups are zero bits.
    {
        let sec = &mut buf[starts[4]..starts[4] + sec_lens[4]];
        let mut o = presence_padded;
        for (g, fv) in s.features().iter().enumerate() {
            if let Some(fv) = fv {
                sec[g / 8] |= 1 << (g % 8);
                sec[o..o + 8 * p].copy_from_slice(pod_bytes(fv));
            }
            o += 8 * p;
        }
    }

    // 6 adjacency: CSR — (t + 1) × u32 offsets (padded to 8), then
    // offsets[t] × u32 neighbor ids (padded to 8). offsets[0] is the
    // buffer's zero initialization.
    {
        let sec = &mut buf[starts[5]..starts[5] + sec_lens[5]];
        let mut total = 0u32;
        let mut o = adj_offsets_padded;
        for gid in 0..t as u32 {
            let neighbors = s.adjacency().neighbors(gid);
            total += neighbors.len() as u32;
            put(sec, 4 * (gid as usize + 1), &total.to_le_bytes());
            o = put(sec, o, pod_bytes(neighbors));
        }
    }

    // 7 counts, 8 reps, 9 centroids: whole-array copies.
    put(&mut buf, starts[6], pod_bytes(&derived.valid_counts));
    put(&mut buf, starts[7], pod_bytes(&derived.reps));
    put(&mut buf, starts[8], pod_bytes(&derived.centroids));

    // 10 index: num_levels u32, num_nodes u32, (L + 1) × u32 level
    // offsets (padded to 8), t × u32 entries (padded to 8), then the
    // 56-byte nodes.
    {
        let o = put(&mut buf, starts[9], &(num_levels as u32).to_le_bytes());
        let o = put(&mut buf, o, &(idx.nodes.len() as u32).to_le_bytes());
        put(&mut buf, o, pod_bytes(&idx.level_offsets));
        let o = put(&mut buf, starts[9] + 8 + idx_lo_padded, pod_bytes(&idx.entries));
        put(&mut buf, align8(o), pod_bytes(&idx.nodes));
    }

    // Section table, then its CRC; the 4 trailing pad bytes stay zero.
    for i in 0..SECTION_COUNT {
        let entry = HEADER_LEN + i * TABLE_ENTRY_LEN;
        let crc = crc32(&buf[starts[i]..starts[i] + sec_lens[i]]);
        put(&mut buf, entry, &((i + 1) as u32).to_le_bytes());
        put(&mut buf, entry + 4, &crc.to_le_bytes());
        put(&mut buf, entry + 8, &(starts[i] as u64).to_le_bytes());
        put(&mut buf, entry + 16, &(sec_lens[i] as u64).to_le_bytes());
    }
    let table_crc = crc32(&buf[HEADER_LEN..HEADER_LEN + TABLE_LEN]);
    put(&mut buf, HEADER_LEN + TABLE_LEN, &table_crc.to_le_bytes());
    buf
}

// ---------------------------------------------------------------------------
// Section table introspection
// ---------------------------------------------------------------------------

/// One section table entry, as reported by [`section_table`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SectionInfo {
    /// Numeric section id (1–10).
    pub id: u32,
    /// Human-readable section name.
    pub name: &'static str,
    /// Absolute byte offset of the section payload.
    pub offset: u64,
    /// Payload length in bytes, padding included.
    pub len: u64,
    /// CRC-32 of the payload bytes.
    pub crc: u32,
}

/// Parses the v2 header and section table (verifying both CRCs) without
/// validating the section payloads — the cheap introspection pass
/// `srtool info` uses.
pub fn section_table(bytes: &[u8]) -> Result<Vec<SectionInfo>> {
    let header = Header::parse(bytes)?;
    Ok(header.sections)
}

/// The parsed, CRC-checked header and section table.
struct Header {
    rows: usize,
    cols: usize,
    groups: usize,
    attrs: usize,
    sections: Vec<SectionInfo>,
}

impl Header {
    fn parse(bytes: &[u8]) -> Result<Header> {
        let fmt = |offset: usize, message: String| ServeError::Format { offset, message };
        if bytes.len() < DATA_START {
            return Err(fmt(
                bytes.len(),
                format!("file too short ({} bytes) to hold a v2 header", bytes.len()),
            ));
        }
        if &bytes[..6] != MAGIC {
            return Err(fmt(0, "bad magic: not an sr-snap file".into()));
        }
        let version = u16::from_le_bytes([bytes[6], bytes[7]]);
        if version != FORMAT_V2 {
            return Err(fmt(6, format!("not a v2 snapshot (version {version})")));
        }
        let stored_crc =
            u32::from_le_bytes(bytes[HEADER_CRC_COVER..HEADER_LEN].try_into().unwrap());
        let computed = crc32(&bytes[..HEADER_CRC_COVER]);
        if stored_crc != computed {
            return Err(ServeError::Checksum { stored: stored_crc, computed });
        }
        let file_len = u64::from_le_bytes(bytes[8..16].try_into().unwrap());
        if file_len != bytes.len() as u64 {
            return Err(fmt(
                8,
                format!("file length mismatch: header says {file_len}, buffer has {}", bytes.len()),
            ));
        }
        let u32_at = |o: usize| u32::from_le_bytes(bytes[o..o + 4].try_into().unwrap());
        let rows = u32_at(16) as usize;
        let cols = u32_at(20) as usize;
        let groups = u32_at(24) as usize;
        let attrs = u32_at(28) as usize;
        let section_count = u32_at(32) as usize;
        if section_count != SECTION_COUNT {
            return Err(fmt(
                32,
                format!(
                    "v2 requires exactly {SECTION_COUNT} sections, header says {section_count}"
                ),
            ));
        }
        if rows == 0 || cols == 0 {
            return Err(fmt(16, "zero rows or columns".into()));
        }
        let cells = rows.checked_mul(cols).filter(|&n| n <= MAX_CELLS).ok_or_else(|| {
            ServeError::Format {
                offset: 16,
                message: format!("grid {rows}x{cols} exceeds the format's cell limit"),
            }
        })?;
        if groups == 0 || groups > cells {
            return Err(fmt(24, format!("group count {groups} out of range for {cells} cells")));
        }
        if attrs == 0 || attrs > MAX_ATTRS {
            return Err(fmt(28, format!("attribute count {attrs} out of range")));
        }

        let table = &bytes[HEADER_LEN..HEADER_LEN + TABLE_LEN];
        let stored_table_crc = u32::from_le_bytes(
            bytes[HEADER_LEN + TABLE_LEN..HEADER_LEN + TABLE_LEN + 4].try_into().unwrap(),
        );
        let computed_table_crc = crc32(table);
        if stored_table_crc != computed_table_crc {
            return Err(ServeError::Checksum {
                stored: stored_table_crc,
                computed: computed_table_crc,
            });
        }
        let pad =
            u32::from_le_bytes(bytes[HEADER_LEN + TABLE_LEN + 4..DATA_START].try_into().unwrap());
        if pad != 0 {
            return Err(fmt(HEADER_LEN + TABLE_LEN + 4, "nonzero table padding".into()));
        }

        let mut sections = Vec::with_capacity(SECTION_COUNT);
        let mut expect_offset = DATA_START as u64;
        for i in 0..SECTION_COUNT {
            let e = &table[i * TABLE_ENTRY_LEN..(i + 1) * TABLE_ENTRY_LEN];
            let id = u32::from_le_bytes(e[0..4].try_into().unwrap());
            let crc = u32::from_le_bytes(e[4..8].try_into().unwrap());
            let offset = u64::from_le_bytes(e[8..16].try_into().unwrap());
            let len = u64::from_le_bytes(e[16..24].try_into().unwrap());
            let at = HEADER_LEN + i * TABLE_ENTRY_LEN;
            if id != (i + 1) as u32 {
                return Err(fmt(at, format!("section {} out of order (id {id})", i + 1)));
            }
            if offset != expect_offset {
                return Err(fmt(
                    at,
                    format!(
                        "section {} ({}) at offset {offset}, expected {expect_offset} \
                         (sections must be contiguous)",
                        id,
                        section_name(id)
                    ),
                ));
            }
            if len % 8 != 0 {
                return Err(fmt(
                    at,
                    format!("section {} ({}) length {len} not 8-aligned", id, section_name(id)),
                ));
            }
            expect_offset = offset.checked_add(len).ok_or_else(|| ServeError::Format {
                offset: at,
                message: "section extent overflows".into(),
            })?;
            sections.push(SectionInfo { id, name: section_name(id), offset, len, crc });
        }
        if expect_offset != file_len {
            return Err(fmt(
                HEADER_LEN,
                format!("sections end at {expect_offset}, file length is {file_len}"),
            ));
        }
        Ok(Header { rows, cols, groups, attrs, sections })
    }
}

// ---------------------------------------------------------------------------
// The validated borrowed snapshot
// ---------------------------------------------------------------------------

/// Exact (padding-free) byte ranges of every typed array in the buffer,
/// computed once during validation so accessors are a slice + cast.
#[derive(Debug, Clone)]
struct Layout {
    validity: Range<usize>,
    rects: Range<usize>,
    cell_to_group: Range<usize>,
    presence: Range<usize>,
    features: Range<usize>,
    adj_offsets: Range<usize>,
    adj_neighbors: Range<usize>,
    counts: Range<usize>,
    reps: Range<usize>,
    centroids: Range<usize>,
    idx_level_offsets: Range<usize>,
    idx_entries: Range<usize>,
    idx_nodes: Range<usize>,
}

/// A fully validated `sr-snap v2` buffer, served borrowed.
///
/// Construction ([`snapshot_v2_from_bytes`] /
/// [`snapshot_v2_from_aligned`]) verifies every checksum and every
/// bound the accessors and query algorithms index by; afterwards each
/// accessor is a bounds-known slice into the buffer, and
/// [`SnapshotV2::verify_derived`] is available for the deep bit-level
/// audit of the derived sections. The buffer is shared behind an
/// [`std::sync::Arc`], so cloning the snapshot (and building engines
/// from it) never copies the bytes; the decoded attribute schema is the
/// only owned data.
///
/// ```
/// use sr_serve::{snapshot_to_bytes_v2, snapshot_v2_from_bytes, Snapshot};
/// let grid = sr_grid::GridDataset::univariate(
///     6, 6, (0..36).map(|i| 5.0 + (i % 6) as f64).collect(),
/// ).unwrap();
/// let out = sr_core::repartition(&grid, 0.1).unwrap();
/// let snap = Snapshot::build(&out.repartitioned, &grid, 0.1).unwrap();
/// let v2 = snapshot_v2_from_bytes(&snapshot_to_bytes_v2(&snap)).unwrap();
/// assert_eq!((v2.rows(), v2.cols()), (6, 6));
/// assert_eq!(v2.to_snapshot().unwrap(), snap);
/// ```
#[derive(Debug, Clone)]
pub struct SnapshotV2 {
    bytes: Arc<AlignedBytes>,
    rows: usize,
    cols: usize,
    groups: usize,
    attrs: usize,
    theta: f64,
    ifl: f64,
    min_adjacent_variation: f64,
    bounds: Bounds,
    attr_names: Vec<String>,
    agg_types: Vec<AggType>,
    integer_attrs: Vec<bool>,
    layout: Layout,
}

/// Validates v2 `bytes` (copying them into an [`AlignedBytes`]) and
/// returns the borrowed snapshot. See [`snapshot_v2_from_aligned`].
pub fn snapshot_v2_from_bytes(bytes: &[u8]) -> Result<SnapshotV2> {
    snapshot_v2_from_aligned(AlignedBytes::from_slice(bytes))
}

/// Validates an aligned v2 buffer and returns the borrowed snapshot.
///
/// The pass verifies, in order: header + table + per-section CRC-32s;
/// section layout (ids, contiguity, alignment, exact file coverage);
/// schema decode; and every invariant the borrowed accessors and query
/// algorithms index by — rectangle tiling and cell→group agreement,
/// CSR offset/neighbor ranges, index level/run bounds. After it
/// returns, no accessor or query on the snapshot can read out of
/// bounds or panic, whatever the bytes said. Nothing per-cell or
/// per-group is allocated.
///
/// Bit-level agreement of the four *derived* sections with
/// recomputation (counts, representatives, centroids, index packing /
/// curve order) is guaranteed by the encoder — which runs the exact
/// code the owned engine runs — and is deliberately **not** recomputed
/// here: re-deriving on every load would cost more than the rest of
/// startup combined. [`SnapshotV2::verify_derived`] performs that deep
/// check on demand; the property suites run it on every generated
/// file, and `srtool info` runs it on operator request.
pub fn snapshot_v2_from_aligned(bytes: AlignedBytes) -> Result<SnapshotV2> {
    let buf = bytes.as_slice();
    let header = Header::parse(buf)?;
    let (rows, cols) = (header.rows, header.cols);
    let cells = rows * cols;
    let t = header.groups;
    let p = header.attrs;
    let fmt = |offset: usize, message: String| ServeError::Format { offset, message };

    // Per-section CRCs before any content is interpreted.
    for s in &header.sections {
        let payload = &buf[s.offset as usize..(s.offset + s.len) as usize];
        let computed = crc32(payload);
        if computed != s.crc {
            return Err(ServeError::Checksum { stored: s.crc, computed });
        }
    }
    let range = |id: u32| -> Range<usize> {
        let s = &header.sections[(id - 1) as usize];
        s.offset as usize..(s.offset + s.len) as usize
    };
    let expect_len = |id: u32, want: usize| -> Result<()> {
        let r = range(id);
        if r.len() != want {
            return Err(ServeError::Format {
                offset: r.start,
                message: format!(
                    "section {} ({}) length {} != expected {want}",
                    id,
                    section_name(id),
                    r.len()
                ),
            });
        }
        Ok(())
    };
    // Zero padding between `content` bytes and the end of the section.
    let check_pad = |id: u32, content: usize| -> Result<Range<usize>> {
        let r = range(id);
        if content > r.len() || r.len() - content >= 8 {
            return Err(ServeError::Format {
                offset: r.start,
                message: format!(
                    "section {} ({}) length {} cannot hold {content} content bytes",
                    id,
                    section_name(id),
                    r.len()
                ),
            });
        }
        if buf[r.start + content..r.end].iter().any(|&b| b != 0) {
            return Err(ServeError::Format {
                offset: r.start + content,
                message: format!("section {} ({}) has nonzero padding", id, section_name(id)),
            });
        }
        Ok(r.start..r.start + content)
    };

    // 1 params.
    expect_len(SEC_PARAMS, 56)?;
    let params = range(SEC_PARAMS);
    let pv: &[f64] = cast_slice(&buf[params.clone()]);
    let (theta, ifl, min_adjacent_variation) = (pv[0], pv[1], pv[2]);
    let bounds = Bounds { lat_min: pv[3], lat_max: pv[4], lon_min: pv[5], lon_max: pv[6] };

    // 2 schema.
    let schema = range(SEC_SCHEMA);
    let mut attr_names = Vec::with_capacity(p);
    let mut agg_types = Vec::with_capacity(p);
    let mut integer_attrs = Vec::with_capacity(p);
    {
        let sec = &buf[schema.clone()];
        let mut pos = 0usize;
        let need = |pos: usize, n: usize| -> Result<()> {
            if sec.len() - pos < n {
                return Err(ServeError::Format {
                    offset: schema.start + pos,
                    message: "schema section truncated".into(),
                });
            }
            Ok(())
        };
        for _ in 0..p {
            need(pos, 2)?;
            let len = u16::from_le_bytes([sec[pos], sec[pos + 1]]) as usize;
            pos += 2;
            need(pos, len + 2)?;
            let name = std::str::from_utf8(&sec[pos..pos + len])
                .map_err(|e| ServeError::Format {
                    offset: schema.start + pos,
                    message: format!("attribute name is not UTF-8: {e}"),
                })?
                .to_string();
            pos += len;
            let agg = match sec[pos] {
                0 => AggType::Sum,
                1 => AggType::Avg,
                2 => AggType::Mode,
                other => {
                    return Err(fmt(
                        schema.start + pos,
                        format!("unknown aggregation code {other}"),
                    ))
                }
            };
            let integer = match sec[pos + 1] {
                0 => false,
                1 => true,
                other => {
                    return Err(fmt(
                        schema.start + pos + 1,
                        format!("integer flag must be 0/1, got {other}"),
                    ))
                }
            };
            pos += 2;
            attr_names.push(name);
            agg_types.push(agg);
            integer_attrs.push(integer);
        }
        check_pad(SEC_SCHEMA, pos)?;
    }

    // 3 validity bitmap: trailing bits beyond `cells` must be zero.
    expect_len(SEC_VALIDITY, align8(cells.div_ceil(8)))?;
    let validity = check_pad(SEC_VALIDITY, cells.div_ceil(8))?;
    let vbits = &buf[validity.clone()];
    if cells % 8 != 0 && vbits[cells / 8] >> (cells % 8) != 0 {
        return Err(fmt(validity.start + cells / 8, "validity bits beyond the last cell".into()));
    }

    // 4 partition.
    expect_len(SEC_PARTITION, align8(16 * t + 4 * cells))?;
    let part_content = check_pad(SEC_PARTITION, 16 * t + 4 * cells)?;
    let rects_range = part_content.start..part_content.start + 16 * t;
    let c2g_range = rects_range.end..part_content.end;
    let rects: &[GroupRect] = cast_slice(&buf[rects_range.clone()]);
    let cell_to_group: &[u32] = cast_slice(&buf[c2g_range.clone()]);
    for (gid, rect) in rects.iter().enumerate() {
        if rect.r0 > rect.r1
            || rect.c0 > rect.c1
            || rect.r1 as usize >= rows
            || rect.c1 as usize >= cols
        {
            return Err(fmt(
                rects_range.start + 16 * gid,
                format!("group {gid} rectangle out of grid bounds"),
            ));
        }
    }
    // Tiling: every cell of rect(g) maps to g, checked row-run by
    // row-run so the scan is contiguous u32 compares. Combined with the
    // area sum this is complete: per-rect agreement forbids overlap (an
    // overlapped cell would have to map to two ids), and disjoint
    // rectangles whose areas sum to `cells` must cover the grid — which
    // also proves every `cell_to_group` value is a real group id.
    let mut counted = 0usize;
    for (gid, rect) in rects.iter().enumerate() {
        counted += rect.len();
        if counted > cells {
            return Err(fmt(
                rects_range.start,
                "group rectangles overlap or exceed the grid".into(),
            ));
        }
        let (c0, c1) = (rect.c0 as usize, rect.c1 as usize);
        for row in rect.r0 as usize..=rect.r1 as usize {
            let run = &cell_to_group[row * cols + c0..row * cols + c1 + 1];
            if run.iter().any(|&g| g as usize != gid) {
                return Err(fmt(
                    c2g_range.start + 4 * (row * cols + c0),
                    format!("row {row} of group {gid}'s rectangle is not mapped to it"),
                ));
            }
        }
    }
    if counted != cells {
        return Err(fmt(rects_range.start, "group rectangles do not tile the grid".into()));
    }

    // 5 features: presence bitmap + dense raw features.
    let presence_padded = align8(t.div_ceil(8));
    expect_len(SEC_FEATURES, presence_padded + 8 * t * p)?;
    let feats = range(SEC_FEATURES);
    let presence = feats.start..feats.start + t.div_ceil(8);
    if buf[presence.end..feats.start + presence_padded].iter().any(|&b| b != 0) {
        return Err(fmt(presence.end, "features section has nonzero presence padding".into()));
    }
    let pbits = &buf[presence.clone()];
    if t % 8 != 0 && pbits[t / 8] >> (t % 8) != 0 {
        return Err(fmt(presence.start + t / 8, "presence bits beyond the last group".into()));
    }
    let features_range = feats.start + presence_padded..feats.end;

    // 6 adjacency (CSR).
    let adj = range(SEC_ADJACENCY);
    let offsets_padded = align8(4 * (t + 1));
    if adj.len() < offsets_padded {
        return Err(fmt(adj.start, "adjacency section too short for its offsets".into()));
    }
    let adj_offsets_range = adj.start..adj.start + 4 * (t + 1);
    if buf[adj_offsets_range.end..adj.start + offsets_padded].iter().any(|&b| b != 0) {
        return Err(fmt(adj_offsets_range.end, "adjacency offsets have nonzero padding".into()));
    }
    let adj_offsets: &[u32] = cast_slice(&buf[adj_offsets_range.clone()]);
    if adj_offsets[0] != 0 {
        return Err(fmt(adj_offsets_range.start, "adjacency offsets must start at 0".into()));
    }
    if adj_offsets.windows(2).any(|w| w[0] > w[1]) {
        return Err(fmt(adj_offsets_range.start, "adjacency offsets must be monotonic".into()));
    }
    let total_neighbors = adj_offsets[t] as usize;
    if adj.len() != offsets_padded + align8(4 * total_neighbors) {
        return Err(fmt(
            adj.start,
            format!("adjacency section length does not match {total_neighbors} neighbors"),
        ));
    }
    let adj_neighbors_range =
        adj.start + offsets_padded..adj.start + offsets_padded + 4 * total_neighbors;
    if buf[adj_neighbors_range.end..adj.end].iter().any(|&b| b != 0) {
        return Err(fmt(
            adj_neighbors_range.end,
            "adjacency neighbors have nonzero padding".into(),
        ));
    }
    let adj_neighbors: &[u32] = cast_slice(&buf[adj_neighbors_range.clone()]);
    if let Some(&bad) = adj_neighbors.iter().find(|&&nb| nb as usize >= t) {
        return Err(fmt(adj_neighbors_range.start, format!("out-of-range neighbor {bad}")));
    }

    // 7 counts.
    expect_len(SEC_COUNTS, align8(4 * t))?;
    let counts_range = check_pad(SEC_COUNTS, 4 * t)?;

    // 8 reps.
    expect_len(SEC_REPS, 8 * t * p)?;
    let reps_range = range(SEC_REPS);

    // 9 centroids.
    expect_len(SEC_CENTROIDS, 16 * t)?;
    let centroids_range = range(SEC_CENTROIDS);

    // 10 index: layout, then every range the traversal will index —
    // level offsets into the node array, node runs into the child level
    // (entries at level 0), entry values into the group tables.
    let idx = range(SEC_INDEX);
    if idx.len() < 8 {
        return Err(fmt(idx.start, "index section too short for its header".into()));
    }
    let num_levels = u32::from_le_bytes(buf[idx.start..idx.start + 4].try_into().unwrap()) as usize;
    let num_nodes =
        u32::from_le_bytes(buf[idx.start + 4..idx.start + 8].try_into().unwrap()) as usize;
    let lo_padded = align8(4 * (num_levels + 1));
    let entries_padded = align8(4 * t);
    if num_levels == 0 || idx.len() != 8 + lo_padded + entries_padded + 56 * num_nodes {
        return Err(fmt(
            idx.start,
            format!("index section length does not match {num_levels} levels / {num_nodes} nodes"),
        ));
    }
    let idx_lo_range = idx.start + 8..idx.start + 8 + 4 * (num_levels + 1);
    if buf[idx_lo_range.end..idx.start + 8 + lo_padded].iter().any(|&b| b != 0) {
        return Err(fmt(idx_lo_range.end, "index level offsets have nonzero padding".into()));
    }
    let idx_entries_range = idx.start + 8 + lo_padded..idx.start + 8 + lo_padded + 4 * t;
    if buf[idx_entries_range.end..idx.start + 8 + lo_padded + entries_padded]
        .iter()
        .any(|&b| b != 0)
    {
        return Err(fmt(idx_entries_range.end, "index entries have nonzero padding".into()));
    }
    let idx_nodes_range = idx.start + 8 + lo_padded + entries_padded..idx.end;
    let level_offsets: &[u32] = cast_slice(&buf[idx_lo_range.clone()]);
    let entries: &[u32] = cast_slice(&buf[idx_entries_range.clone()]);
    let nodes: &[Node] = cast_slice(&buf[idx_nodes_range.clone()]);
    if level_offsets[0] != 0 || level_offsets[num_levels] as usize != num_nodes {
        return Err(fmt(idx_lo_range.start, "index level offsets do not span the nodes".into()));
    }
    if level_offsets.windows(2).any(|w| w[0] >= w[1]) {
        return Err(fmt(idx_lo_range.start, "index level offsets must be increasing".into()));
    }
    if (level_offsets[num_levels] - level_offsets[num_levels - 1]) != 1 {
        return Err(fmt(idx_lo_range.start, "index must have a single root node".into()));
    }
    if entries.iter().any(|&g| g as usize >= t) {
        return Err(fmt(idx_entries_range.start, "index entry out of group range".into()));
    }
    for lvl in 0..num_levels {
        let (lo, hi) = (level_offsets[lvl] as usize, level_offsets[lvl + 1] as usize);
        // A node's run indexes the child level (the entries at level 0).
        let child_len =
            if lvl == 0 { t } else { (level_offsets[lvl] - level_offsets[lvl - 1]) as usize };
        for node in &nodes[lo..hi] {
            if node.start > node.end || node.end as usize > child_len {
                return Err(fmt(
                    idx_nodes_range.start,
                    format!("index node run out of range at level {lvl}"),
                ));
            }
        }
    }

    let layout = Layout {
        validity,
        rects: rects_range,
        cell_to_group: c2g_range,
        presence,
        features: features_range,
        adj_offsets: adj_offsets_range,
        adj_neighbors: adj_neighbors_range,
        counts: counts_range,
        reps: reps_range,
        centroids: centroids_range,
        idx_level_offsets: idx_lo_range,
        idx_entries: idx_entries_range,
        idx_nodes: idx_nodes_range,
    };
    Ok(SnapshotV2 {
        bytes: Arc::new(bytes),
        rows,
        cols,
        groups: t,
        attrs: p,
        theta,
        ifl,
        min_adjacent_variation,
        bounds,
        attr_names,
        agg_types,
        integer_attrs,
        layout,
    })
}

impl SnapshotV2 {
    fn buf(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total cells, `rows · cols`.
    pub fn num_cells(&self) -> usize {
        self.rows * self.cols
    }

    /// Total cell-groups.
    pub fn num_groups(&self) -> usize {
        self.groups
    }

    /// Attributes per cell.
    pub fn num_attrs(&self) -> usize {
        self.attrs
    }

    /// The loss budget `θ` the run was given.
    pub fn theta(&self) -> f64 {
        self.theta
    }

    /// The achieved IFL of the frozen partition.
    pub fn ifl(&self) -> f64 {
        self.ifl
    }

    /// The accepted min-adjacent variation.
    pub fn min_adjacent_variation(&self) -> f64 {
        self.min_adjacent_variation
    }

    /// Geographic bounds of the grid.
    pub fn bounds(&self) -> Bounds {
        self.bounds
    }

    /// Attribute names.
    pub fn attr_names(&self) -> &[String] {
        &self.attr_names
    }

    /// Per-attribute aggregation types.
    pub fn agg_types(&self) -> &[AggType] {
        &self.agg_types
    }

    /// Per-attribute integer-typed flags.
    pub fn integer_attrs(&self) -> &[bool] {
        &self.integer_attrs
    }

    /// Whether `cell` is valid (non-null) in the original dataset.
    pub fn cell_valid(&self, cell: CellId) -> bool {
        let bits = &self.buf()[self.layout.validity.clone()];
        bits[cell as usize / 8] >> (cell as usize % 8) & 1 == 1
    }

    /// The group containing `cell`.
    pub fn group_of(&self, cell: CellId) -> u32 {
        self.cell_to_group()[cell as usize]
    }

    /// The group rectangles, borrowed straight from the buffer.
    pub fn rects(&self) -> &[GroupRect] {
        cast_slice(&self.buf()[self.layout.rects.clone()])
    }

    /// The row-major cell → group mapping.
    pub fn cell_to_group(&self) -> &[u32] {
        cast_slice(&self.buf()[self.layout.cell_to_group.clone()])
    }

    /// Whether group `g` carries a feature vector.
    pub fn featured(&self, g: u32) -> bool {
        let bits = &self.buf()[self.layout.presence.clone()];
        bits[g as usize / 8] >> (g as usize % 8) & 1 == 1
    }

    /// The group's raw allocated feature vector; `None` for null groups.
    pub fn feature(&self, g: u32) -> Option<&[f64]> {
        self.featured(g).then(|| {
            let all: &[f64] = cast_slice(&self.buf()[self.layout.features.clone()]);
            &all[g as usize * self.attrs..(g as usize + 1) * self.attrs]
        })
    }

    /// The group's representative vector (§III-C); `None` for null
    /// groups.
    pub fn rep(&self, g: u32) -> Option<&[f64]> {
        self.featured(g).then(|| {
            let all: &[f64] = cast_slice(&self.buf()[self.layout.reps.clone()]);
            &all[g as usize * self.attrs..(g as usize + 1) * self.attrs]
        })
    }

    /// Valid-member count per group.
    pub fn valid_counts(&self) -> &[u32] {
        cast_slice(&self.buf()[self.layout.counts.clone()])
    }

    /// Geographic centroids per group rectangle.
    pub fn centroids(&self) -> &[[f64; 2]] {
        cast_slice(&self.buf()[self.layout.centroids.clone()])
    }

    /// Neighbor ids of group `g` (CSR slice).
    pub fn neighbors(&self, g: u32) -> &[u32] {
        let offsets: &[u32] = cast_slice(&self.buf()[self.layout.adj_offsets.clone()]);
        let all: &[u32] = cast_slice(&self.buf()[self.layout.adj_neighbors.clone()]);
        &all[offsets[g as usize] as usize..offsets[g as usize + 1] as usize]
    }

    /// The packed rectangle index, borrowed.
    pub(crate) fn index_view(&self) -> RectIndexView<'_> {
        RectIndexView {
            entries: cast_slice(&self.buf()[self.layout.idx_entries.clone()]),
            nodes: cast_slice(&self.buf()[self.layout.idx_nodes.clone()]),
            level_offsets: cast_slice(&self.buf()[self.layout.idx_level_offsets.clone()]),
        }
    }

    /// Deep audit of the four derived sections: verifies, bit for bit,
    /// that counts, representatives, centroids, and the packed index
    /// (curve-ordered permutation, level packing, node boxes) equal a
    /// recomputation from the primary sections — i.e. that the encoder
    /// that produced this file ran the same derivation the owned engine
    /// runs, which is what makes borrowed serving bit-identical to
    /// owned serving.
    ///
    /// Construction already guarantees memory safety and
    /// panic-freedom; this check guards against a buggy or foreign
    /// *encoder* whose output is internally consistent enough to pass
    /// the structural pass. It costs more than the rest of load
    /// combined (a Hilbert key per group, a representative per group ×
    /// attribute), so it is not part of the hot path: the property
    /// suites run it on every generated file, and `srtool info` runs it
    /// on demand.
    pub fn verify_derived(&self) -> Result<()> {
        let fmt = |message: String| ServeError::Format { offset: 0, message };
        let (t, p) = (self.groups, self.attrs);
        let rects = self.rects();
        let cell_to_group = self.cell_to_group();
        let counts = self.valid_counts();
        let centroids = self.centroids();

        // Counts recompute from the validity bitmap + partition.
        let mut expect_counts = vec![0u32; t];
        for cell in 0..self.num_cells() {
            if self.cell_valid(cell as CellId) {
                expect_counts[cell_to_group[cell] as usize] += 1;
            }
        }
        if counts != expect_counts.as_slice() {
            return Err(fmt("counts section disagrees with the validity bitmap".into()));
        }
        // Valid cell → featured group (the invariant that lets the
        // engine equate cell validity with answerability).
        for (cell, &g) in cell_to_group.iter().enumerate() {
            if self.cell_valid(cell as CellId) && !self.featured(g) {
                return Err(fmt(format!("valid cell {cell} belongs to a null group")));
            }
        }
        // Representatives bit-equal recomputation; null groups carry
        // all-zero feature and representative rows.
        let features: &[f64] = cast_slice(&self.buf()[self.layout.features.clone()]);
        let reps: &[f64] = cast_slice(&self.buf()[self.layout.reps.clone()]);
        for g in 0..t {
            for k in 0..p {
                let (f, r) = (features[g * p + k], reps[g * p + k]);
                if self.featured(g as u32) {
                    let want = representative(f, self.agg_types[k], counts[g] as usize);
                    if r.to_bits() != want.to_bits() {
                        return Err(fmt(format!(
                            "group {g} attr {k} representative disagrees with recomputation"
                        )));
                    }
                } else if f.to_bits() != 0 || r.to_bits() != 0 {
                    return Err(fmt(format!(
                        "null group {g} has nonzero feature/representative bits"
                    )));
                }
            }
        }
        // Centroids: the exact expression the owned engine evaluates.
        for (g, rect) in rects.iter().enumerate() {
            let want = centroid_of(rect, self.bounds, self.rows, self.cols);
            if centroids[g][0].to_bits() != want[0].to_bits()
                || centroids[g][1].to_bits() != want[1].to_bits()
            {
                return Err(fmt(format!("group {g} centroid disagrees with recomputation")));
            }
        }
        // Index: entries are the (Hilbert key, gid)-sorted permutation
        // of group ids, and nodes + level offsets equal a recomputed
        // packing of that order.
        let view = self.index_view();
        let mut seen = vec![false; t];
        let mut prev: Option<(u64, u32)> = None;
        for &g in view.entries {
            if seen[g as usize] {
                return Err(fmt(format!("index entries are not a permutation (group {g})")));
            }
            seen[g as usize] = true;
            let key = (index::entry_sort_key(&rects[g as usize], self.rows, self.cols), g);
            if prev.is_some_and(|p| p >= key) {
                return Err(fmt("index entries are not in (hilbert key, gid) order".into()));
            }
            prev = Some(key);
        }
        let (expect_nodes, expect_level_offsets) =
            index::pack_levels(view.entries, rects, centroids);
        if view.level_offsets != expect_level_offsets.as_slice()
            || view.nodes.len() != expect_nodes.len()
            || self.buf()[self.layout.idx_nodes.clone()] != *nodes_to_bytes(&expect_nodes)
        {
            return Err(fmt("index nodes disagree with recomputation".into()));
        }
        Ok(())
    }

    /// Clones the partition into its owned form.
    pub fn clone_partition(&self) -> Partition {
        Partition::new(self.rows, self.cols, self.rects().to_vec(), self.cell_to_group().to_vec())
    }

    /// Clones the adjacency lists into their owned form.
    pub fn clone_adjacency(&self) -> AdjacencyList {
        AdjacencyList::from_neighbors(
            (0..self.groups as u32).map(|g| self.neighbors(g).to_vec()).collect(),
        )
    }

    /// Materializes the buffer into an owned [`Snapshot`] — the bridge
    /// to every v1 consumer (shard splitting, v2 → v1 migration). A
    /// v1 → v2 → v1 round trip is byte-identical.
    pub fn to_snapshot(&self) -> Result<Snapshot> {
        let valid: Vec<bool> =
            (0..self.num_cells()).map(|c| self.cell_valid(c as CellId)).collect();
        let features: Vec<Option<Vec<f64>>> =
            (0..self.groups as u32).map(|g| self.feature(g).map(<[f64]>::to_vec)).collect();
        Snapshot::from_parts(
            self.theta,
            self.ifl,
            self.min_adjacent_variation,
            self.bounds,
            self.attr_names.clone(),
            self.agg_types.clone(),
            self.integer_attrs.clone(),
            valid,
            self.clone_partition(),
            features,
            self.clone_adjacency(),
        )
    }
}

// ---------------------------------------------------------------------------
// Files, engines, migration
// ---------------------------------------------------------------------------

/// Saves a snapshot to `path` in v2 format, atomically (temp file +
/// fsync + rename, like [`crate::save_snapshot`]).
pub fn save_snapshot_v2(s: &Snapshot, path: impl AsRef<Path>) -> Result<()> {
    save_snapshot_v2_with(s, path, None)
}

/// [`save_snapshot_v2`] with the write path subject to a
/// [`sr_fault::FaultPlan`] (`write.*` faults).
pub fn save_snapshot_v2_with(
    s: &Snapshot,
    path: impl AsRef<Path>,
    plan: Option<&sr_fault::FaultPlan>,
) -> Result<()> {
    write_bytes_atomic(&snapshot_to_bytes_v2(s), path.as_ref(), plan)
}

/// Loads a snapshot file of **either** format version into a
/// [`QueryEngine`]: v1 decodes into the owned representation, v2
/// validates and serves borrowed. This is the loader the serving tier
/// ([`crate::SnapshotCache`], shard routers, `srtool serve`) uses.
///
/// ```no_run
/// let engine = sr_serve::load_engine("current.snap").unwrap();
/// println!("serving format v{}", engine.format_version());
/// ```
pub fn load_engine(path: impl AsRef<Path>) -> Result<QueryEngine> {
    load_engine_with(path, None)
}

/// [`load_engine`] with the read path subject to a
/// [`sr_fault::FaultPlan`] (`read.*` faults). Torn reads surface as
/// checksum/format errors for both formats, never as a garbage engine.
pub fn load_engine_with(
    path: impl AsRef<Path>,
    plan: Option<&sr_fault::FaultPlan>,
) -> Result<QueryEngine> {
    let buf = read_file_bytes(path.as_ref(), plan)?;
    engine_from_bytes(&buf)
}

/// Builds a [`QueryEngine`] from snapshot bytes of either format.
pub fn engine_from_bytes(bytes: &[u8]) -> Result<QueryEngine> {
    match peek_version(bytes) {
        Some(FORMAT_V2) => Ok(QueryEngine::from_v2(snapshot_v2_from_bytes(bytes)?)),
        _ => Ok(QueryEngine::new(snapshot_from_bytes(bytes)?)),
    }
}

/// Converts snapshot bytes between format versions. The source version
/// is sniffed from the bytes; `to_version` is `1` or `2`. Either
/// direction is lossless: v1 → v2 → v1 reproduces the v1 bytes exactly
/// (and vice versa), because v2 stores the raw feature table alongside
/// the derived representatives.
///
/// ```
/// use sr_serve::{migrate_snapshot_bytes, snapshot_to_bytes, Snapshot};
/// let grid = sr_grid::GridDataset::univariate(
///     6, 6, (0..36).map(|i| 5.0 + (i % 6) as f64).collect(),
/// ).unwrap();
/// let out = sr_core::repartition(&grid, 0.1).unwrap();
/// let snap = Snapshot::build(&out.repartitioned, &grid, 0.1).unwrap();
/// let v1 = snapshot_to_bytes(&snap);
/// let v2 = migrate_snapshot_bytes(&v1, 2).unwrap();
/// assert_eq!(migrate_snapshot_bytes(&v2, 1).unwrap(), v1);
/// ```
pub fn migrate_snapshot_bytes(bytes: &[u8], to_version: u16) -> Result<Vec<u8>> {
    let snap = match peek_version(bytes) {
        Some(FORMAT_V2) => snapshot_v2_from_bytes(bytes)?.to_snapshot()?,
        _ => snapshot_from_bytes(bytes)?,
    };
    match to_version {
        FORMAT_V1 => Ok(crate::snapshot::snapshot_to_bytes(&snap)),
        FORMAT_V2 => Ok(snapshot_to_bytes_v2(&snap)),
        other => Err(ServeError::Invalid(format!("unknown target format version {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_core::repartition;
    use sr_grid::GridDataset;

    fn sample_snapshot() -> Snapshot {
        let vals: Vec<f64> =
            (0..64).map(|i| 100.0 + (i / 8) as f64 * 0.7 + (i % 8) as f64 * 0.4).collect();
        let mut grid = GridDataset::univariate(8, 8, vals).unwrap();
        grid.set_null(63);
        let out = repartition(&grid, 0.05).unwrap();
        Snapshot::build(&out.repartitioned, &grid, 0.05).unwrap()
    }

    #[test]
    fn v2_roundtrip_is_bit_exact() {
        let snap = sample_snapshot();
        let bytes = snapshot_to_bytes_v2(&snap);
        let v2 = snapshot_v2_from_bytes(&bytes).unwrap();
        // Encoder output passes the deep derived-section audit.
        v2.verify_derived().unwrap();
        assert_eq!(v2.to_snapshot().unwrap(), snap);
        // Re-encoding the materialized snapshot reproduces the bytes.
        assert_eq!(snapshot_to_bytes_v2(&v2.to_snapshot().unwrap()), bytes);
    }

    #[test]
    fn verify_derived_catches_a_consistent_reencode_of_wrong_derived_data() {
        // Build a file whose derived sections are *internally* wrapped
        // with correct CRCs but disagree with recomputation: swap two
        // counts entries and reseal the section + table. The structural
        // load must accept it (nothing indexes out of bounds); the deep
        // audit must reject it.
        let snap = sample_snapshot();
        let mut bytes = snapshot_to_bytes_v2(&snap);
        let sections = section_table(&bytes).unwrap();
        let counts = &sections[SEC_COUNTS as usize - 1];
        let (off, len) = (counts.offset as usize, counts.len as usize);
        let a = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
        let b = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
        assert_ne!(a, b, "sample snapshot needs two distinct leading counts");
        bytes[off..off + 4].copy_from_slice(&b.to_le_bytes());
        bytes[off + 4..off + 8].copy_from_slice(&a.to_le_bytes());
        // Reseal: section CRC lives in its table entry, and the table
        // has its own CRC.
        let crc = crc32(&bytes[off..off + len]);
        let entry = HEADER_LEN + (SEC_COUNTS as usize - 1) * TABLE_ENTRY_LEN;
        bytes[entry + 4..entry + 8].copy_from_slice(&crc.to_le_bytes());
        let table_crc = crc32(&bytes[HEADER_LEN..HEADER_LEN + TABLE_LEN]);
        bytes[HEADER_LEN + TABLE_LEN..HEADER_LEN + TABLE_LEN + 4]
            .copy_from_slice(&table_crc.to_le_bytes());
        let v2 = snapshot_v2_from_bytes(&bytes).expect("structurally valid resealed file loads");
        assert!(
            matches!(v2.verify_derived(), Err(ServeError::Format { .. })),
            "deep audit must reject derived data that disagrees with recomputation"
        );
    }

    #[test]
    fn v2_layout_is_aligned_and_described() {
        let bytes = snapshot_to_bytes_v2(&sample_snapshot());
        assert_eq!(peek_version(&bytes), Some(2));
        let sections = section_table(&bytes).unwrap();
        assert_eq!(sections.len(), 10);
        assert_eq!(sections[0].offset as usize, DATA_START);
        for s in &sections {
            assert_eq!(s.offset % 8, 0, "section {} misaligned", s.name);
            assert_eq!(s.len % 8, 0, "section {} length unpadded", s.name);
        }
        assert_eq!(
            sections.last().map(|s| (s.offset + s.len) as usize),
            Some(bytes.len()),
            "sections must cover the file"
        );
    }

    #[test]
    fn migration_roundtrips_byte_identically() {
        let snap = sample_snapshot();
        let v1 = crate::snapshot::snapshot_to_bytes(&snap);
        let v2 = migrate_snapshot_bytes(&v1, 2).unwrap();
        assert_eq!(peek_version(&v2), Some(2));
        assert_eq!(migrate_snapshot_bytes(&v2, 1).unwrap(), v1);
        assert_eq!(migrate_snapshot_bytes(&v2, 2).unwrap(), v2);
        assert_eq!(migrate_snapshot_bytes(&v1, 1).unwrap(), v1);
        assert!(matches!(migrate_snapshot_bytes(&v1, 7), Err(ServeError::Invalid(_))));
    }

    #[test]
    fn every_corrupted_byte_is_rejected() {
        let bytes = snapshot_to_bytes_v2(&sample_snapshot());
        for i in (0..bytes.len()).step_by(7) {
            let mut bad = bytes.clone();
            bad[i] ^= 0x10;
            assert!(
                snapshot_v2_from_bytes(&bad).is_err(),
                "corruption at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn truncation_is_rejected() {
        let bytes = snapshot_to_bytes_v2(&sample_snapshot());
        for cut in [0, 1, 7, 39, 40, 287, 288, bytes.len() / 2, bytes.len() - 1] {
            assert!(snapshot_v2_from_bytes(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }

    #[test]
    fn engine_from_either_format_answers_identically() {
        let snap = sample_snapshot();
        let v1 = crate::snapshot::snapshot_to_bytes(&snap);
        let v2 = snapshot_to_bytes_v2(&snap);
        let e1 = engine_from_bytes(&v1).unwrap();
        let e2 = engine_from_bytes(&v2).unwrap();
        assert_eq!(e1.format_version(), 1);
        assert_eq!(e2.format_version(), 2);
        assert_eq!(e1.stats(), e2.stats());
        let b = e1.bounds();
        assert_eq!(
            e1.window(b.lat_min, b.lat_max, b.lon_min, b.lon_max),
            e2.window(b.lat_min, b.lat_max, b.lon_min, b.lon_max)
        );
        assert_eq!(e1.knn(0.5, 0.5, 8), e2.knn(0.5, 0.5, 8));
    }

    #[test]
    fn v2_file_roundtrip_through_load_engine() {
        let snap = sample_snapshot();
        let path = std::env::temp_dir().join(format!("sr_v2_test_{}.snap", std::process::id()));
        save_snapshot_v2(&snap, &path).unwrap();
        let engine = load_engine(&path).unwrap();
        assert_eq!(engine.format_version(), 2);
        assert_eq!(engine.to_snapshot(), snap);
        // The format-agnostic owned loader reads it too.
        let owned = crate::snapshot::load_snapshot(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert_eq!(owned, snap);
    }

    #[test]
    fn aligned_bytes_is_aligned() {
        for n in [0usize, 1, 7, 8, 9, 1023] {
            let a = AlignedBytes::zeroed(n);
            assert_eq!(a.len(), n);
            assert_eq!(a.is_empty(), n == 0);
            assert_eq!(a.as_slice().as_ptr() as usize % 8, 0);
        }
    }
}
