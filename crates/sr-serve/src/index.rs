//! A packed, Hilbert-sorted rectangle index over cell-group bounds.
//!
//! [`QueryEngine`](crate::query::QueryEngine) used to answer window and
//! knn queries with a linear scan over every group. This index replaces
//! those scans: group ids are sorted by the Hilbert key of their
//! rectangle centers (so spatially close groups sit in the same leaf —
//! the classic packed/STR construction), then grouped into fixed-fanout
//! runs with one bounding box per run, repeated level by level until a
//! single root run remains.
//!
//! Two boxes are kept per node because the two queries prune in
//! different spaces: window queries intersect in *cell* coordinates
//! (group rectangles), knn queries measure Euclidean distance in *geo*
//! coordinates (group centroids). The centroid box is the box of member
//! centroids, which makes `mindist(query, box)` a lower bound on the
//! distance to any member centroid — the admissibility condition the
//! best-first search needs to return exactly the same neighbors, in the
//! same `(distance, group id)` order, as the full sort it replaces.
//!
//! The index is a pure function of the partition, so engines built from
//! the same snapshot carry identical indexes at any thread count.
//!
//! Storage is three flat arrays — `entries`, `nodes` (all levels
//! concatenated, leaves first), `level_offsets` — so the sr-snap v2
//! format can serialize the index verbatim and serve it *borrowed*: the
//! query algorithms live on [`RectIndexView`], which works equally over
//! the owned arrays or over slices cast straight out of a validated
//! snapshot section.

use sr_core::GroupRect;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Entries per node. Small enough that a leaf scan stays in cache, big
/// enough that the tree is shallow (36k groups → 3 levels).
pub(crate) const FANOUT: usize = 16;

/// One packed node: the closed cell-space box of its member rectangles,
/// the closed geo-space box of its member centroids, and the run of
/// curve-ordered entries it covers.
///
/// `#[repr(C)]` with the four `f64` boxes first: 32 bytes of `f64`
/// followed by 24 bytes of `u32` — 56 bytes, align 8, no padding — so a
/// `&[Node]` can be reinterpreted as the bytes of a v2 snapshot section
/// and back.
#[derive(Debug, Clone, Copy)]
#[repr(C)]
pub(crate) struct Node {
    pub(crate) lat_min: f64,
    pub(crate) lat_max: f64,
    pub(crate) lon_min: f64,
    pub(crate) lon_max: f64,
    pub(crate) r0: u32,
    pub(crate) r1: u32,
    pub(crate) c0: u32,
    pub(crate) c1: u32,
    /// Covered run: entry indices at level 0, child-node indices above
    /// (both relative to the start of the child level).
    pub(crate) start: u32,
    pub(crate) end: u32,
}

// The v2 section cast in `v2.rs` relies on this exact layout.
const _: () = assert!(std::mem::size_of::<Node>() == 56);
const _: () = assert!(std::mem::align_of::<Node>() == 8);

impl Node {
    fn intersects_cells(&self, r_lo: u32, r_hi: u32, c_lo: u32, c_hi: u32) -> bool {
        self.r0 <= r_hi && r_lo <= self.r1 && self.c0 <= c_hi && c_lo <= self.c1
    }

    /// Squared Euclidean distance from `(lat, lon)` to the centroid box;
    /// `0` inside. NaN coordinates yield `0` (the node is always
    /// expanded), which reproduces the full-scan behavior for NaN
    /// queries deterministically.
    fn mindist2(&self, lat: f64, lon: f64) -> f64 {
        let axis = |q: f64, lo: f64, hi: f64| {
            if q < lo {
                lo - q
            } else if q > hi {
                q - hi
            } else {
                0.0
            }
        };
        let dy = axis(lat, self.lat_min, self.lat_max);
        let dx = axis(lon, self.lon_min, self.lon_max);
        dy * dy + dx * dx
    }
}

/// The packed index in flat storage: group ids in Hilbert order, every
/// level's nodes concatenated leaves-first, and the per-level offsets
/// into that node array. See the module docs for the construction.
#[derive(Debug, Clone)]
pub(crate) struct RectIndex {
    /// Group ids sorted by (Hilbert key of rectangle center, id).
    pub(crate) entries: Vec<u32>,
    /// All levels concatenated: level `k` occupies
    /// `nodes[level_offsets[k] .. level_offsets[k + 1]]`. Level 0 covers
    /// runs of `entries`; level `k + 1` covers runs of level `k`. The
    /// last level always has a single root node.
    pub(crate) nodes: Vec<Node>,
    /// `num_levels + 1` offsets into `nodes`; `level_offsets[0] == 0`.
    pub(crate) level_offsets: Vec<u32>,
}

/// Borrowed form of [`RectIndex`]: the query algorithms live here so
/// they run identically over owned arrays and over slices cast out of a
/// validated v2 snapshot section.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RectIndexView<'a> {
    pub(crate) entries: &'a [u32],
    pub(crate) nodes: &'a [Node],
    pub(crate) level_offsets: &'a [u32],
}

/// Best-first queue item: a node (`group == None`) or a leaf group.
/// Ordered ascending by `(d2, node-before-group, level, index)` — a total
/// order, so the traversal is deterministic even among exact ties.
struct QueueItem {
    d2: f64,
    /// `Some(gid)` for a group entry; `None` for a node.
    group: Option<u32>,
    level: usize,
    index: u32,
}

impl PartialEq for QueueItem {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for QueueItem {}
impl PartialOrd for QueueItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for QueueItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap and we want the smallest
        // distance on top.
        other
            .d2
            .total_cmp(&self.d2)
            .then_with(|| other.group.is_some().cmp(&self.group.is_some()))
            .then_with(|| other.level.cmp(&self.level))
            .then_with(|| other.index.cmp(&self.index))
    }
}

/// Bounded best-k set ordered by `(d2, gid)`: a max-heap that keeps the
/// `k` smallest pairs, so the current kth distance is `peek()`.
struct KBest {
    k: usize,
    heap: BinaryHeap<DistGroup>,
}

struct DistGroup(f64, u32);

impl PartialEq for DistGroup {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for DistGroup {}
impl PartialOrd for DistGroup {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for DistGroup {
    fn cmp(&self, other: &Self) -> Ordering {
        self.0.total_cmp(&other.0).then_with(|| self.1.cmp(&other.1))
    }
}

impl KBest {
    fn new(k: usize) -> Self {
        KBest { k, heap: BinaryHeap::with_capacity(k + 1) }
    }

    fn push(&mut self, d2: f64, gid: u32) {
        self.heap.push(DistGroup(d2, gid));
        if self.heap.len() > self.k {
            self.heap.pop();
        }
    }

    /// `true` when a candidate with this `(d2, gid)` would enter the set.
    fn admits(&self, d2: f64, gid: u32) -> bool {
        if self.heap.len() < self.k {
            return true;
        }
        match self.heap.peek() {
            Some(worst) => DistGroup(d2, gid).cmp(worst) == Ordering::Less,
            None => true,
        }
    }

    fn is_full(&self) -> bool {
        self.heap.len() >= self.k
    }

    /// Strict upper bound for pruning once the set is full: an item whose
    /// lower-bound distance exceeds this cannot enter. Only meaningful
    /// when [`KBest::is_full`] — `total_cmp` orders NaN above infinity,
    /// so an unconditional check would wrongly prune NaN distances while
    /// the set still has room.
    fn prune_d2(&self) -> f64 {
        self.heap.peek().map_or(f64::INFINITY, |w| w.0)
    }

    fn into_sorted(self) -> Vec<(f64, u32)> {
        let mut v: Vec<(f64, u32)> = self.heap.into_iter().map(|DistGroup(d, g)| (d, g)).collect();
        v.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
        v
    }
}

/// The Hilbert key of a rectangle's center — the primary key of the
/// entry order (ties broken by ascending group id).
pub(crate) fn entry_sort_key(rect: &GroupRect, rows: usize, cols: usize) -> u64 {
    let center_r = (rect.r0 + rect.r1 + 1) as f64 / 2.0;
    let center_c = (rect.c0 + rect.c1 + 1) as f64 / 2.0;
    sr_grid::hilbert_key_scaled(center_r, center_c, rows, cols)
}

/// Boxes `entries` (already in curve order) into the packed level
/// structure. Split out from [`RectIndex::build`] so a v2 snapshot
/// loader can recompute the expected nodes for a stored entry order and
/// compare them bit-for-bit without re-sorting.
pub(crate) fn pack_levels(
    entries: &[u32],
    rects: &[GroupRect],
    centroids: &[[f64; 2]],
) -> (Vec<Node>, Vec<u32>) {
    let mut nodes: Vec<Node> = Vec::new();
    let mut level_offsets: Vec<u32> = vec![0];
    // Level 0: box up runs of FANOUT entries.
    let mut level: Vec<Node> = entries
        .chunks(FANOUT)
        .enumerate()
        .map(|(i, run)| {
            let mut node = empty_node((i * FANOUT) as u32, (i * FANOUT + run.len()) as u32);
            for &g in run {
                let rect = &rects[g as usize];
                let [clat, clon] = centroids[g as usize];
                node.r0 = node.r0.min(rect.r0);
                node.r1 = node.r1.max(rect.r1);
                node.c0 = node.c0.min(rect.c0);
                node.c1 = node.c1.max(rect.c1);
                node.lat_min = node.lat_min.min(clat);
                node.lat_max = node.lat_max.max(clat);
                node.lon_min = node.lon_min.min(clon);
                node.lon_max = node.lon_max.max(clon);
            }
            node
        })
        .collect();
    // Upper levels: box up runs of FANOUT child nodes until one root
    // run remains.
    while level.len() > 1 {
        let parent: Vec<Node> = level
            .chunks(FANOUT)
            .enumerate()
            .map(|(i, run)| {
                let mut node = empty_node((i * FANOUT) as u32, (i * FANOUT + run.len()) as u32);
                for child in run {
                    node.r0 = node.r0.min(child.r0);
                    node.r1 = node.r1.max(child.r1);
                    node.c0 = node.c0.min(child.c0);
                    node.c1 = node.c1.max(child.c1);
                    node.lat_min = node.lat_min.min(child.lat_min);
                    node.lat_max = node.lat_max.max(child.lat_max);
                    node.lon_min = node.lon_min.min(child.lon_min);
                    node.lon_max = node.lon_max.max(child.lon_max);
                }
                node
            })
            .collect();
        nodes.extend_from_slice(&level);
        level_offsets.push(nodes.len() as u32);
        level = parent;
    }
    nodes.extend_from_slice(&level);
    level_offsets.push(nodes.len() as u32);
    (nodes, level_offsets)
}

impl RectIndex {
    /// Packs an index over `rects` (one per group, tiling a
    /// `rows × cols` grid) with `centroids` as each group's geo-space
    /// point.
    pub(crate) fn build(
        rects: &[GroupRect],
        centroids: &[[f64; 2]],
        rows: usize,
        cols: usize,
    ) -> RectIndex {
        // One key per group, packed as `key << 32 | gid`: the Hilbert
        // key fits 32 bits (`2 * HILBERT_ORDER`) and group ids are u32,
        // so sorting the packed words is exactly the `(key, id)`
        // lexicographic order — one flat u64 sort instead of comparator
        // calls over cached tuples.
        let mut packed: Vec<u64> = rects
            .iter()
            .enumerate()
            .map(|(g, rect)| {
                let key = entry_sort_key(rect, rows, cols);
                debug_assert!(key >> 32 == 0, "Hilbert key exceeds 32 bits");
                key << 32 | g as u64
            })
            .collect();
        packed.sort_unstable();
        let entries: Vec<u32> = packed.iter().map(|&w| w as u32).collect();
        let (nodes, level_offsets) = pack_levels(&entries, rects, centroids);
        RectIndex { entries, nodes, level_offsets }
    }

    /// Borrowed view carrying the query algorithms.
    pub(crate) fn view(&self) -> RectIndexView<'_> {
        RectIndexView {
            entries: &self.entries,
            nodes: &self.nodes,
            level_offsets: &self.level_offsets,
        }
    }
}

impl<'a> RectIndexView<'a> {
    fn num_levels(&self) -> usize {
        self.level_offsets.len() - 1
    }

    fn level(&self, lvl: usize) -> &'a [Node] {
        &self.nodes[self.level_offsets[lvl] as usize..self.level_offsets[lvl + 1] as usize]
    }

    /// Group ids whose rectangles intersect the closed cell range AND
    /// whose curve positions fall in `[pos_lo, pos_hi)` of the Hilbert
    /// entry order, pushed onto `out` in ascending id order. Pass
    /// `[0, num_groups)` for an unrestricted scan. Because the entry
    /// order is the same pure function of the partition as a shard
    /// split's group order, a sharded router can hand each shard exactly
    /// its own contiguous position range and the per-shard scans sum to
    /// one unsharded scan instead of duplicating it K times.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn intersecting_in_range(
        &self,
        rects: &[GroupRect],
        r_lo: u32,
        r_hi: u32,
        c_lo: u32,
        c_hi: u32,
        pos_lo: usize,
        pos_hi: usize,
        out: &mut Vec<u32>,
    ) {
        let mark = out.len();
        let top = self.num_levels() - 1;
        // Depth-first walk with an explicit stack of (level, node index).
        // A node at level L is packed, so node i covers exactly the entry
        // positions [i * FANOUT^(L+1), (i+1) * FANOUT^(L+1)) ∩ [0, n).
        let mut stack: Vec<(usize, u32)> =
            (0..self.level(top).len() as u32).map(|i| (top, i)).collect();
        while let Some((lvl, i)) = stack.pop() {
            let span = FANOUT.pow(lvl as u32 + 1);
            let node_lo = i as usize * span;
            if node_lo >= pos_hi || node_lo + span <= pos_lo {
                continue;
            }
            let node = &self.level(lvl)[i as usize];
            if !node.intersects_cells(r_lo, r_hi, c_lo, c_hi) {
                continue;
            }
            if lvl == 0 {
                let lo = (node.start as usize).max(pos_lo);
                let hi = (node.end as usize).min(pos_hi);
                for &g in &self.entries[lo..hi] {
                    let rect = &rects[g as usize];
                    if rect.r0 <= r_hi && r_lo <= rect.r1 && rect.c0 <= c_hi && c_lo <= rect.c1 {
                        out.push(g);
                    }
                }
            } else {
                for child in node.start..node.end {
                    stack.push((lvl - 1, child));
                }
            }
        }
        out[mark..].sort_unstable();
    }

    /// The `k` groups passing `featured` whose centroids are nearest to
    /// `(lat, lon)` and whose curve positions fall in `[pos_lo, pos_hi)`
    /// of the Hilbert entry order, as ascending `(squared distance,
    /// group id)` — exactly the order (ties included) a full `(d2, gid)`
    /// sort over that position slice would produce. Pass
    /// `[0, num_groups)` for an unrestricted search. Nodes whose packed
    /// position span falls entirely outside the range are never
    /// expanded, so a sharded engine searching only its own contiguous
    /// slice pays for a tree of its own size rather than the whole
    /// deployment's.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn nearest_in_range(
        &self,
        centroids: &[[f64; 2]],
        lat: f64,
        lon: f64,
        k: usize,
        pos_lo: usize,
        pos_hi: usize,
        featured: impl Fn(u32) -> bool,
    ) -> Vec<(f64, u32)> {
        if k == 0 || pos_lo >= pos_hi {
            return Vec::new();
        }
        // A node at level L is packed: node i covers exactly the entry
        // positions [i * FANOUT^(L+1), (i+1) * FANOUT^(L+1)) ∩ [0, n).
        let in_range = |lvl: usize, i: u32| {
            let span = FANOUT.pow(lvl as u32 + 1);
            let node_lo = i as usize * span;
            node_lo < pos_hi && node_lo + span > pos_lo
        };
        let mut best = KBest::new(k);
        let mut queue: BinaryHeap<QueueItem> = BinaryHeap::new();
        let top = self.num_levels() - 1;
        for (i, node) in self.level(top).iter().enumerate() {
            if !in_range(top, i as u32) {
                continue;
            }
            queue.push(QueueItem {
                d2: node.mindist2(lat, lon),
                group: None,
                level: top,
                index: i as u32,
            });
        }
        while let Some(item) = queue.pop() {
            // Everything still queued has d2 >= item.d2: once the set is
            // full and the kth (d2, gid) beats it strictly, no later item
            // can enter.
            if best.is_full() && item.d2.total_cmp(&best.prune_d2()) == Ordering::Greater {
                break;
            }
            match item.group {
                Some(g) => {
                    if best.admits(item.d2, g) {
                        best.push(item.d2, g);
                    }
                }
                None => {
                    let node = &self.level(item.level)[item.index as usize];
                    if item.level == 0 {
                        let lo = (node.start as usize).max(pos_lo);
                        let hi = (node.end as usize).min(pos_hi);
                        for &g in &self.entries[lo..hi] {
                            if !featured(g) {
                                continue;
                            }
                            let [clat, clon] = centroids[g as usize];
                            let d2 = (clat - lat) * (clat - lat) + (clon - lon) * (clon - lon);
                            queue.push(QueueItem { d2, group: Some(g), level: 0, index: g });
                        }
                    } else {
                        for child in node.start..node.end {
                            if !in_range(item.level - 1, child) {
                                continue;
                            }
                            let child_node = &self.level(item.level - 1)[child as usize];
                            queue.push(QueueItem {
                                d2: child_node.mindist2(lat, lon),
                                group: None,
                                level: item.level - 1,
                                index: child,
                            });
                        }
                    }
                }
            }
        }
        best.into_sorted()
    }
}

fn empty_node(start: u32, end: u32) -> Node {
    Node {
        lat_min: f64::INFINITY,
        lat_max: f64::NEG_INFINITY,
        lon_min: f64::INFINITY,
        lon_max: f64::NEG_INFINITY,
        r0: u32::MAX,
        r1: 0,
        c0: u32::MAX,
        c1: 0,
        start,
        end,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic partition: `side × side` unit rects, centroid = cell
    /// center in a unit geo square.
    fn unit_grid(side: usize) -> (Vec<GroupRect>, Vec<[f64; 2]>) {
        let mut rects = Vec::new();
        let mut centroids = Vec::new();
        for r in 0..side {
            for c in 0..side {
                rects.push(GroupRect { r0: r as u32, r1: r as u32, c0: c as u32, c1: c as u32 });
                centroids.push([(r as f64 + 0.5) / side as f64, (c as f64 + 0.5) / side as f64]);
            }
        }
        (rects, centroids)
    }

    #[test]
    fn intersecting_matches_linear_scan() {
        let (rects, centroids) = unit_grid(20);
        let index = RectIndex::build(&rects, &centroids, 20, 20);
        for (r_lo, r_hi, c_lo, c_hi) in
            [(0, 19, 0, 19), (3, 7, 5, 11), (19, 19, 0, 0), (8, 8, 8, 8)]
        {
            let mut got = Vec::new();
            index.view().intersecting_in_range(
                &rects,
                r_lo,
                r_hi,
                c_lo,
                c_hi,
                0,
                rects.len(),
                &mut got,
            );
            let want: Vec<u32> = (0..rects.len() as u32)
                .filter(|&g| {
                    let rect = &rects[g as usize];
                    rect.r0 <= r_hi && r_lo <= rect.r1 && rect.c0 <= c_hi && c_lo <= rect.c1
                })
                .collect();
            assert_eq!(got, want, "range ({r_lo},{r_hi},{c_lo},{c_hi})");
        }
    }

    #[test]
    fn range_restricted_intersection_matches_position_slice() {
        let (rects, centroids) = unit_grid(20);
        let index = RectIndex::build(&rects, &centroids, 20, 20);
        let n = rects.len();
        for (r_lo, r_hi, c_lo, c_hi) in [(0u32, 19u32, 0u32, 19u32), (3, 7, 5, 11), (8, 8, 8, 8)] {
            for (lo, hi) in [(0usize, n), (0, 100), (100, 257), (n - 1, n), (13, 14), (5, 5)] {
                let mut got = Vec::new();
                index
                    .view()
                    .intersecting_in_range(&rects, r_lo, r_hi, c_lo, c_hi, lo, hi, &mut got);
                let mut want: Vec<u32> = index.entries[lo..hi]
                    .iter()
                    .copied()
                    .filter(|&g| {
                        let rect = &rects[g as usize];
                        rect.r0 <= r_hi && r_lo <= rect.r1 && rect.c0 <= c_hi && c_lo <= rect.c1
                    })
                    .collect();
                want.sort_unstable();
                assert_eq!(got, want, "range ({r_lo},{r_hi},{c_lo},{c_hi}) pos [{lo},{hi})");
            }
        }
    }

    #[test]
    fn range_restricted_nearest_matches_position_slice() {
        let (rects, centroids) = unit_grid(20);
        let index = RectIndex::build(&rects, &centroids, 20, 20);
        let n = rects.len();
        for (lat, lon) in [(0.5, 0.5), (0.0, 0.0), (2.0, -1.0), (f64::NAN, 0.5)] {
            for (lo, hi) in [(0usize, n), (0, 100), (100, 257), (n - 1, n), (13, 14), (5, 5)] {
                for k in [1usize, 7, 500] {
                    let got = index
                        .view()
                        .nearest_in_range(&centroids, lat, lon, k, lo, hi, |g| g % 2 == 0);
                    let mut want: Vec<(f64, u32)> = index.entries[lo..hi]
                        .iter()
                        .copied()
                        .filter(|&g| g % 2 == 0)
                        .map(|g| {
                            let [clat, clon] = centroids[g as usize];
                            ((clat - lat) * (clat - lat) + (clon - lon) * (clon - lon), g)
                        })
                        .collect();
                    want.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                    want.truncate(k);
                    assert_eq!(got.len(), want.len(), "k={k} at ({lat},{lon}) pos [{lo},{hi})");
                    for (a, b) in got.iter().zip(&want) {
                        assert_eq!(a.1, b.1, "k={k} at ({lat},{lon}) pos [{lo},{hi})");
                        assert_eq!(a.0.to_bits(), b.0.to_bits(), "k={k} at ({lat},{lon})");
                    }
                }
            }
        }
    }

    #[test]
    fn nearest_matches_full_sort_with_ties() {
        let (rects, centroids) = unit_grid(17);
        let index = RectIndex::build(&rects, &centroids, 17, 17);
        // Query points chosen to generate distance ties (grid symmetry).
        for (lat, lon) in [(0.5, 0.5), (0.0, 0.0), (0.25, 0.75), (2.0, -1.0), (f64::NAN, 0.5)] {
            for k in [1usize, 5, 13, 400] {
                // Only even group ids are "featured".
                let got =
                    index
                        .view()
                        .nearest_in_range(&centroids, lat, lon, k, 0, rects.len(), |g| g % 2 == 0);
                let mut want: Vec<(f64, u32)> = (0..rects.len() as u32)
                    .filter(|g| g % 2 == 0)
                    .map(|g| {
                        let [clat, clon] = centroids[g as usize];
                        ((clat - lat) * (clat - lat) + (clon - lon) * (clon - lon), g)
                    })
                    .collect();
                want.sort_by(|a, b| a.0.total_cmp(&b.0).then_with(|| a.1.cmp(&b.1)));
                want.truncate(k);
                assert_eq!(got.len(), want.len(), "k={k} at ({lat},{lon})");
                for (a, b) in got.iter().zip(&want) {
                    assert_eq!(a.1, b.1, "k={k} at ({lat},{lon})");
                    assert_eq!(a.0.to_bits(), b.0.to_bits(), "k={k} at ({lat},{lon})");
                }
            }
        }
    }

    #[test]
    fn flat_levels_are_leaves_first_and_root_is_single() {
        let (rects, centroids) = unit_grid(20);
        let index = RectIndex::build(&rects, &centroids, 20, 20);
        let view = index.view();
        // 400 entries → 25 leaves → 2 mid → ... wait, 25 leaves / 16 →
        // 2 nodes → 1 root: three levels.
        assert_eq!(view.num_levels(), 3);
        assert_eq!(view.level(0).len(), 25);
        assert_eq!(view.level(1).len(), 2);
        assert_eq!(view.level(2).len(), 1);
        assert_eq!(index.level_offsets, vec![0, 25, 27, 28]);
        assert_eq!(index.nodes.len(), 28);
    }
}
