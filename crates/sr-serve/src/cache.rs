//! An LRU cache of loaded snapshots, with stale-serving degradation.
//!
//! Serving processes typically host several snapshots (different grids,
//! different loss budgets `θ`) but have memory for only a few decoded
//! [`QueryEngine`]s at a time. The cache is keyed by `(path, θ)` — the
//! same file requested at a different budget is a different logical
//! snapshot — and evicts the least recently used entry once `capacity`
//! is exceeded. Engines are handed out as `Arc`s, so an eviction never
//! invalidates in-flight queries. Loads go through
//! [`crate::load_engine_with`], so either snapshot format serves: v1
//! files decode into the owned engine, v2 files validate in place and
//! serve borrowed, which makes cache misses and reloads a
//! section-validation pass instead of a full decode + engine build.
//!
//! ## Reload and degradation
//!
//! [`SnapshotCache::get_serve`] is the serving-path lookup: it
//! fingerprints the file (mtime + length) on every call, reloads when the
//! file changed, and — crucially — **keeps the last good entry resident
//! when a reload fails**, returning it marked [`Served::stale`] instead
//! of surfacing the error. Reload attempts retry under a seeded
//! decorrelated-jitter [`Backoff`] (hermetic, `docs/ROBUSTNESS.md` has
//! the parameters), and the load path can be subjected to a
//! [`FaultPlan`] for tests and demos. The plain
//! [`SnapshotCache::get_or_load`] skips the fingerprint check (one
//! `stat` per call) for embedding use.
//!
//! Hit/miss/eviction/reload accounting is kept in [`sr_obs`] counters. A
//! cache built with [`SnapshotCache::new`] uses private counters (exact
//! counts per instance); [`SnapshotCache::with_registry`] binds them to
//! `serve.cache.{hits,misses,evictions,reloads}_total` and
//! `stale.{serves,reload_failures}_total` in a [`Registry`] so the
//! `/metrics` and `/stats` endpoints read the very same cells as the
//! accessors here — the two can never disagree.

use crate::query::QueryEngine;
use crate::v2::load_engine_with;
use crate::Result;
use sr_fault::{Backoff, FaultPlan};
use sr_obs::{Counter, Registry};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};
use std::time::{Duration, SystemTime};

/// Cache key: canonical path plus the raw bits of `θ` (bit-equality keeps
/// the key `Eq + Hash` without floating-point surprises).
type Key = (PathBuf, u64);

/// Change-detection fingerprint: modification time and length. Either
/// changing (a rewrite always changes mtime; a torn overwrite virtually
/// always changes length) triggers a reload; an unreadable fingerprint
/// (file deleted) reads as "changed" so the reload path decides.
type Fingerprint = (SystemTime, u64);

fn fingerprint(path: &Path) -> Option<Fingerprint> {
    let meta = std::fs::metadata(path).ok()?;
    Some((meta.modified().ok()?, meta.len()))
}

#[derive(Debug, Clone)]
struct Entry {
    engine: Arc<QueryEngine>,
    fingerprint: Option<Fingerprint>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Key, Entry>,
    /// Keys in recency order: front = least recently used.
    order: VecDeque<Key>,
}

/// Retry parameters for the reload path: up to `attempts` loads per
/// [`SnapshotCache::get_serve`] call, sleeping a [`Backoff`] delay
/// between consecutive failures.
#[derive(Debug, Clone)]
pub struct ReloadPolicy {
    /// Load attempts per reload (minimum 1).
    pub attempts: u32,
    /// First backoff delay (decorrelated jitter grows from here).
    pub base: Duration,
    /// Backoff delay cap.
    pub cap: Duration,
    /// Seed for the jitter PRNG (hermetic: a fixed seed replays the same
    /// delay schedule).
    pub seed: u64,
}

impl Default for ReloadPolicy {
    fn default() -> Self {
        ReloadPolicy {
            attempts: 3,
            base: Duration::from_millis(1),
            cap: Duration::from_millis(20),
            seed: 0x5eed,
        }
    }
}

/// What [`SnapshotCache::get_serve`] hands back: an engine, plus whether
/// it is a stale last-good snapshot served because a reload failed.
#[derive(Debug, Clone)]
pub struct Served {
    /// The engine to answer from (stays usable after eviction).
    pub engine: Arc<QueryEngine>,
    /// `true` when the file on disk changed (or vanished) but could not
    /// be reloaded, so this is the previous good snapshot. The HTTP layer
    /// surfaces this as the `X-SR-Stale: 1` response header.
    pub stale: bool,
}

/// A thread-safe LRU cache of decoded snapshots.
#[derive(Debug)]
pub struct SnapshotCache {
    capacity: usize,
    inner: Mutex<Inner>,
    fault_plan: Option<FaultPlan>,
    reload: ReloadPolicy,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
    reloads: Counter,
    stale_serves: Counter,
    reload_failures: Counter,
}

impl SnapshotCache {
    /// A cache holding at most `capacity` engines (minimum 1), with
    /// private (unregistered) counters.
    pub fn new(capacity: usize) -> Self {
        SnapshotCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            fault_plan: None,
            reload: ReloadPolicy::default(),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
            reloads: Counter::new(),
            stale_serves: Counter::new(),
            reload_failures: Counter::new(),
        }
    }

    /// Like [`SnapshotCache::new`], but accounting through
    /// `serve.cache.{hits,misses,evictions,reloads}_total` and
    /// `stale.{serves,reload_failures}_total` in `registry`, so the
    /// counts also show up in that registry's renderings.
    pub fn with_registry(capacity: usize, registry: &Registry) -> Self {
        SnapshotCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            fault_plan: None,
            reload: ReloadPolicy::default(),
            hits: registry.counter("serve.cache.hits_total"),
            misses: registry.counter("serve.cache.misses_total"),
            evictions: registry.counter("serve.cache.evictions_total"),
            reloads: registry.counter("serve.cache.reloads_total"),
            stale_serves: registry.counter("stale.serves_total"),
            reload_failures: registry.counter("stale.reload_failures_total"),
        }
    }

    /// Subjects every snapshot load this cache performs to `plan`
    /// (injected read errors / latency / premature EOF — see
    /// [`sr_fault`]).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault_plan = Some(plan);
        self
    }

    /// Overrides the reload retry/backoff parameters.
    pub fn with_reload_policy(mut self, policy: ReloadPolicy) -> Self {
        self.reload = ReloadPolicy { attempts: policy.attempts.max(1), ..policy };
        self
    }

    /// One load with the policy's retries and backoff sleeps.
    fn load_with_retry(&self, path: &Path) -> Result<Arc<QueryEngine>> {
        let mut backoff = Backoff::new(self.reload.base, self.reload.cap, self.reload.seed);
        let mut attempt = 0;
        loop {
            attempt += 1;
            match load_engine_with(path, self.fault_plan.as_ref()) {
                Ok(engine) => return Ok(Arc::new(engine)),
                Err(e) if attempt >= self.reload.attempts.max(1) => return Err(e),
                Err(_) => std::thread::sleep(backoff.next_delay()),
            }
        }
    }

    /// Inserts `entry` under `key`, updating recency and evicting LRU
    /// entries past capacity.
    fn insert(&self, key: Key, entry: Entry) {
        let mut inner = self.inner.lock().expect("cache poisoned");
        if inner.map.insert(key.clone(), entry).is_none() {
            inner.order.push_back(key);
        } else {
            touch(&mut inner.order, &key);
        }
        while inner.map.len() > self.capacity {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
                self.evictions.inc();
            }
        }
    }

    /// Returns the engine for `(path, theta)`, loading and decoding the
    /// snapshot file on a miss. The returned `Arc` stays usable after the
    /// entry is evicted. Does **not** check whether the file changed since
    /// it was cached — that is [`SnapshotCache::get_serve`]'s job.
    pub fn get_or_load(&self, path: impl AsRef<Path>, theta: f64) -> Result<Arc<QueryEngine>> {
        let path = path.as_ref();
        let key: Key = (path.to_path_buf(), theta.to_bits());
        {
            let mut inner = self.inner.lock().expect("cache poisoned");
            if let Some(entry) = inner.map.get(&key).cloned() {
                self.hits.inc();
                touch(&mut inner.order, &key);
                return Ok(entry.engine);
            }
        }
        // Load outside the lock: decoding a snapshot is the slow part and
        // must not serialize unrelated lookups. A racing load of the same
        // key is harmless — last writer wins, both callers get a valid
        // engine. The fingerprint is taken *before* the read, so a write
        // racing the load re-triggers a reload on the next get_serve.
        self.misses.inc();
        let fp = fingerprint(path);
        let engine = self.load_with_retry(path)?;
        self.insert(key, Entry { engine: engine.clone(), fingerprint: fp });
        Ok(engine)
    }

    /// The serving-path lookup: like [`SnapshotCache::get_or_load`] but
    /// change-aware and degradation-aware. Fingerprints the file on every
    /// call; when it changed, attempts a reload (with retry/backoff), and
    /// when the reload fails **keeps the last good entry resident** and
    /// returns it with [`Served::stale`] set. Only a miss with no prior
    /// entry propagates the load error.
    pub fn get_serve(&self, path: impl AsRef<Path>, theta: f64) -> Result<Served> {
        let path = path.as_ref();
        let key: Key = (path.to_path_buf(), theta.to_bits());
        let current_fp = fingerprint(path);
        let prior = {
            let mut inner = self.inner.lock().expect("cache poisoned");
            match inner.map.get(&key).cloned() {
                Some(entry) if entry.fingerprint == current_fp && current_fp.is_some() => {
                    self.hits.inc();
                    touch(&mut inner.order, &key);
                    return Ok(Served { engine: entry.engine, stale: false });
                }
                prior => prior,
            }
        };
        // Changed (or never seen): reload outside the lock.
        match self.load_with_retry(path) {
            Ok(engine) => {
                if prior.is_some() {
                    self.reloads.inc();
                } else {
                    self.misses.inc();
                }
                self.insert(key, Entry { engine: engine.clone(), fingerprint: current_fp });
                Ok(Served { engine, stale: false })
            }
            Err(e) => {
                self.reload_failures.inc();
                match prior {
                    // Degrade: the bug this guards against is evicting the
                    // last good snapshot just because its replacement is
                    // corrupt — the entry stays resident and serves.
                    Some(entry) => {
                        self.stale_serves.inc();
                        Ok(Served { engine: entry.engine, stale: true })
                    }
                    None => Err(e),
                }
            }
        }
    }

    /// Whether `(path, theta)` is currently cached (does not touch
    /// recency).
    pub fn contains(&self, path: impl AsRef<Path>, theta: f64) -> bool {
        let key: Key = (path.as_ref().to_path_buf(), theta.to_bits());
        self.inner.lock().expect("cache poisoned").map.contains_key(&key)
    }

    /// Number of cached engines.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses (initial loads) so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }

    /// Successful reloads (file changed, new snapshot decoded) so far.
    pub fn reloads(&self) -> u64 {
        self.reloads.get()
    }

    /// Stale serves so far (reload failed, last good entry returned).
    pub fn stale_serves(&self) -> u64 {
        self.stale_serves.get()
    }

    /// Failed reload attempts (after retries) so far.
    pub fn reload_failures(&self) -> u64 {
        self.reload_failures.get()
    }
}

/// Moves `key` to the most-recently-used end of `order`.
fn touch(order: &mut VecDeque<Key>, key: &Key) {
    if let Some(pos) = order.iter().position(|k| k == key) {
        let k = order.remove(pos).expect("position just found");
        order.push_back(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{save_snapshot, Snapshot};
    use sr_core::repartition;
    use sr_grid::GridDataset;

    /// Writes `n` distinct snapshot files into a fresh temp directory.
    fn snapshot_files(n: usize, tag: &str) -> (PathBuf, Vec<PathBuf>) {
        let dir = std::env::temp_dir().join(format!("sr_cache_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for i in 0..n {
            let vals: Vec<f64> = (0..36).map(|j| 10.0 + i as f64 + (j / 6) as f64 * 0.1).collect();
            let grid = GridDataset::univariate(6, 6, vals).unwrap();
            let out = repartition(&grid, 0.05).unwrap();
            let snap = Snapshot::build(&out.repartitioned, &grid, 0.05).unwrap();
            let path = dir.join(format!("snap_{i}.snap"));
            save_snapshot(&snap, &path).unwrap();
            paths.push(path);
        }
        (dir, paths)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let (dir, paths) = snapshot_files(1, "hits");
        let cache = SnapshotCache::new(2);
        let a = cache.get_or_load(&paths[0], 0.05).unwrap();
        let b = cache.get_or_load(&paths[0], 0.05).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Same file, different θ: a distinct logical snapshot.
        cache.get_or_load(&paths[0], 0.10).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn registry_backed_counters_render() {
        let (dir, paths) = snapshot_files(1, "reg");
        let registry = Registry::new();
        let cache = SnapshotCache::with_registry(2, &registry);
        cache.get_or_load(&paths[0], 0.05).unwrap();
        cache.get_or_load(&paths[0], 0.05).unwrap();
        let text = registry.render_text();
        assert!(text.contains("counter serve.cache.hits_total 1"), "{text}");
        assert!(text.contains("counter serve.cache.misses_total 1"), "{text}");
        assert!(text.contains("counter serve.cache.evictions_total 0"), "{text}");
        assert!(text.contains("counter stale.serves_total 0"), "{text}");
        // The accessors read the same cells the registry renders.
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (1, 1, 0));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn evicts_least_recently_used() {
        let (dir, paths) = snapshot_files(3, "lru");
        let cache = SnapshotCache::new(2);
        cache.get_or_load(&paths[0], 0.05).unwrap();
        cache.get_or_load(&paths[1], 0.05).unwrap();
        // Touch 0 so 1 becomes the LRU entry.
        cache.get_or_load(&paths[0], 0.05).unwrap();
        cache.get_or_load(&paths[2], 0.05).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&paths[0], 0.05), "recently touched entry survived");
        assert!(!cache.contains(&paths[1], 0.05), "LRU entry evicted");
        assert!(cache.contains(&paths[2], 0.05));
        assert_eq!(cache.evictions(), 1);
        // The evicted entry reloads on demand.
        cache.get_or_load(&paths[1], 0.05).unwrap();
        assert!(!cache.contains(&paths[0], 0.05), "0 was LRU after 2's insert");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn evicted_engines_stay_usable() {
        let (dir, paths) = snapshot_files(2, "arc");
        let cache = SnapshotCache::new(1);
        let engine = cache.get_or_load(&paths[0], 0.05).unwrap();
        cache.get_or_load(&paths[1], 0.05).unwrap();
        assert!(!cache.contains(&paths[0], 0.05));
        // The Arc handed out before eviction still answers queries.
        assert!(engine.stats().groups > 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        let cache = SnapshotCache::new(1);
        assert!(cache.get_or_load("/nonexistent/path.snap", 0.05).is_err());
        assert!(cache.get_serve("/nonexistent/path.snap", 0.05).is_err());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let (dir, paths) = snapshot_files(1, "cap0");
        let cache = SnapshotCache::new(0);
        cache.get_or_load(&paths[0], 0.05).unwrap();
        assert_eq!(cache.len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    /// Regression test for the PR-1 bug this layer's degradation story
    /// builds on: a failed reload must not evict the last good entry —
    /// the cache keeps serving the prior snapshot, marked stale.
    #[test]
    fn failed_reload_keeps_last_good_entry_and_serves_stale() {
        let (dir, paths) = snapshot_files(1, "stale");
        let cache = SnapshotCache::new(2);
        let first = cache.get_serve(&paths[0], 0.05).unwrap();
        assert!(!first.stale);
        assert_eq!(cache.len(), 1);

        // Simulate a torn overwrite: the file now fails to parse.
        std::fs::write(&paths[0], b"definitely not an sr-snap file").unwrap();
        let degraded = cache.get_serve(&paths[0], 0.05).unwrap();
        assert!(degraded.stale, "corrupt replacement must serve stale");
        assert!(Arc::ptr_eq(&degraded.engine, &first.engine), "serves the last good engine");
        assert_eq!(cache.len(), 1, "entry must stay resident");
        assert_eq!(cache.stale_serves(), 1);
        assert_eq!(cache.reload_failures(), 1);

        // File deleted entirely: still degrades to the last good engine.
        std::fs::remove_file(&paths[0]).unwrap();
        let gone = cache.get_serve(&paths[0], 0.05).unwrap();
        assert!(gone.stale);
        assert!(Arc::ptr_eq(&gone.engine, &first.engine));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn successful_reload_replaces_the_entry() {
        let (dir, paths) = snapshot_files(2, "reload");
        let cache = SnapshotCache::new(2);
        let first = cache.get_serve(&paths[0], 0.05).unwrap();
        // Replace the file with a different valid snapshot (atomic save
        // bumps mtime and, here, the length too).
        std::fs::copy(&paths[1], &paths[0]).unwrap();
        let second = cache.get_serve(&paths[0], 0.05).unwrap();
        assert!(!second.stale);
        assert!(!Arc::ptr_eq(&second.engine, &first.engine), "reload decodes the new file");
        assert_eq!(cache.reloads(), 1);
        // Unchanged since the reload: plain hit.
        let third = cache.get_serve(&paths[0], 0.05).unwrap();
        assert!(Arc::ptr_eq(&third.engine, &second.engine));
        assert_eq!(cache.hits(), 1);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn fault_plan_errors_retry_then_degrade() {
        let (dir, paths) = snapshot_files(1, "fault");
        let registry = Registry::new();
        // First get_serve loads clean (rate 0 via a disabled plan would
        // consume nothing); then swap in an always-failing plan by
        // rebuilding the cache around the same registry.
        let clean = SnapshotCache::with_registry(2, &registry);
        clean.get_serve(&paths[0], 0.05).unwrap();

        let plan = FaultPlan::parse("read.error_rate = 1.0\n", &registry).unwrap();
        let faulty = SnapshotCache::with_registry(2, &registry)
            .with_fault_plan(plan.clone())
            .with_reload_policy(ReloadPolicy {
                attempts: 3,
                base: Duration::from_micros(100),
                cap: Duration::from_millis(1),
                seed: 1,
            });
        // No prior entry in this cache: the error propagates, after the
        // policy's 3 attempts (each consuming one injected error).
        assert!(faulty.get_serve(&paths[0], 0.05).is_err());
        assert_eq!(plan.injected_errors(), 3, "retry policy drives 3 attempts");
        assert_eq!(faulty.reload_failures(), 1);
        std::fs::remove_dir_all(dir).ok();
    }
}
