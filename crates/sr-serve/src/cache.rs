//! An LRU cache of loaded snapshots.
//!
//! Serving processes typically host several snapshots (different grids,
//! different loss budgets `θ`) but have memory for only a few decoded
//! [`QueryEngine`]s at a time. The cache is keyed by `(path, θ)` — the
//! same file requested at a different budget is a different logical
//! snapshot — and evicts the least recently used entry once `capacity`
//! is exceeded. Engines are handed out as `Arc`s, so an eviction never
//! invalidates in-flight queries.
//!
//! Hit/miss/eviction accounting is kept in [`sr_obs`] counters. A cache
//! built with [`SnapshotCache::new`] uses private counters (exact counts
//! per instance); [`SnapshotCache::with_registry`] binds the counters to
//! `serve.cache.{hits,misses,evictions}_total` in a [`Registry`] so the
//! `/metrics` and `/stats` endpoints read the very same cells as the
//! accessors here — the two can never disagree.

use crate::query::QueryEngine;
use crate::snapshot::load_snapshot;
use crate::Result;
use sr_obs::{Counter, Registry};
use std::collections::HashMap;
use std::collections::VecDeque;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

/// Cache key: canonical path plus the raw bits of `θ` (bit-equality keeps
/// the key `Eq + Hash` without floating-point surprises).
type Key = (PathBuf, u64);

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<Key, Arc<QueryEngine>>,
    /// Keys in recency order: front = least recently used.
    order: VecDeque<Key>,
}

/// A thread-safe LRU cache of decoded snapshots.
#[derive(Debug)]
pub struct SnapshotCache {
    capacity: usize,
    inner: Mutex<Inner>,
    hits: Counter,
    misses: Counter,
    evictions: Counter,
}

impl SnapshotCache {
    /// A cache holding at most `capacity` engines (minimum 1), with
    /// private (unregistered) counters.
    pub fn new(capacity: usize) -> Self {
        SnapshotCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            hits: Counter::new(),
            misses: Counter::new(),
            evictions: Counter::new(),
        }
    }

    /// Like [`SnapshotCache::new`], but accounting through
    /// `serve.cache.{hits,misses,evictions}_total` in `registry`, so the
    /// counts also show up in that registry's renderings.
    pub fn with_registry(capacity: usize, registry: &Registry) -> Self {
        SnapshotCache {
            capacity: capacity.max(1),
            inner: Mutex::new(Inner::default()),
            hits: registry.counter("serve.cache.hits_total"),
            misses: registry.counter("serve.cache.misses_total"),
            evictions: registry.counter("serve.cache.evictions_total"),
        }
    }

    /// Returns the engine for `(path, theta)`, loading and decoding the
    /// snapshot file on a miss. The returned `Arc` stays usable after the
    /// entry is evicted.
    pub fn get_or_load(&self, path: impl AsRef<Path>, theta: f64) -> Result<Arc<QueryEngine>> {
        let key: Key = (path.as_ref().to_path_buf(), theta.to_bits());
        {
            let mut inner = self.inner.lock().expect("cache poisoned");
            if let Some(engine) = inner.map.get(&key).cloned() {
                self.hits.inc();
                touch(&mut inner.order, &key);
                return Ok(engine);
            }
        }
        // Load outside the lock: decoding a snapshot is the slow part and
        // must not serialize unrelated lookups. A racing load of the same
        // key is harmless — last writer wins, both callers get a valid
        // engine.
        self.misses.inc();
        let engine = Arc::new(QueryEngine::new(load_snapshot(&key.0)?));
        let mut inner = self.inner.lock().expect("cache poisoned");
        if inner.map.insert(key.clone(), engine.clone()).is_none() {
            inner.order.push_back(key);
        } else {
            touch(&mut inner.order, &key);
        }
        while inner.map.len() > self.capacity {
            if let Some(oldest) = inner.order.pop_front() {
                inner.map.remove(&oldest);
                self.evictions.inc();
            }
        }
        Ok(engine)
    }

    /// Whether `(path, theta)` is currently cached (does not touch
    /// recency).
    pub fn contains(&self, path: impl AsRef<Path>, theta: f64) -> bool {
        let key: Key = (path.as_ref().to_path_buf(), theta.to_bits());
        self.inner.lock().expect("cache poisoned").map.contains_key(&key)
    }

    /// Number of cached engines.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("cache poisoned").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Cache hits so far.
    pub fn hits(&self) -> u64 {
        self.hits.get()
    }

    /// Cache misses (loads) so far.
    pub fn misses(&self) -> u64 {
        self.misses.get()
    }

    /// Evictions so far.
    pub fn evictions(&self) -> u64 {
        self.evictions.get()
    }
}

/// Moves `key` to the most-recently-used end of `order`.
fn touch(order: &mut VecDeque<Key>, key: &Key) {
    if let Some(pos) = order.iter().position(|k| k == key) {
        let k = order.remove(pos).expect("position just found");
        order.push_back(k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::{save_snapshot, Snapshot};
    use sr_core::repartition;
    use sr_grid::GridDataset;

    /// Writes `n` distinct snapshot files into a fresh temp directory.
    fn snapshot_files(n: usize, tag: &str) -> (PathBuf, Vec<PathBuf>) {
        let dir = std::env::temp_dir().join(format!("sr_cache_test_{}_{tag}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let mut paths = Vec::new();
        for i in 0..n {
            let vals: Vec<f64> = (0..36).map(|j| 10.0 + i as f64 + (j / 6) as f64 * 0.1).collect();
            let grid = GridDataset::univariate(6, 6, vals).unwrap();
            let out = repartition(&grid, 0.05).unwrap();
            let snap = Snapshot::build(&out.repartitioned, &grid, 0.05).unwrap();
            let path = dir.join(format!("snap_{i}.snap"));
            save_snapshot(&snap, &path).unwrap();
            paths.push(path);
        }
        (dir, paths)
    }

    #[test]
    fn hit_and_miss_accounting() {
        let (dir, paths) = snapshot_files(1, "hits");
        let cache = SnapshotCache::new(2);
        let a = cache.get_or_load(&paths[0], 0.05).unwrap();
        let b = cache.get_or_load(&paths[0], 0.05).unwrap();
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        // Same file, different θ: a distinct logical snapshot.
        cache.get_or_load(&paths[0], 0.10).unwrap();
        assert_eq!((cache.hits(), cache.misses()), (1, 2));
        assert_eq!(cache.len(), 2);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn registry_backed_counters_render() {
        let (dir, paths) = snapshot_files(1, "reg");
        let registry = Registry::new();
        let cache = SnapshotCache::with_registry(2, &registry);
        cache.get_or_load(&paths[0], 0.05).unwrap();
        cache.get_or_load(&paths[0], 0.05).unwrap();
        let text = registry.render_text();
        assert!(text.contains("counter serve.cache.hits_total 1"), "{text}");
        assert!(text.contains("counter serve.cache.misses_total 1"), "{text}");
        assert!(text.contains("counter serve.cache.evictions_total 0"), "{text}");
        // The accessors read the same cells the registry renders.
        assert_eq!((cache.hits(), cache.misses(), cache.evictions()), (1, 1, 0));
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn evicts_least_recently_used() {
        let (dir, paths) = snapshot_files(3, "lru");
        let cache = SnapshotCache::new(2);
        cache.get_or_load(&paths[0], 0.05).unwrap();
        cache.get_or_load(&paths[1], 0.05).unwrap();
        // Touch 0 so 1 becomes the LRU entry.
        cache.get_or_load(&paths[0], 0.05).unwrap();
        cache.get_or_load(&paths[2], 0.05).unwrap();
        assert_eq!(cache.len(), 2);
        assert!(cache.contains(&paths[0], 0.05), "recently touched entry survived");
        assert!(!cache.contains(&paths[1], 0.05), "LRU entry evicted");
        assert!(cache.contains(&paths[2], 0.05));
        assert_eq!(cache.evictions(), 1);
        // The evicted entry reloads on demand.
        cache.get_or_load(&paths[1], 0.05).unwrap();
        assert!(!cache.contains(&paths[0], 0.05), "0 was LRU after 2's insert");
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn evicted_engines_stay_usable() {
        let (dir, paths) = snapshot_files(2, "arc");
        let cache = SnapshotCache::new(1);
        let engine = cache.get_or_load(&paths[0], 0.05).unwrap();
        cache.get_or_load(&paths[1], 0.05).unwrap();
        assert!(!cache.contains(&paths[0], 0.05));
        // The Arc handed out before eviction still answers queries.
        assert!(engine.stats().groups > 0);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        let cache = SnapshotCache::new(1);
        assert!(cache.get_or_load("/nonexistent/path.snap", 0.05).is_err());
        assert_eq!(cache.len(), 0);
    }

    #[test]
    fn capacity_zero_clamps_to_one() {
        let (dir, paths) = snapshot_files(1, "cap0");
        let cache = SnapshotCache::new(0);
        cache.get_or_load(&paths[0], 0.05).unwrap();
        assert_eq!(cache.len(), 1);
        std::fs::remove_dir_all(dir).ok();
    }
}
