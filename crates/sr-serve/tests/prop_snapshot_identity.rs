//! Snapshot byte-identity properties over the SoA pipeline.
//!
//! A snapshot file is a pure function of the accepted run: both encoders
//! (v1 and the zero-copy v2) must emit the *same bytes* no matter how many
//! threads the driver ran on, and the two formats must round-trip into
//! the same logical snapshot. This pins the serialization end of the SoA
//! rewrite the same way `sr-core`'s `prop_bit_identity` pins the kernels.

use sr_core::{IterationStrategy, RepartitionConfig, Repartitioner};
use sr_grid::{AggType, Bounds, GridDataset};
use sr_par::Pool;
use sr_serve::{
    migrate_snapshot_bytes, snapshot_from_bytes, snapshot_to_bytes, snapshot_to_bytes_v2,
    snapshot_v2_from_bytes, Snapshot,
};

/// xorshift64* — deterministic across platforms, no dependencies.
struct Rng(u64);

impl Rng {
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// A mixed-schema grid with the validity patterns that stress the packed
/// bitmap: `partial_word` grids have `rows·cols % 64 != 0`, `null_row`
/// blanks one full row.
fn make_grid(seed: u64, rows: usize, cols: usize, null_row: Option<usize>) -> GridDataset {
    let mut rng = Rng(seed.max(1));
    let p = 3;
    let n = rows * cols;
    let mut data = Vec::with_capacity(n * p);
    for id in 0..n {
        let (r, c) = (id / cols, id % cols);
        let base = 40.0 + r as f64 * 0.6 + c as f64 * 0.5;
        data.push(((base + (rng.f64() - 0.5) * 4.0) * 10.0).round() / 10.0);
        data.push((1.0 + rng.f64() * 5.0).round()); // integer Sum attr
        data.push((rng.next_u64() % 3) as f64); // Mode codes
    }
    let valid: Vec<bool> =
        (0..n).map(|id| null_row != Some(id / cols) && !rng.next_u64().is_multiple_of(9)).collect();
    GridDataset::new(
        rows,
        cols,
        p,
        data,
        valid,
        vec!["price".into(), "count".into(), "kind".into()],
        vec![AggType::Avg, AggType::Sum, AggType::Mode],
        vec![false, true, true],
        Bounds::unit(),
    )
    .unwrap()
}

fn snapshot_at(grid: &GridDataset, theta: f64, pool: &Pool) -> Snapshot {
    let cfg = RepartitionConfig::new(theta)
        .unwrap()
        .with_strategy(IterationStrategy::Exponential { initial_stride: 2, growth: 1.6 });
    let out = Repartitioner::with_config(cfg).unwrap().run_with_pool(grid, pool).unwrap();
    Snapshot::build(&out.repartitioned, grid, theta).unwrap()
}

#[test]
fn snapshot_bytes_are_thread_invariant_in_both_formats() {
    let grids = [
        make_grid(11, 9, 13, None),     // 117 cells: trailing partial word
        make_grid(12, 16, 16, Some(5)), // word-aligned count, one null row
        make_grid(13, 7, 23, Some(0)),  // null top row, partial word
    ];
    for (i, grid) in grids.iter().enumerate() {
        let base = snapshot_at(grid, 0.02, &Pool::new(1));
        let v1 = snapshot_to_bytes(&base);
        let v2 = snapshot_to_bytes_v2(&base);
        for threads in [2usize, 8] {
            let other = snapshot_at(grid, 0.02, &Pool::new(threads));
            assert_eq!(base, other, "grid {i}: snapshot at {threads} threads");
            assert_eq!(v1, snapshot_to_bytes(&other), "grid {i}: v1 bytes at {threads} threads");
            assert_eq!(v2, snapshot_to_bytes_v2(&other), "grid {i}: v2 bytes at {threads} threads");
        }
        // Encoding the same snapshot twice is also byte-stable.
        assert_eq!(v1, snapshot_to_bytes(&base), "grid {i}: v1 re-encode");
        assert_eq!(v2, snapshot_to_bytes_v2(&base), "grid {i}: v2 re-encode");
    }
}

#[test]
fn formats_roundtrip_and_migrate_to_identical_bytes() {
    for (i, grid) in [make_grid(21, 10, 11, None), make_grid(22, 12, 9, Some(3))].iter().enumerate()
    {
        let snap = snapshot_at(grid, 0.03, &Pool::new(2));
        let v1 = snapshot_to_bytes(&snap);
        let v2 = snapshot_to_bytes_v2(&snap);

        // v1 decode is lossless.
        assert_eq!(snapshot_from_bytes(&v1).unwrap(), snap, "grid {i}: v1 roundtrip");

        // v2 parses, its derived sections agree with a recompute, and it
        // converts back to the identical logical snapshot.
        let parsed = snapshot_v2_from_bytes(&v2).unwrap();
        parsed.verify_derived().unwrap_or_else(|e| panic!("grid {i}: derived sections: {e}"));
        assert_eq!(parsed.to_snapshot().unwrap(), snap, "grid {i}: v2 → snapshot");

        // Cross-format migration reproduces each encoder's exact bytes.
        assert_eq!(migrate_snapshot_bytes(&v1, 2).unwrap(), v2, "grid {i}: v1 → v2 bytes");
        assert_eq!(migrate_snapshot_bytes(&v2, 1).unwrap(), v1, "grid {i}: v2 → v1 bytes");
    }
}
