//! Property tests for the `sr-snap v1` format over *arbitrary* repartitioned
//! grids — not hand-picked examples:
//!
//! 1. write → read → write produces byte-identical output (and an equal
//!    `Snapshot`), for any shape, schema, null mask, value mix, and θ.
//! 2. Flipping any single bit anywhere in the encoding is detected — the
//!    CRC-32 trailer guarantees all single-bit (indeed all single-byte)
//!    corruptions are caught before parsing.
//! 3. Truncating the encoding at any byte is cleanly rejected (format or
//!    checksum error), never decoded into something else and never a
//!    panic — the torn-write half of the robustness contract.
//! 4. Snapshot bytes are invariant to the compute pool's thread count.

use proptest::prelude::*;
use sr_core::{repartition, Repartitioner};
use sr_grid::{AggType, Bounds, GridDataset};
use sr_serve::{snapshot_from_bytes, snapshot_to_bytes, ServeError, Snapshot};

/// Builds a well-formed multivariate grid from strategy-drawn parts and
/// freezes a snapshot of its repartitioning.
fn random_snapshot(
    rows: usize,
    cols: usize,
    p: usize,
    raw: &[f64],
    nulls: &[u8],
    theta: f64,
) -> Snapshot {
    let cells = rows * cols;
    let data: Vec<f64> = raw.to_vec();
    // Sparse nulls (~1 in 6) so repartitioning always has work to do.
    let valid: Vec<bool> = nulls.iter().map(|&n| n != 0).collect();
    let grid = GridDataset::new(
        rows,
        cols,
        p,
        data,
        valid,
        (0..p).map(|k| format!("a{k}")).collect(),
        (0..p).map(|k| if k % 2 == 0 { AggType::Sum } else { AggType::Avg }).collect(),
        vec![false; p],
        Bounds { lat_min: 40.0, lat_max: 41.0, lon_min: -74.0, lon_max: -73.0 },
    )
    .expect("generated grid is well-formed");
    debug_assert_eq!(grid.num_cells(), cells);
    let out = repartition(&grid, theta).expect("repartition succeeds");
    Snapshot::build(&out.repartitioned, &grid, theta).expect("snapshot builds")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Round-trip is bit-exact for arbitrary snapshots: the decoded value
    /// equals the original, and re-encoding reproduces identical bytes.
    #[test]
    fn snapshot_roundtrip_is_byte_identical(
        (rows, cols, p, raw, nulls) in (4usize..12, 4usize..12, 1usize..4)
            .prop_flat_map(|(r, c, p)| (
                Just(r),
                Just(c),
                Just(p),
                prop::collection::vec(1.0f64..500.0, r * c * p),
                prop::collection::vec(0u8..6, r * c),
            )),
        theta in 0.02f64..0.3,
    ) {
        let snap = random_snapshot(rows, cols, p, &raw, &nulls, theta);
        let bytes = snapshot_to_bytes(&snap);
        let back = snapshot_from_bytes(&bytes).expect("decode");
        prop_assert_eq!(&back, &snap);
        prop_assert_eq!(snapshot_to_bytes(&back), bytes);
    }

    /// Any single flipped bit is rejected, and specifically as a checksum
    /// failure: CRC-32 detects every single-bit error, and the checksum is
    /// verified before any field is parsed.
    #[test]
    fn snapshot_detects_any_single_bit_corruption(
        (rows, cols, p, raw, nulls) in (4usize..10, 4usize..10, 1usize..3)
            .prop_flat_map(|(r, c, p)| (
                Just(r),
                Just(c),
                Just(p),
                prop::collection::vec(1.0f64..500.0, r * c * p),
                prop::collection::vec(0u8..6, r * c),
            )),
        theta in 0.02f64..0.3,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let snap = random_snapshot(rows, cols, p, &raw, &nulls, theta);
        let bytes = snapshot_to_bytes(&snap);
        let idx = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let mut bad = bytes.clone();
        bad[idx] ^= 1 << bit;
        match snapshot_from_bytes(&bad) {
            Err(ServeError::Checksum { stored, computed }) => {
                prop_assert_ne!(stored, computed);
            }
            other => {
                return Err(TestCaseError::Fail(format!(
                    "bit {bit} of byte {idx}/{} flipped, expected Checksum error, got {other:?}",
                    bytes.len()
                )));
            }
        }
    }

    /// A snapshot truncated at *any* byte boundary is cleanly rejected —
    /// as a format or checksum error — never decoded into a different
    /// snapshot and never a panic. This is the property that makes the
    /// atomic-write discipline (`save_snapshot`'s temp + fsync + rename)
    /// sufficient: even if a torn prefix ever became visible, it could
    /// not be served (`docs/ROBUSTNESS.md`).
    #[test]
    fn snapshot_truncated_anywhere_is_cleanly_rejected(
        (rows, cols, p, raw, nulls) in (4usize..10, 4usize..10, 1usize..3)
            .prop_flat_map(|(r, c, p)| (
                Just(r),
                Just(c),
                Just(p),
                prop::collection::vec(1.0f64..500.0, r * c * p),
                prop::collection::vec(0u8..6, r * c),
            )),
        theta in 0.02f64..0.3,
        cut_frac in 0.0f64..1.0,
    ) {
        let snap = random_snapshot(rows, cols, p, &raw, &nulls, theta);
        let bytes = snapshot_to_bytes(&snap);
        // Every prefix length from empty to one-byte-short is invalid.
        let cut = ((cut_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        match snapshot_from_bytes(&bytes[..cut]) {
            Err(ServeError::Format { .. }) | Err(ServeError::Checksum { .. }) => {}
            Ok(_) => {
                return Err(TestCaseError::Fail(format!(
                    "truncation to {cut}/{} bytes decoded successfully",
                    bytes.len()
                )));
            }
            Err(other) => {
                return Err(TestCaseError::Fail(format!(
                    "truncation to {cut}/{} bytes gave unexpected error {other:?}",
                    bytes.len()
                )));
            }
        }
    }

    /// Snapshots frozen from parallel repartition runs are byte-identical
    /// (checksum included) to snapshots from serial runs — the end-to-end
    /// consequence of the sr-par determinism contract
    /// (docs/PERFORMANCE.md): thread count can never change what gets
    /// served.
    #[test]
    fn snapshot_bytes_thread_invariant(
        (rows, cols, p, raw, nulls) in (4usize..12, 4usize..12, 1usize..4)
            .prop_flat_map(|(r, c, p)| (
                Just(r),
                Just(c),
                Just(p),
                prop::collection::vec(1.0f64..500.0, r * c * p),
                prop::collection::vec(0u8..6, r * c),
            )),
        theta in 0.02f64..0.3,
    ) {
        let cells = rows * cols;
        let data: Vec<f64> = raw.to_vec();
        let valid: Vec<bool> = nulls.iter().map(|&n| n != 0).collect();
        let grid = GridDataset::new(
            rows,
            cols,
            p,
            data,
            valid,
            (0..p).map(|k| format!("a{k}")).collect(),
            (0..p).map(|k| if k % 2 == 0 { AggType::Sum } else { AggType::Avg }).collect(),
            vec![false; p],
            Bounds { lat_min: 40.0, lat_max: 41.0, lon_min: -74.0, lon_max: -73.0 },
        )
        .expect("generated grid is well-formed");
        debug_assert_eq!(grid.num_cells(), cells);
        let driver = Repartitioner::new(theta).expect("valid theta");
        let serial = driver.run_with_pool(&grid, &sr_par::Pool::new(1)).expect("serial run");
        let serial_bytes =
            snapshot_to_bytes(&Snapshot::build(&serial.repartitioned, &grid, theta).unwrap());
        for threads in [2usize, 8] {
            let pool = sr_par::Pool::new(threads);
            let par = driver.run_with_pool(&grid, &pool).expect("parallel run");
            let par_bytes =
                snapshot_to_bytes(&Snapshot::build(&par.repartitioned, &grid, theta).unwrap());
            prop_assert_eq!(&par_bytes, &serial_bytes, "snapshot differs at {} threads", threads);
        }
    }
}
