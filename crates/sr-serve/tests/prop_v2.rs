//! Property tests for the `sr-snap v2` zero-copy format and the
//! v1 ↔ v2 migration path, over *arbitrary* repartitioned grids:
//!
//! 1. Migrating v1 bytes to v2 and serving them **borrowed** answers
//!    point/window/knn queries bit-identically to decoding the v1 bytes
//!    into the owned engine — the cross-format serving contract.
//! 2. Migration is lossless both ways: v1 → v2 → v1 reproduces the
//!    original v1 bytes exactly, and v2 re-encoding is deterministic.
//! 3. Truncating a v2 file at any byte boundary is cleanly rejected
//!    (format or checksum error), never a panic, never a wrong engine.
//! 4. Flipping any single byte anywhere in a v2 file — header, section
//!    table, pad bytes, any section — is detected. Unlike v1's single
//!    trailer CRC, v2 seals each region separately, so the test also
//!    proves there are no coverage gaps between the seals.
//!
//! `ci.sh` runs this file under `SR_THREADS=1` and `SR_THREADS=4`; the
//! answers the two engines produce are already thread-count invariant,
//! so the runs must be byte-for-byte identical too.

use proptest::prelude::*;
use sr_core::repartition;
use sr_grid::{AggType, Bounds, GridDataset};
use sr_serve::{
    migrate_snapshot_bytes, peek_version, snapshot_from_bytes, snapshot_to_bytes,
    snapshot_to_bytes_v2, snapshot_v2_from_bytes, QueryEngine, ServeError, Snapshot,
};

/// Builds a well-formed multivariate grid from strategy-drawn parts and
/// freezes a snapshot of its repartitioning (same generator as the v1
/// property suite, so the two files test the same input distribution).
fn random_snapshot(
    rows: usize,
    cols: usize,
    p: usize,
    raw: &[f64],
    nulls: &[u8],
    theta: f64,
) -> Snapshot {
    let valid: Vec<bool> = nulls.iter().map(|&n| n != 0).collect();
    let grid = GridDataset::new(
        rows,
        cols,
        p,
        raw.to_vec(),
        valid,
        (0..p).map(|k| format!("a{k}")).collect(),
        (0..p).map(|k| if k % 2 == 0 { AggType::Sum } else { AggType::Avg }).collect(),
        vec![false; p],
        Bounds { lat_min: 40.0, lat_max: 41.0, lon_min: -74.0, lon_max: -73.0 },
    )
    .expect("generated grid is well-formed");
    let out = repartition(&grid, theta).expect("repartition succeeds");
    Snapshot::build(&out.repartitioned, &grid, theta).expect("snapshot builds")
}

/// The shared strategy shape: grid dims, attribute count, raw values,
/// null mask.
fn grid_parts(
    max_side: usize,
    max_p: usize,
) -> impl Strategy<Value = (usize, usize, usize, Vec<f64>, Vec<u8>)> {
    (4usize..max_side, 4usize..max_side, 1usize..max_p).prop_flat_map(|(r, c, p)| {
        (
            Just(r),
            Just(c),
            Just(p),
            prop::collection::vec(1.0f64..500.0, r * c * p),
            prop::collection::vec(0u8..6, r * c),
        )
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// migrate(v1 bytes) → borrowed v2 engine answers point, window, and
    /// knn queries bit-identically to the owned v1 engine, across the
    /// whole grid (every cell center probed) and across window shapes
    /// and `k` values.
    #[test]
    fn migrated_v2_serves_bit_identically_to_v1(
        (rows, cols, p, raw, nulls) in grid_parts(11, 4),
        theta in 0.02f64..0.3,
        k in 1usize..12,
    ) {
        let snap = random_snapshot(rows, cols, p, &raw, &nulls, theta);
        let v1 = snapshot_to_bytes(&snap);
        let v2 = migrate_snapshot_bytes(&v1, 2).expect("v1 -> v2 migration");
        prop_assert_eq!(peek_version(&v2), Some(2));
        let owned = QueryEngine::new(snapshot_from_bytes(&v1).expect("v1 decode"));
        let borrowed = QueryEngine::from_v2(snapshot_v2_from_bytes(&v2).expect("v2 validate"));
        prop_assert_eq!(owned.format_version(), 1);
        prop_assert_eq!(borrowed.format_version(), 2);
        prop_assert_eq!(owned.stats(), borrowed.stats());

        let b = owned.bounds();
        let lat_step = (b.lat_max - b.lat_min) / rows as f64;
        let lon_step = (b.lon_max - b.lon_min) / cols as f64;
        // Every cell center: point answers must agree bit-for-bit.
        for r in 0..rows {
            for c in 0..cols {
                let lat = b.lat_min + (r as f64 + 0.5) * lat_step;
                let lon = b.lon_min + (c as f64 + 0.5) * lon_step;
                prop_assert_eq!(owned.point(lat, lon), borrowed.point(lat, lon));
            }
        }
        // Windows: full grid, one quadrant, a thin band.
        let windows = [
            (b.lat_min, b.lat_max, b.lon_min, b.lon_max),
            (b.lat_min, (b.lat_min + b.lat_max) / 2.0, b.lon_min, (b.lon_min + b.lon_max) / 2.0),
            (b.lat_min + lat_step, b.lat_min + 2.0 * lat_step, b.lon_min, b.lon_max),
        ];
        for (lat0, lat1, lon0, lon1) in windows {
            prop_assert_eq!(
                owned.window(lat0, lat1, lon0, lon1),
                borrowed.window(lat0, lat1, lon0, lon1)
            );
            prop_assert_eq!(
                owned.window_scatter(lat0, lat1, lon0, lon1),
                borrowed.window_scatter(lat0, lat1, lon0, lon1)
            );
        }
        // knn from corners and center, including ties and k > groups.
        let probes = [
            (b.lat_min, b.lon_min),
            (b.lat_max, b.lon_max),
            ((b.lat_min + b.lat_max) / 2.0, (b.lon_min + b.lon_max) / 2.0),
        ];
        for (lat, lon) in probes {
            prop_assert_eq!(owned.knn(lat, lon, k), borrowed.knn(lat, lon, k));
        }
    }

    /// v1 → v2 → v1 reproduces the original v1 bytes exactly (v2 stores
    /// the raw feature table, so nothing is lost to representative
    /// derivation), and the v2 encoding itself is deterministic.
    #[test]
    fn migration_roundtrip_is_byte_identical(
        (rows, cols, p, raw, nulls) in grid_parts(11, 4),
        theta in 0.02f64..0.3,
    ) {
        let snap = random_snapshot(rows, cols, p, &raw, &nulls, theta);
        let v1 = snapshot_to_bytes(&snap);
        let v2 = migrate_snapshot_bytes(&v1, 2).expect("v1 -> v2");
        prop_assert_eq!(&migrate_snapshot_bytes(&v2, 1).expect("v2 -> v1"), &v1);
        prop_assert_eq!(&migrate_snapshot_bytes(&v2, 2).expect("v2 -> v2"), &v2);
        prop_assert_eq!(&snapshot_to_bytes_v2(&snap), &v2);
        // The borrowed snapshot materializes back to the original, and
        // every encoder-produced file passes the deep derived-section
        // audit (bit-level recomputation of counts, representatives,
        // centroids, and the packed index).
        let borrowed = snapshot_v2_from_bytes(&v2).unwrap();
        borrowed.verify_derived().expect("encoder output passes the deep audit");
        prop_assert_eq!(borrowed.to_snapshot().unwrap(), snap);
    }

    /// A v2 file truncated at *any* byte boundary is cleanly rejected —
    /// format or checksum error, never a panic, never an engine. The
    /// file-length field in the CRC-sealed header makes every proper
    /// prefix detectable before any section is touched.
    #[test]
    fn v2_truncated_anywhere_is_cleanly_rejected(
        (rows, cols, p, raw, nulls) in grid_parts(9, 3),
        theta in 0.02f64..0.3,
        cut_frac in 0.0f64..1.0,
    ) {
        let snap = random_snapshot(rows, cols, p, &raw, &nulls, theta);
        let bytes = snapshot_to_bytes_v2(&snap);
        let cut = ((cut_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        match snapshot_v2_from_bytes(&bytes[..cut]) {
            Err(ServeError::Format { .. }) | Err(ServeError::Checksum { .. }) => {}
            Ok(_) => {
                return Err(TestCaseError::Fail(format!(
                    "truncation to {cut}/{} bytes validated successfully",
                    bytes.len()
                )));
            }
            Err(other) => {
                return Err(TestCaseError::Fail(format!(
                    "truncation to {cut}/{} bytes gave unexpected error {other:?}",
                    bytes.len()
                )));
            }
        }
    }

    /// Flipping any single byte anywhere in a v2 file is rejected: the
    /// header CRC, table CRC, per-section CRCs, and the zero checks on
    /// the only uncovered bytes (table pad, section padding) leave no
    /// byte whose corruption goes unnoticed.
    #[test]
    fn v2_detects_any_single_byte_corruption(
        (rows, cols, p, raw, nulls) in grid_parts(9, 3),
        theta in 0.02f64..0.3,
        pos_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let snap = random_snapshot(rows, cols, p, &raw, &nulls, theta);
        let bytes = snapshot_to_bytes_v2(&snap);
        let idx = ((pos_frac * bytes.len() as f64) as usize).min(bytes.len() - 1);
        let mut bad = bytes.clone();
        bad[idx] ^= 1 << bit;
        match snapshot_v2_from_bytes(&bad) {
            Err(ServeError::Format { .. }) | Err(ServeError::Checksum { .. }) => {}
            Ok(_) => {
                return Err(TestCaseError::Fail(format!(
                    "bit {bit} of byte {idx}/{} flipped, yet validation passed",
                    bytes.len()
                )));
            }
            Err(other) => {
                return Err(TestCaseError::Fail(format!(
                    "bit {bit} of byte {idx}/{} flipped, unexpected error {other:?}",
                    bytes.len()
                )));
            }
        }
    }
}
