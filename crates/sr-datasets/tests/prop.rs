//! Property-based tests for the dataset generators: determinism, schema
//! stability, autocorrelation, and value sanity across arbitrary seeds and
//! shapes.

use proptest::prelude::*;
use sr_datasets::{train_test_split, Dataset, GridSize};
use sr_grid::{morans_i, AdjacencyList};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Every dataset generates a well-formed grid at arbitrary shapes and
    /// seeds: finite values, consistent schema, mostly valid cells.
    #[test]
    fn generators_are_total_and_sane(
        seed in 0u64..1_000_000,
        rows in 12usize..30,
        cols in 12usize..30,
    ) {
        for ds in Dataset::ALL {
            let g = ds.generate(GridSize::Custom(rows, cols), seed);
            prop_assert_eq!(g.rows(), rows);
            prop_assert_eq!(g.cols(), cols);
            prop_assert!(g.num_valid_cells() * 2 > g.num_cells(), "{}", ds.name());
            for id in g.valid_cells() {
                for v in g.features_unchecked(id) {
                    prop_assert!(v.is_finite(), "{} cell {id}", ds.name());
                }
            }
            // Integer-typed attributes hold integers.
            for id in g.valid_cells() {
                let fv = g.features_unchecked(id);
                for (k, &int) in g.integer_attrs().iter().enumerate() {
                    if int {
                        prop_assert_eq!(fv[k], fv[k].round(), "{} attr {}", ds.name(), k);
                    }
                }
            }
        }
    }

    /// Determinism: same seed, same grid; different seed, different grid.
    #[test]
    fn generators_deterministic(seed in 0u64..100_000) {
        for ds in [Dataset::TaxiUnivariate, Dataset::EarningsMultivariate] {
            let a = ds.generate(GridSize::Mini, seed);
            let b = ds.generate(GridSize::Mini, seed);
            prop_assert_eq!(a, b);
        }
    }

    /// Autocorrelation holds for every seed, not just the defaults: the
    /// framework's premise must not depend on a lucky RNG draw.
    #[test]
    fn target_autocorrelated_for_all_seeds(seed in 0u64..10_000) {
        for ds in [Dataset::TaxiUnivariate, Dataset::HomeSalesMultivariate] {
            let g = ds.generate(GridSize::Mini, seed);
            let adj = AdjacencyList::rook_from_grid(&g);
            let mut vals = vec![0.0; g.num_cells()];
            for id in g.valid_cells() {
                vals[id as usize] = g.value(id, ds.target_attr());
            }
            let i = morans_i(&vals, &adj).unwrap();
            prop_assert!(i > 0.15, "{} seed {seed}: Moran's I {i}", ds.name());
        }
    }

    /// train_test_split always yields a disjoint, exhaustive partition with
    /// the expected sizes.
    #[test]
    fn split_partitions(n in 2usize..500, frac in 0.05f64..0.5, seed in 0u64..1000) {
        let (train, test) = train_test_split(n, frac, seed);
        prop_assert_eq!(train.len() + test.len(), n);
        prop_assert!(!test.is_empty());
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        all.dedup();
        prop_assert_eq!(all.len(), n);
        let expect = ((n as f64 * frac) as usize).max(1);
        prop_assert_eq!(test.len(), expect);
    }
}
