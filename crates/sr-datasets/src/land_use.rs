//! Synthetic mixed numeric/categorical grid exercising the `AggType::Mode`
//! extension (§VI future work): a land-use zoning map.
//!
//! Attributes: average property value (`Avg`), total activity count
//! (`Sum`), and a categorical land-use code (`Mode`) with four classes —
//! residential (1), commercial (2), industrial (3), park (4) — laid out as
//! spatially coherent zones derived from two smooth fields. Categories are
//! exactly constant within zones, so zone interiors merge freely while zone
//! boundaries block merging (the mismatch indicator dominates Eq. 1).

use crate::field::FieldGenerator;
use crate::taxi::apply_nulls;
use sr_grid::{AggType, Bounds, GridDataset};

/// Land-use class codes.
pub const RESIDENTIAL: f64 = 1.0;
/// Commercial zone code.
pub const COMMERCIAL: f64 = 2.0;
/// Industrial zone code.
pub const INDUSTRIAL: f64 = 3.0;
/// Park / green-space code.
pub const PARK: f64 = 4.0;

/// Generates the mixed-schema land-use grid.
pub fn mixed(rows: usize, cols: usize, seed: u64) -> GridDataset {
    let mut gen = FieldGenerator::new(rows, cols, seed ^ 0x1a4d);
    let density = gen.smooth(rows.max(cols) / 8 + 1);
    let industry = gen.smooth(rows.max(cols) / 10 + 1);
    let white = gen.noise();
    let nulls = gen.null_mask(rows.max(cols) / 10 + 1, 0.04);

    let n = rows * cols;
    let mut data = Vec::with_capacity(n * 3);
    for i in 0..n {
        // Zones carved from the two smooth fields.
        let land_use = if density[i] > 0.9 {
            COMMERCIAL
        } else if industry[i] > 0.8 {
            INDUSTRIAL
        } else if density[i] < -1.1 {
            PARK
        } else {
            RESIDENTIAL
        };
        let value = (250_000.0
            + 90_000.0 * density[i]
            + if land_use == COMMERCIAL { 120_000.0 } else { 0.0 }
            + if land_use == PARK { -60_000.0 } else { 0.0 }
            + 15_000.0 * white[i])
            .max(40_000.0);
        let activity = (1.0 + (0.9 * density[i] + 0.2 * white[i] + 2.5).exp()).round();
        data.extend_from_slice(&[value, activity, land_use]);
    }

    let mut g = GridDataset::new(
        rows,
        cols,
        3,
        data,
        vec![true; n],
        vec!["property_value".into(), "activity".into(), "land_use".into()],
        vec![AggType::Avg, AggType::Sum, AggType::Mode],
        vec![false, true, true],
        Bounds::unit(),
    )
    .expect("consistent construction");
    apply_nulls(&mut g, &nulls);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_are_valid_classes() {
        let g = mixed(24, 24, 3);
        for id in g.valid_cells() {
            let code = g.value(id, 2);
            assert!([RESIDENTIAL, COMMERCIAL, INDUSTRIAL, PARK].contains(&code), "bad code {code}");
        }
    }

    #[test]
    fn zones_are_spatially_coherent() {
        // Most adjacent pairs share a land-use class.
        let g = mixed(30, 30, 4);
        let mut same = 0usize;
        let mut total = 0usize;
        for r in 0..30 {
            for c in 0..29 {
                let a = g.cell_id(r, c);
                let b = g.cell_id(r, c + 1);
                if g.is_valid(a) && g.is_valid(b) {
                    total += 1;
                    if g.value(a, 2) == g.value(b, 2) {
                        same += 1;
                    }
                }
            }
        }
        assert!(same as f64 > 0.85 * total as f64, "zones too fragmented: {same}/{total}");
    }

    #[test]
    fn commercial_pricier_than_park() {
        let g = mixed(30, 30, 5);
        let mean_of = |class: f64| {
            let (mut s, mut c) = (0.0, 0usize);
            for id in g.valid_cells() {
                if g.value(id, 2) == class {
                    s += g.value(id, 0);
                    c += 1;
                }
            }
            s / c.max(1) as f64
        };
        let commercial = mean_of(COMMERCIAL);
        let park = mean_of(PARK);
        assert!(commercial > park, "commercial {commercial} vs park {park}");
    }

    #[test]
    fn class_mismatch_dominates_typed_variation() {
        // The property the re-partitioner relies on (verified end-to-end in
        // tests/categorical_attributes.rs, which owns the sr-core
        // dependency): any adjacent pair with differing classes has typed
        // variation ≥ 1/p, so no small threshold ever merges across a zone
        // boundary.
        use sr_grid::{normalize_attributes, variation_between_typed};
        let g = mixed(20, 20, 6);
        let norm = normalize_attributes(&g);
        let aggs = norm.agg_types();
        let mut boundary_pairs = 0usize;
        for r in 0..norm.rows() {
            for c in 0..norm.cols() - 1 {
                let a = norm.cell_id(r, c);
                let b = norm.cell_id(r, c + 1);
                if norm.is_valid(a) && norm.is_valid(b) {
                    let fa = norm.features_unchecked(a);
                    let fb = norm.features_unchecked(b);
                    if fa[2] != fb[2] {
                        boundary_pairs += 1;
                        let v = variation_between_typed(&fa, &fb, aggs);
                        assert!(v >= 1.0 / 3.0, "class mismatch must dominate, got {v}");
                    }
                }
            }
        }
        assert!(boundary_pairs > 0, "the map should contain zone boundaries");
    }
}
