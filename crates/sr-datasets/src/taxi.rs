//! Synthetic NYC-taxi-trip grids (paper \[37\]).
//!
//! The paper's preparation (§IV-A2): a univariate grid with the number of
//! pickups per cell during a month, and a multivariate grid with total
//! #pickups, total #passengers, summed trip distance, and summed fares per
//! cell. All four are additive quantities → `Sum` aggregation. Demand
//! follows a smooth intensity surface (Manhattan-style hot core, quiet
//! periphery); passengers, distance, and fares derive from pickups with
//! their own spatial modulation, so the fare target is predictable from the
//! other attributes yet retains spatial structure.

use crate::field::FieldGenerator;
use sr_grid::{AggType, Bounds, GridDataset};

/// NYC-ish bounding box used by the taxi grids.
fn nyc_bounds() -> Bounds {
    Bounds { lat_min: 40.55, lat_max: 40.95, lon_min: -74.10, lon_max: -73.70 }
}

/// Pickup-count surface shared by both variants: log-normal demand over a
/// smooth field, ≥ 1 pickup in every non-null cell.
fn pickup_surface(gen: &mut FieldGenerator) -> Vec<f64> {
    let (rows, cols) = gen.dims();
    let demand = gen.smooth(rows.max(cols) / 12 + 1);
    let micro = gen.smooth(2);
    let white = gen.noise();
    // The iid term gives neighbors a ~20% relative spread, mirroring the
    // shot noise of real monthly pickup counts.
    (0..rows * cols)
        .map(|i| (1.0 + (1.1 * demand[i] + 0.3 * micro[i] + 0.2 * white[i] + 3.4).exp()).round())
        .collect()
}

/// Univariate taxi grid: #pickups per cell.
pub fn univariate(rows: usize, cols: usize, seed: u64) -> GridDataset {
    let mut gen = FieldGenerator::new(rows, cols, seed ^ 0x7a71);
    let pickups = pickup_surface(&mut gen);
    let nulls = gen.null_mask(rows.max(cols) / 10 + 1, 0.06);

    let mut g = GridDataset::new(
        rows,
        cols,
        1,
        pickups,
        vec![true; rows * cols],
        vec!["pickups".into()],
        vec![AggType::Sum],
        vec![true],
        nyc_bounds(),
    )
    .expect("consistent construction");
    apply_nulls(&mut g, &nulls);
    g
}

/// Multivariate taxi grid: #pickups, #passengers, Σ distance (mi), Σ fare
/// ($). Target attribute: fare (index 3).
pub fn multivariate(rows: usize, cols: usize, seed: u64) -> GridDataset {
    let mut gen = FieldGenerator::new(rows, cols, seed ^ 0x7a72);
    let pickups = pickup_surface(&mut gen);
    let occupancy = gen.smooth(rows.max(cols) / 16 + 1); // passengers/trip field
    let trip_len = gen.smooth(rows.max(cols) / 10 + 1); // distance/trip field
                                                        // Unobserved surge pricing: spatially autocorrelated but NOT derivable
                                                        // from the other attributes. This is the component spatial models
                                                        // recover through the neighborhood structure — and the component
                                                        // sampling's broken adjacency loses (§I).
    let surge = gen.smooth(rows.max(cols) / 9 + 1);
    let noise = gen.noise();
    let nulls = gen.null_mask(rows.max(cols) / 10 + 1, 0.06);

    let n = rows * cols;
    let mut data = Vec::with_capacity(n * 4);
    for i in 0..n {
        let p = pickups[i];
        let passengers = (p * (1.4 + 0.25 * occupancy[i])).round().max(p);
        let avg_miles = 2.2 + 0.8 * trip_len[i].max(-2.0);
        let distance = p * avg_miles;
        // NYC-style fare: flag drop + per-mile rate, modulated by the
        // unobserved surge surface plus per-cell shot noise.
        let fare = (p * 3.3 + distance * 2.5) * (1.0 + 0.22 * surge[i]) + 2.0 * noise[i] * p.sqrt();
        data.extend_from_slice(&[p, passengers, distance, fare]);
    }

    let mut g = GridDataset::new(
        rows,
        cols,
        4,
        data,
        vec![true; n],
        vec!["pickups".into(), "passengers".into(), "distance_sum".into(), "fare_sum".into()],
        vec![AggType::Sum, AggType::Sum, AggType::Sum, AggType::Sum],
        vec![true, true, false, false],
        nyc_bounds(),
    )
    .expect("consistent construction");
    apply_nulls(&mut g, &nulls);
    g
}

/// Applies a coherent null mask to a freshly built grid.
pub(crate) fn apply_nulls(g: &mut GridDataset, mask: &[bool]) {
    for (i, &m) in mask.iter().enumerate() {
        if m {
            g.set_null(i as u32);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn univariate_counts_positive_integers() {
        let g = univariate(24, 24, 5);
        for id in g.valid_cells() {
            let v = g.value(id, 0);
            assert!(v >= 1.0);
            assert_eq!(v, v.round());
        }
    }

    #[test]
    fn multivariate_internal_consistency() {
        let g = multivariate(24, 24, 5);
        for id in g.valid_cells() {
            let fv = g.features(id).unwrap();
            let (p, pass, dist, fare) = (fv[0], fv[1], fv[2], fv[3]);
            assert!(pass >= p, "passengers at least one per pickup");
            assert!(dist > 0.0);
            // Fare grows with pickups and distance.
            assert!(fare > p * 3.0, "fare {fare} vs pickups {p}");
        }
    }

    #[test]
    fn fare_correlates_with_distance() {
        let g = multivariate(30, 30, 9);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for id in g.valid_cells() {
            let fv = g.features(id).unwrap();
            xs.push(fv[2]);
            ys.push(fv[3]);
        }
        let corr = crate::testutil::pearson(&xs, &ys);
        assert!(corr > 0.9, "distance/fare correlation {corr}");
    }

    #[test]
    fn has_null_patches() {
        let g = univariate(40, 40, 6);
        let nulls = g.num_cells() - g.num_valid_cells();
        let frac = nulls as f64 / g.num_cells() as f64;
        assert!(frac > 0.02 && frac < 0.12, "null fraction {frac}");
    }
}
