//! Synthetic NYC LEHD block-level earnings grids (paper \[39\]).
//!
//! The paper's preparation: a univariate grid with the total #jobs per cell,
//! and a multivariate grid with land area, water area, and #jobs in three
//! monthly-earnings bands (≤ $1250, $1251–$3333, ≥ $3333). Job counts are
//! `Sum`-aggregated; the area attributes are intensive (`Avg`). The
//! high-earning band concentrates in commercial cores, giving the target a
//! distinct spatial profile from the low-earning band.

use crate::field::{sigmoid, FieldGenerator};
use crate::taxi::apply_nulls;
use sr_grid::{AggType, Bounds, GridDataset};

/// NYC-ish bounding box (covers all five boroughs).
fn nyc_bounds() -> Bounds {
    Bounds { lat_min: 40.49, lat_max: 40.92, lon_min: -74.27, lon_max: -73.68 }
}

/// Total-jobs surface shared by both variants.
fn jobs_surface(gen: &mut FieldGenerator) -> (Vec<f64>, Vec<f64>) {
    let (rows, cols) = gen.dims();
    let employment = gen.smooth(rows.max(cols) / 10 + 1);
    let cores = gen.smooth(rows.max(cols) / 20 + 1); // commercial cores
    let white = gen.noise();
    let jobs: Vec<f64> = (0..rows * cols)
        .map(|i| {
            (2.0 + (1.2 * employment[i] + 0.6 * cores[i].max(0.0) + 0.22 * white[i] + 3.5).exp())
                .round()
        })
        .collect();
    (jobs, cores)
}

/// Univariate earnings grid: total #jobs per cell.
pub fn univariate(rows: usize, cols: usize, seed: u64) -> GridDataset {
    let mut gen = FieldGenerator::new(rows, cols, seed ^ 0xea01);
    let (jobs, _) = jobs_surface(&mut gen);
    let nulls = gen.null_mask(rows.max(cols) / 10 + 1, 0.05);

    let n = rows * cols;
    let mut g = GridDataset::new(
        rows,
        cols,
        1,
        jobs,
        vec![true; n],
        vec!["jobs".into()],
        vec![AggType::Sum],
        vec![true],
        nyc_bounds(),
    )
    .expect("consistent construction");
    apply_nulls(&mut g, &nulls);
    g
}

/// Multivariate earnings grid: land area, water area, #jobs ≤ $1250/mo,
/// #jobs $1251–$3333/mo, #jobs ≥ $3333/mo. Target attribute: high-earning
/// jobs (index 4).
pub fn multivariate(rows: usize, cols: usize, seed: u64) -> GridDataset {
    let mut gen = FieldGenerator::new(rows, cols, seed ^ 0xea02);
    let (jobs, cores) = jobs_surface(&mut gen);
    let waterfront = gen.smooth(rows.max(cols) / 8 + 1);
    // Unobserved industry-mix field: shifts the earning-band split
    // independently of every stored attribute (the spatial signal the
    // adjacency-aware models can exploit).
    let sector = gen.smooth(rows.max(cols) / 9 + 1);
    let noise = gen.noise();
    let nulls = gen.null_mask(rows.max(cols) / 10 + 1, 0.05);

    let n = rows * cols;
    let mut data = Vec::with_capacity(n * 5);
    for i in 0..n {
        // Census-block areas in m²; water share rises near "waterfront".
        let total_area = 12_000.0 + 2_500.0 * noise[i].abs();
        let water_share = 0.25 * sigmoid(2.0 * waterfront[i] - 2.0);
        let water_area = (total_area * water_share).round();
        let land_area = (total_area - water_area).round();
        // Earning-band mix shifts toward high earners in commercial cores.
        let high_share = 0.15 + 0.32 * sigmoid(1.2 * cores[i] + 0.9 * sector[i]);
        let low_share = (0.45 - 0.25 * sigmoid(1.6 * cores[i])).max(0.08);
        let jobs_high = (jobs[i] * high_share).round();
        let jobs_low = (jobs[i] * low_share).round();
        let jobs_mid = (jobs[i] - jobs_high - jobs_low).max(0.0);
        data.extend_from_slice(&[land_area, water_area, jobs_low, jobs_mid, jobs_high]);
    }

    let mut g = GridDataset::new(
        rows,
        cols,
        5,
        data,
        vec![true; n],
        vec![
            "land_area".into(),
            "water_area".into(),
            "jobs_low".into(),
            "jobs_mid".into(),
            "jobs_high".into(),
        ],
        vec![AggType::Avg, AggType::Avg, AggType::Sum, AggType::Sum, AggType::Sum],
        vec![true, true, true, true, true],
        nyc_bounds(),
    )
    .expect("consistent construction");
    apply_nulls(&mut g, &nulls);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn job_bands_sum_to_total_scale() {
        let g = multivariate(24, 24, 6);
        for id in g.valid_cells() {
            let fv = g.features(id).unwrap();
            let (low, mid, high) = (fv[2], fv[3], fv[4]);
            assert!(low >= 0.0 && mid >= 0.0 && high >= 0.0);
            assert!(low + mid + high >= 2.0, "at least the base job count");
        }
    }

    #[test]
    fn areas_are_positive_and_bounded() {
        let g = multivariate(24, 24, 7);
        for id in g.valid_cells() {
            let fv = g.features(id).unwrap();
            assert!(fv[0] > 0.0, "land area");
            assert!(fv[1] >= 0.0, "water area");
            assert!(fv[1] < fv[0], "water below land for inland blocks");
        }
    }

    #[test]
    fn univariate_jobs_positive() {
        let g = univariate(20, 20, 8);
        for id in g.valid_cells() {
            assert!(g.value(id, 0) >= 2.0);
        }
    }

    #[test]
    fn high_band_concentrates_spatially() {
        // The high-earning share should vary across space (commercial cores
        // vs periphery): coefficient of variation of high share > 0.1.
        let g = multivariate(30, 30, 9);
        let shares: Vec<f64> = g
            .valid_cells()
            .map(|id| {
                let fv = g.features(id).unwrap();
                let total = fv[2] + fv[3] + fv[4];
                fv[4] / total.max(1.0)
            })
            .collect();
        let mean = shares.iter().sum::<f64>() / shares.len() as f64;
        let sd = (shares.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>()
            / shares.len() as f64)
            .sqrt();
        assert!(sd / mean > 0.1, "cv {}", sd / mean);
    }
}
