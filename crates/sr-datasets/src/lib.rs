//! Synthetic spatially-autocorrelated dataset generators.
//!
//! The paper evaluates on four real-world datasets (NYC taxi trips \[37\],
//! King-County home sales \[7\], Chicago abandoned vehicles \[38\], NYC LEHD
//! earnings \[39\]) prepared as six grid datasets: three multivariate and
//! three univariate. Those files are not available here, so this crate
//! synthesizes statistically equivalent stand-ins (DESIGN.md, substitution
//! 1): every attribute is driven by smooth Gaussian-random-field layers
//! (strong positive spatial autocorrelation — the property re-partitioning
//! exploits and sampling destroys), attribute cross-correlations follow each
//! dataset's schema, count-valued attributes use `Sum` aggregation, and null
//! cells appear in spatially coherent patches.
//!
//! Entry points: [`Dataset`] enumerates the six evaluation datasets and
//! [`Dataset::generate`] produces a [`sr_grid::GridDataset`] at any
//! [`GridSize`]. Individual generators live in the per-dataset modules.

pub mod earnings;
pub mod field;
pub mod home_sales;
pub mod land_use;
pub mod size;
pub mod split;
pub mod taxi;
pub mod vehicles;

pub use field::FieldGenerator;
pub use size::GridSize;
pub use split::train_test_split;

use sr_grid::GridDataset;

#[cfg(test)]
pub(crate) mod testutil {
    /// Pearson correlation, shared by generator sanity tests.
    pub(crate) fn pearson(x: &[f64], y: &[f64]) -> f64 {
        let n = x.len() as f64;
        let mx = x.iter().sum::<f64>() / n;
        let my = y.iter().sum::<f64>() / n;
        let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
        for (a, b) in x.iter().zip(y) {
            cov += (a - mx) * (b - my);
            vx += (a - mx) * (a - mx);
            vy += (b - my) * (b - my);
        }
        cov / (vx.sqrt() * vy.sqrt())
    }
}

/// The six evaluation datasets of §IV (three multivariate, three
/// univariate).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Dataset {
    /// NYC taxi trips, multivariate: #pickups, #passengers, Σ distance,
    /// Σ fare (target: fare).
    TaxiMultivariate,
    /// NYC taxi trips, univariate: #pickups per cell.
    TaxiUnivariate,
    /// King-County home sales, multivariate: price, #bedrooms, #bathrooms,
    /// living area, lot size, build year, renovation year (target: price).
    HomeSalesMultivariate,
    /// Chicago abandoned vehicles, univariate: #service requests per cell.
    VehiclesUnivariate,
    /// NYC LEHD earnings, multivariate: land area, water area, #jobs in
    /// three earning bands (target: #jobs ≥ $3333/month).
    EarningsMultivariate,
    /// NYC LEHD earnings, univariate: total #jobs per cell.
    EarningsUnivariate,
}

impl Dataset {
    /// All six datasets, in the order the paper's figures present them.
    pub const ALL: [Dataset; 6] = [
        Dataset::TaxiMultivariate,
        Dataset::HomeSalesMultivariate,
        Dataset::EarningsMultivariate,
        Dataset::TaxiUnivariate,
        Dataset::VehiclesUnivariate,
        Dataset::EarningsUnivariate,
    ];

    /// The three multivariate datasets (regression / classification
    /// experiments).
    pub const MULTIVARIATE: [Dataset; 3] =
        [Dataset::TaxiMultivariate, Dataset::HomeSalesMultivariate, Dataset::EarningsMultivariate];

    /// The three univariate datasets (kriging experiments).
    pub const UNIVARIATE: [Dataset; 3] =
        [Dataset::TaxiUnivariate, Dataset::VehiclesUnivariate, Dataset::EarningsUnivariate];

    /// Display name matching the paper's figure captions.
    pub fn name(&self) -> &'static str {
        match self {
            Dataset::TaxiMultivariate => "Taxi trip multivariate",
            Dataset::TaxiUnivariate => "Taxi trip univariate",
            Dataset::HomeSalesMultivariate => "Home sales multivariate",
            Dataset::VehiclesUnivariate => "Vehicles univariate",
            Dataset::EarningsMultivariate => "Earnings multivariate",
            Dataset::EarningsUnivariate => "Earnings univariate",
        }
    }

    /// Whether the dataset has more than one attribute.
    pub fn is_multivariate(&self) -> bool {
        matches!(
            self,
            Dataset::TaxiMultivariate
                | Dataset::HomeSalesMultivariate
                | Dataset::EarningsMultivariate
        )
    }

    /// Index of the regression / classification target attribute within the
    /// generated schema (§IV-C1: fare for taxi, price for home sales,
    /// high-earning jobs for earnings). Univariate datasets target their
    /// single attribute.
    pub fn target_attr(&self) -> usize {
        match self {
            Dataset::TaxiMultivariate => 3,      // fare sum
            Dataset::HomeSalesMultivariate => 0, // price
            Dataset::EarningsMultivariate => 4,  // jobs ≥ $3333/month
            _ => 0,
        }
    }

    /// Generates the dataset at the given size, deterministically in `seed`.
    pub fn generate(&self, size: GridSize, seed: u64) -> GridDataset {
        let (rows, cols) = size.dims();
        match self {
            Dataset::TaxiMultivariate => taxi::multivariate(rows, cols, seed),
            Dataset::TaxiUnivariate => taxi::univariate(rows, cols, seed),
            Dataset::HomeSalesMultivariate => home_sales::multivariate(rows, cols, seed),
            Dataset::VehiclesUnivariate => vehicles::univariate(rows, cols, seed),
            Dataset::EarningsMultivariate => earnings::multivariate(rows, cols, seed),
            Dataset::EarningsUnivariate => earnings::univariate(rows, cols, seed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_grid::{morans_i, AdjacencyList};

    #[test]
    fn all_datasets_generate_and_are_autocorrelated() {
        for ds in Dataset::ALL {
            let g = ds.generate(GridSize::Mini, 7);
            assert_eq!(g.rows() * g.cols(), g.num_cells());
            assert!(g.num_valid_cells() > g.num_cells() / 2, "{}", ds.name());
            // Target attribute shows positive spatial autocorrelation.
            let adj = AdjacencyList::rook_from_grid(&g);
            let mut vals = vec![0.0; g.num_cells()];
            for id in g.valid_cells() {
                vals[id as usize] = g.value(id, ds.target_attr());
            }
            let i = morans_i(&vals, &adj).unwrap();
            assert!(i > 0.25, "{} Moran's I too low: {i}", ds.name());
        }
    }

    #[test]
    fn generation_is_deterministic() {
        for ds in Dataset::ALL {
            let a = ds.generate(GridSize::Mini, 11);
            let b = ds.generate(GridSize::Mini, 11);
            assert_eq!(a, b, "{}", ds.name());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = Dataset::TaxiUnivariate.generate(GridSize::Mini, 1);
        let b = Dataset::TaxiUnivariate.generate(GridSize::Mini, 2);
        assert_ne!(a, b);
    }

    #[test]
    fn target_attr_in_range() {
        for ds in Dataset::ALL {
            let g = ds.generate(GridSize::Mini, 3);
            assert!(ds.target_attr() < g.num_attrs());
        }
    }
}
