//! Grid-size presets matching the paper's evaluation (§IV-A2): ≈36k, ≈78k,
//! and ≈100k cells, plus small sizes for tests and fast experiments.

/// Grid resolution presets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GridSize {
    /// 20 × 20 = 400 cells (unit tests).
    Mini,
    /// 48 × 48 ≈ 2.3k cells (fast model-training experiments).
    Tiny,
    /// 80 × 80 = 6.4k cells (medium model-training experiments).
    Small,
    /// 191 × 193 ≈ 36k cells (paper's smallest evaluation grid).
    Cells36k,
    /// 279 × 280 ≈ 78k cells.
    Cells78k,
    /// 315 × 318 ≈ 100k cells (paper's largest evaluation grid).
    Cells100k,
    /// Arbitrary `rows × cols`.
    Custom(usize, usize),
}

impl GridSize {
    /// The paper's three evaluation resolutions in ascending order.
    pub const PAPER_SIZES: [GridSize; 3] =
        [GridSize::Cells36k, GridSize::Cells78k, GridSize::Cells100k];

    /// `(rows, cols)` of this preset.
    pub fn dims(&self) -> (usize, usize) {
        match self {
            GridSize::Mini => (20, 20),
            GridSize::Tiny => (48, 48),
            GridSize::Small => (80, 80),
            GridSize::Cells36k => (191, 193),
            GridSize::Cells78k => (279, 280),
            GridSize::Cells100k => (315, 318),
            GridSize::Custom(r, c) => (*r, *c),
        }
    }

    /// Total number of cells.
    pub fn num_cells(&self) -> usize {
        let (r, c) = self.dims();
        r * c
    }

    /// Short label used in experiment output ("36k", "78k", "100k", …).
    pub fn label(&self) -> String {
        match self {
            GridSize::Cells36k => "36k".to_string(),
            GridSize::Cells78k => "78k".to_string(),
            GridSize::Cells100k => "100k".to_string(),
            other => {
                let (r, c) = other.dims();
                format!("{}x{}", r, c)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_sizes_match_cell_counts() {
        assert_eq!(GridSize::Cells36k.num_cells(), 191 * 193); // 36_863
        assert_eq!(GridSize::Cells78k.num_cells(), 279 * 280); // 78_120
        assert_eq!(GridSize::Cells100k.num_cells(), 315 * 318); // 100_170
        assert!((GridSize::Cells36k.num_cells() as f64 - 36_000.0).abs() < 1_000.0);
        assert!((GridSize::Cells100k.num_cells() as f64 - 100_000.0).abs() < 500.0);
    }

    #[test]
    fn labels_and_custom() {
        assert_eq!(GridSize::Cells100k.label(), "100k");
        assert_eq!(GridSize::Custom(10, 12).label(), "10x12");
        assert_eq!(GridSize::Custom(10, 12).dims(), (10, 12));
    }
}
