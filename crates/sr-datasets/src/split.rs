//! Train/test splitting (§III-B: "we split each dataset into two parts —
//! training data (80%) and test data (20%)").

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Returns `(train_indices, test_indices)` over `0..n`, with
/// `test_fraction` of the indices (rounded down, at least 1 when `n > 1`)
/// held out. Deterministic in `seed`.
pub fn train_test_split(n: usize, test_fraction: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
    assert!((0.0..1.0).contains(&test_fraction), "test_fraction must be in [0, 1)");
    let mut idx: Vec<usize> = (0..n).collect();
    let mut rng = SmallRng::seed_from_u64(seed);
    idx.shuffle(&mut rng);
    let mut n_test = (n as f64 * test_fraction) as usize;
    if n_test == 0 && n > 1 && test_fraction > 0.0 {
        n_test = 1;
    }
    let test = idx.split_off(n - n_test);
    (idx, test)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_is_a_partition() {
        let (train, test) = train_test_split(100, 0.2, 1);
        assert_eq!(train.len(), 80);
        assert_eq!(test.len(), 20);
        let mut all: Vec<usize> = train.iter().chain(test.iter()).copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn deterministic_in_seed() {
        assert_eq!(train_test_split(50, 0.2, 7), train_test_split(50, 0.2, 7));
        assert_ne!(train_test_split(50, 0.2, 7), train_test_split(50, 0.2, 8));
    }

    #[test]
    fn small_n_keeps_at_least_one_test_point() {
        let (train, test) = train_test_split(3, 0.2, 1);
        assert_eq!(test.len(), 1);
        assert_eq!(train.len(), 2);
    }

    #[test]
    fn zero_fraction_gives_empty_test() {
        let (train, test) = train_test_split(10, 0.0, 1);
        assert!(test.is_empty());
        assert_eq!(train.len(), 10);
    }

    #[test]
    #[should_panic]
    fn fraction_one_rejected() {
        let _ = train_test_split(10, 1.0, 1);
    }
}
