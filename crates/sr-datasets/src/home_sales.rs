//! Synthetic King-County home-sales grid (paper \[7\]).
//!
//! The paper's preparation: seven attributes per cell, each the *average*
//! over the sales records falling in the cell — price, #bedrooms,
//! #bathrooms, living-area size, lot size, build year, renovation year. All
//! are `Avg`-aggregated; bedrooms/bathrooms/years are integer-typed (their
//! cell averages round to the nearest integer, matching the paper's
//! Example 4 treatment of integer attributes).
//!
//! Price is driven by structure (living area, bedrooms, bathrooms) plus a
//! smooth location-premium field, so hedonic regressions recover meaningful
//! coefficients and GWR sees genuine spatial heterogeneity.

use crate::field::{sigmoid, FieldGenerator};
use crate::taxi::apply_nulls;
use sr_grid::{AggType, Bounds, GridDataset};

/// King-County-ish bounding box.
fn king_county_bounds() -> Bounds {
    Bounds { lat_min: 47.15, lat_max: 47.78, lon_min: -122.52, lon_max: -121.31 }
}

/// Multivariate home-sales grid. Target attribute: price (index 0).
pub fn multivariate(rows: usize, cols: usize, seed: u64) -> GridDataset {
    let mut gen = FieldGenerator::new(rows, cols, seed ^ 0x4053);
    let premium = gen.smooth(rows.max(cols) / 10 + 1); // location desirability
    let density = gen.smooth(rows.max(cols) / 14 + 1); // urban ↔ suburban
    let age = gen.smooth(rows.max(cols) / 12 + 1); // development era
    let noise = gen.noise();
    let noise2 = gen.noise();
    let noise3 = gen.noise();
    let nulls = gen.null_mask(rows.max(cols) / 10 + 1, 0.08);

    let n = rows * cols;
    let mut data = Vec::with_capacity(n * 7);
    for i in 0..n {
        // Denser areas: smaller homes, smaller lots.
        let bedrooms = (2.0 + 3.0 * sigmoid(-density[i] + 0.3 * noise[i])).round();
        let bathrooms = (bedrooms * 0.6 + 0.4 * sigmoid(noise2[i])).round().max(1.0);
        let living_area =
            (650.0 + 520.0 * bedrooms + 260.0 * premium[i] + 190.0 * noise[i]).max(400.0);
        let lot_size = (3000.0 + 9000.0 * sigmoid(-density[i]) + 1600.0 * noise2[i]).max(800.0);
        let build_year = (1960.0 + 28.0 * age[i] + 6.0 * noise[i]).clamp(1900.0, 2015.0).round();
        // ~30% of stock renovated; renovation year 0 otherwise (the real
        // dataset uses 0 for never-renovated).
        let renovated = sigmoid(age[i] + noise2[i]) > 0.62;
        let renovation_year = if renovated {
            (build_year + 20.0 + 10.0 * sigmoid(noise[i])).clamp(1950.0, 2015.0).round()
        } else {
            0.0
        };
        let price = (95_000.0
            + 185.0 * living_area
            + 10_500.0 * bathrooms
            + 2.1 * lot_size
            + 120_000.0 * premium[i]
            + 350.0 * (build_year - 1900.0)
            + 42_000.0 * noise3[i])
            .max(60_000.0);
        data.extend_from_slice(&[
            price,
            bedrooms,
            bathrooms,
            living_area,
            lot_size,
            build_year,
            renovation_year,
        ]);
    }

    let mut g = GridDataset::new(
        rows,
        cols,
        7,
        data,
        vec![true; n],
        vec![
            "price".into(),
            "bedrooms".into(),
            "bathrooms".into(),
            "living_area".into(),
            "lot_size".into(),
            "build_year".into(),
            "renovation_year".into(),
        ],
        vec![AggType::Avg; 7],
        vec![false, true, true, false, false, true, true],
        king_county_bounds(),
    )
    .expect("consistent construction");
    apply_nulls(&mut g, &nulls);
    g
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn attribute_ranges_are_sane() {
        let g = multivariate(24, 24, 8);
        for id in g.valid_cells() {
            let fv = g.features(id).unwrap();
            assert!(fv[0] >= 60_000.0, "price {}", fv[0]);
            assert!((1.0..=6.0).contains(&fv[1]), "bedrooms {}", fv[1]);
            assert!(fv[2] >= 1.0, "bathrooms {}", fv[2]);
            assert!(fv[3] >= 400.0, "living area {}", fv[3]);
            assert!((1900.0..=2015.0).contains(&fv[5]), "build year {}", fv[5]);
            assert!(fv[6] == 0.0 || fv[6] >= fv[5], "renovation before build");
        }
    }

    #[test]
    fn integer_attrs_are_integers() {
        let g = multivariate(20, 20, 3);
        for id in g.valid_cells() {
            let fv = g.features(id).unwrap();
            for k in [1usize, 2, 5, 6] {
                assert_eq!(fv[k], fv[k].round(), "attr {k} not integral");
            }
        }
    }

    #[test]
    fn price_correlates_with_living_area() {
        let g = multivariate(30, 30, 4);
        let mut area = Vec::new();
        let mut price = Vec::new();
        for id in g.valid_cells() {
            let fv = g.features(id).unwrap();
            price.push(fv[0]);
            area.push(fv[3]);
        }
        let corr = crate::testutil::pearson(&area, &price);
        assert!(corr > 0.6, "area/price correlation {corr}");
    }

    #[test]
    fn some_homes_renovated_some_not() {
        let g = multivariate(30, 30, 5);
        let mut renovated = 0usize;
        let mut total = 0usize;
        for id in g.valid_cells() {
            total += 1;
            if g.value(id, 6) > 0.0 {
                renovated += 1;
            }
        }
        let frac = renovated as f64 / total as f64;
        assert!(frac > 0.05 && frac < 0.9, "renovated fraction {frac}");
    }
}
