//! Synthetic Chicago abandoned-vehicles grid (paper \[38\]).
//!
//! The paper counts 311 service requests per cell → a univariate,
//! `Sum`-aggregated count surface. Abandonment concentrates in a few
//! corridors, so the intensity mixes a broad urban gradient with sharper
//! hotspot streaks; counts are small integers with many low-valued cells.

use crate::field::FieldGenerator;
use crate::taxi::apply_nulls;
use sr_grid::{AggType, Bounds, GridDataset};

/// Chicago-ish bounding box.
fn chicago_bounds() -> Bounds {
    Bounds { lat_min: 41.64, lat_max: 42.02, lon_min: -87.94, lon_max: -87.52 }
}

/// Univariate abandoned-vehicles grid: #service requests per cell.
pub fn univariate(rows: usize, cols: usize, seed: u64) -> GridDataset {
    let mut gen = FieldGenerator::new(rows, cols, seed ^ 0xc41c);
    let urban = gen.smooth(rows.max(cols) / 8 + 1);
    let hotspots = gen.smooth(rows.max(cols) / 24 + 1);
    let white = gen.noise();
    let nulls = gen.null_mask(rows.max(cols) / 10 + 1, 0.07);

    let n = rows * cols;
    let counts: Vec<f64> = (0..n)
        .map(|i| {
            let intensity =
                (0.9 * urban[i] + 0.8 * hotspots[i].max(0.0) + 0.25 * white[i] + 3.0).exp();
            (1.0 + intensity).round()
        })
        .collect();

    let mut g = GridDataset::new(
        rows,
        cols,
        1,
        counts,
        vec![true; n],
        vec!["service_requests".into()],
        vec![AggType::Sum],
        vec![true],
        chicago_bounds(),
    )
    .expect("consistent construction");
    apply_nulls(&mut g, &nulls);
    g
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_grid::{morans_i, AdjacencyList};

    #[test]
    fn counts_are_positive_integers() {
        let g = univariate(24, 24, 2);
        for id in g.valid_cells() {
            let v = g.value(id, 0);
            assert!(v >= 1.0 && v == v.round());
        }
    }

    #[test]
    fn request_surface_is_autocorrelated() {
        let g = univariate(30, 30, 3);
        let adj = AdjacencyList::rook_from_grid(&g);
        let mut vals = vec![0.0; g.num_cells()];
        for id in g.valid_cells() {
            vals[id as usize] = g.value(id, 0);
        }
        assert!(morans_i(&vals, &adj).unwrap() > 0.3);
    }

    #[test]
    fn counts_are_skewed_with_hotspots() {
        let g = univariate(40, 40, 4);
        let vals: Vec<f64> = g.valid_cells().map(|id| g.value(id, 0)).collect();
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        let max = vals.iter().cloned().fold(0.0, f64::max);
        assert!(max > 3.0 * mean, "max {max} vs mean {mean}: expected hotspots");
    }
}
