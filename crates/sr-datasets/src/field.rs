//! Gaussian-random-field substrate for the dataset generators.
//!
//! Real spatial datasets exhibit strong positive autocorrelation (housing
//! prices, taxi demand, job density all vary smoothly over space). We
//! approximate a Gaussian random field by drawing seeded white noise on the
//! grid and applying several passes of a separable box blur — three passes
//! of a box filter are a classic O(n)-per-pass approximation to a Gaussian
//! kernel, and the result's Moran's I is strongly positive (asserted in
//! tests and in the generator crate).

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates standardized smooth fields over a fixed grid shape.
#[derive(Debug)]
pub struct FieldGenerator {
    rows: usize,
    cols: usize,
    rng: SmallRng,
}

impl FieldGenerator {
    /// Creates a generator for `rows × cols` fields, deterministic in
    /// `seed`.
    pub fn new(rows: usize, cols: usize, seed: u64) -> Self {
        FieldGenerator { rows, cols, rng: SmallRng::seed_from_u64(seed) }
    }

    /// Grid shape.
    pub fn dims(&self) -> (usize, usize) {
        (self.rows, self.cols)
    }

    /// A smooth field with zero mean and unit variance. `radius` controls
    /// the correlation length (in cells); larger radii give smoother fields.
    pub fn smooth(&mut self, radius: usize) -> Vec<f64> {
        let mut f: Vec<f64> =
            (0..self.rows * self.cols).map(|_| self.rng.gen_range(-1.0f64..1.0)).collect();
        let r = radius.max(1);
        for _ in 0..3 {
            box_blur_rows(&mut f, self.rows, self.cols, r);
            box_blur_cols(&mut f, self.rows, self.cols, r);
        }
        standardize(&mut f);
        f
    }

    /// Uncorrelated standard-normal-ish noise (uniform sum approximation),
    /// for per-cell measurement error.
    pub fn noise(&mut self) -> Vec<f64> {
        (0..self.rows * self.cols)
            .map(|_| {
                // Irwin–Hall with 4 terms ≈ normal, cheap and seedable.
                let s: f64 = (0..4).map(|_| self.rng.gen_range(-0.5f64..0.5)).sum();
                s * (3.0f64).sqrt() / 1.0
            })
            .collect()
    }

    /// A boolean mask marking spatially coherent null patches covering
    /// roughly `fraction` of the grid: thresholds a smooth field at its
    /// empirical quantile.
    pub fn null_mask(&mut self, radius: usize, fraction: f64) -> Vec<bool> {
        if fraction <= 0.0 {
            return vec![false; self.rows * self.cols];
        }
        let f = self.smooth(radius);
        let mut sorted = f.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let k = ((sorted.len() as f64 * fraction) as usize).min(sorted.len() - 1);
        let threshold = sorted[k];
        f.iter().map(|&v| v < threshold).collect()
    }

    /// Direct access to the underlying RNG for generator-specific draws.
    pub fn rng(&mut self) -> &mut SmallRng {
        &mut self.rng
    }
}

fn box_blur_rows(f: &mut [f64], rows: usize, cols: usize, radius: usize) {
    let mut out = vec![0.0; f.len()];
    for r in 0..rows {
        let row = &f[r * cols..(r + 1) * cols];
        // Sliding-window prefix sums keep each pass O(cols).
        let mut prefix = Vec::with_capacity(cols + 1);
        prefix.push(0.0);
        for &v in row {
            prefix.push(prefix.last().unwrap() + v);
        }
        for c in 0..cols {
            let lo = c.saturating_sub(radius);
            let hi = (c + radius + 1).min(cols);
            out[r * cols + c] = (prefix[hi] - prefix[lo]) / (hi - lo) as f64;
        }
    }
    f.copy_from_slice(&out);
}

fn box_blur_cols(f: &mut [f64], rows: usize, cols: usize, radius: usize) {
    let mut out = vec![0.0; f.len()];
    for c in 0..cols {
        let mut prefix = Vec::with_capacity(rows + 1);
        prefix.push(0.0);
        for r in 0..rows {
            prefix.push(prefix.last().unwrap() + f[r * cols + c]);
        }
        for r in 0..rows {
            let lo = r.saturating_sub(radius);
            let hi = (r + radius + 1).min(rows);
            out[r * cols + c] = (prefix[hi] - prefix[lo]) / (hi - lo) as f64;
        }
    }
    f.copy_from_slice(&out);
}

fn standardize(f: &mut [f64]) {
    let n = f.len() as f64;
    let mean = f.iter().sum::<f64>() / n;
    let var = f.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / n;
    let sd = var.sqrt();
    if sd > 0.0 {
        for v in f.iter_mut() {
            *v = (*v - mean) / sd;
        }
    } else {
        for v in f.iter_mut() {
            *v = 0.0;
        }
    }
}

/// Logistic squashing to (0, 1); handy for deriving probabilities or
/// bounded intensities from field values.
#[inline]
pub fn sigmoid(x: f64) -> f64 {
    1.0 / (1.0 + (-x).exp())
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_grid::{morans_i, AdjacencyList, GridDataset};

    #[test]
    fn smooth_field_is_standardized() {
        let mut g = FieldGenerator::new(30, 30, 1);
        let f = g.smooth(3);
        let mean = f.iter().sum::<f64>() / f.len() as f64;
        let var = f.iter().map(|&v| (v - mean) * (v - mean)).sum::<f64>() / f.len() as f64;
        assert!(mean.abs() < 1e-9);
        assert!((var - 1.0).abs() < 1e-9);
    }

    #[test]
    fn smooth_field_has_high_morans_i() {
        let mut g = FieldGenerator::new(30, 30, 2);
        let f = g.smooth(3);
        let grid = GridDataset::univariate(30, 30, f.clone()).unwrap();
        let adj = AdjacencyList::rook_from_grid(&grid);
        let i = morans_i(&f, &adj).unwrap();
        assert!(i > 0.7, "Moran's I = {i}");
    }

    #[test]
    fn larger_radius_is_smoother() {
        let mut g1 = FieldGenerator::new(40, 40, 3);
        let mut g2 = FieldGenerator::new(40, 40, 3);
        let f1 = g1.smooth(1);
        let f2 = g2.smooth(6);
        let grid = |f: &[f64]| GridDataset::univariate(40, 40, f.to_vec()).unwrap();
        let adj = AdjacencyList::rook_from_grid(&grid(&f1));
        let i1 = morans_i(&f1, &adj).unwrap();
        let i2 = morans_i(&f2, &adj).unwrap();
        assert!(i2 > i1, "radius 6 ({i2}) should beat radius 1 ({i1})");
    }

    #[test]
    fn null_mask_fraction_approximate() {
        let mut g = FieldGenerator::new(40, 40, 4);
        let mask = g.null_mask(4, 0.1);
        let frac = mask.iter().filter(|&&b| b).count() as f64 / mask.len() as f64;
        assert!((frac - 0.1).abs() < 0.03, "fraction {frac}");
        // Coherence: masked cells should mostly have masked neighbors.
        let mut adjacent_same = 0usize;
        let mut adjacent_total = 0usize;
        for r in 0..40 {
            for c in 0..39 {
                if mask[r * 40 + c] {
                    adjacent_total += 1;
                    if mask[r * 40 + c + 1] {
                        adjacent_same += 1;
                    }
                }
            }
        }
        assert!(adjacent_same as f64 > 0.6 * adjacent_total as f64);
    }

    #[test]
    fn zero_fraction_mask_is_empty() {
        let mut g = FieldGenerator::new(10, 10, 5);
        assert!(g.null_mask(2, 0.0).iter().all(|&b| !b));
    }

    #[test]
    fn noise_is_roughly_centered() {
        let mut g = FieldGenerator::new(50, 50, 6);
        let n = g.noise();
        let mean = n.iter().sum::<f64>() / n.len() as f64;
        assert!(mean.abs() < 0.05, "noise mean {mean}");
    }

    #[test]
    fn sigmoid_bounds() {
        assert!(sigmoid(-20.0) < 1e-6);
        assert!((sigmoid(0.0) - 0.5).abs() < 1e-12);
        assert!(sigmoid(20.0) > 1.0 - 1e-6);
    }
}
