//! The ingestion engine: accumulate → collapse → patch scan inputs →
//! re-partition incrementally → republish (`docs/INGESTION.md` §4–§6).
//!
//! Two maintenance tiers cooperate (the contract's "two-tier" rule):
//!
//! - **Per batch** ([`IngestEngine::apply_batch`]): points fold into the
//!   [`CellAccumulators`], collapsed values land in the grid, the
//!   [`ScanCache`] patches the driver's scan inputs over the dirty cells,
//!   and the live [`StreamingRepartitioner`] tier absorbs the same cells
//!   as split-on-write updates so its IFL budget keeps holding between
//!   exact re-partitions.
//! - **On demand** ([`IngestEngine::repartition`]): the driver re-runs its
//!   threshold walk over the patched scan inputs
//!   ([`Repartitioner::run_with_scan`]) — bit-identical to a from-scratch
//!   run on the accumulated data — and the live tier is re-seeded from the
//!   fresh result without a second driver run.
//!
//! [`IngestEngine::publish`] then writes the accepted result as a v2
//! snapshot through the same atomic temp-file + rename path the serving
//! tier's [`SnapshotCache`] reload contract expects.
//!
//! [`SnapshotCache`]: sr_serve::SnapshotCache

use crate::binning::{CellAccumulators, IngestSchema};
use crate::stream::PointChunk;
use crate::{IngestError, Result};
use sr_core::incremental::{ScanCache, ScanUpdate};
use sr_core::localized::LocalizedState;
use sr_core::repartition::{
    IterationStrategy, RepartitionConfig, RepartitionOutcome, Repartitioner,
};
use sr_core::streaming::{CellUpdate, StreamingRepartitioner};
use sr_grid::{Bounds, CellId, GridDataset, IflOptions};
use sr_serve::{save_snapshot_v2, snapshot_to_bytes_v2, Snapshot};
use std::path::Path;

/// Configuration of an [`IngestEngine`].
#[derive(Debug, Clone)]
pub struct IngestConfig {
    /// Grid rows (latitude intervals).
    pub rows: usize,
    /// Grid columns (longitude intervals).
    pub cols: usize,
    /// Geographic bounds points are binned against.
    pub bounds: Bounds,
    /// Stream attribute schema.
    pub schema: IngestSchema,
    /// IFL threshold θ the re-partitions maintain.
    pub threshold: f64,
    /// Driver iteration strategy; [`IngestConfig::new`] picks the strided
    /// default for large grids, mirroring `srtool repartition`.
    pub strategy: IterationStrategy,
    /// IFL options shared by the scan cache and the driver.
    pub ifl_options: IflOptions,
}

impl IngestConfig {
    /// Defaults for an `rows × cols` grid at threshold θ: unit bounds and
    /// the strided walk above 2000 cells (the streaming tier's cutover).
    pub fn new(rows: usize, cols: usize, schema: IngestSchema, threshold: f64) -> Self {
        let strategy = if rows * cols > 2_000 {
            IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 }
        } else {
            IterationStrategy::EveryDistinct
        };
        IngestConfig {
            rows,
            cols,
            bounds: Bounds::unit(),
            schema,
            threshold,
            strategy,
            ifl_options: IflOptions::default(),
        }
    }

    /// Replaces the bounds.
    pub fn with_bounds(mut self, bounds: Bounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// Replaces the iteration strategy.
    pub fn with_strategy(mut self, strategy: IterationStrategy) -> Self {
        self.strategy = strategy;
        self
    }
}

/// What one [`IngestEngine::apply_batch`] call did.
#[derive(Debug, Clone, Copy, Default)]
pub struct BatchReport {
    /// Points binned from the chunk.
    pub points: usize,
    /// Distinct cells the batch touched.
    pub dirty_cells: usize,
    /// How the scan cache absorbed the batch (patch vs rebuild).
    pub scan: ScanUpdate,
}

/// The out-of-core ingestion and incremental re-partitioning engine.
pub struct IngestEngine {
    config: IngestConfig,
    driver: Repartitioner,
    grid: GridDataset,
    accum: CellAccumulators,
    scan: ScanCache,
    /// Localized-walk state of the exact tier: extraction traces, the
    /// group rectangle cache, and the warm-start θ of the last run.
    localized: LocalizedState,
    /// Dirty-cell bits accumulated since the last exact re-partition (flat
    /// cell index); the localized run consumes and clears them.
    pending_dirty: Vec<bool>,
    /// Count of set bits in `pending_dirty`.
    pending_count: usize,
    /// Live split-on-write tier, seeded by the last exact re-partition.
    live: Option<StreamingRepartitioner>,
    /// Last accepted exact result plus the grid state it was computed on
    /// (the grid keeps mutating afterwards; publishing needs the pair).
    last: Option<(RepartitionOutcome, GridDataset)>,
    batches: u64,
    total_points: u64,
}

impl IngestEngine {
    /// Builds an engine over an initially empty (all-null) grid.
    pub fn new(config: IngestConfig) -> Result<Self> {
        if config.rows == 0 || config.cols == 0 {
            return Err(IngestError::Config("grid must have at least one cell".into()));
        }
        let driver = Repartitioner::with_config(RepartitionConfig {
            threshold: config.threshold,
            strategy: config.strategy,
            ifl_options: config.ifl_options,
            max_iterations: usize::MAX,
        })
        .map_err(IngestError::Core)?;
        let grid = config
            .schema
            .empty_grid(config.rows, config.cols, config.bounds)
            .map_err(IngestError::Grid)?;
        let accum = CellAccumulators::new(config.rows, config.cols, &config.schema);
        let scan = ScanCache::build(&grid, config.ifl_options);
        let pending_dirty = vec![false; config.rows * config.cols];
        Ok(IngestEngine {
            config,
            driver,
            grid,
            accum,
            scan,
            localized: LocalizedState::new(),
            pending_dirty,
            pending_count: 0,
            live: None,
            last: None,
            batches: 0,
            total_points: 0,
        })
    }

    /// Ingests one chunk: folds its points into the accumulators, writes
    /// the dirty cells' collapsed values into the grid, patches the scan
    /// cache, and forwards the dirty cells to the live tier (if seeded).
    ///
    /// Emits an `ingest.batch` span with an `ingest.bin` child and bumps
    /// `ingest.batches_total` / `ingest.points_total` /
    /// `ingest.dirty_cells_total` (+ `ingest.scan_rebuilds_total` when a
    /// batch forced the scan cache to rebuild).
    pub fn apply_batch(&mut self, chunk: &PointChunk) -> Result<BatchReport> {
        if chunk.num_attrs != self.config.schema.num_attrs() {
            return Err(IngestError::Config("chunk arity does not match the schema".into()));
        }
        let mut span = sr_obs::span("ingest.batch");
        let mut dirty: Vec<CellId> = Vec::new();
        let points = {
            let _bin = sr_obs::span("ingest.bin");
            let points = self.accum.bin_chunk(chunk, &self.config.bounds, &mut dirty);
            self.accum.write_into(&mut self.grid, &dirty);
            points
        };
        let scan = self.scan.update(&self.grid, &dirty);
        for &id in &dirty {
            let slot = &mut self.pending_dirty[id as usize];
            if !*slot {
                *slot = true;
                self.pending_count += 1;
            }
        }
        if scan.rebuilt_normalization {
            // Every edge variation was rescaled: recorded probe outcomes
            // and the warm θ no longer describe the edge view. The group
            // rectangle cache inside survives (raw-value based).
            self.localized.invalidate();
        }
        if let Some(live) = &mut self.live {
            let updates: Vec<CellUpdate> = dirty
                .iter()
                .map(|&cell| CellUpdate {
                    cell,
                    features: Some(self.grid.features_unchecked(cell)),
                })
                .collect();
            live.apply(&updates).map_err(IngestError::Core)?;
        }
        self.batches += 1;
        self.total_points += points as u64;
        let metrics = sr_obs::Registry::global();
        metrics.counter("ingest.batches_total").inc();
        metrics.counter("ingest.points_total").add(points as u64);
        metrics.counter("ingest.dirty_cells_total").add(dirty.len() as u64);
        if scan.rebuilt_normalization {
            metrics.counter("ingest.scan_rebuilds_total").inc();
        }
        span.record("points", points);
        span.record("dirty_cells", dirty.len());
        span.record("edges_recomputed", scan.edges_recomputed);
        Ok(BatchReport { points, dirty_cells: dirty.len(), scan })
    }

    /// Runs the exact incremental re-partition over the maintained scan
    /// inputs and re-seeds the live tier from the result. The run is
    /// *localized* ([`Repartitioner::run_localized`]): extraction replays
    /// the previous run's traces outside the dirty region, unchanged
    /// groups are served from the rectangle cache, and the threshold walk
    /// warm-starts from the last accepted θ — still bit-identical to a
    /// from-scratch driver run on the accumulated grid (the convergence
    /// guarantee of `docs/INGESTION.md` §5, property-tested at the root).
    ///
    /// Emits an `ingest.repartition` span (the driver's `repartition.run`
    /// tree nests beneath it) and bumps `ingest.repartitions_total` and
    /// `ingest.localized_runs_total` (+ `ingest.localized_fallbacks_total`
    /// when the run walked cold or missed its warm window).
    pub fn repartition(&mut self) -> Result<&RepartitionOutcome> {
        self.repartition_with(sr_par::Pool::global())
    }

    /// [`IngestEngine::repartition`] on an explicit pool.
    pub fn repartition_with(&mut self, pool: &sr_par::Pool) -> Result<&RepartitionOutcome> {
        let mut span = sr_obs::span("ingest.repartition");
        let dirty: Vec<CellId> = self
            .pending_dirty
            .iter()
            .enumerate()
            .filter_map(|(i, &d)| d.then_some(i as CellId))
            .collect();
        let outcome = self
            .driver
            .run_localized(&self.grid, &self.scan, &mut self.localized, &dirty, pool)
            .map_err(IngestError::Core)?;
        self.pending_dirty.iter_mut().for_each(|d| *d = false);
        self.pending_count = 0;
        self.live = Some(
            StreamingRepartitioner::from_repartitioned(
                self.grid.clone(),
                &outcome.repartitioned,
                self.config.threshold,
            )
            .map_err(IngestError::Core)?,
        );
        span.record("groups", outcome.repartitioned.num_groups());
        span.record("ifl", outcome.repartitioned.ifl());
        span.record("dirty_cells", dirty.len());
        let metrics = sr_obs::Registry::global();
        metrics.counter("ingest.repartitions_total").inc();
        metrics.counter("ingest.localized_runs_total").inc();
        if self.localized.last_run_was_fallback() {
            metrics.counter("ingest.localized_fallbacks_total").inc();
        }
        self.last = Some((outcome, self.grid.clone()));
        Ok(&self.last.as_ref().unwrap().0)
    }

    /// Publishes the last re-partition as a v2 snapshot at `path` —
    /// written to a temp file, fsynced, and atomically renamed, so a
    /// serving [`sr_serve::SnapshotCache`] polling the path either keeps
    /// the old bytes or sees the new ones, never a torn file.
    ///
    /// Emits an `ingest.publish` span and bumps `ingest.publishes_total`,
    /// or `ingest.publish_failures_total` when the build/write fails (the
    /// previous snapshot on disk stays intact either way).
    pub fn publish(&self, path: impl AsRef<Path>) -> Result<()> {
        let mut span = sr_obs::span("ingest.publish");
        let result = self.build_snapshot().and_then(|snapshot| {
            save_snapshot_v2(&snapshot, path.as_ref()).map_err(IngestError::Serve)
        });
        let metrics = sr_obs::Registry::global();
        match &result {
            Ok(()) => {
                metrics.counter("ingest.publishes_total").inc();
                span.record("ok", 1usize);
            }
            Err(_) => {
                metrics.counter("ingest.publish_failures_total").inc();
                span.record("ok", 0usize);
            }
        }
        result
    }

    /// The last re-partition serialized to v2 snapshot bytes without
    /// touching disk — what [`IngestEngine::publish`] would write. The
    /// convergence property tests compare these bytes against a batch
    /// pipeline's.
    pub fn snapshot_bytes(&self) -> Result<Vec<u8>> {
        self.build_snapshot().map(|s| snapshot_to_bytes_v2(&s))
    }

    fn build_snapshot(&self) -> Result<Snapshot> {
        let (outcome, grid_at) = self
            .last
            .as_ref()
            .ok_or_else(|| IngestError::Config("nothing to publish: no re-partition yet".into()))?;
        Snapshot::build(&outcome.repartitioned, grid_at, self.config.threshold)
            .map_err(IngestError::Serve)
    }

    /// The accumulated grid (collapsed values of every touched cell).
    pub fn grid(&self) -> &GridDataset {
        &self.grid
    }

    /// The live split-on-write tier (`None` until the first
    /// [`IngestEngine::repartition`]). Its IFL stays within θ between
    /// exact re-partitions.
    pub fn live(&self) -> Option<&StreamingRepartitioner> {
        self.live.as_ref()
    }

    /// The last exact re-partition outcome.
    pub fn last_outcome(&self) -> Option<&RepartitionOutcome> {
        self.last.as_ref().map(|(o, _)| o)
    }

    /// The warm θ the *next* [`IngestEngine::repartition`] would hand the
    /// driver's threshold walk, given the currently pending dirty cells —
    /// `None` when that run would walk cold (first run, normalization
    /// rebuild since the last run, or an oversized dirty region). A batch
    /// pipeline reproduces the next repartition bit-for-bit by passing
    /// this to [`Repartitioner::run_with_pool_warm`]; the convergence
    /// property tests do exactly that.
    pub fn planned_warm_hint(&self) -> Option<f64> {
        self.localized.planned_hint(self.pending_count, self.grid.num_cells())
    }

    /// Distinct cells dirtied since the last exact re-partition.
    pub fn pending_dirty_cells(&self) -> usize {
        self.pending_count
    }

    /// The localized-walk state of the exact tier (fallback / reuse
    /// telemetry of the last run).
    pub fn localized(&self) -> &LocalizedState {
        &self.localized
    }

    /// Batches ingested so far.
    pub fn num_batches(&self) -> u64 {
        self.batches
    }

    /// Points binned so far.
    pub fn total_points(&self) -> u64 {
        self.total_points
    }

    /// The engine's configuration.
    pub fn config(&self) -> &IngestConfig {
        &self.config
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn engine(rows: usize, cols: usize) -> IngestEngine {
        let schema = IngestSchema::parse("v:mean,n:count").unwrap();
        IngestEngine::new(IngestConfig::new(rows, cols, schema, 0.1)).unwrap()
    }

    fn chunk(points: &[(f64, f64, f64)]) -> PointChunk {
        let mut c = PointChunk::with_capacity(points.len(), 2);
        for &(x, y, v) in points {
            c.push(x, y, &[v, 1.0]);
        }
        c
    }

    #[test]
    fn batches_accumulate_and_repartition() {
        let mut e = engine(4, 4);
        let report =
            e.apply_batch(&chunk(&[(0.1, 0.1, 5.0), (0.15, 0.12, 7.0), (0.9, 0.9, 3.0)])).unwrap();
        assert_eq!(report.points, 3);
        assert_eq!(report.dirty_cells, 2);
        assert!(e.grid().is_valid(0));
        assert_eq!(e.grid().value(0, 0), 6.0); // mean(5, 7)
        assert_eq!(e.grid().value(0, 1), 2.0); // count
        let outcome = e.repartition().unwrap();
        assert!(outcome.repartitioned.ifl() <= 0.1);
        assert!(e.live().is_some());
    }

    #[test]
    fn live_tier_tracks_batches_between_repartitions() {
        let mut e = engine(6, 6);
        let pts: Vec<(f64, f64, f64)> = (0..36)
            .map(|i| {
                let (r, c) = (i / 6, i % 6);
                ((c as f64 + 0.5) / 6.0, (r as f64 + 0.5) / 6.0, 100.0 + i as f64 * 0.1)
            })
            .collect();
        e.apply_batch(&chunk(&pts)).unwrap();
        e.repartition().unwrap();
        e.apply_batch(&chunk(&[(0.1, 0.1, 150.0)])).unwrap();
        let live = e.live().unwrap();
        assert!(live.ifl() <= live.threshold());
        assert_eq!(live.grid().value(0, 0), e.grid().value(0, 0));
    }

    #[test]
    fn publish_before_repartition_is_an_error() {
        let e = engine(3, 3);
        assert!(matches!(e.publish("/nonexistent/x.snap"), Err(IngestError::Config(_))));
        assert!(e.snapshot_bytes().is_err());
    }

    #[test]
    fn arity_mismatch_is_rejected() {
        let mut e = engine(3, 3);
        let bad = PointChunk::with_capacity(0, 3);
        assert!(matches!(e.apply_batch(&bad), Err(IngestError::Config(_))));
    }
}
