//! Point-to-cell binning with per-cell collapse (`docs/INGESTION.md` §3).
//!
//! Each ingested point lands in exactly one grid cell
//! ([`Bounds::locate_clamped`]: out-of-bounds points clamp to the border
//! cell), and each cell folds its points' attribute samples into one value
//! per attribute with a [`Collapse`] function — the las-rasterizer method
//! set: mean, median, min, max, count.
//!
//! The accumulators are **batch-split invariant**: every fold consumes
//! samples in stream order and keeps state that does not depend on where
//! chunk boundaries fall (running sums, first-wins extrema, sample
//! multisets), so collapsing after N batches is bit-identical to
//! collapsing the concatenated stream in one batch. The incremental ≡
//! batch convergence guarantee of the ingestion contract starts here.
//!
//! NaN rules: a NaN sample is skipped *per attribute* (the point still
//! counts for the cell); a cell is valid once any point binned into it,
//! even if every sample was NaN; an attribute with zero finite samples in
//! a valid cell collapses to `0.0`.

use crate::stream::PointChunk;
use sr_grid::{AggType, Bounds, CellId, GridDataset};

/// Per-attribute collapse function applied to a cell's samples.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Collapse {
    /// Arithmetic mean of finite samples.
    Mean,
    /// Median of finite samples (average of the two middle order
    /// statistics for even counts). The only collapse whose per-cell state
    /// grows with the sample count — see the contract's memory note.
    Median,
    /// Smallest finite sample (first occurrence wins ties).
    Min,
    /// Largest finite sample (first occurrence wins ties).
    Max,
    /// Number of finite samples.
    Count,
}

impl Collapse {
    /// The aggregation type the collapsed attribute carries in the grid:
    /// `Count` is additive across cells (`Sum`), everything else is a
    /// per-cell level (`Avg`).
    pub fn agg_type(self) -> AggType {
        match self {
            Collapse::Count => AggType::Sum,
            _ => AggType::Avg,
        }
    }

    /// Whether the collapsed attribute is integer-typed (`Count` only).
    pub fn integer_attr(self) -> bool {
        self == Collapse::Count
    }

    /// Parses the lowercase name used by `srtool ingest --attrs`.
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "mean" => Collapse::Mean,
            "median" => Collapse::Median,
            "min" => Collapse::Min,
            "max" => Collapse::Max,
            "count" => Collapse::Count,
            _ => return None,
        })
    }

    /// The lowercase name [`Collapse::parse`] accepts.
    pub fn name(self) -> &'static str {
        match self {
            Collapse::Mean => "mean",
            Collapse::Median => "median",
            Collapse::Min => "min",
            Collapse::Max => "max",
            Collapse::Count => "count",
        }
    }
}

/// One attribute of the ingestion schema.
#[derive(Debug, Clone)]
pub struct AttrSpec {
    /// Attribute name carried into the grid.
    pub name: String,
    /// Collapse function for this attribute.
    pub collapse: Collapse,
}

/// The ingestion schema: the stream's attribute columns in order.
#[derive(Debug, Clone)]
pub struct IngestSchema {
    /// Attribute specs, one per stream column after `x y`.
    pub attrs: Vec<AttrSpec>,
}

impl IngestSchema {
    /// Parses the `srtool ingest --attrs` syntax:
    /// `name:collapse[,name:collapse…]`, e.g. `temp:mean,hits:count`.
    pub fn parse(spec: &str) -> Option<Self> {
        let mut attrs = Vec::new();
        for part in spec.split(',') {
            let (name, collapse) = part.split_once(':')?;
            if name.is_empty() {
                return None;
            }
            attrs.push(AttrSpec { name: name.to_string(), collapse: Collapse::parse(collapse)? });
        }
        if attrs.is_empty() {
            None
        } else {
            Some(IngestSchema { attrs })
        }
    }

    /// Attribute arity `p`.
    pub fn num_attrs(&self) -> usize {
        self.attrs.len()
    }

    /// Builds the all-null grid this schema's collapsed values land in.
    pub fn empty_grid(
        &self,
        rows: usize,
        cols: usize,
        bounds: Bounds,
    ) -> sr_grid::Result<GridDataset> {
        let p = self.num_attrs();
        GridDataset::new(
            rows,
            cols,
            p,
            vec![0.0; rows * cols * p],
            vec![false; rows * cols],
            self.attrs.iter().map(|a| a.name.clone()).collect(),
            self.attrs.iter().map(|a| a.collapse.agg_type()).collect(),
            self.attrs.iter().map(|a| a.collapse.integer_attr()).collect(),
            bounds,
        )
    }
}

/// Persistent per-cell fold state for every attribute of the schema. Lives
/// across batches; [`CellAccumulators::bin_chunk`] folds a chunk in and
/// [`CellAccumulators::write_into`] materializes collapsed values for the
/// cells a batch touched.
#[derive(Debug, Clone)]
pub struct CellAccumulators {
    rows: usize,
    cols: usize,
    collapses: Vec<Collapse>,
    /// Running sums, plane-major (`k·n + cell`); `Mean` only.
    sums: Vec<f64>,
    /// Finite-sample counts, plane-major; every collapse keeps them
    /// (`Mean`'s divisor, `Count`'s value, the others' seen flag).
    counts: Vec<u64>,
    /// Running extremum, plane-major; `Min`/`Max` only.
    extrema: Vec<f64>,
    /// Sample multisets of `Median` attributes: `median_plane[k]` is
    /// `usize::MAX` for non-median attributes, else an index `j` such that
    /// `samples[j·n + cell]` holds the cell's samples in stream order.
    median_plane: Vec<usize>,
    samples: Vec<Vec<f64>>,
    /// Points binned per cell (any attribute, NaN or not) — the validity
    /// rule: a cell is valid iff at least one point landed in it.
    points: Vec<u64>,
    /// Per-call dirty bitmap scratch.
    dirty_bits: Vec<u64>,
}

impl CellAccumulators {
    /// Fresh accumulators for an `rows × cols` grid under `schema`.
    pub fn new(rows: usize, cols: usize, schema: &IngestSchema) -> Self {
        let n = rows * cols;
        let p = schema.num_attrs();
        let collapses: Vec<Collapse> = schema.attrs.iter().map(|a| a.collapse).collect();
        let mut median_plane = vec![usize::MAX; p];
        let mut medians = 0usize;
        for (k, c) in collapses.iter().enumerate() {
            if *c == Collapse::Median {
                median_plane[k] = medians;
                medians += 1;
            }
        }
        CellAccumulators {
            rows,
            cols,
            collapses,
            sums: vec![0.0; n * p],
            counts: vec![0; n * p],
            extrema: vec![0.0; n * p],
            median_plane,
            samples: vec![Vec::new(); medians * n],
            points: vec![0; n],
            dirty_bits: vec![0; n.div_ceil(64)],
        }
    }

    /// Folds a chunk of points into the accumulators and appends the
    /// distinct cells that received at least one point to `dirty`
    /// (deduplicated within this call, ascending). Returns the number of
    /// points binned.
    pub fn bin_chunk(
        &mut self,
        chunk: &PointChunk,
        bounds: &Bounds,
        dirty: &mut Vec<CellId>,
    ) -> usize {
        let n = self.rows * self.cols;
        let p = self.collapses.len();
        debug_assert_eq!(chunk.num_attrs, p);
        self.dirty_bits.fill(0);
        for i in 0..chunk.len() {
            let (r, c) = bounds.locate_clamped(chunk.ys[i], chunk.xs[i], self.rows, self.cols);
            let cell = r * self.cols + c;
            self.dirty_bits[cell >> 6] |= 1u64 << (cell & 63);
            self.points[cell] += 1;
            for (k, collapse) in self.collapses.iter().enumerate() {
                let s = chunk.attrs[i * p + k];
                if s.is_nan() {
                    continue;
                }
                let idx = k * n + cell;
                match collapse {
                    Collapse::Mean => self.sums[idx] += s,
                    Collapse::Count => {}
                    Collapse::Min => {
                        if self.counts[idx] == 0 || s < self.extrema[idx] {
                            self.extrema[idx] = s;
                        }
                    }
                    Collapse::Max => {
                        if self.counts[idx] == 0 || s > self.extrema[idx] {
                            self.extrema[idx] = s;
                        }
                    }
                    Collapse::Median => {
                        self.samples[self.median_plane[k] * n + cell].push(s);
                    }
                }
                self.counts[idx] += 1;
            }
        }
        for (w, &word) in self.dirty_bits.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let b = bits.trailing_zeros() as usize;
                dirty.push((w * 64 + b) as CellId);
                bits &= bits - 1;
            }
        }
        chunk.len()
    }

    /// The collapsed value of attribute `k` in `cell` under the current
    /// fold state (`0.0` when the attribute has no finite samples).
    pub fn collapsed(&self, cell: CellId, k: usize) -> f64 {
        let n = self.rows * self.cols;
        let idx = k * n + cell as usize;
        let count = self.counts[idx];
        match self.collapses[k] {
            Collapse::Mean => {
                if count == 0 {
                    0.0
                } else {
                    self.sums[idx] / count as f64
                }
            }
            Collapse::Count => count as f64,
            Collapse::Min | Collapse::Max => {
                if count == 0 {
                    0.0
                } else {
                    self.extrema[idx]
                }
            }
            Collapse::Median => {
                let samples = &self.samples[self.median_plane[k] * n + cell as usize];
                median(samples)
            }
        }
    }

    /// Writes the collapsed values of the listed cells into `grid` and
    /// marks them valid. `grid` must share this accumulator's shape and
    /// schema arity.
    pub fn write_into(&self, grid: &mut GridDataset, cells: &[CellId]) {
        debug_assert_eq!(grid.num_cells(), self.rows * self.cols);
        debug_assert_eq!(grid.num_attrs(), self.collapses.len());
        for &cell in cells {
            debug_assert!(self.points[cell as usize] > 0);
            for k in 0..self.collapses.len() {
                grid.set_value(cell, k, self.collapsed(cell, k));
            }
            grid.set_valid(cell);
        }
    }

    /// Points binned into a cell so far.
    pub fn points_in(&self, cell: CellId) -> u64 {
        self.points[cell as usize]
    }

    /// Total cells that have received at least one point.
    pub fn occupied_cells(&self) -> usize {
        self.points.iter().filter(|&&c| c > 0).count()
    }
}

/// Median of a sample multiset: sort a copy in `total_cmp` order (NaN never
/// enters — binning filters it), take the middle value, or for even counts
/// the average of the two middle order statistics.
fn median(samples: &[f64]) -> f64 {
    if samples.is_empty() {
        return 0.0;
    }
    let mut sorted = samples.to_vec();
    sorted.sort_unstable_by(|a, b| a.total_cmp(b));
    let mid = sorted.len() / 2;
    if sorted.len() % 2 == 1 {
        sorted[mid]
    } else {
        (sorted[mid - 1] + sorted[mid]) / 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn schema(spec: &str) -> IngestSchema {
        IngestSchema::parse(spec).unwrap()
    }

    fn chunk_of(points: &[(f64, f64, &[f64])], p: usize) -> PointChunk {
        let mut c = PointChunk::with_capacity(points.len(), p);
        for (x, y, attrs) in points {
            c.push(*x, *y, attrs);
        }
        c
    }

    fn bin_all(s: &IngestSchema, points: &[(f64, f64, &[f64])]) -> (CellAccumulators, Vec<CellId>) {
        let mut acc = CellAccumulators::new(2, 2, s);
        let mut dirty = Vec::new();
        acc.bin_chunk(&chunk_of(points, s.num_attrs()), &Bounds::unit(), &mut dirty);
        (acc, dirty)
    }

    #[test]
    fn schema_parsing_round_trips() {
        let s = schema("temp:mean,depth:median,lo:min,hi:max,hits:count");
        assert_eq!(s.num_attrs(), 5);
        assert_eq!(s.attrs[1].collapse, Collapse::Median);
        assert_eq!(s.attrs[4].collapse.agg_type(), AggType::Sum);
        assert!(s.attrs[4].collapse.integer_attr());
        assert!(IngestSchema::parse("bad").is_none());
        assert!(IngestSchema::parse("a:histogram").is_none());
        assert!(IngestSchema::parse("").is_none());
    }

    #[test]
    fn mean_min_max_count_collapse() {
        let s = schema("m:mean,lo:min,hi:max,n:count");
        // All three points land in cell (0,0) of the 2×2 unit grid
        // (lat/lon < 0.5).
        let pts: Vec<(f64, f64, &[f64])> = vec![
            (0.1, 0.1, &[1.0, 5.0, 5.0, 0.0][..]),
            (0.2, 0.2, &[2.0, 3.0, 9.0, 0.0][..]),
            (0.3, 0.3, &[6.0, 4.0, 7.0, 0.0][..]),
        ];
        let (acc, dirty) = bin_all(&s, &pts);
        assert_eq!(dirty, vec![0]);
        assert_eq!(acc.collapsed(0, 0), 3.0);
        assert_eq!(acc.collapsed(0, 1), 3.0);
        assert_eq!(acc.collapsed(0, 2), 9.0);
        assert_eq!(acc.collapsed(0, 3), 3.0);
    }

    #[test]
    fn median_odd_and_even_counts() {
        let s = schema("d:median");
        let odd: Vec<(f64, f64, &[f64])> =
            vec![(0.1, 0.1, &[3.0][..]), (0.1, 0.1, &[1.0][..]), (0.1, 0.1, &[2.0][..])];
        let (acc, _) = bin_all(&s, &odd);
        assert_eq!(acc.collapsed(0, 0), 2.0);
        // Even count: average of the two middle order statistics.
        let even: Vec<(f64, f64, &[f64])> = vec![
            (0.1, 0.1, &[4.0][..]),
            (0.1, 0.1, &[1.0][..]),
            (0.1, 0.1, &[3.0][..]),
            (0.1, 0.1, &[2.0][..]),
        ];
        let (acc, _) = bin_all(&s, &even);
        assert_eq!(acc.collapsed(0, 0), 2.5);
    }

    #[test]
    fn median_single_point_cell_is_that_point() {
        let s = schema("d:median");
        let (acc, dirty) = bin_all(&s, &[(0.9, 0.9, &[42.0][..])]);
        assert_eq!(dirty, vec![3]);
        assert_eq!(acc.collapsed(3, 0), 42.0);
    }

    #[test]
    fn all_nan_attr_leaves_cell_valid_with_zero() {
        let s = schema("a:mean,b:median");
        let (acc, dirty) = bin_all(&s, &[(0.1, 0.1, &[f64::NAN, f64::NAN][..])]);
        assert_eq!(dirty, vec![0]);
        assert_eq!(acc.points_in(0), 1);
        assert_eq!(acc.collapsed(0, 0), 0.0);
        assert_eq!(acc.collapsed(0, 1), 0.0);
        let mut grid = s.empty_grid(2, 2, Bounds::unit()).unwrap();
        acc.write_into(&mut grid, &dirty);
        assert!(grid.is_valid(0));
        assert_eq!(grid.value(0, 0), 0.0);
    }

    #[test]
    fn nan_samples_skip_only_their_attribute() {
        let s = schema("a:mean,n:count");
        let pts: Vec<(f64, f64, &[f64])> =
            vec![(0.1, 0.1, &[2.0, 1.0][..]), (0.1, 0.1, &[f64::NAN, 1.0][..])];
        let (acc, _) = bin_all(&s, &pts);
        // Mean over the single finite sample; count sees both finite ones.
        assert_eq!(acc.collapsed(0, 0), 2.0);
        assert_eq!(acc.collapsed(0, 1), 2.0);
    }

    #[test]
    fn out_of_bounds_points_clamp_to_border_cells() {
        let s = schema("v:mean");
        let pts: Vec<(f64, f64, &[f64])> = vec![(-5.0, -5.0, &[1.0][..]), (9.0, 9.0, &[2.0][..])];
        let (_, dirty) = bin_all(&s, &pts);
        assert_eq!(dirty, vec![0, 3]);
    }

    #[test]
    fn batch_splits_do_not_change_collapsed_bits() {
        let s = schema("m:mean,d:median,lo:min,hi:max,n:count");
        let p = s.num_attrs();
        // A stream of awkward values whose folds are sensitive to order.
        let vals = [0.1, 0.7, 1e-9, 3.33, 0.5, 2.25, 1e9, 0.1, -4.5, 7.0, 0.3, 1e-3];
        let pts: Vec<(f64, f64, Vec<f64>)> =
            vals.iter().map(|&v| (0.2, 0.2, vec![v, v, v, v, v])).collect();

        let one_shot = {
            let mut acc = CellAccumulators::new(2, 2, &s);
            let mut dirty = Vec::new();
            let pts_ref: Vec<(f64, f64, &[f64])> =
                pts.iter().map(|(x, y, a)| (*x, *y, &a[..])).collect();
            acc.bin_chunk(&chunk_of(&pts_ref, p), &Bounds::unit(), &mut dirty);
            (0..p).map(|k| acc.collapsed(0, k).to_bits()).collect::<Vec<_>>()
        };
        for split in [1usize, 2, 3, 5, 7] {
            let mut acc = CellAccumulators::new(2, 2, &s);
            for batch in pts.chunks(split) {
                let mut dirty = Vec::new();
                let pts_ref: Vec<(f64, f64, &[f64])> =
                    batch.iter().map(|(x, y, a)| (*x, *y, &a[..])).collect();
                acc.bin_chunk(&chunk_of(&pts_ref, p), &Bounds::unit(), &mut dirty);
            }
            let bits = (0..p).map(|k| acc.collapsed(0, k).to_bits()).collect::<Vec<_>>();
            assert_eq!(bits, one_shot, "split {split} diverged");
        }
    }
}
