//! Out-of-core point-stream ingestion and incremental re-partitioning.
//!
//! This crate turns the framework from a batch pipeline into a living
//! service: raw point streams `(x, y, attrs…)` are consumed in
//! bounded-memory chunks ([`StreamReader`]), binned into grid cells with
//! per-cell mean/median/min/max/count collapse ([`CellAccumulators`]), and
//! maintained as a [`sr_grid::GridDataset`] whose re-partition is kept
//! current *incrementally*: each batch patches the driver's scan inputs
//! over the dirty cells ([`sr_core::incremental::ScanCache`]), so an exact
//! re-partition re-runs only the threshold walk — and is **bit-identical**
//! to a from-scratch run on the accumulated data.
//!
//! The normative contract — stream format, collapse semantics, NaN and
//! empty-cell rules, the dirty-region algorithm, the convergence
//! guarantee, snapshot republish semantics, and every `ingest.*` span and
//! metric — is `docs/INGESTION.md` at the repository root.
//!
//! ```
//! use sr_ingest::{IngestConfig, IngestEngine, IngestSchema, PointChunk, StreamReader};
//!
//! // Parse a tiny stream in one bounded chunk…
//! let text = "0.2 0.2 10.0\n0.22 0.2 14.0\n0.8 0.8 50.0\n";
//! let mut reader = StreamReader::new(std::io::Cursor::new(text), 1);
//! let mut chunk = PointChunk::with_capacity(16, 1);
//! reader.next_chunk(16, &mut chunk).unwrap();
//!
//! // …feed it to the engine, re-partition, and inspect the result.
//! let schema = IngestSchema::parse("temp:mean").unwrap();
//! let mut engine = IngestEngine::new(IngestConfig::new(4, 4, schema, 0.1)).unwrap();
//! engine.apply_batch(&chunk).unwrap();
//! let outcome = engine.repartition().unwrap();
//! assert!(outcome.repartitioned.ifl() <= 0.1);
//! assert_eq!(engine.grid().value(0, 0), 12.0); // mean(10, 14)
//! ```

#![deny(missing_docs)]

pub mod binning;
pub mod engine;
pub mod stream;

pub use binning::{AttrSpec, CellAccumulators, Collapse, IngestSchema};
pub use engine::{BatchReport, IngestConfig, IngestEngine};
pub use stream::{write_binary_point, PointChunk, StreamReader, FRAME_MAGIC};

/// Errors from the ingestion layer.
#[derive(Debug)]
pub enum IngestError {
    /// Reading the stream failed.
    Io(std::io::Error),
    /// The core driver rejected an operation.
    Core(sr_core::CoreError),
    /// A grid-level operation failed.
    Grid(sr_grid::GridError),
    /// Building or writing a snapshot failed.
    Serve(sr_serve::ServeError),
    /// The engine was configured or used inconsistently.
    Config(String),
}

impl std::fmt::Display for IngestError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IngestError::Io(e) => write!(f, "stream i/o error: {e}"),
            IngestError::Core(e) => write!(f, "re-partitioning error: {e}"),
            IngestError::Grid(e) => write!(f, "grid error: {e}"),
            IngestError::Serve(e) => write!(f, "snapshot error: {e}"),
            IngestError::Config(msg) => write!(f, "ingest configuration error: {msg}"),
        }
    }
}

impl std::error::Error for IngestError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            IngestError::Io(e) => Some(e),
            IngestError::Core(e) => Some(e),
            IngestError::Grid(e) => Some(e),
            IngestError::Serve(e) => Some(e),
            IngestError::Config(_) => None,
        }
    }
}

/// Result alias for ingestion operations.
pub type Result<T> = std::result::Result<T, IngestError>;
