//! Bounded-memory point-stream reading (`docs/INGESTION.md` §2).
//!
//! The stream text format is one point per line, whitespace-separated:
//!
//! ```text
//! <x> <y> <attr_1> … <attr_p>
//! ```
//!
//! where `x` is longitude, `y` latitude, and each `attr_k` an `f64` in
//! Rust's standard float syntax (`nan` spells a missing sample). Empty
//! lines and lines starting with `#` are skipped silently; lines that fail
//! to parse or carry the wrong field count are *malformed* — counted,
//! reported through `ingest.malformed_lines_total`, and skipped, never
//! fatal (a live feed must survive a corrupt record).
//!
//! The binary format ([`StreamReader::binary`]) carries the same records
//! as fixed-size frames:
//!
//! ```text
//! 0xA7 <p:u8> <x:f64le> <y:f64le> <attr_1:f64le> … <attr_p:f64le>
//! ```
//!
//! One magic byte, the attribute arity, then `2 + p` little-endian `f64`s.
//! The reader enforces the same never-fatal contract as the text path: a
//! bad magic byte, a mismatched arity, a truncated frame, or a non-finite
//! coordinate counts one malformed record and resynchronizes by scanning
//! forward to the next magic byte (best-effort — a payload byte can
//! coincide with the magic, in which case the next frame attempt fails and
//! the scan continues). `nan` attribute samples are valid, as in text.
//! [`write_binary_point`] emits one frame.

use crate::{IngestError, Result};
use std::io::{BufRead, Read};

/// Leading magic byte of every binary stream frame.
pub const FRAME_MAGIC: u8 = 0xA7;

/// One bounded chunk of parsed points, struct-of-arrays so the binning
/// kernel streams each coordinate/attribute column independently.
#[derive(Debug, Clone, Default)]
pub struct PointChunk {
    /// Longitudes, one per point.
    pub xs: Vec<f64>,
    /// Latitudes, one per point.
    pub ys: Vec<f64>,
    /// Attribute samples, point-major: point `i`'s samples occupy
    /// `attrs[i*p .. (i+1)*p]`.
    pub attrs: Vec<f64>,
    /// Attribute arity `p`.
    pub num_attrs: usize,
}

impl PointChunk {
    /// An empty chunk with capacity for `cap` points of arity `p`.
    pub fn with_capacity(cap: usize, p: usize) -> Self {
        PointChunk {
            xs: Vec::with_capacity(cap),
            ys: Vec::with_capacity(cap),
            attrs: Vec::with_capacity(cap * p),
            num_attrs: p,
        }
    }

    /// Number of points in the chunk.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the chunk holds no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64, attrs: &[f64]) {
        debug_assert_eq!(attrs.len(), self.num_attrs);
        self.xs.push(x);
        self.ys.push(y);
        self.attrs.extend_from_slice(attrs);
    }

    /// Clears the chunk, keeping its buffers.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.attrs.clear();
    }
}

/// Wire format of a [`StreamReader`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StreamFormat {
    /// Whitespace-separated text lines.
    Text,
    /// Fixed-size magic-framed little-endian records.
    Binary,
}

/// Incremental reader over a point stream: parses at most `max_points`
/// records per [`StreamReader::next_chunk`] call, so memory stays bounded
/// by the batch size regardless of the stream length.
#[derive(Debug)]
pub struct StreamReader<R> {
    inner: R,
    num_attrs: usize,
    format: StreamFormat,
    line: String,
    records_read: u64,
    malformed: u64,
}

impl<R: BufRead> StreamReader<R> {
    /// Wraps a buffered reader producing text-format points of arity
    /// `num_attrs`.
    pub fn new(inner: R, num_attrs: usize) -> Self {
        StreamReader {
            inner,
            num_attrs,
            format: StreamFormat::Text,
            line: String::new(),
            records_read: 0,
            malformed: 0,
        }
    }

    /// Wraps a buffered reader producing binary-format frames of arity
    /// `num_attrs` (see the module docs for the frame layout).
    pub fn binary(inner: R, num_attrs: usize) -> Self {
        StreamReader { format: StreamFormat::Binary, ..Self::new(inner, num_attrs) }
    }

    /// Reads the next chunk of at most `max_points` points into `out`
    /// (cleared first; its buffers are reused across calls). Returns the
    /// number of points read — `0` means the stream is exhausted.
    /// Malformed records are counted and skipped without occupying chunk
    /// capacity.
    pub fn next_chunk(&mut self, max_points: usize, out: &mut PointChunk) -> Result<usize> {
        debug_assert_eq!(out.num_attrs, self.num_attrs);
        out.clear();
        match self.format {
            StreamFormat::Text => self.next_chunk_text(max_points, out),
            StreamFormat::Binary => self.next_chunk_binary(max_points, out),
        }
    }

    fn next_chunk_text(&mut self, max_points: usize, out: &mut PointChunk) -> Result<usize> {
        let mut attrs = vec![0.0f64; self.num_attrs];
        while out.len() < max_points {
            self.line.clear();
            let n = self.inner.read_line(&mut self.line).map_err(IngestError::Io)?;
            if n == 0 {
                break;
            }
            self.records_read += 1;
            let line = self.line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_line(line, &mut attrs) {
                Some((x, y)) => out.push(x, y, &attrs),
                None => self.note_malformed(),
            }
        }
        Ok(out.len())
    }

    fn next_chunk_binary(&mut self, max_points: usize, out: &mut PointChunk) -> Result<usize> {
        let mut payload = vec![0u8; (2 + self.num_attrs) * 8];
        let mut attrs = vec![0.0f64; self.num_attrs];
        'frames: while out.len() < max_points {
            // Synchronize on the next magic byte; any skipped garbage run
            // counts as one malformed record (mirroring one bad text line).
            let mut skipped = false;
            loop {
                match read_byte(&mut self.inner)? {
                    None => {
                        if skipped {
                            self.note_malformed();
                        }
                        break 'frames;
                    }
                    Some(FRAME_MAGIC) => break,
                    Some(_) => skipped = true,
                }
            }
            if skipped {
                self.note_malformed();
            }
            self.records_read += 1;
            let arity = match read_byte(&mut self.inner)? {
                None => {
                    self.note_malformed();
                    break;
                }
                Some(a) => a,
            };
            if arity as usize != self.num_attrs {
                self.note_malformed();
                continue;
            }
            match self.inner.read_exact(&mut payload) {
                Ok(()) => {}
                Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => {
                    self.note_malformed();
                    break;
                }
                Err(e) => return Err(IngestError::Io(e)),
            }
            let f = |i: usize| f64::from_le_bytes(payload[i * 8..(i + 1) * 8].try_into().unwrap());
            let (x, y) = (f(0), f(1));
            if !x.is_finite() || !y.is_finite() {
                self.note_malformed();
                continue;
            }
            for (k, slot) in attrs.iter_mut().enumerate() {
                *slot = f(2 + k);
            }
            out.push(x, y, &attrs);
        }
        Ok(out.len())
    }

    fn note_malformed(&mut self) {
        self.malformed += 1;
        sr_obs::Registry::global().counter("ingest.malformed_lines_total").inc();
    }

    /// Total records consumed so far — text lines (including skipped and
    /// malformed ones) or binary frame attempts.
    pub fn lines_read(&self) -> u64 {
        self.records_read
    }

    /// Malformed records skipped so far.
    pub fn malformed_lines(&self) -> u64 {
        self.malformed
    }
}

/// Reads one byte, mapping clean EOF to `None`.
fn read_byte<R: Read>(inner: &mut R) -> Result<Option<u8>> {
    let mut b = [0u8; 1];
    match inner.read_exact(&mut b) {
        Ok(()) => Ok(Some(b[0])),
        Err(e) if e.kind() == std::io::ErrorKind::UnexpectedEof => Ok(None),
        Err(e) => Err(IngestError::Io(e)),
    }
}

/// Writes one binary stream frame (see the module docs for the layout).
/// `attrs.len()` must fit a `u8` — the frame carries the arity in one byte.
pub fn write_binary_point<W: std::io::Write>(
    w: &mut W,
    x: f64,
    y: f64,
    attrs: &[f64],
) -> std::io::Result<()> {
    debug_assert!(attrs.len() <= u8::MAX as usize);
    w.write_all(&[FRAME_MAGIC, attrs.len() as u8])?;
    w.write_all(&x.to_le_bytes())?;
    w.write_all(&y.to_le_bytes())?;
    for a in attrs {
        w.write_all(&a.to_le_bytes())?;
    }
    Ok(())
}

/// Parses `x y attr_1 … attr_p` into `(x, y)` + `attrs`; `None` if the
/// field count is wrong or a coordinate fails to parse or is non-finite.
/// Attribute fields may be `nan` (a missing sample) but must still parse.
fn parse_line(line: &str, attrs: &mut [f64]) -> Option<(f64, f64)> {
    let mut fields = line.split_whitespace();
    let x: f64 = fields.next()?.parse().ok()?;
    let y: f64 = fields.next()?.parse().ok()?;
    if !x.is_finite() || !y.is_finite() {
        return None;
    }
    for slot in attrs.iter_mut() {
        *slot = fields.next()?.parse().ok()?;
    }
    if fields.next().is_some() {
        return None;
    }
    Some((x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(text: &str, p: usize, batch: usize) -> (Vec<PointChunk>, u64) {
        let mut r = StreamReader::new(Cursor::new(text.to_string()), p);
        let mut chunks = Vec::new();
        loop {
            let mut chunk = PointChunk::with_capacity(batch, p);
            if r.next_chunk(batch, &mut chunk).unwrap() == 0 {
                break;
            }
            chunks.push(chunk);
        }
        let malformed = r.malformed_lines();
        (chunks, malformed)
    }

    #[test]
    fn parses_points_in_batches() {
        let text = "0.1 0.2 5.0\n0.3 0.4 6.0\n0.5 0.6 7.0\n";
        let (chunks, malformed) = read_all(text, 1, 2);
        assert_eq!(malformed, 0);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[1].len(), 1);
        assert_eq!(chunks[0].xs, vec![0.1, 0.3]);
        assert_eq!(chunks[0].ys, vec![0.2, 0.4]);
        assert_eq!(chunks[0].attrs, vec![5.0, 6.0]);
    }

    #[test]
    fn comments_and_blanks_are_skipped_silently() {
        let text = "# header\n\n0.5 0.5 1.0 2.0\n   \n# tail\n";
        let (chunks, malformed) = read_all(text, 2, 10);
        assert_eq!(malformed, 0);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 1);
        assert_eq!(chunks[0].attrs, vec![1.0, 2.0]);
    }

    #[test]
    fn malformed_lines_are_counted_and_skipped() {
        let text = "0.1 0.2 1.0\nbogus line\n0.3 0.4\n0.5 0.6 2.0 3.0\nnan 0.1 1.0\n0.7 0.8 4.0\n";
        let (chunks, malformed) = read_all(text, 1, 10);
        // bogus, wrong-arity (short), wrong-arity (long), nan coordinate.
        assert_eq!(malformed, 4);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[0].attrs, vec![1.0, 4.0]);
    }

    #[test]
    fn nan_attributes_parse_as_missing_samples() {
        let text = "0.1 0.2 nan 7.0\n";
        let (chunks, malformed) = read_all(text, 2, 10);
        assert_eq!(malformed, 0);
        assert!(chunks[0].attrs[0].is_nan());
        assert_eq!(chunks[0].attrs[1], 7.0);
    }

    fn read_all_binary(bytes: Vec<u8>, p: usize, batch: usize) -> (Vec<PointChunk>, u64) {
        let mut r = StreamReader::binary(Cursor::new(bytes), p);
        let mut chunks = Vec::new();
        loop {
            let mut chunk = PointChunk::with_capacity(batch, p);
            if r.next_chunk(batch, &mut chunk).unwrap() == 0 {
                break;
            }
            chunks.push(chunk);
        }
        let malformed = r.malformed_lines();
        (chunks, malformed)
    }

    #[test]
    fn binary_frames_round_trip() {
        let points =
            [(0.1, 0.2, [5.0, f64::NAN]), (0.3, 0.4, [6.5, 1.0]), (0.5, 0.6, [-7.25, 2.0])];
        let mut bytes = Vec::new();
        for &(x, y, ref attrs) in &points {
            write_binary_point(&mut bytes, x, y, attrs).unwrap();
        }
        let (chunks, malformed) = read_all_binary(bytes, 2, 2);
        assert_eq!(malformed, 0);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[1].len(), 1);
        assert_eq!(chunks[0].xs, vec![0.1, 0.3]);
        assert_eq!(chunks[0].ys, vec![0.2, 0.4]);
        assert_eq!(chunks[0].attrs[0], 5.0);
        assert!(chunks[0].attrs[1].is_nan(), "nan sample must survive the round trip");
        assert_eq!(chunks[1].attrs, vec![-7.25, 2.0]);
    }

    #[test]
    fn binary_malformed_frames_are_counted_and_resynced() {
        let mut bytes = Vec::new();
        write_binary_point(&mut bytes, 0.1, 0.2, &[1.0]).unwrap();
        // Garbage run between frames: one malformed record.
        bytes.extend_from_slice(&[0x00, 0x01, 0x02]);
        write_binary_point(&mut bytes, 0.3, 0.4, &[2.0]).unwrap();
        // Wrong arity: counted, then the reader resyncs on the next magic.
        write_binary_point(&mut bytes, 9.0, 9.0, &[1.0, 2.0, 3.0]).unwrap();
        write_binary_point(&mut bytes, 0.5, 0.6, &[3.0]).unwrap();
        // Non-finite coordinate: counted, frame consumed cleanly.
        write_binary_point(&mut bytes, f64::NAN, 0.1, &[4.0]).unwrap();
        write_binary_point(&mut bytes, 0.7, 0.8, &[5.0]).unwrap();
        // Truncated trailing frame: counted, ends the stream.
        write_binary_point(&mut bytes, 0.9, 0.9, &[6.0]).unwrap();
        bytes.truncate(bytes.len() - 5);

        let (chunks, malformed) = read_all_binary(bytes, 1, 64);
        // garbage run, arity mismatch (+ its payload bytes misparsed on
        // resync — at least those), nan coordinate, truncated tail.
        assert!(malformed >= 4, "expected >= 4 malformed records, got {malformed}");
        let all: Vec<f64> = chunks.iter().flat_map(|c| c.attrs.iter().copied()).collect();
        assert_eq!(all, vec![1.0, 2.0, 3.0, 5.0]);
    }
}
