//! Bounded-memory point-stream reading (`docs/INGESTION.md` §2).
//!
//! The stream text format is one point per line, whitespace-separated:
//!
//! ```text
//! <x> <y> <attr_1> … <attr_p>
//! ```
//!
//! where `x` is longitude, `y` latitude, and each `attr_k` an `f64` in
//! Rust's standard float syntax (`nan` spells a missing sample). Empty
//! lines and lines starting with `#` are skipped silently; lines that fail
//! to parse or carry the wrong field count are *malformed* — counted,
//! reported through `ingest.malformed_lines_total`, and skipped, never
//! fatal (a live feed must survive a corrupt record).

use crate::{IngestError, Result};
use std::io::BufRead;

/// One bounded chunk of parsed points, struct-of-arrays so the binning
/// kernel streams each coordinate/attribute column independently.
#[derive(Debug, Clone, Default)]
pub struct PointChunk {
    /// Longitudes, one per point.
    pub xs: Vec<f64>,
    /// Latitudes, one per point.
    pub ys: Vec<f64>,
    /// Attribute samples, point-major: point `i`'s samples occupy
    /// `attrs[i*p .. (i+1)*p]`.
    pub attrs: Vec<f64>,
    /// Attribute arity `p`.
    pub num_attrs: usize,
}

impl PointChunk {
    /// An empty chunk with capacity for `cap` points of arity `p`.
    pub fn with_capacity(cap: usize, p: usize) -> Self {
        PointChunk {
            xs: Vec::with_capacity(cap),
            ys: Vec::with_capacity(cap),
            attrs: Vec::with_capacity(cap * p),
            num_attrs: p,
        }
    }

    /// Number of points in the chunk.
    pub fn len(&self) -> usize {
        self.xs.len()
    }

    /// Whether the chunk holds no points.
    pub fn is_empty(&self) -> bool {
        self.xs.is_empty()
    }

    /// Appends one point.
    pub fn push(&mut self, x: f64, y: f64, attrs: &[f64]) {
        debug_assert_eq!(attrs.len(), self.num_attrs);
        self.xs.push(x);
        self.ys.push(y);
        self.attrs.extend_from_slice(attrs);
    }

    /// Clears the chunk, keeping its buffers.
    pub fn clear(&mut self) {
        self.xs.clear();
        self.ys.clear();
        self.attrs.clear();
    }
}

/// Incremental reader over a point stream: parses at most `max_points`
/// lines per [`StreamReader::next_chunk`] call, so memory stays bounded by
/// the batch size regardless of the stream length.
#[derive(Debug)]
pub struct StreamReader<R> {
    inner: R,
    num_attrs: usize,
    line: String,
    lines_read: u64,
    malformed: u64,
}

impl<R: BufRead> StreamReader<R> {
    /// Wraps a buffered reader producing points of arity `num_attrs`.
    pub fn new(inner: R, num_attrs: usize) -> Self {
        StreamReader { inner, num_attrs, line: String::new(), lines_read: 0, malformed: 0 }
    }

    /// Reads the next chunk of at most `max_points` points into `out`
    /// (cleared first; its buffers are reused across calls). Returns the
    /// number of points read — `0` means the stream is exhausted.
    /// Malformed lines are counted and skipped without occupying chunk
    /// capacity.
    pub fn next_chunk(&mut self, max_points: usize, out: &mut PointChunk) -> Result<usize> {
        debug_assert_eq!(out.num_attrs, self.num_attrs);
        out.clear();
        let mut attrs = vec![0.0f64; self.num_attrs];
        while out.len() < max_points {
            self.line.clear();
            let n = self.inner.read_line(&mut self.line).map_err(IngestError::Io)?;
            if n == 0 {
                break;
            }
            self.lines_read += 1;
            let line = self.line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            match parse_line(line, &mut attrs) {
                Some((x, y)) => out.push(x, y, &attrs),
                None => {
                    self.malformed += 1;
                    sr_obs::Registry::global().counter("ingest.malformed_lines_total").inc();
                }
            }
        }
        Ok(out.len())
    }

    /// Total lines consumed so far (including skipped and malformed ones).
    pub fn lines_read(&self) -> u64 {
        self.lines_read
    }

    /// Malformed lines skipped so far.
    pub fn malformed_lines(&self) -> u64 {
        self.malformed
    }
}

/// Parses `x y attr_1 … attr_p` into `(x, y)` + `attrs`; `None` if the
/// field count is wrong or a coordinate fails to parse or is non-finite.
/// Attribute fields may be `nan` (a missing sample) but must still parse.
fn parse_line(line: &str, attrs: &mut [f64]) -> Option<(f64, f64)> {
    let mut fields = line.split_whitespace();
    let x: f64 = fields.next()?.parse().ok()?;
    let y: f64 = fields.next()?.parse().ok()?;
    if !x.is_finite() || !y.is_finite() {
        return None;
    }
    for slot in attrs.iter_mut() {
        *slot = fields.next()?.parse().ok()?;
    }
    if fields.next().is_some() {
        return None;
    }
    Some((x, y))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    fn read_all(text: &str, p: usize, batch: usize) -> (Vec<PointChunk>, u64) {
        let mut r = StreamReader::new(Cursor::new(text.to_string()), p);
        let mut chunks = Vec::new();
        loop {
            let mut chunk = PointChunk::with_capacity(batch, p);
            if r.next_chunk(batch, &mut chunk).unwrap() == 0 {
                break;
            }
            chunks.push(chunk);
        }
        let malformed = r.malformed_lines();
        (chunks, malformed)
    }

    #[test]
    fn parses_points_in_batches() {
        let text = "0.1 0.2 5.0\n0.3 0.4 6.0\n0.5 0.6 7.0\n";
        let (chunks, malformed) = read_all(text, 1, 2);
        assert_eq!(malformed, 0);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[1].len(), 1);
        assert_eq!(chunks[0].xs, vec![0.1, 0.3]);
        assert_eq!(chunks[0].ys, vec![0.2, 0.4]);
        assert_eq!(chunks[0].attrs, vec![5.0, 6.0]);
    }

    #[test]
    fn comments_and_blanks_are_skipped_silently() {
        let text = "# header\n\n0.5 0.5 1.0 2.0\n   \n# tail\n";
        let (chunks, malformed) = read_all(text, 2, 10);
        assert_eq!(malformed, 0);
        assert_eq!(chunks.len(), 1);
        assert_eq!(chunks[0].len(), 1);
        assert_eq!(chunks[0].attrs, vec![1.0, 2.0]);
    }

    #[test]
    fn malformed_lines_are_counted_and_skipped() {
        let text = "0.1 0.2 1.0\nbogus line\n0.3 0.4\n0.5 0.6 2.0 3.0\nnan 0.1 1.0\n0.7 0.8 4.0\n";
        let (chunks, malformed) = read_all(text, 1, 10);
        // bogus, wrong-arity (short), wrong-arity (long), nan coordinate.
        assert_eq!(malformed, 4);
        assert_eq!(chunks[0].len(), 2);
        assert_eq!(chunks[0].attrs, vec![1.0, 4.0]);
    }

    #[test]
    fn nan_attributes_parse_as_missing_samples() {
        let text = "0.1 0.2 nan 7.0\n";
        let (chunks, malformed) = read_all(text, 2, 10);
        assert_eq!(malformed, 0);
        assert!(chunks[0].attrs[0].is_nan());
        assert_eq!(chunks[0].attrs[1], 7.0);
    }
}
