//! Property-based tests for the re-partitioning framework's structural
//! invariants (DESIGN.md: rectangularity, tiling, threshold guarantee,
//! reconstruction consistency, adjacency symmetry).

use proptest::prelude::*;
use sr_core::{
    allocate_features, extract_cell_groups, group_adjacency, partition_ifl, repartition,
};
use sr_grid::{information_loss, normalize_attributes, variation_between, GridDataset, IflOptions};

/// Strategy: a small random grid (values and a few null cells).
fn grid_strategy() -> impl Strategy<Value = GridDataset> {
    (2usize..10, 2usize..10)
        .prop_flat_map(|(rows, cols)| {
            (
                Just(rows),
                Just(cols),
                prop::collection::vec(0.5f64..20.0, rows * cols),
                prop::collection::vec(0usize..(rows * cols), 0..4),
            )
        })
        .prop_map(|(rows, cols, vals, nulls)| {
            let mut g = GridDataset::univariate(rows, cols, vals).unwrap();
            for id in nulls {
                g.set_null(id as u32);
            }
            g
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every extraction output tiles the grid with rectangles, and every
    /// intra-group adjacent pair respects the variation bound.
    #[test]
    fn extraction_tiles_and_respects_variation(
        g in grid_strategy(),
        theta in 0.0f64..0.5,
    ) {
        let norm = normalize_attributes(&g);
        let p = extract_cell_groups(&norm, theta);

        // Tiling: every cell belongs to the group whose rect contains it,
        // and rect sizes sum to the cell count.
        let total: usize = (0..p.num_groups() as u32).map(|gid| p.rect(gid).len()).sum();
        prop_assert_eq!(total, g.num_cells());
        for cell in 0..g.num_cells() as u32 {
            let gid = p.group_of(cell);
            let (r, c) = g.cell_pos(cell);
            prop_assert!(p.rect(gid).contains(r as u32, c as u32));
        }

        // Variation bound on intra-group adjacent pairs; null cells only
        // share groups with null cells.
        for gid in 0..p.num_groups() as u32 {
            let rect = p.rect(gid);
            let first_valid = {
                let (r, c) = (rect.r0 as usize, rect.c0 as usize);
                norm.is_valid(norm.cell_id(r, c))
            };
            for (r, c) in rect.cells() {
                let id = norm.cell_id(r as usize, c as usize);
                prop_assert_eq!(norm.is_valid(id), first_valid, "mixed null/valid group");
                if !norm.is_valid(id) { continue; }
                let fv = norm.features_unchecked(id);
                if c < rect.c1 {
                    let rid = norm.cell_id(r as usize, c as usize + 1);
                    prop_assert!(variation_between(&fv, &norm.features_unchecked(rid)) <= theta + 1e-9);
                }
                if r < rect.r1 {
                    let did = norm.cell_id(r as usize + 1, c as usize);
                    prop_assert!(variation_between(&fv, &norm.features_unchecked(did)) <= theta + 1e-9);
                }
            }
        }
    }

    /// The driver never returns a partition whose IFL exceeds the threshold,
    /// and never increases the number of groups beyond the cell count.
    #[test]
    fn driver_respects_ifl_budget(
        g in grid_strategy(),
        theta in 0.01f64..0.3,
    ) {
        let out = repartition(&g, theta).unwrap();
        prop_assert!(out.repartitioned.ifl() <= theta + 1e-12);
        prop_assert!(out.repartitioned.num_groups() <= g.num_cells());
        prop_assert!(out.cell_reduction() >= 0.0);
    }

    /// partition_ifl and information_loss-over-reconstruction agree.
    #[test]
    fn reconstruction_matches_partition_ifl(
        g in grid_strategy(),
        theta in 0.0f64..0.4,
    ) {
        let norm = normalize_attributes(&g);
        let p = extract_cell_groups(&norm, theta);
        let feats = allocate_features(&g, &p);
        let direct = partition_ifl(&g, &p, &feats, IflOptions::default());
        let rec = sr_core::reconstruct_grid(&g, &p, &feats).unwrap();
        let via_grid = information_loss(&g, &rec, IflOptions::default()).unwrap();
        prop_assert!((direct - via_grid).abs() < 1e-10);
    }

    /// Group adjacency is symmetric, self-loop free, and connects exactly
    /// the rectangles that share an edge.
    #[test]
    fn group_adjacency_is_sound(
        g in grid_strategy(),
        theta in 0.0f64..0.4,
    ) {
        let norm = normalize_attributes(&g);
        let p = extract_cell_groups(&norm, theta);
        let adj = group_adjacency(&p);
        prop_assert!(adj.is_symmetric());
        for gid in 0..p.num_groups() as u32 {
            prop_assert!(!adj.neighbors(gid).contains(&gid));
        }
        // Cross-check against a brute-force cell-level scan.
        let rows = g.rows();
        let cols = g.cols();
        let mut expected: std::collections::HashSet<(u32, u32)> = Default::default();
        for r in 0..rows {
            for c in 0..cols {
                let a = p.group_at(r, c);
                if c + 1 < cols {
                    let b = p.group_at(r, c + 1);
                    if a != b { expected.insert((a.min(b), a.max(b))); }
                }
                if r + 1 < rows {
                    let b = p.group_at(r + 1, c);
                    if a != b { expected.insert((a.min(b), a.max(b))); }
                }
            }
        }
        let mut got: std::collections::HashSet<(u32, u32)> = Default::default();
        for gid in 0..p.num_groups() as u32 {
            for &n in adj.neighbors(gid) {
                got.insert((gid.min(n), gid.max(n)));
            }
        }
        prop_assert_eq!(got, expected);
    }

    /// Allocated Avg representatives never do worse (by local loss) than
    /// the plain mean.
    #[test]
    fn allocator_beats_or_ties_plain_mean(
        g in grid_strategy(),
        theta in 0.0f64..0.4,
    ) {
        let norm = normalize_attributes(&g);
        let p = extract_cell_groups(&norm, theta);
        let feats = allocate_features(&g, &p);
        for gid in 0..p.num_groups() as u32 {
            let Some(fv) = &feats[gid as usize] else { continue };
            let member_vals: Vec<f64> = p
                .cells_of(gid)
                .into_iter()
                .filter(|&c| g.is_valid(c))
                .map(|c| g.value(c, 0))
                .collect();
            let mean = member_vals.iter().sum::<f64>() / member_vals.len() as f64;
            let alloc_loss = sr_grid::local_loss(&member_vals, fv[0]);
            let mean_loss = sr_grid::local_loss(&member_vals, mean);
            prop_assert!(alloc_loss <= mean_loss + 1e-12);
        }
    }
}
