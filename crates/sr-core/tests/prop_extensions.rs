//! Property-based tests for the §VI extensions: streaming invariants,
//! temporal reuse, and the quadtree splitter.

use proptest::prelude::*;
use sr_core::{quadtree_partition, CellUpdate, StreamingRepartitioner, TemporalRepartitioner};
use sr_grid::{normalize_attributes, GridDataset};

fn grid_strategy() -> impl Strategy<Value = GridDataset> {
    (4usize..10, 4usize..10)
        .prop_flat_map(|(rows, cols)| {
            (Just(rows), Just(cols), prop::collection::vec(1.0f64..50.0, rows * cols))
        })
        .prop_map(|(rows, cols, vals)| GridDataset::univariate(rows, cols, vals).unwrap())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Streaming invariant: no sequence of updates pushes the IFL above the
    /// budget, and the incremental IFL always matches a full recompute via
    /// reconstruction semantics (verified through compaction equivalence).
    #[test]
    fn streaming_never_violates_budget(
        g in grid_strategy(),
        updates in prop::collection::vec((0usize..36, 1.0f64..100.0), 1..20),
        theta in 0.03f64..0.2,
    ) {
        let n = g.num_cells();
        let mut s = StreamingRepartitioner::new(g, theta).unwrap();
        for (cell, value) in updates {
            let cell = (cell % n) as u32;
            s.apply(&[CellUpdate { cell, features: Some(vec![value]) }]).unwrap();
            prop_assert!(s.ifl() <= s.threshold() + 1e-12);
            // The updated cell's group represents it exactly.
            let gid = s.group_of(cell);
            prop_assert_eq!(s.group_feature(gid), Some(&[value][..]));
        }
        // Compaction keeps the budget and resets the fragmentation anchor.
        // (The group count itself is NOT guaranteed to shrink: the greedy
        // extractor is not optimal, and a fragmented-but-lucky partition can
        // beat a fresh run on a heavily mutated grid.)
        let (_, _) = s.compact().unwrap();
        prop_assert!(s.ifl() <= s.threshold() + 1e-12);
        prop_assert!((s.fragmentation() - 1.0).abs() < 1e-12);
    }

    /// Temporal invariant: a uniformly scaled grid is always served by
    /// reuse, and every step's IFL respects the budget.
    #[test]
    fn temporal_reuse_under_uniform_scaling(
        g in grid_strategy(),
        scale in 1.001f64..1.2,
    ) {
        let mut t = TemporalRepartitioner::new(0.1).unwrap();
        let first = t.step(&g).unwrap();
        prop_assert!(!first.reused);
        prop_assert!(first.ifl <= 0.1);
        // Scaling preserves relative errors only up to float round-off;
        // skip inputs sitting exactly on the budget boundary.
        prop_assume!(first.ifl < 0.0999);

        let mut g2 = g.clone();
        for id in g.valid_cells() {
            let v = g.value(id, 0) * scale;
            g2.set_value(id, 0, v);
        }
        let second = t.step(&g2).unwrap();
        prop_assert!(second.reused, "relative structure unchanged => reuse");
        prop_assert!(second.ifl <= 0.1);
        prop_assert_eq!(second.num_groups, first.num_groups);
    }

    /// Quadtree invariant: leaves tile the grid, are homogeneous, and are
    /// never fewer than the greedy's groups... (the greedy is at least as
    /// good — asserted the safe direction: counts match the tiling).
    #[test]
    fn quadtree_tiles_and_is_valid(
        g in grid_strategy(),
        theta in 0.0f64..0.3,
    ) {
        let norm = normalize_attributes(&g);
        let p = quadtree_partition(&norm, theta);
        let covered: usize = (0..p.num_groups() as u32).map(|gid| p.rect(gid).len()).sum();
        prop_assert_eq!(covered, g.num_cells());
        // Every cell maps into its group's rectangle.
        for cell in 0..g.num_cells() as u32 {
            let gid = p.group_of(cell);
            let (r, c) = g.cell_pos(cell);
            prop_assert!(p.rect(gid).contains(r as u32, c as u32));
        }
        // The greedy extractor never needs more groups than the quadtree on
        // these grids... not guaranteed in general; assert the tiling bound
        // that IS guaranteed: both are at most the cell count.
        prop_assert!(p.num_groups() <= g.num_cells());
    }
}
