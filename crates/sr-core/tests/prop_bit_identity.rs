//! Bit-identity property suite for the SoA scan substrate.
//!
//! Every hot kernel in the pipeline was rewritten from per-cell gathers
//! (AoS) to flat attribute-plane loops (SoA). The contract of that rewrite
//! is *bit* identity, not approximate equality: the driver's
//! accept/reject decisions compare IFL values against a threshold, so a
//! single flipped ulp can change the accepted partition.
//!
//! This suite pins the contract with self-contained **reference
//! implementations** written the pre-SoA way — per-cell feature-vector
//! gathers via the public scalar accessors (`features`, `value`,
//! `is_valid`), never the planes — and asserts that the production
//! kernels reproduce them bit for bit on randomized grids (mixed
//! aggregation schemas, integer flags, null patterns) and on the validity
//! bitmap edge cases the packed `u64` words make interesting: an
//! all-invalid row, a single valid cell, and grids whose cell count ends
//! in a trailing partial word.
//!
//! Thread counts are exercised with explicit pools (1, 2, 8) rather than
//! `SR_THREADS`, which is process-global and racy across parallel tests.

use sr_core::{
    allocate_features_with, extract_cell_groups_with, partition_ifl_with, GroupRect,
    IterationStrategy, Partition, RepartitionConfig, Repartitioner,
};
use sr_grid::{
    adjacent_variations_with, local_loss, normalize_attributes, variation_between_typed, AggType,
    Bounds, CellId, GridDataset, IflOptions,
};
use sr_par::Pool;

// ---------------------------------------------------------------------------
// Deterministic generator
// ---------------------------------------------------------------------------

/// xorshift64* — deterministic across platforms, no dependencies.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed.max(1))
    }
    fn next_u64(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }
    /// Uniform in `[0, n)`.
    fn below(&mut self, n: usize) -> usize {
        (self.next_u64() % n as u64) as usize
    }
    /// Uniform in `[0, 1)`.
    fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }
}

/// Validity pattern for a generated grid.
enum Validity {
    /// Every cell valid.
    Full,
    /// Each cell invalid with probability `1/den`.
    Random { den: usize },
    /// One entire row invalid (exercises the null–null `-∞` edges and
    /// whole runs of zero validity bits).
    InvalidRow(usize),
    /// Exactly one valid cell (every group but one is null).
    SingleValid(usize),
}

/// A random mixed-schema grid. Values are quantized to one decimal so
/// repeated values actually occur (exercising the mode paths), `Mode`
/// attributes carry small integer codes, and integer-flagged attributes
/// hold whole numbers.
fn make_grid(seed: u64, rows: usize, cols: usize, p: usize, validity: Validity) -> GridDataset {
    let mut rng = Rng::new(seed);
    let n = rows * cols;
    let aggs: Vec<AggType> = (0..p)
        .map(|k| match (k + seed as usize) % 4 {
            0 => AggType::Avg,
            1 => AggType::Sum,
            2 => AggType::Avg,
            _ => AggType::Mode,
        })
        .collect();
    let ints: Vec<bool> = (0..p).map(|k| aggs[k] == AggType::Mode || k % 3 == 1).collect();
    let mut data = Vec::with_capacity(n * p);
    for id in 0..n {
        let (r, c) = (id / cols, id % cols);
        for k in 0..p {
            let v = match aggs[k] {
                AggType::Mode => rng.below(4) as f64,
                _ => {
                    // Smooth ramp + coarse noise: adjacent variations span
                    // the whole accept/reject range at the test thetas.
                    let base = 50.0 + r as f64 * 0.7 + c as f64 * 0.4;
                    let noisy = base + (rng.f64() - 0.5) * 6.0;
                    let q = (noisy * 10.0).round() / 10.0;
                    if ints[k] {
                        q.round()
                    } else {
                        q
                    }
                }
            };
            data.push(v);
        }
    }
    let valid: Vec<bool> = match validity {
        Validity::Full => vec![true; n],
        Validity::Random { den } => (0..n).map(|_| rng.below(den) != 0).collect(),
        Validity::InvalidRow(row) => (0..n).map(|id| id / cols != row % rows).collect(),
        Validity::SingleValid(cell) => (0..n).map(|id| id == cell % n).collect(),
    };
    let names = (0..p).map(|k| format!("a{k}")).collect();
    GridDataset::new(rows, cols, p, data, valid, names, aggs, ints, Bounds::unit()).unwrap()
}

/// The grid/θ matrix every property runs over: varied shapes (including a
/// 117-cell grid whose bitmap ends in a trailing partial word and a
/// 128-cell grid that ends exactly on a word boundary), attribute counts
/// with and without a monomorphized IFL kernel, and all validity edge
/// cases.
fn corpus() -> Vec<(GridDataset, f64)> {
    vec![
        (make_grid(1, 12, 17, 4, Validity::Full), 0.02),
        (make_grid(2, 9, 13, 3, Validity::Random { den: 5 }), 0.015),
        (make_grid(3, 16, 8, 1, Validity::Random { den: 7 }), 0.01),
        (make_grid(4, 11, 19, 5, Validity::InvalidRow(4)), 0.02),
        (make_grid(5, 10, 10, 2, Validity::SingleValid(37)), 0.05),
        (make_grid(6, 7, 11, 4, Validity::Random { den: 3 }), 0.03),
        (make_grid(7, 1, 64, 2, Validity::Random { den: 4 }), 0.02),
        (make_grid(8, 21, 6, 4, Validity::InvalidRow(0)), 0.025),
    ]
}

fn pools() -> Vec<Pool> {
    vec![Pool::new(1), Pool::new(2), Pool::new(8)]
}

// ---------------------------------------------------------------------------
// Reference implementations (pre-SoA style: scalar accessors only)
// ---------------------------------------------------------------------------

/// Reference adjacent-pair scan: per-cell feature-vector gathers and
/// Eq. 1 on the gathered vectors, in the documented serial order (row
/// major; per valid cell the right pair, then the down pair).
fn ref_adjacent_pairs(norm: &GridDataset) -> Vec<(CellId, CellId, f64)> {
    let (rows, cols) = (norm.rows(), norm.cols());
    let aggs = norm.agg_types();
    let mut out = Vec::new();
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as CellId;
            let Some(fv) = norm.features(id) else { continue };
            if c + 1 < cols {
                if let Some(right) = norm.features(id + 1) {
                    out.push((id, id + 1, variation_between_typed(&fv, &right, aggs)));
                }
            }
            if r + 1 < rows {
                let down = id + cols as CellId;
                if let Some(below) = norm.features(down) {
                    out.push((id, down, variation_between_typed(&fv, &below, aggs)));
                }
            }
        }
    }
    out
}

/// Reference edge arrays for Algorithm 1: `h[r·cols + c]` is the edge to
/// the right neighbor, `v[r·cols + c]` the edge below, with the null
/// conventions of the production `EdgeVariations` (`-∞` null–null, `+∞`
/// mixed or out of grid).
fn ref_edges(norm: &GridDataset) -> (Vec<f64>, Vec<f64>) {
    let (rows, cols) = (norm.rows(), norm.cols());
    let aggs = norm.agg_types();
    let pair = |a: CellId, b: CellId| -> f64 {
        match (norm.features(a), norm.features(b)) {
            (Some(fa), Some(fb)) => variation_between_typed(&fa, &fb, aggs),
            (None, None) => f64::NEG_INFINITY,
            _ => f64::INFINITY,
        }
    };
    let mut h = vec![f64::INFINITY; rows * cols];
    let mut v = vec![f64::INFINITY; rows * cols];
    for r in 0..rows {
        for c in 0..cols {
            let id = (r * cols + c) as CellId;
            if c + 1 < cols {
                h[r * cols + c] = pair(id, id + 1);
            }
            if r + 1 < rows {
                v[r * cols + c] = pair(id, id + cols as CellId);
            }
        }
    }
    (h, v)
}

/// Reference Algorithm 1: the greedy row-major scan over [`ref_edges`],
/// written directly from the paper's description (maximal anchored
/// rectangle per unvisited cell).
fn ref_extract(norm: &GridDataset, theta: f64) -> Partition {
    let (rows, cols) = (norm.rows(), norm.cols());
    let (h, v) = ref_edges(norm);
    let accept = theta + 1e-12;
    const UNASSIGNED: u32 = u32::MAX;
    let mut cell_to_group = vec![UNASSIGNED; rows * cols];
    let mut groups: Vec<GroupRect> = Vec::new();
    for r in 0..rows {
        let mut c = 0usize;
        while c < cols {
            if cell_to_group[r * cols + c] != UNASSIGNED {
                c += 1;
                continue;
            }
            // Maximal horizontal run in the anchor row.
            let mut width = 1usize;
            while c + width < cols
                && cell_to_group[r * cols + c + width] == UNASSIGNED
                && h[r * cols + c + width - 1] <= accept
            {
                width += 1;
            }
            // Grow downward, shrinking to the longest compatible prefix.
            let (mut best_h, mut best_w) = (1usize, width);
            let mut w = width;
            let mut height = 1usize;
            while r + height < rows && w > 0 {
                let rr = r + height;
                let mut w2 = 0usize;
                while w2 < w {
                    let cc = rr * cols + c + w2;
                    if cell_to_group[cc] != UNASSIGNED || v[cc - cols] > accept {
                        break;
                    }
                    if w2 > 0 && h[cc - 1] > accept {
                        break;
                    }
                    w2 += 1;
                }
                if w2 == 0 {
                    break;
                }
                w = w2;
                height += 1;
                if height * w > best_h * best_w {
                    best_h = height;
                    best_w = w;
                }
            }
            let gid = groups.len() as u32;
            for rr in r..r + best_h {
                for cc in c..c + best_w {
                    cell_to_group[rr * cols + cc] = gid;
                }
            }
            groups.push(GroupRect {
                r0: r as u32,
                r1: (r + best_h - 1) as u32,
                c0: c as u32,
                c1: (c + best_w - 1) as u32,
            });
            c += best_w;
        }
    }
    Partition::new(rows, cols, groups, cell_to_group)
}

/// Most frequent value, ties to the smallest first-occurrence index —
/// the selection rule of Algorithm 2's mode, as a quadratic scan.
fn ref_mode(values: &[f64]) -> f64 {
    let mut best_v = values[0];
    let mut best_c = 0usize;
    for (i, &v) in values.iter().enumerate() {
        let bits = v.to_bits();
        if values[..i].iter().any(|&w| w.to_bits() == bits) {
            continue;
        }
        let count = values[i..].iter().filter(|&&w| w.to_bits() == bits).count();
        if count > best_c {
            best_c = count;
            best_v = v;
        }
    }
    best_v
}

/// The `Avg` branch of Algorithm 2 (mean-vs-mode by local loss, ties to
/// the mean with the production's relative tolerance).
fn ref_avg(values: &[f64], integer_typed: bool) -> f64 {
    if let [v] = values {
        return *v;
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let a = if integer_typed { mean.round() } else { mean };
    let b = ref_mode(values);
    let (loss_a, loss_b) = (local_loss(values, a), local_loss(values, b));
    let tol = 1e-9 * loss_a.abs().max(loss_b.abs());
    if loss_b < loss_a - tol {
        b
    } else {
        a
    }
}

/// Reference Algorithm 2: per-group column gathers through the scalar
/// accessors, aggregated in row-major member order.
fn ref_allocate(grid: &GridDataset, partition: &Partition) -> Vec<Option<Vec<f64>>> {
    let p = grid.num_attrs();
    let (aggs, ints) = (grid.agg_types(), grid.integer_attrs());
    let cols = grid.cols();
    (0..partition.num_groups() as u32)
        .map(|gid| {
            let rect = partition.rect(gid);
            let mut columns: Vec<Vec<f64>> = vec![Vec::new(); p];
            for r in rect.r0..=rect.r1 {
                for c in rect.c0..=rect.c1 {
                    let id = (r as usize * cols + c as usize) as CellId;
                    if !grid.is_valid(id) {
                        continue;
                    }
                    for (k, col) in columns.iter_mut().enumerate() {
                        col.push(grid.value(id, k));
                    }
                }
            }
            if columns[0].is_empty() {
                return None;
            }
            Some(
                (0..p)
                    .map(|k| match aggs[k] {
                        AggType::Sum => {
                            let mut s = 0.0f64;
                            for &v in &columns[k] {
                                s += v;
                            }
                            s
                        }
                        AggType::Avg => ref_avg(&columns[k], ints[k]),
                        AggType::Mode => ref_mode(&columns[k]),
                    })
                    .collect(),
            )
        })
        .collect()
}

/// Reference Eq. 3: per-cell percentage-error terms against
/// aggregation-aware representatives. Terms are formed exactly as the
/// production kernel forms them (`|d − r| · (1/|d|)`, not a division) and
/// summed in the same fixed-grain chunk order, because the contract is
/// bit identity, not mathematical equality.
fn ref_ifl(
    grid: &GridDataset,
    partition: &Partition,
    features: &[Option<Vec<f64>>],
    opts: IflOptions,
) -> f64 {
    let p = grid.num_attrs();
    let aggs = grid.agg_types();
    let cells: Vec<CellId> = grid.valid_cells().collect();
    let mut counts = vec![0usize; partition.num_groups()];
    for &id in &cells {
        counts[partition.group_of(id) as usize] += 1;
    }
    let mut terms = 0usize;
    for &id in &cells {
        for (k, &agg) in aggs.iter().enumerate() {
            if agg == AggType::Mode || grid.value(id, k).abs() > opts.zero_eps {
                terms += 1;
            }
        }
    }
    if terms == 0 {
        return 0.0;
    }
    let grain = sr_par::fixed_grain(cells.len(), 64);
    let mut partials = Vec::new();
    for chunk in cells.chunks(grain) {
        let mut sum = 0.0f64;
        for &id in chunk {
            let g = partition.group_of(id) as usize;
            if counts[g] == 1 {
                continue; // every term is an exact zero
            }
            let fv = features[g].as_ref().expect("valid cell in null group");
            for k in 0..p {
                let d = grid.value(id, k);
                let rep = match aggs[k] {
                    AggType::Sum => fv[k] / counts[g] as f64,
                    AggType::Avg | AggType::Mode => fv[k],
                };
                if aggs[k] == AggType::Mode {
                    sum += if d == rep { 0.0 } else { 1.0 };
                } else if d.abs() > opts.zero_eps {
                    sum += (d - rep).abs() * (1.0 / d.abs());
                }
            }
        }
        partials.push(sum);
    }
    partials.iter().sum::<f64>() / terms as f64
}

// ---------------------------------------------------------------------------
// Comparison helpers
// ---------------------------------------------------------------------------

fn bits(v: f64) -> u64 {
    v.to_bits()
}

fn assert_partitions_equal(a: &Partition, b: &Partition, ctx: &str) {
    assert_eq!(a.num_groups(), b.num_groups(), "{ctx}: group count");
    for g in 0..a.num_groups() as u32 {
        assert_eq!(a.rect(g), b.rect(g), "{ctx}: rect of group {g}");
    }
    for id in 0..(a.rows() * a.cols()) as CellId {
        assert_eq!(a.group_of(id), b.group_of(id), "{ctx}: cIndex of cell {id}");
    }
}

fn assert_features_equal(a: &[Option<Vec<f64>>], b: &[Option<Vec<f64>>], ctx: &str) {
    assert_eq!(a.len(), b.len(), "{ctx}: feature table length");
    for (g, (fa, fb)) in a.iter().zip(b).enumerate() {
        match (fa, fb) {
            (None, None) => {}
            (Some(va), Some(vb)) => {
                let ba: Vec<u64> = va.iter().map(|&v| bits(v)).collect();
                let bb: Vec<u64> = vb.iter().map(|&v| bits(v)).collect();
                assert_eq!(ba, bb, "{ctx}: feature bits of group {g}");
            }
            _ => panic!("{ctx}: null-ness of group {g} differs"),
        }
    }
}

// ---------------------------------------------------------------------------
// Properties
// ---------------------------------------------------------------------------

#[test]
fn variation_scan_matches_feature_gather_reference() {
    for (i, (grid, _)) in corpus().iter().enumerate() {
        let norm = normalize_attributes(grid);
        let want = ref_adjacent_pairs(&norm);
        for pool in pools() {
            let got = adjacent_variations_with(&norm, &pool);
            assert_eq!(got.len(), want.len(), "grid {i}, {} threads: pair count", pool.threads());
            for (j, (pair, &(a, b, var))) in got.iter().zip(&want).enumerate() {
                assert_eq!((pair.a, pair.b), (a, b), "grid {i} pair {j}: endpoints");
                assert_eq!(
                    bits(pair.variation),
                    bits(var),
                    "grid {i} pair {j} ({a},{b}), {} threads: variation bits",
                    pool.threads()
                );
            }
        }
    }
}

#[test]
fn extraction_matches_aos_reference_at_every_thread_count() {
    for (i, (grid, theta)) in corpus().iter().enumerate() {
        let norm = normalize_attributes(grid);
        // Exercise thresholds below, at, and above the configured one.
        for t in [0.0, *theta, theta * 4.0] {
            let want = ref_extract(&norm, t);
            for pool in pools() {
                let got = extract_cell_groups_with(&norm, t, &pool);
                assert_partitions_equal(
                    &got,
                    &want,
                    &format!("grid {i}, θ={t}, {} threads", pool.threads()),
                );
            }
        }
    }
}

#[test]
fn allocation_matches_scalar_gather_reference() {
    for (i, (grid, theta)) in corpus().iter().enumerate() {
        let norm = normalize_attributes(grid);
        let partition = ref_extract(&norm, *theta);
        let want = ref_allocate(grid, &partition);
        for pool in pools() {
            let got = allocate_features_with(grid, &partition, &pool);
            assert_features_equal(&got, &want, &format!("grid {i}, {} threads", pool.threads()));
        }
    }
}

#[test]
fn ifl_matches_naive_eq3_reference() {
    let opts = IflOptions::default();
    for (i, (grid, theta)) in corpus().iter().enumerate() {
        let norm = normalize_attributes(grid);
        let partition = ref_extract(&norm, *theta);
        let features = ref_allocate(grid, &partition);
        let want = ref_ifl(grid, &partition, &features, opts);
        for pool in pools() {
            let got = partition_ifl_with(grid, &partition, &features, opts, &pool);
            assert_eq!(
                bits(got),
                bits(want),
                "grid {i}, {} threads: IFL bits ({got} vs {want})",
                pool.threads()
            );
        }
    }
}

/// The full driver: identical outcome bits at 1, 2, and 8 threads, under
/// both iteration strategies, and the accepted iteration reproducible
/// through the reference pipeline at the accepted threshold.
#[test]
fn driver_outcome_is_thread_invariant_and_reference_reproducible() {
    let strategies = [
        IterationStrategy::EveryDistinct,
        IterationStrategy::Exponential { initial_stride: 3, growth: 1.7 },
    ];
    for (i, (grid, theta)) in corpus().iter().enumerate() {
        for strategy in strategies {
            let run = |pool: &Pool| {
                let cfg = RepartitionConfig::new(*theta).unwrap().with_strategy(strategy);
                Repartitioner::with_config(cfg).unwrap().run_with_pool(grid, pool).unwrap()
            };
            let base = run(&Pool::new(1));
            for pool in [Pool::new(2), Pool::new(8)] {
                let other = run(&pool);
                let ctx = format!("grid {i}, {strategy:?}, {} threads", pool.threads());
                assert_partitions_equal(
                    base.repartitioned.partition(),
                    other.repartitioned.partition(),
                    &ctx,
                );
                assert_features_equal(
                    base.repartitioned.features(),
                    other.repartitioned.features(),
                    &ctx,
                );
                assert_eq!(
                    bits(base.repartitioned.ifl()),
                    bits(other.repartitioned.ifl()),
                    "{ctx}: ifl"
                );
                assert_eq!(
                    bits(base.repartitioned.min_adjacent_variation()),
                    bits(other.repartitioned.min_adjacent_variation()),
                    "{ctx}: accepted θ"
                );
                assert_eq!(base.iterations.len(), other.iterations.len(), "{ctx}: iterations");
                for (a, b) in base.iterations.iter().zip(&other.iterations) {
                    assert_eq!(
                        bits(a.min_adjacent_variation),
                        bits(b.min_adjacent_variation),
                        "{ctx}: iteration θ"
                    );
                    assert_eq!(bits(a.ifl), bits(b.ifl), "{ctx}: iteration ifl");
                    assert_eq!(a.num_groups, b.num_groups, "{ctx}: iteration groups");
                    assert_eq!(a.accepted, b.accepted, "{ctx}: iteration verdict");
                }
            }
            // The accepted result is exactly what the reference pipeline
            // produces at the accepted threshold (skipped when the driver
            // fell back to the identity partition, whose θ=0 extraction
            // legitimately differs on grids with equal-valued neighbors).
            if base.iterations.iter().any(|it| it.accepted) {
                let norm = normalize_attributes(grid);
                let theta_star = base.repartitioned.min_adjacent_variation();
                let partition = ref_extract(&norm, theta_star);
                let ctx = format!("grid {i}, {strategy:?}, reference replay");
                assert_partitions_equal(base.repartitioned.partition(), &partition, &ctx);
                let features = ref_allocate(grid, &partition);
                assert_features_equal(base.repartitioned.features(), &features, &ctx);
                let ifl = ref_ifl(grid, &partition, &features, IflOptions::default());
                assert_eq!(bits(base.repartitioned.ifl()), bits(ifl), "{ctx}: ifl bits");
            }
        }
    }
}

/// Packed validity-word edge cases, explicitly: a grid whose bitmap ends
/// mid-word must behave exactly like its `Vec<bool>` mask says, and the
/// degenerate all-null / one-valid grids must flow through every stage.
#[test]
fn validity_bitmap_edge_cases() {
    // 9×13 = 117 cells: one full word + a 53-bit trailing partial word.
    let grid = make_grid(42, 9, 13, 3, Validity::Random { den: 4 });
    let mask = grid.valid_mask();
    for (id, &m) in mask.iter().enumerate() {
        assert_eq!(grid.is_valid(id as CellId), m, "cell {id} validity");
    }
    assert_eq!(grid.num_valid_cells(), mask.iter().filter(|&&m| m).count());
    let from_words: Vec<CellId> = grid.valid_cells().collect();
    let from_mask: Vec<CellId> =
        mask.iter().enumerate().filter(|(_, &m)| m).map(|(id, _)| id as CellId).collect();
    assert_eq!(from_words, from_mask, "valid_cells vs mask walk");

    // All-null grid: no pairs, no featured groups, zero loss.
    let mut g = make_grid(43, 6, 11, 2, Validity::Full);
    for id in 0..g.num_cells() {
        g.set_null(id as CellId);
    }
    let norm = normalize_attributes(&g);
    assert!(adjacent_variations_with(&norm, &Pool::new(8)).is_empty());
    let part = ref_extract(&norm, 0.01);
    let feats = allocate_features_with(&g, &part, &Pool::new(2));
    assert!(feats.iter().all(Option::is_none), "all groups null");
    assert_eq!(partition_ifl_with(&g, &part, &feats, IflOptions::default(), &Pool::new(1)), 0.0);

    // Single valid cell: exactly one featured singleton group that keeps
    // its exact values, and zero loss.
    let g = make_grid(44, 8, 9, 4, Validity::SingleValid(29));
    let norm = normalize_attributes(&g);
    assert!(adjacent_variations_with(&norm, &Pool::new(2)).is_empty());
    let out = Repartitioner::new(0.05).unwrap().run_with_pool(&g, &Pool::new(8)).unwrap();
    let rep = &out.repartitioned;
    assert_eq!(rep.num_valid_groups(), 1);
    let gid = rep.partition().group_of(29);
    let fv = rep.group_feature(gid).unwrap();
    for (k, &v) in fv.iter().enumerate() {
        assert_eq!(bits(v), bits(g.value(29, k)), "singleton keeps exact value of attr {k}");
    }
    assert_eq!(rep.ifl(), 0.0);
}
