//! Property-based determinism tests for the parallel hot paths
//! (docs/PERFORMANCE.md): every `*_with` entry point must produce results
//! bit-identical to the serial path regardless of the pool's thread count.
//!
//! Each test builds private pools (`Pool::new(1)` / `2` / `8`) rather than
//! touching the global pool, so the checks are hermetic and hold for thread
//! counts well above what CI machines physically have.

use proptest::prelude::*;
use sr_core::{
    allocate_features_with, extract_cell_groups_with, group_adjacency_with, partition_ifl_with,
    Repartitioner,
};
use sr_grid::{normalize_attributes, GridDataset, IflOptions};
use sr_par::Pool;

/// Strategy: a small random grid (values and a few null cells).
fn grid_strategy() -> impl Strategy<Value = GridDataset> {
    (2usize..12, 2usize..12)
        .prop_flat_map(|(rows, cols)| {
            (
                Just(rows),
                Just(cols),
                prop::collection::vec(0.5f64..20.0, rows * cols),
                prop::collection::vec(0usize..(rows * cols), 0..5),
            )
        })
        .prop_map(|(rows, cols, vals, nulls)| {
            let mut g = GridDataset::univariate(rows, cols, vals).unwrap();
            for id in nulls {
                g.set_null(id as u32);
            }
            g
        })
}

/// The pool fan-outs exercised against the serial reference.
fn pools() -> Vec<Pool> {
    vec![Pool::new(2), Pool::new(8)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Extraction, allocation, IFL, and group adjacency are bit-identical
    /// across thread counts: same partition, same feature vectors (exact
    /// f64 equality), same IFL bits, same adjacency lists.
    #[test]
    fn pipeline_stages_bit_identical_across_thread_counts(
        g in grid_strategy(),
        theta in 0.0f64..0.5,
    ) {
        let serial = Pool::new(1);
        let norm = normalize_attributes(&g);
        let p1 = extract_cell_groups_with(&norm, theta, &serial);
        let f1 = allocate_features_with(&g, &p1, &serial);
        let ifl1 = partition_ifl_with(&g, &p1, &f1, IflOptions::default(), &serial);
        let adj1 = group_adjacency_with(&p1, &serial);

        for pool in pools() {
            let pn = extract_cell_groups_with(&norm, theta, &pool);
            prop_assert_eq!(&pn, &p1, "partition differs at {} threads", pool.threads());
            let fnn = allocate_features_with(&g, &pn, &pool);
            prop_assert_eq!(fnn.len(), f1.len());
            for (a, b) in fnn.iter().zip(&f1) {
                // Exact bit equality, not tolerance: parallel reduction must
                // fold partials in the same order as the serial loop.
                prop_assert_eq!(a, b);
            }
            let ifln = partition_ifl_with(&g, &pn, &fnn, IflOptions::default(), &pool);
            prop_assert_eq!(ifln.to_bits(), ifl1.to_bits(), "IFL bits differ");
            let adjn = group_adjacency_with(&pn, &pool);
            for gid in 0..pn.num_groups() as u32 {
                prop_assert_eq!(adjn.neighbors(gid), adj1.neighbors(gid));
            }
        }
    }

    /// The full repartition driver is deterministic in the thread count:
    /// identical accepted partition, feature vectors, IFL bits, and theta.
    #[test]
    fn driver_bit_identical_across_thread_counts(
        g in grid_strategy(),
        theta in 0.01f64..0.3,
    ) {
        let driver = Repartitioner::new(theta).unwrap();
        let serial = driver.run_with_pool(&g, &Pool::new(1)).unwrap();
        for pool in pools() {
            let par = driver.run_with_pool(&g, &pool).unwrap();
            prop_assert_eq!(
                par.repartitioned.partition(),
                serial.repartitioned.partition()
            );
            prop_assert_eq!(par.repartitioned.features(), serial.repartitioned.features());
            prop_assert_eq!(
                par.repartitioned.ifl().to_bits(),
                serial.repartitioned.ifl().to_bits()
            );
            prop_assert_eq!(
                par.repartitioned.min_adjacent_variation().to_bits(),
                serial.repartitioned.min_adjacent_variation().to_bits()
            );
        }
    }
}
