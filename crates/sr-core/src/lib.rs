//! The ML-aware spatial data re-partitioning framework — the paper's core
//! contribution (§III).
//!
//! Given an `m × n` grid dataset and an information-loss threshold
//! `θ ∈ (0, 1)`, the framework iteratively merges adjacent, similar cells
//! into rectangular *cell-groups*, stopping just before the information loss
//! (IFL, Eq. 3) would exceed `θ`. The output is a compact dataset of
//! cell-groups that preserves spatial adjacency (so spatial ML models keep
//! their autocorrelation signal) while being much smaller than the input.
//!
//! Pipeline (one iteration, Fig. 2):
//!
//! 1. [`heap::VariationHeap`] — pop the next *min-adjacent variation*
//!    (§III-A1): variations of all adjacent cell pairs on the
//!    attribute-normalized grid, pre-computed once into a min-heap.
//! 2. [`extractor::extract_cell_groups`] — Algorithm 1: greedily grow
//!    rectangular groups of adjacent cells whose adjacent-pair variations
//!    all stay within the iteration's min-adjacent variation.
//! 3. [`allocator::allocate_features`] — Algorithm 2: give each group a
//!    representative feature vector (sum, or the better of mean/mode).
//! 4. [`ifl`] — Eq. 3 between input and re-partitioned data; accept the
//!    iteration if `IFL ≤ θ`, else stop and keep the previous partition.
//!
//! The driver lives in [`repartition::Repartitioner`]; the accepted result
//! is a [`repartition::Repartitioned`], which offers the training-side
//! conveniences of §III-B/§III-C: group adjacency lists (Algorithm 3, in
//! [`group_adjacency()`]), feature-matrix/centroid/vertex preparation
//! ([`prepare`]), and reconstruction of per-cell values
//! ([`reconstruct`]). The naive homogeneous variant of §III-D is in
//! [`homogeneous`].

pub mod allocator;
pub mod extractor;
pub mod group_adjacency;
pub mod heap;
pub mod homogeneous;
pub mod ifl;
pub mod incremental;
pub mod localized;
pub mod partition;
pub mod prepare;
pub mod quadtree;
pub mod reconstruct;
pub mod repartition;
pub mod streaming;
pub mod temporal;

pub use allocator::{allocate_features, allocate_features_with, GroupFeatures};
pub use extractor::{
    extract_cell_groups, extract_cell_groups_with, extract_with_edges, EdgeVariations,
};
pub use group_adjacency::{group_adjacency, group_adjacency_with};
pub use heap::VariationHeap;
pub use homogeneous::{homogeneous_ifl, homogeneous_merge, run_homogeneous, HomogeneousOutcome};
pub use ifl::{
    partition_ifl, partition_ifl_groups, partition_ifl_groups_with, partition_ifl_with,
    representative,
};
pub use incremental::{ScanCache, ScanUpdate};
pub use localized::LocalizedState;
pub use partition::{GroupId, GroupRect, Partition};
pub use prepare::PreparedTrainingData;
pub use quadtree::quadtree_partition;
pub use reconstruct::reconstruct_grid;
pub use repartition::{
    repartition, IterationStats, IterationStrategy, RepartitionConfig, RepartitionOutcome,
    Repartitioned, Repartitioner,
};
pub use streaming::{CellUpdate, StreamingRepartitioner};
pub use temporal::{StepOutcome, TemporalRepartitioner};

/// Errors from the re-partitioning framework.
#[derive(Debug, Clone, PartialEq)]
pub enum CoreError {
    /// The loss threshold must lie in (0, 1] (paper §I: "a numerical loss
    /// threshold between 0 and 1").
    InvalidThreshold(f64),
    /// A grid-level operation failed.
    Grid(sr_grid::GridError),
    /// The homogeneous variant needs merge factors ≥ 1 that fit the grid.
    InvalidMergeFactor {
        /// Offending factor.
        factor: usize,
    },
    /// A [`ScanCache`] was handed to a driver whose IFL options differ from
    /// the ones the cache was built with — its Eq. 3 term cache would be
    /// silently wrong.
    ScanCacheMismatch,
}

impl std::fmt::Display for CoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreError::InvalidThreshold(t) => {
                write!(f, "IFL threshold must be in (0, 1], got {t}")
            }
            CoreError::Grid(e) => write!(f, "grid error: {e}"),
            CoreError::InvalidMergeFactor { factor } => {
                write!(f, "merge factor {factor} is invalid for this grid")
            }
            CoreError::ScanCacheMismatch => {
                write!(f, "scan cache was built with different IFL options than the driver")
            }
        }
    }
}

impl std::error::Error for CoreError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoreError::Grid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<sr_grid::GridError> for CoreError {
    fn from(e: sr_grid::GridError) -> Self {
        CoreError::Grid(e)
    }
}

/// Result alias for core operations.
pub type Result<T> = std::result::Result<T, CoreError>;
