//! Partition types: rectangular cell-groups and the two index mappings of
//! Algorithm 1 (`gIndex`: group → rectangle, `cIndex`: cell → group).

use sr_grid::CellId;

/// Identifier of a cell-group within a partition.
pub type GroupId = u32;

/// A rectangular cell-group: inclusive row/column bounds within the grid
/// (the paper's `(rBeg, rEnd, cBeg, cEnd)` tuple stored in `gIndex`).
///
/// Rectangularity is the framework's key structural invariant (§I): it makes
/// the group ↔ cell mapping four integers, keeps adjacency computation
/// boundary-only (Algorithm 3), and lets kriging feature vectors carry a
/// fixed number of vertices.
///
/// `#[repr(C)]` (four `u32`s, 16 bytes, no padding): the sr-snap v2
/// snapshot format stores the partition section as this exact layout so
/// a validated `&[u8]` can be served as `&[GroupRect]` without decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(C)]
pub struct GroupRect {
    /// First row (`rBeg`).
    pub r0: u32,
    /// Last row, inclusive (`rEnd`).
    pub r1: u32,
    /// First column (`cBeg`).
    pub c0: u32,
    /// Last column, inclusive (`cEnd`).
    pub c1: u32,
}

impl GroupRect {
    /// Single-cell rectangle.
    pub fn cell(r: u32, c: u32) -> Self {
        GroupRect { r0: r, r1: r, c0: c, c1: c }
    }

    /// Number of rows spanned.
    #[inline]
    pub fn height(&self) -> usize {
        (self.r1 - self.r0 + 1) as usize
    }

    /// Number of columns spanned.
    #[inline]
    pub fn width(&self) -> usize {
        (self.c1 - self.c0 + 1) as usize
    }

    /// Number of cells in the rectangle (`t` in Eq. 2).
    #[inline]
    pub fn len(&self) -> usize {
        self.height() * self.width()
    }

    /// A rectangle always contains at least one cell.
    #[inline]
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `(r, c)` lies inside the rectangle.
    #[inline]
    pub fn contains(&self, r: u32, c: u32) -> bool {
        r >= self.r0 && r <= self.r1 && c >= self.c0 && c <= self.c1
    }

    /// Iterates over the contained cell positions in row-major order.
    /// Takes `self` by value (`GroupRect` is `Copy`) so the iterator owns
    /// its bounds and can outlive the borrow it was created from.
    pub fn cells(self) -> impl Iterator<Item = (u32, u32)> {
        (self.r0..=self.r1).flat_map(move |r| (self.c0..=self.c1).map(move |c| (r, c)))
    }

    /// The four corner vertices in grid coordinates, clockwise from the
    /// top-left: used to build kriging feature vectors (§III-B).
    pub fn vertices(&self) -> [(u32, u32); 4] {
        [
            (self.r0, self.c0),
            (self.r0, self.c1 + 1),
            (self.r1 + 1, self.c1 + 1),
            (self.r1 + 1, self.c0),
        ]
    }
}

/// A complete tiling of an `rows × cols` grid into rectangular cell-groups.
///
/// Holds both mappings Algorithm 1 emits: `groups` is `gIndex` (group id →
/// rectangle) and `cell_to_group` is `cIndex` (flat cell id → group id).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Partition {
    rows: usize,
    cols: usize,
    groups: Vec<GroupRect>,
    cell_to_group: Vec<GroupId>,
}

impl Partition {
    /// Builds a partition from its parts, checking the tiling invariants:
    /// every cell belongs to exactly one group, and that group's rectangle
    /// contains it.
    pub fn new(
        rows: usize,
        cols: usize,
        groups: Vec<GroupRect>,
        cell_to_group: Vec<GroupId>,
    ) -> Self {
        debug_assert_eq!(cell_to_group.len(), rows * cols);
        #[cfg(debug_assertions)]
        {
            let mut counted = 0usize;
            for (gid, rect) in groups.iter().enumerate() {
                counted += rect.len();
                for (r, c) in rect.cells() {
                    debug_assert_eq!(
                        cell_to_group[r as usize * cols + c as usize] as usize,
                        gid,
                        "cell ({r},{c}) not mapped to its containing group"
                    );
                }
            }
            debug_assert_eq!(counted, rows * cols, "groups do not tile the grid");
        }
        Partition { rows, cols, groups, cell_to_group }
    }

    /// An empty placeholder partition whose buffers a later extraction pass
    /// refills via [`Partition::take_parts`].
    pub(crate) fn empty() -> Self {
        Partition { rows: 0, cols: 0, groups: Vec::new(), cell_to_group: Vec::new() }
    }

    /// Takes both index buffers out of this partition (leaving it empty) so
    /// an extraction pass can refill them in place. The driver evaluates
    /// dozens of thresholds per run; recycling the two grid-sized buffers
    /// keeps their pages mapped across evaluations.
    pub(crate) fn take_parts(&mut self) -> (Vec<GroupRect>, Vec<GroupId>) {
        (std::mem::take(&mut self.groups), std::mem::take(&mut self.cell_to_group))
    }

    /// The identity partition: every cell is its own group (the state before
    /// the first merge iteration; IFL is exactly zero).
    pub fn identity(rows: usize, cols: usize) -> Self {
        let mut groups = Vec::with_capacity(rows * cols);
        let mut cell_to_group = Vec::with_capacity(rows * cols);
        for r in 0..rows as u32 {
            for c in 0..cols as u32 {
                cell_to_group.push(groups.len() as GroupId);
                groups.push(GroupRect::cell(r, c));
            }
        }
        Partition { rows, cols, groups, cell_to_group }
    }

    /// Grid rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Grid columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of cell-groups (`t` in the problem statement).
    pub fn num_groups(&self) -> usize {
        self.groups.len()
    }

    /// The rectangle of group `g`.
    #[inline]
    pub fn rect(&self, g: GroupId) -> GroupRect {
        self.groups[g as usize]
    }

    /// All rectangles, ordered by group id.
    pub fn rects(&self) -> &[GroupRect] {
        &self.groups
    }

    /// Group containing the cell with flat id `cell`.
    #[inline]
    pub fn group_of(&self, cell: CellId) -> GroupId {
        self.cell_to_group[cell as usize]
    }

    /// Group containing cell `(r, c)`.
    #[inline]
    pub fn group_at(&self, r: usize, c: usize) -> GroupId {
        self.cell_to_group[r * self.cols + c]
    }

    /// The `cIndex` mapping as a flat slice.
    pub fn cell_to_group(&self) -> &[GroupId] {
        &self.cell_to_group
    }

    /// Flat cell ids contained in group `g`, row-major.
    ///
    /// Allocates a fresh `Vec` per call; hot paths that only need to walk
    /// the cells should use [`Partition::cells_iter`] instead.
    pub fn cells_of(&self, g: GroupId) -> Vec<CellId> {
        self.cells_iter(g).collect()
    }

    /// Allocation-free iterator over the flat cell ids of group `g`,
    /// row-major — the same sequence [`Partition::cells_of`] collects.
    pub fn cells_iter(&self, g: GroupId) -> impl Iterator<Item = CellId> + '_ {
        let rect = self.rect(g);
        let cols = self.cols;
        rect.cells().map(move |(r, c)| (r as usize * cols + c as usize) as CellId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rect_geometry() {
        let r = GroupRect { r0: 1, r1: 2, c0: 3, c1: 5 };
        assert_eq!(r.height(), 2);
        assert_eq!(r.width(), 3);
        assert_eq!(r.len(), 6);
        assert!(r.contains(2, 5));
        assert!(!r.contains(0, 3));
        assert_eq!(r.cells().count(), 6);
        assert_eq!(r.vertices()[0], (1, 3));
        assert_eq!(r.vertices()[2], (3, 6));
    }

    #[test]
    fn single_cell_rect() {
        let r = GroupRect::cell(4, 7);
        assert_eq!(r.len(), 1);
        assert_eq!(r.cells().collect::<Vec<_>>(), vec![(4, 7)]);
    }

    #[test]
    fn identity_partition_tiles() {
        let p = Partition::identity(2, 3);
        assert_eq!(p.num_groups(), 6);
        for cell in 0..6u32 {
            let g = p.group_of(cell);
            assert_eq!(p.cells_of(g), vec![cell]);
        }
    }

    #[test]
    fn cells_iter_matches_cells_of() {
        let groups = vec![
            GroupRect { r0: 0, r1: 1, c0: 0, c1: 1 },
            GroupRect { r0: 0, r1: 1, c0: 2, c1: 2 },
        ];
        let p = Partition::new(2, 3, groups, vec![0, 0, 1, 0, 0, 1]);
        for g in 0..p.num_groups() as GroupId {
            assert_eq!(p.cells_iter(g).collect::<Vec<_>>(), p.cells_of(g));
        }
        assert_eq!(p.cells_iter(0).collect::<Vec<_>>(), vec![0, 1, 3, 4]);
    }

    #[test]
    fn partition_accessors() {
        // One 1×2 group + one 1×1 in a 1×3 grid... must tile: groups
        // {(0,0)-(0,1)}, {(0,2)}.
        let groups = vec![GroupRect { r0: 0, r1: 0, c0: 0, c1: 1 }, GroupRect::cell(0, 2)];
        let p = Partition::new(1, 3, groups, vec![0, 0, 1]);
        assert_eq!(p.group_at(0, 1), 0);
        assert_eq!(p.group_of(2), 1);
        assert_eq!(p.cells_of(0), vec![0, 1]);
        assert_eq!(p.rect(1), GroupRect::cell(0, 2));
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)]
    fn partition_rejects_non_tiling_in_debug() {
        // Group rectangles overlap cell 1 mapping mismatch.
        let groups = vec![GroupRect { r0: 0, r1: 0, c0: 0, c1: 1 }];
        let _ = Partition::new(1, 3, groups, vec![0, 0, 0]);
    }
}
