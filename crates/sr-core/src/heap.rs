//! The min-adjacent-variation heap (§III-A1).
//!
//! The framework pre-computes the variations between all adjacent cell pairs
//! of the *attribute-normalized* input exactly once and consumes them in
//! ascending order to obtain each re-partitioning iteration's
//! `minAdjacentVariation`. Popping *distinct* values keeps each iteration's
//! partition strictly coarser-or-equal: equal keys would reproduce the same
//! partition and waste a full extraction pass (the paper's Example 2 steps
//! from the least to the "second-least" variation, i.e. it also advances by
//! distinct values).
//!
//! Internally this is no longer a binary heap: every consumer drains the
//! structure in ascending order, so it stores the raw values and sorts them
//! once, lazily, on first use. Finite f64 keys sort branch-free through the
//! sign-flip bijection into `u64` (the `total_cmp` order), which is
//! substantially faster than a comparison sort with an f64 comparator and
//! identical on the finite, non-negative variation keys.

use sr_grid::{adjacent_variation_values_with, GridDataset};

/// Min-heap (API-wise) over adjacent-pair variations; physically a lazily
/// sorted vector with a consume cursor.
#[derive(Debug, Clone)]
pub struct VariationHeap {
    /// The variation keys; ascending once `sorted` is set.
    values: Vec<f64>,
    /// Next unconsumed index (everything before it has been popped).
    cursor: usize,
    sorted: bool,
    /// Two popped values closer than this are considered the same threshold.
    dedup_eps: f64,
    last_popped: Option<f64>,
}

/// Default tolerance for treating two variation keys as equal.
pub const DEFAULT_DEDUP_EPS: f64 = 1e-12;

/// Monotone bijection from finite f64 to u64: preserves `total_cmp` order,
/// which equals the numeric order for the finite keys stored here. Shared
/// with the incremental scan cache, whose sorted variation multiset must
/// use the exact same total order as [`VariationHeap::into_sorted_distinct`].
#[inline]
pub(crate) fn sort_key(v: f64) -> u64 {
    let bits = v.to_bits();
    if bits >> 63 == 0 {
        bits ^ (1u64 << 63)
    } else {
        !bits
    }
}

/// Inverse of [`sort_key`].
#[inline]
fn key_value(k: u64) -> f64 {
    let bits = if k >> 63 != 0 { k ^ (1u64 << 63) } else { !k };
    f64::from_bits(bits)
}

impl VariationHeap {
    /// Builds the heap from a grid. Callers following the paper's pipeline
    /// pass the *normalized* grid (see [`sr_grid::normalize_attributes`]).
    /// The variation scan runs on [`sr_par::Pool::global`].
    pub fn from_grid(normalized: &GridDataset) -> Self {
        Self::from_grid_with(normalized, sr_par::Pool::global())
    }

    /// [`VariationHeap::from_grid`] on an explicit pool.
    pub fn from_grid_with(normalized: &GridDataset, pool: &sr_par::Pool) -> Self {
        let values = adjacent_variation_values_with(normalized, pool);
        VariationHeap {
            values,
            cursor: 0,
            sorted: false,
            dedup_eps: DEFAULT_DEDUP_EPS,
            last_popped: None,
        }
    }

    /// Builds a heap directly from raw variation values (tests, ablations).
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        VariationHeap {
            values: values.into_iter().collect(),
            cursor: 0,
            sorted: false,
            dedup_eps: DEFAULT_DEDUP_EPS,
            last_popped: None,
        }
    }

    /// Overrides the dedup tolerance.
    pub fn with_dedup_eps(mut self, eps: f64) -> Self {
        self.dedup_eps = eps;
        self
    }

    /// Remaining entries (duplicates included).
    pub fn len(&self) -> usize {
        self.values.len() - self.cursor
    }

    /// Whether the heap is exhausted.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Sorts the key array ascending (once): map to order-preserving u64
    /// keys, integer-sort, map back.
    fn ensure_sorted(&mut self) {
        if self.sorted {
            return;
        }
        let mut keys: Vec<u64> = self.values.iter().map(|&v| sort_key(v)).collect();
        keys.sort_unstable();
        for (v, k) in self.values.iter_mut().zip(keys) {
            *v = key_value(k);
        }
        self.sorted = true;
    }

    /// Pops the next *distinct* min-adjacent variation: skips keys within
    /// `dedup_eps` of the previously returned value. Returns `None` when
    /// exhausted.
    pub fn pop_next_distinct(&mut self) -> Option<f64> {
        self.ensure_sorted();
        while self.cursor < self.values.len() {
            let v = self.values[self.cursor];
            self.cursor += 1;
            match self.last_popped {
                Some(prev) if (v - prev).abs() <= self.dedup_eps => continue,
                _ => {
                    self.last_popped = Some(v);
                    return Some(v);
                }
            }
        }
        None
    }

    /// Drains the heap into an ascending, deduplicated vector of thresholds.
    /// The iteration-strategy driver uses this to support strided walks and
    /// binary-search backoff without re-heapifying.
    ///
    /// The dedup semantics match [`pop_next_distinct`] (each kept value is
    /// at least `dedup_eps` above the previous one, starting from the last
    /// value already popped, if any).
    ///
    /// [`pop_next_distinct`]: VariationHeap::pop_next_distinct
    pub fn into_sorted_distinct(mut self) -> Vec<f64> {
        self.ensure_sorted();
        let mut out = Vec::with_capacity(self.len());
        let mut last = self.last_popped;
        for &v in &self.values[self.cursor..] {
            match last {
                Some(prev) if (v - prev).abs() <= self.dedup_eps => continue,
                _ => {
                    last = Some(v);
                    out.push(v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_grid::normalize_attributes;

    #[test]
    fn pops_in_ascending_distinct_order() {
        let mut h = VariationHeap::from_values([0.3, 0.1, 0.1, 0.2, 0.3, 0.0]);
        assert_eq!(h.pop_next_distinct(), Some(0.0));
        assert_eq!(h.pop_next_distinct(), Some(0.1));
        assert_eq!(h.pop_next_distinct(), Some(0.2));
        assert_eq!(h.pop_next_distinct(), Some(0.3));
        assert_eq!(h.pop_next_distinct(), None);
    }

    #[test]
    fn dedup_eps_merges_near_ties() {
        let mut h = VariationHeap::from_values([0.1, 0.1 + 1e-15, 0.2]).with_dedup_eps(1e-12);
        assert_eq!(h.pop_next_distinct(), Some(0.1));
        assert_eq!(h.pop_next_distinct(), Some(0.2));
    }

    #[test]
    fn from_grid_matches_paper_example2() {
        // Paper Example 2 (Fig. 1 input): the least variation is 0 and the
        // second-least is 0.02857143 = 1/35 (difference of 1 between
        // neighbors, normalized by the grid max of 35).
        // Reconstruct a compatible grid: max value 35, one pair of equal
        // neighbors, one pair differing by exactly 1.
        let g = sr_grid::GridDataset::univariate(1, 4, vec![22.0, 22.0, 23.0, 35.0]).unwrap();
        let norm = normalize_attributes(&g);
        let mut h = VariationHeap::from_grid(&norm);
        let first = h.pop_next_distinct().unwrap();
        let second = h.pop_next_distinct().unwrap();
        assert_eq!(first, 0.0);
        assert!((second - 1.0 / 35.0).abs() < 1e-9, "second = {second}");
    }

    #[test]
    fn into_sorted_distinct() {
        let h = VariationHeap::from_values([0.5, 0.25, 0.5, 0.75, 0.25]);
        assert_eq!(h.into_sorted_distinct(), vec![0.25, 0.5, 0.75]);
    }

    #[test]
    fn len_tracks_consumed_entries() {
        let mut h = VariationHeap::from_values([0.2, 0.1, 0.1]);
        assert_eq!(h.len(), 3);
        assert_eq!(h.pop_next_distinct(), Some(0.1));
        assert_eq!(h.len(), 2);
        // The duplicate 0.1 is consumed while skipping to 0.2.
        assert_eq!(h.pop_next_distinct(), Some(0.2));
        assert!(h.is_empty());
    }

    #[test]
    fn into_sorted_distinct_honors_last_popped() {
        let mut h = VariationHeap::from_values([0.1, 0.1, 0.2, 0.3]);
        assert_eq!(h.pop_next_distinct(), Some(0.1));
        // The remaining duplicate of the popped value is deduplicated away.
        assert_eq!(h.into_sorted_distinct(), vec![0.2, 0.3]);
    }

    #[test]
    fn sort_key_bijection_preserves_order() {
        let vals = [0.0, 1e-300, 1e-12, 0.5, 1.0, 1e300, -0.5, -1e-300];
        for &a in &vals {
            assert_eq!(key_value(sort_key(a)).to_bits(), a.to_bits());
            for &b in &vals {
                assert_eq!(sort_key(a) < sort_key(b), a < b, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn empty_grid_pairs_yield_empty_heap() {
        let mut g = sr_grid::GridDataset::univariate(1, 2, vec![1.0, 2.0]).unwrap();
        g.set_null(0);
        g.set_null(1);
        let mut h = VariationHeap::from_grid(&g);
        assert!(h.is_empty());
        assert_eq!(h.pop_next_distinct(), None);
    }
}
