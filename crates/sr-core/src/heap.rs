//! The min-adjacent-variation heap (§III-A1).
//!
//! The framework pre-computes the variations between all adjacent cell pairs
//! of the *attribute-normalized* input exactly once, stores them in a
//! min-heap, and pops the root in every re-partitioning iteration to obtain
//! that iteration's `minAdjacentVariation`. Popping *distinct* values keeps
//! each iteration's partition strictly coarser-or-equal: equal keys would
//! reproduce the same partition and waste a full extraction pass (the
//! paper's Example 2 steps from the least to the "second-least" variation,
//! i.e. it also advances by distinct values).

use sr_grid::{adjacent_variations_with, GridDataset};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// Total-order wrapper for finite f64 keys.
///
/// Variations are finite by construction (means of absolute differences of
/// finite attribute values), so the `Ord` impl never sees a NaN.
#[derive(Debug, Clone, Copy, PartialEq)]
struct FiniteF64(f64);

impl Eq for FiniteF64 {}

impl PartialOrd for FiniteF64 {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for FiniteF64 {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("variation keys are finite")
    }
}

/// Min-heap over adjacent-pair variations.
#[derive(Debug, Clone)]
pub struct VariationHeap {
    heap: BinaryHeap<Reverse<FiniteF64>>,
    /// Two popped values closer than this are considered the same threshold.
    dedup_eps: f64,
    last_popped: Option<f64>,
}

/// Default tolerance for treating two variation keys as equal.
pub const DEFAULT_DEDUP_EPS: f64 = 1e-12;

impl VariationHeap {
    /// Builds the heap from a grid. Callers following the paper's pipeline
    /// pass the *normalized* grid (see [`sr_grid::normalize_attributes`]).
    /// The variation scan runs on [`sr_par::Pool::global`].
    pub fn from_grid(normalized: &GridDataset) -> Self {
        Self::from_grid_with(normalized, sr_par::Pool::global())
    }

    /// [`VariationHeap::from_grid`] on an explicit pool.
    pub fn from_grid_with(normalized: &GridDataset, pool: &sr_par::Pool) -> Self {
        let pairs = adjacent_variations_with(normalized, pool);
        let heap = pairs.into_iter().map(|p| Reverse(FiniteF64(p.variation))).collect();
        VariationHeap { heap, dedup_eps: DEFAULT_DEDUP_EPS, last_popped: None }
    }

    /// Builds a heap directly from raw variation values (tests, ablations).
    pub fn from_values(values: impl IntoIterator<Item = f64>) -> Self {
        let heap = values.into_iter().map(|v| Reverse(FiniteF64(v))).collect();
        VariationHeap { heap, dedup_eps: DEFAULT_DEDUP_EPS, last_popped: None }
    }

    /// Overrides the dedup tolerance.
    pub fn with_dedup_eps(mut self, eps: f64) -> Self {
        self.dedup_eps = eps;
        self
    }

    /// Remaining entries (duplicates included).
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether the heap is exhausted.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Pops the next *distinct* min-adjacent variation: skips keys within
    /// `dedup_eps` of the previously returned value. Returns `None` when
    /// exhausted.
    pub fn pop_next_distinct(&mut self) -> Option<f64> {
        while let Some(Reverse(FiniteF64(v))) = self.heap.pop() {
            match self.last_popped {
                Some(prev) if (v - prev).abs() <= self.dedup_eps => continue,
                _ => {
                    self.last_popped = Some(v);
                    return Some(v);
                }
            }
        }
        None
    }

    /// Drains the heap into an ascending, deduplicated vector of thresholds.
    /// The iteration-strategy driver uses this to support strided walks and
    /// binary-search backoff without re-heapifying.
    ///
    /// Implemented as an unstable sort plus a linear dedup sweep rather
    /// than repeated heap pops: a full drain is `O(n log n)` either way,
    /// but the sort runs on a flat array instead of paying a sift-down per
    /// element. The dedup semantics match [`pop_next_distinct`]
    /// (each kept value is at least `dedup_eps` above the previous one).
    ///
    /// [`pop_next_distinct`]: VariationHeap::pop_next_distinct
    pub fn into_sorted_distinct(self) -> Vec<f64> {
        let mut values: Vec<f64> = self.heap.into_iter().map(|Reverse(FiniteF64(v))| v).collect();
        values.sort_unstable_by(|a, b| a.partial_cmp(b).expect("variation keys are finite"));
        let mut out = Vec::with_capacity(values.len());
        let mut last = self.last_popped;
        for v in values {
            match last {
                Some(prev) if (v - prev).abs() <= self.dedup_eps => continue,
                _ => {
                    last = Some(v);
                    out.push(v);
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sr_grid::normalize_attributes;

    #[test]
    fn pops_in_ascending_distinct_order() {
        let mut h = VariationHeap::from_values([0.3, 0.1, 0.1, 0.2, 0.3, 0.0]);
        assert_eq!(h.pop_next_distinct(), Some(0.0));
        assert_eq!(h.pop_next_distinct(), Some(0.1));
        assert_eq!(h.pop_next_distinct(), Some(0.2));
        assert_eq!(h.pop_next_distinct(), Some(0.3));
        assert_eq!(h.pop_next_distinct(), None);
    }

    #[test]
    fn dedup_eps_merges_near_ties() {
        let mut h = VariationHeap::from_values([0.1, 0.1 + 1e-15, 0.2]).with_dedup_eps(1e-12);
        assert_eq!(h.pop_next_distinct(), Some(0.1));
        assert_eq!(h.pop_next_distinct(), Some(0.2));
    }

    #[test]
    fn from_grid_matches_paper_example2() {
        // Paper Example 2 (Fig. 1 input): the least variation is 0 and the
        // second-least is 0.02857143 = 1/35 (difference of 1 between
        // neighbors, normalized by the grid max of 35).
        // Reconstruct a compatible grid: max value 35, one pair of equal
        // neighbors, one pair differing by exactly 1.
        let g = sr_grid::GridDataset::univariate(1, 4, vec![22.0, 22.0, 23.0, 35.0]).unwrap();
        let norm = normalize_attributes(&g);
        let mut h = VariationHeap::from_grid(&norm);
        let first = h.pop_next_distinct().unwrap();
        let second = h.pop_next_distinct().unwrap();
        assert_eq!(first, 0.0);
        assert!((second - 1.0 / 35.0).abs() < 1e-9, "second = {second}");
    }

    #[test]
    fn into_sorted_distinct() {
        let h = VariationHeap::from_values([0.5, 0.25, 0.5, 0.75, 0.25]);
        assert_eq!(h.into_sorted_distinct(), vec![0.25, 0.5, 0.75]);
    }

    #[test]
    fn empty_grid_pairs_yield_empty_heap() {
        let mut g = sr_grid::GridDataset::univariate(1, 2, vec![1.0, 2.0]).unwrap();
        g.set_null(0);
        g.set_null(1);
        let mut h = VariationHeap::from_grid(&g);
        assert!(h.is_empty());
        assert_eq!(h.pop_next_distinct(), None);
    }
}
