//! Incremental re-partitioning under streaming cell updates — the paper's
//! §VI future work ("extending support for … streaming scenarios"),
//! implemented as split-on-write with periodic compaction.
//!
//! The invariant that makes streaming tractable: when a cell's value
//! changes, *splitting its group into singleton cells* can only lower the
//! information loss (a singleton represents itself exactly), while all
//! other groups' IFL contributions are untouched. So:
//!
//! - [`StreamingRepartitioner::apply`] splits the affected groups into
//!   singletons, writes the new values, and updates the IFL bookkeeping
//!   incrementally — O(affected-group size) per update, never a full pass.
//! - The IFL therefore never exceeds the threshold between compactions
//!   (property-tested).
//! - Fragmentation accumulates; [`StreamingRepartitioner::fragmentation`]
//!   tracks it and [`StreamingRepartitioner::compact`] re-runs the batch
//!   driver to restore the reduction.

use crate::ifl::representative;
use crate::partition::{GroupId, GroupRect};
use crate::repartition::{IterationStrategy, RepartitionConfig, Repartitioner};
use crate::{CoreError, Result};
use sr_grid::{CellId, GridDataset, IflOptions};

/// One streaming update: a cell gets a fresh feature vector (`None` clears
/// the cell to null — e.g. a region going out of coverage).
#[derive(Debug, Clone)]
pub struct CellUpdate {
    /// Target cell.
    pub cell: CellId,
    /// New feature vector, or `None` to null the cell.
    pub features: Option<Vec<f64>>,
}

/// A re-partitioned dataset that absorbs cell updates incrementally.
///
/// ```
/// use sr_core::{CellUpdate, StreamingRepartitioner};
/// use sr_grid::GridDataset;
/// let vals: Vec<f64> = (0..64).map(|i| 50.0 + (i / 8) as f64 * 0.2).collect();
/// let grid = GridDataset::univariate(8, 8, vals).unwrap();
/// let mut s = StreamingRepartitioner::new(grid, 0.05).unwrap();
/// s.apply(&[CellUpdate { cell: 10, features: Some(vec![99.0]) }]).unwrap();
/// assert!(s.ifl() <= 0.05); // the budget holds through updates
/// ```
///
/// IFL bookkeeping note: a singleton group has zero error but its valid
/// cell still contributes *terms* to Eq. 3's denominator (one per countable
/// attribute). Dropping those terms would shrink the denominator and could
/// push the mean *up* past the budget — the accounting keeps them.
#[derive(Debug, Clone)]
pub struct StreamingRepartitioner {
    grid: GridDataset,
    threshold: f64,
    ifl_options: IflOptions,
    // Mutable partition state (same encoding as `Partition`, but growable).
    rects: Vec<GroupRect>,
    cell_to_group: Vec<GroupId>,
    features: Vec<Option<Vec<f64>>>,
    valid_counts: Vec<usize>,
    /// Per-group IFL bookkeeping: (Σ relative-error terms, #terms).
    contributions: Vec<(f64, usize)>,
    /// Group count right after the last compaction (fragmentation anchor).
    compacted_groups: usize,
}

impl StreamingRepartitioner {
    /// Builds the streaming state by running the batch driver on `grid` at
    /// `threshold`.
    pub fn new(grid: GridDataset, threshold: f64) -> Result<Self> {
        let config =
            RepartitionConfig::new(threshold)?.with_strategy(if grid.num_cells() > 2_000 {
                IterationStrategy::Exponential { initial_stride: 8, growth: 1.6 }
            } else {
                IterationStrategy::EveryDistinct
            });
        let outcome = Repartitioner::with_config(config)?.run(&grid)?;
        let rep = outcome.repartitioned;
        let partition = rep.partition();

        let rects = partition.rects().to_vec();
        let cell_to_group = partition.cell_to_group().to_vec();
        let features = rep.features().to_vec();

        let mut this = StreamingRepartitioner {
            threshold,
            ifl_options: IflOptions::default(),
            rects,
            cell_to_group,
            features,
            valid_counts: Vec::new(),
            contributions: Vec::new(),
            compacted_groups: 0,
            grid,
        };
        this.rebuild_bookkeeping();
        this.compacted_groups = this.num_groups();
        Ok(this)
    }

    /// Builds the streaming state from an already-computed batch result
    /// over `grid`, skipping the driver run [`StreamingRepartitioner::new`]
    /// performs. The ingestion engine re-seeds its live tier this way after
    /// each exact incremental re-partition — the fresh result is already in
    /// hand, so re-deriving it would double the dominant cost.
    pub fn from_repartitioned(
        grid: GridDataset,
        rep: &crate::repartition::Repartitioned,
        threshold: f64,
    ) -> Result<Self> {
        if !(threshold > 0.0 && threshold <= 1.0) {
            return Err(CoreError::InvalidThreshold(threshold));
        }
        let partition = rep.partition();
        let mut this = StreamingRepartitioner {
            threshold,
            ifl_options: IflOptions::default(),
            rects: partition.rects().to_vec(),
            cell_to_group: partition.cell_to_group().to_vec(),
            features: rep.features().to_vec(),
            valid_counts: Vec::new(),
            contributions: Vec::new(),
            compacted_groups: 0,
            grid,
        };
        this.rebuild_bookkeeping();
        this.compacted_groups = this.num_groups();
        Ok(this)
    }

    /// Number of cell-groups currently live.
    pub fn num_groups(&self) -> usize {
        self.rects.len()
    }

    /// Group containing a cell.
    pub fn group_of(&self, cell: CellId) -> GroupId {
        self.cell_to_group[cell as usize]
    }

    /// Feature vector of a group.
    pub fn group_feature(&self, g: GroupId) -> Option<&[f64]> {
        self.features[g as usize].as_deref()
    }

    /// Current information loss (maintained incrementally).
    pub fn ifl(&self) -> f64 {
        let (sum, terms) =
            self.contributions.iter().fold((0.0, 0usize), |(s, t), &(gs, gt)| (s + gs, t + gt));
        if terms == 0 {
            0.0
        } else {
            sum / terms as f64
        }
    }

    /// The loss budget this instance maintains.
    pub fn threshold(&self) -> f64 {
        self.threshold
    }

    /// Growth of the group count since the last compaction:
    /// `groups / groups_at_compaction` (1.0 = no fragmentation).
    pub fn fragmentation(&self) -> f64 {
        self.num_groups() as f64 / self.compacted_groups.max(1) as f64
    }

    /// Borrow the current grid (updates applied).
    pub fn grid(&self) -> &GridDataset {
        &self.grid
    }

    /// Applies a batch of updates: each affected group is split into
    /// singleton groups, the new values written, and IFL bookkeeping
    /// adjusted. Returns the number of groups that were split.
    ///
    /// Emits a `streaming.apply` span and bumps the
    /// `streaming.updates_total` / `streaming.splits_total` counters
    /// (`docs/OBSERVABILITY.md`).
    pub fn apply(&mut self, updates: &[CellUpdate]) -> Result<usize> {
        let mut span = sr_obs::span("streaming.apply");
        let p = self.grid.num_attrs();
        for u in updates {
            if let Some(fv) = &u.features {
                if fv.len() != p {
                    return Err(CoreError::Grid(sr_grid::GridError::DimensionMismatch {
                        context: "update feature arity != grid attributes",
                    }));
                }
            }
            if u.cell as usize >= self.grid.num_cells() {
                return Err(CoreError::Grid(sr_grid::GridError::DimensionMismatch {
                    context: "update cell id out of range",
                }));
            }
        }

        let mut splits = 0usize;
        for u in updates {
            let g = self.cell_to_group[u.cell as usize];
            if self.rects[g as usize].len() > 1 {
                self.split_group(g);
                splits += 1;
            }
            // The cell is now a singleton group; write the value.
            let sg = self.cell_to_group[u.cell as usize] as usize;
            debug_assert_eq!(self.rects[sg].len(), 1);
            match &u.features {
                Some(fv) => {
                    for (k, &v) in fv.iter().enumerate() {
                        self.grid.set_value(u.cell, k, v);
                    }
                    // set_value does not flip validity; a previously nulled
                    // cell becomes live again.
                    self.grid.set_valid(u.cell);
                    self.features[sg] = Some(fv.clone());
                    self.valid_counts[sg] = 1;
                    // Zero loss, but the cell's countable attributes stay in
                    // the denominator.
                    self.contributions[sg] = (0.0, self.countable_terms(u.cell));
                }
                None => {
                    self.grid.set_null(u.cell);
                    self.features[sg] = None;
                    self.valid_counts[sg] = 0;
                    self.contributions[sg] = (0.0, 0);
                }
            }
        }
        let metrics = sr_obs::Registry::global();
        metrics.counter("streaming.updates_total").add(updates.len() as u64);
        metrics.counter("streaming.splits_total").add(splits as u64);
        span.record("updates", updates.len());
        span.record("splits", splits);
        span.record("groups", self.num_groups());
        Ok(splits)
    }

    /// Number of Eq.-3 terms a valid cell contributes: every `Mode`
    /// attribute plus every numeric attribute above the zero guard.
    fn countable_terms(&self, cell: CellId) -> usize {
        let fv = self.grid.features_unchecked(cell);
        fv.iter()
            .zip(self.grid.agg_types())
            .filter(|(v, agg)| {
                **agg == sr_grid::AggType::Mode || v.abs() > self.ifl_options.zero_eps
            })
            .count()
    }

    /// Re-runs the batch driver over the *current* grid, restoring the
    /// reduction lost to update-driven splits. Returns the group counts
    /// (before, after).
    ///
    /// Emits a `streaming.compact` span (the nested batch driver emits its
    /// own `repartition.run` tree beneath it) and bumps
    /// `streaming.compactions_total`.
    pub fn compact(&mut self) -> Result<(usize, usize)> {
        let mut span = sr_obs::span("streaming.compact");
        sr_obs::Registry::global().counter("streaming.compactions_total").inc();
        let before = self.num_groups();
        let fresh = StreamingRepartitioner::new(self.grid.clone(), self.threshold)?;
        *self = fresh;
        span.record("groups_before", before);
        span.record("groups_after", self.num_groups());
        Ok((before, self.num_groups()))
    }

    /// Splits group `g` into singleton groups (one per cell). The first
    /// cell reuses the group id; the rest get fresh ids.
    fn split_group(&mut self, g: GroupId) {
        let rect = self.rects[g as usize];
        let cols = self.grid.cols();
        let mut first = true;
        for (r, c) in rect.cells() {
            let cell = (r as usize * cols + c as usize) as CellId;
            let gid = if first {
                first = false;
                g
            } else {
                let gid = self.rects.len() as GroupId;
                self.rects.push(GroupRect::cell(r, c));
                self.features.push(None);
                self.valid_counts.push(0);
                self.contributions.push((0.0, 0));
                gid
            };
            self.rects[gid as usize] = GroupRect::cell(r, c);
            self.cell_to_group[cell as usize] = gid;
            let (fv, count) = if self.grid.is_valid(cell) {
                (Some(self.grid.features_unchecked(cell).to_vec()), 1)
            } else {
                (None, 0)
            };
            self.features[gid as usize] = fv;
            self.valid_counts[gid as usize] = count;
            // Singletons are loss-free but keep their denominator terms.
            let terms = if count > 0 { self.countable_terms(cell) } else { 0 };
            self.contributions[gid as usize] = (0.0, terms);
        }
    }

    /// Recomputes valid counts and per-group IFL contributions from
    /// scratch (used at construction/compaction only).
    fn rebuild_bookkeeping(&mut self) {
        let n_groups = self.rects.len();
        self.valid_counts = vec![0; n_groups];
        for id in self.grid.valid_cells() {
            self.valid_counts[self.cell_to_group[id as usize] as usize] += 1;
        }
        self.contributions = vec![(0.0, 0); n_groups];
        let aggs = self.grid.agg_types().to_vec();
        for id in self.grid.valid_cells() {
            let g = self.cell_to_group[id as usize] as usize;
            let Some(fv) = &self.features[g] else { continue };
            let d = self.grid.features_unchecked(id);
            for (k, &dk) in d.iter().enumerate() {
                let denom = dk.abs();
                if denom <= self.ifl_options.zero_eps {
                    continue;
                }
                let rep = representative(fv[k], aggs[k], self.valid_counts[g]);
                self.contributions[g].0 += (dk - rep).abs() / denom;
                self.contributions[g].1 += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn smooth_grid(n: usize) -> GridDataset {
        let vals: Vec<f64> =
            (0..n * n).map(|i| 100.0 + (i / n) as f64 * 0.6 + (i % n) as f64 * 0.4).collect();
        GridDataset::univariate(n, n, vals).unwrap()
    }

    #[test]
    fn construction_matches_batch_driver() {
        let g = smooth_grid(12);
        let batch = crate::repartition::repartition(&g, 0.05).unwrap();
        let stream = StreamingRepartitioner::new(g, 0.05).unwrap();
        assert_eq!(stream.num_groups(), batch.repartitioned.num_groups());
        assert!((stream.ifl() - batch.repartitioned.ifl()).abs() < 1e-12);
    }

    #[test]
    fn update_splits_group_and_keeps_budget() {
        let g = smooth_grid(12);
        let mut s = StreamingRepartitioner::new(g, 0.05).unwrap();
        let before = s.num_groups();
        let ifl_before = s.ifl();
        let splits = s.apply(&[CellUpdate { cell: 40, features: Some(vec![999.0]) }]).unwrap();
        assert!(splits <= 1);
        assert!(s.num_groups() >= before);
        // The updated cell is now its own exact group.
        let g40 = s.group_of(40);
        assert_eq!(s.group_feature(g40), Some(&[999.0][..]));
        // Splitting never raises the IFL.
        assert!(s.ifl() <= ifl_before + 1e-12);
        assert!(s.ifl() <= s.threshold());
    }

    #[test]
    fn nulling_a_cell_clears_it() {
        let g = smooth_grid(10);
        let mut s = StreamingRepartitioner::new(g, 0.08).unwrap();
        s.apply(&[CellUpdate { cell: 5, features: None }]).unwrap();
        let g5 = s.group_of(5);
        assert!(s.group_feature(g5).is_none());
        assert!(!s.grid().is_valid(5));
        assert!(s.ifl() <= s.threshold());
    }

    #[test]
    fn many_updates_then_compact_restores_reduction() {
        let g = smooth_grid(16);
        let mut s = StreamingRepartitioner::new(g, 0.08).unwrap();
        let initial_groups = s.num_groups();
        // Hammer a block of cells with updates close to the field (so
        // compaction can re-merge them).
        let updates: Vec<CellUpdate> = (0..60u32)
            .map(|i| CellUpdate { cell: i * 4, features: Some(vec![100.0 + i as f64 * 0.1]) })
            .collect();
        s.apply(&updates).unwrap();
        assert!(s.fragmentation() >= 1.0);
        assert!(s.ifl() <= s.threshold());
        let fragmented = s.num_groups();
        assert!(fragmented >= initial_groups);

        let (before, after) = s.compact().unwrap();
        assert_eq!(before, fragmented);
        assert!(after <= fragmented);
        assert!(s.ifl() <= s.threshold());
        assert!((s.fragmentation() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn update_validation() {
        let g = smooth_grid(6);
        let mut s = StreamingRepartitioner::new(g, 0.05).unwrap();
        // Wrong arity.
        assert!(s.apply(&[CellUpdate { cell: 0, features: Some(vec![1.0, 2.0]) }]).is_err());
        // Out-of-range cell.
        assert!(s.apply(&[CellUpdate { cell: 9999, features: Some(vec![1.0]) }]).is_err());
    }

    #[test]
    fn incremental_ifl_matches_full_recompute() {
        let g = smooth_grid(12);
        let mut s = StreamingRepartitioner::new(g, 0.06).unwrap();
        s.apply(&[
            CellUpdate { cell: 10, features: Some(vec![50.0]) },
            CellUpdate { cell: 77, features: Some(vec![140.0]) },
            CellUpdate { cell: 78, features: None },
        ])
        .unwrap();
        let incremental = s.ifl();
        let mut copy = s.clone();
        copy.rebuild_bookkeeping();
        assert!((incremental - copy.ifl()).abs() < 1e-12);
    }
}
