//! Spatio-temporal re-partitioning — the paper's §VI future work
//! ("extending support for … spatio-temporal datasets"), realized as
//! partition reuse across a time series of grids.
//!
//! Spatial structure changes slowly relative to attribute values (the same
//! neighborhoods stay homogeneous month over month even as demand levels
//! drift), so the expensive step — finding the partition — can usually be
//! amortized: for each new time step, first re-allocate features for the
//! *previous* partition and check its IFL on the new grid (one O(n) pass);
//! only when the budget breaks does the full driver re-run. The
//! [`StepOutcome::reused`] flag and [`TemporalRepartitioner::reuse_rate`]
//! quantify the savings.

use crate::allocator::allocate_features;
use crate::ifl::partition_ifl;
use crate::partition::Partition;
use crate::repartition::{IterationStrategy, RepartitionConfig, Repartitioned, Repartitioner};
use crate::{CoreError, Result};
use sr_grid::{GridDataset, IflOptions};

/// Result of absorbing one time step.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StepOutcome {
    /// Whether the previous step's partition was reused (features
    /// re-allocated, no extraction ran).
    pub reused: bool,
    /// Cell-groups after this step.
    pub num_groups: usize,
    /// IFL of this step's grid under the active partition.
    pub ifl: f64,
}

/// Re-partitions a time series of same-shaped grids with partition reuse.
#[derive(Debug, Clone)]
pub struct TemporalRepartitioner {
    threshold: f64,
    strategy: IterationStrategy,
    ifl_options: IflOptions,
    current: Option<Repartitioned>,
    steps: usize,
    reused_steps: usize,
}

impl TemporalRepartitioner {
    /// A temporal driver with the given IFL budget per step.
    pub fn new(threshold: f64) -> Result<Self> {
        // Validate eagerly via the config constructor.
        let config = RepartitionConfig::new(threshold)?;
        Ok(TemporalRepartitioner {
            threshold,
            strategy: config.strategy,
            ifl_options: config.ifl_options,
            current: None,
            steps: 0,
            reused_steps: 0,
        })
    }

    /// Overrides the extraction strategy used on cold steps.
    pub fn with_strategy(mut self, strategy: IterationStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Absorbs the next time step. `grid` must keep the shape and schema of
    /// the previous steps.
    ///
    /// Emits a `temporal.step` span (field `reused` says which path ran)
    /// and bumps `temporal.steps_total` / `temporal.reuses_total`
    /// (`docs/OBSERVABILITY.md`).
    pub fn step(&mut self, grid: &GridDataset) -> Result<StepOutcome> {
        let mut span = sr_obs::span("temporal.step");
        let metrics = sr_obs::Registry::global();
        metrics.counter("temporal.steps_total").inc();
        self.steps += 1;

        // Warm path: try the previous partition on the new values.
        if let Some(prev) = &self.current {
            let partition = prev.partition();
            if partition.rows() == grid.rows()
                && partition.cols() == grid.cols()
                && prev.attr_names().len() == grid.num_attrs()
            {
                if let Some(outcome) = self.try_reuse(grid, partition.clone())? {
                    self.reused_steps += 1;
                    metrics.counter("temporal.reuses_total").inc();
                    span.record("reused", true);
                    span.record("groups", outcome.num_groups);
                    span.record("ifl", outcome.ifl);
                    return Ok(outcome);
                }
            } else {
                return Err(CoreError::Grid(sr_grid::GridError::IncompatibleGrids));
            }
        }

        // Cold path: full extraction.
        let config = RepartitionConfig {
            threshold: self.threshold,
            strategy: self.strategy,
            ifl_options: self.ifl_options,
            max_iterations: usize::MAX,
        };
        let outcome = Repartitioner::with_config(config)?.run(grid)?;
        let rep = outcome.repartitioned;
        let result = StepOutcome { reused: false, num_groups: rep.num_groups(), ifl: rep.ifl() };
        self.current = Some(rep);
        span.record("reused", false);
        span.record("groups", result.num_groups);
        span.record("ifl", result.ifl);
        Ok(result)
    }

    /// Re-allocates features of `partition` for `grid`; adopts it when the
    /// IFL stays within budget. The null-structure must also agree (a group
    /// may not mix null and valid cells after the update).
    fn try_reuse(
        &mut self,
        grid: &GridDataset,
        partition: Partition,
    ) -> Result<Option<StepOutcome>> {
        // Reject reuse when validity changed inside any group (mixed
        // null/valid groups break the framework's invariants).
        for gid in 0..partition.num_groups() as u32 {
            let mut any_valid = false;
            let mut any_null = false;
            for cell in partition.cells_iter(gid) {
                if grid.is_valid(cell) {
                    any_valid = true;
                } else {
                    any_null = true;
                }
            }
            if any_valid && any_null {
                return Ok(None);
            }
        }
        let features = allocate_features(grid, &partition);
        let ifl = partition_ifl(grid, &partition, &features, self.ifl_options);
        if ifl > self.threshold {
            return Ok(None);
        }
        let num_groups = partition.num_groups();
        self.current = Some(Repartitioned::from_parts(
            grid,
            partition,
            features,
            ifl,
            self.current.as_ref().map_or(0.0, |r| r.min_adjacent_variation()),
        ));
        Ok(Some(StepOutcome { reused: true, num_groups, ifl }))
    }

    /// The re-partitioned state of the latest step.
    pub fn current(&self) -> Option<&Repartitioned> {
        self.current.as_ref()
    }

    /// Steps absorbed so far.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Fraction of steps served by partition reuse.
    pub fn reuse_rate(&self) -> f64 {
        if self.steps == 0 {
            0.0
        } else {
            self.reused_steps as f64 / self.steps as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A drifting series: step t = base field scaled by (1 + t·drift).
    fn series(steps: usize, drift: f64, n: usize) -> Vec<GridDataset> {
        let base: Vec<f64> =
            (0..n * n).map(|i| 100.0 + (i / n) as f64 * 0.5 + (i % n) as f64 * 0.3).collect();
        (0..steps)
            .map(|t| {
                let vals: Vec<f64> = base.iter().map(|v| v * (1.0 + drift * t as f64)).collect();
                GridDataset::univariate(n, n, vals).unwrap()
            })
            .collect()
    }

    #[test]
    fn smooth_drift_reuses_the_partition() {
        // Proportional scaling preserves *relative* errors exactly, so the
        // warm path should serve every step after the first.
        let grids = series(6, 0.02, 12);
        let mut t = TemporalRepartitioner::new(0.05).unwrap();
        for (i, g) in grids.iter().enumerate() {
            let out = t.step(g).unwrap();
            assert!(out.ifl <= 0.05);
            assert_eq!(out.reused, i > 0, "step {i}");
        }
        assert!((t.reuse_rate() - 5.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn structural_break_forces_reextraction() {
        let n = 12;
        let grids = series(2, 0.0, n);
        let mut t = TemporalRepartitioner::new(0.05).unwrap();
        t.step(&grids[0]).unwrap();
        let groups_before = t.current().unwrap().num_groups();
        assert!(groups_before < n * n, "first step should merge");

        // A hostile step: checkerboard, nothing merges within budget.
        let vals: Vec<f64> =
            (0..n * n).map(|i| if (i / n + i % n) % 2 == 0 { 1.0 } else { 1000.0 }).collect();
        let hostile = GridDataset::univariate(n, n, vals).unwrap();
        let out = t.step(&hostile).unwrap();
        assert!(!out.reused, "break must trigger re-extraction");
        assert!(out.ifl <= 0.05);
        assert_eq!(out.num_groups, n * n, "checkerboard cannot merge");
    }

    #[test]
    fn validity_change_inside_group_blocks_reuse() {
        let grids = series(1, 0.0, 10);
        let mut t = TemporalRepartitioner::new(0.05).unwrap();
        t.step(&grids[0]).unwrap();
        // Find a multi-cell group and null one of its cells.
        let rep = t.current().unwrap();
        let gid = (0..rep.num_groups() as u32)
            .find(|&g| rep.partition().rect(g).len() > 1)
            .expect("some group merged");
        let cell = rep.partition().cells_of(gid)[0];
        let mut g2 = grids[0].clone();
        g2.set_null(cell);
        let out = t.step(&g2).unwrap();
        assert!(!out.reused, "mixed null/valid group must force re-extraction");
        assert!(out.ifl <= 0.05);
    }

    #[test]
    fn incompatible_shapes_rejected() {
        let grids = series(1, 0.0, 10);
        let mut t = TemporalRepartitioner::new(0.05).unwrap();
        t.step(&grids[0]).unwrap();
        let other = GridDataset::univariate(5, 5, vec![1.0; 25]).unwrap();
        assert!(matches!(
            t.step(&other),
            Err(CoreError::Grid(sr_grid::GridError::IncompatibleGrids))
        ));
    }

    #[test]
    fn reuse_rate_bookkeeping() {
        let grids = series(4, 0.01, 8);
        let mut t = TemporalRepartitioner::new(0.08).unwrap();
        for g in &grids {
            t.step(g).unwrap();
        }
        assert_eq!(t.steps(), 4);
        assert!(t.reuse_rate() >= 0.5);
    }
}
