//! Localized incremental re-partitioning: make the exact threshold walk
//! cost proportional to the *dirty region* instead of the grid, while
//! staying bit-identical to the batch driver.
//!
//! Three cooperating mechanisms (docs/INGESTION.md, "The localized walk"):
//!
//! 1. **Extraction replay.** Every evaluated threshold records a
//!    `ThetaTrace`: the emitted rectangles plus, per rectangle, the probe
//!    footprint (`RectProbe::reach` / `RectProbe::run_width`) that
//!    bounds every edge the anchored scan compared. On the next run, a row
//!    whose traced footprints contain no dirty cell — and whose incoming
//!    spill profile matches the previous run's — is copied wholesale; only
//!    rows near dirt are re-scanned with the shared
//!    `probe_anchored_rect` kernel. Identical probe reads force identical
//!    rectangles, so the replayed tiling equals a from-scratch extraction
//!    bit for bit.
//! 2. **Group-state reuse.** Per-group features, representatives, and the
//!    Eq. 3 per-member subtotals are cached keyed by the group's rectangle
//!    (the "content fingerprint": under a fixed grid, a rectangle *is* its
//!    member set). An entry stays valid while no dirty cell lies inside the
//!    rectangle; the IFL then re-folds the cached subtotals in canonical
//!    cell order (`fold_cell_terms`), which the batch kernel's two-level
//!    grouping makes bit-identical to a live evaluation.
//! 3. **Warm-started θ search.** The walk starts from the previously
//!    accepted variation and expands outward
//!    ([`Repartitioner::run_with_pool_warm`] runs the same hinted walk on
//!    the batch path, making it the bit-exact reference). A hint below
//!    every current threshold misses and falls back to the full walk.
//!
//! Fallback conditions (all safe, never wrong — just slower): first run or
//! invalidated state, a dirty fraction above `FULL_WALK_DIRTY_FRACTION`,
//! and warm-window misses. [`LocalizedState::invalidate`] must be called
//! when the scan cache rebuilds its normalization (a max-|value| move
//! rescales every edge variation, so traces and the hint go stale; the
//! rectangle cache survives — it is keyed on raw values and re-validated
//! against the dirty region).

use crate::allocator::{allocate_features_with, allocate_rect_into, GroupFeatures, Scratch};
use crate::extractor::{probe_anchored_rect, EdgeVariations, RectProbe, VARIATION_SLACK};
use crate::ifl::{cell_term_at, fold_cell_terms, representative, IflCellCache};
use crate::incremental::ScanCache;
use crate::partition::{GroupId, GroupRect, Partition};
use crate::repartition::{
    IterationStats, RepartitionOutcome, Repartitioned, Repartitioner, WalkKind,
};
use crate::{CoreError, Result};
use sr_grid::{AggType, CellId, GridDataset};
use std::collections::HashMap;

/// Above this dirty fraction the localized run walks cold (no warm hint):
/// with a quarter of the grid dirty the accepted θ can move arbitrarily and
/// the warm window would mostly miss anyway. Replay and group reuse stay
/// active — they are dirty-guarded and never wrong.
const FULL_WALK_DIRTY_FRACTION: f64 = 0.25;

/// Traces larger than this are not retained (a near-identity tiling costs
/// more to store than to re-extract).
const MAX_TRACE_RECTS: usize = 1 << 16;

/// At most this many per-θ traces are retained across runs; the largest is
/// evicted first.
const MAX_TRACES: usize = 24;

/// The extraction trace of one evaluated threshold: the emitted rectangles
/// in scan order, each with its probe footprint, plus per-row offsets.
#[derive(Debug, Clone)]
struct ThetaTrace {
    /// Run that recorded the trace (only traces exactly one run old are
    /// replayed — the dirty set describes exactly one generation of edits).
    epoch: u64,
    /// Emitted rectangles in the batch extractor's scan order.
    rects: Vec<GroupRect>,
    /// Per rectangle: deepest row its probe visited (`RectProbe::reach`).
    reach: Vec<u32>,
    /// Per rectangle: its probe's anchor-run width
    /// (`RectProbe::run_width`).
    run_width: Vec<u32>,
    /// `row_start[r]..row_start[r + 1]` indexes the rectangles anchored in
    /// row `r`; length `rows + 1`.
    row_start: Vec<u32>,
}

/// Cached per-group state: allocated features and the Eq. 3 per-member
/// subtotals, keyed by the group's rectangle.
#[derive(Debug, Clone)]
struct RectEntry {
    /// Last run that used (and thereby revalidated) the entry.
    epoch: u64,
    /// Valid members of the group (0 = null group).
    valid_count: u32,
    /// The allocated feature vector (`p` values; zeros for a null group).
    features: Box<[f64]>,
    /// One Eq. 3 subtotal per valid member, in row-major member order.
    /// All-zero when `valid_count == 1` (the batch kernel skips such
    /// groups — their terms are exact zeros).
    terms: Box<[f64]>,
}

/// Cross-run state of the localized path: extraction traces, the per-group
/// cache, and the warm-start hint. One instance per maintained grid, fed
/// with the dirty cell set of each [`Repartitioner::run_localized`] call.
#[derive(Debug, Default)]
pub struct LocalizedState {
    rows: usize,
    cols: usize,
    /// Monotone run counter; epoch tags on traces / rect entries implement
    /// both end-of-run eviction and the "exactly one generation old"
    /// validity rule.
    epoch: u64,
    traces: HashMap<u64, ThetaTrace>,
    rect_cache: HashMap<GroupRect, RectEntry>,
    hint: Option<f64>,
    ready: bool,
    last_fallback: bool,
    last_reused: u64,
    /// Run-scoped buffers reused across runs (allocation amortization; no
    /// cross-run meaning except `pos_of`, which is revalidated below).
    thresholds_buf: Vec<f64>,
    prefix_buf: Vec<u32>,
    /// Flat cell index → position in the scan cache's valid-cell list
    /// (`u32::MAX` for invalid cells); rebuilt when `pos_of_stamp` says the
    /// list changed. Keying on the cache's cells generation is sound under
    /// the documented contract that one state tracks one maintained
    /// grid/scan pair.
    pos_of: Vec<u32>,
    /// `(cells_generation, cells_len)` the `pos_of` index was built for.
    pos_of_stamp: Option<(u64, usize)>,
    /// The per-cell subtotal plane; never zeroed between runs — the first
    /// evaluation of a run scores against an empty previous tiling, so it
    /// writes every valid position before the fold reads it.
    terms: Vec<f64>,
    replay: ReplayScratch,
}

impl LocalizedState {
    /// Fresh state: the first run walks cold and seeds the caches.
    pub fn new() -> Self {
        LocalizedState::default()
    }

    /// Drops the extraction traces and the warm-start hint; the next run
    /// walks cold. Call when the scan cache reports a normalization
    /// rebuild: every edge variation was rescaled, so recorded probe
    /// outcomes and the hinted θ no longer describe the current edge view.
    /// The rectangle cache is kept — its features and subtotals depend only
    /// on raw cell values and are re-validated against the dirty region.
    pub fn invalidate(&mut self) {
        self.traces.clear();
        self.hint = None;
        self.ready = false;
    }

    /// The θ the next warm walk would start from (`None` after
    /// [`LocalizedState::invalidate`] or before the first completed run).
    pub fn warm_hint(&self) -> Option<f64> {
        self.hint
    }

    /// Whether at least one localized run has completed since the last
    /// invalidation (i.e. traces and hint describe the previous run).
    pub fn ready(&self) -> bool {
        self.ready
    }

    /// Whether the most recent run fell back to the cold walk (first run,
    /// invalidated state, oversized dirty region, or warm-window miss).
    pub fn last_run_was_fallback(&self) -> bool {
        self.last_fallback
    }

    /// Cache hits of the most recent run: groups whose features and Eq. 3
    /// subtotals were served from the rectangle cache.
    pub fn last_reused_groups(&self) -> u64 {
        self.last_reused
    }

    /// Whether a run over `dirty_len` dirty cells on a `num_cells` grid
    /// would walk cold (no warm hint): unseeded/invalidated state, or a
    /// dirty fraction above `FULL_WALK_DIRTY_FRACTION`.
    fn walks_cold(&self, dirty_len: usize, num_cells: usize) -> bool {
        !self.ready || (dirty_len as f64) > FULL_WALK_DIRTY_FRACTION * num_cells as f64
    }

    /// The warm hint the next [`Repartitioner::run_localized`] call would
    /// hand the threshold walk, given `dirty_len` pending dirty cells on a
    /// `num_cells` grid — `None` when that run would walk cold. Callers
    /// (and the convergence property tests) can reproduce the upcoming walk
    /// bit-for-bit by passing this to
    /// [`Repartitioner::run_with_pool_warm`].
    pub fn planned_hint(&self, dirty_len: usize, num_cells: usize) -> Option<f64> {
        if self.walks_cold(dirty_len, num_cells) {
            None
        } else {
            self.hint
        }
    }
}

/// Scratch buffers of the replay scan, reused across evaluations.
#[derive(Debug, Default)]
struct ReplayScratch {
    /// Per-column spill profile of the *new* tiling: `bot[c]` is one past
    /// the deepest row covered by any emitted rectangle touching column
    /// `c`. For the current scan row `r`, `(rr, c)` with `rr ≥ r` is
    /// assigned iff `rr < bot[c]` — every rectangle still covering rows
    /// `≥ r` was anchored at a row `≤ r`, so its column coverage at rows
    /// `≥ r` is contiguous from `r` up to its bottom row.
    bot_new: Vec<u32>,
    /// The same profile replayed from the previous run's trace.
    bot_old: Vec<u32>,
    /// Columns where the two profiles currently answer differently for
    /// some future row (the divergence set); rows scan instead of copying
    /// while it is non-empty.
    diff: Vec<u32>,
    /// Membership flags backing `diff`.
    in_diff: Vec<bool>,
}

/// Builds a `(rows + 1) × (cols + 1)` inclusive 2-D prefix-sum over the
/// dirty cell indicator, for O(1) "any dirty cell in this box?" queries.
fn build_dirty_prefix(rows: usize, cols: usize, dirty: &[CellId], prefix: &mut Vec<u32>) {
    let w = cols + 1;
    prefix.clear();
    prefix.resize((rows + 1) * w, 0);
    for &id in dirty {
        let id = id as usize;
        prefix[(id / cols + 1) * w + (id % cols + 1)] += 1;
    }
    for r in 1..=rows {
        let mut run = 0u32;
        for c in 1..=cols {
            run += prefix[r * w + c];
            prefix[r * w + c] = run + prefix[(r - 1) * w + c];
        }
    }
}

/// Any dirty cell inside the inclusive cell box `[r0, r1] × [c0, c1]`?
#[inline]
fn dirty_in_box(prefix: &[u32], cols: usize, r0: usize, r1: usize, c0: usize, c1: usize) -> bool {
    let w = cols + 1;
    let (r1, c1) = (r1 + 1, c1 + 1);
    prefix[r1 * w + c1] + prefix[r0 * w + c0] > prefix[r0 * w + c1] + prefix[r1 * w + c0]
}

/// Scans one row with the shared anchored-rectangle kernel, appending the
/// emitted rectangles and footprints and advancing the spill profile.
/// Together with the profile-based assignment predicate this reproduces the
/// batch extractor's cursor exactly: the cursor skips spilled-over cells,
/// probes at each anchor, and jumps past the emitted width.
#[allow(clippy::too_many_arguments)]
fn scan_row(
    edges: &EdgeVariations,
    accept: f64,
    r: usize,
    cols: usize,
    bot: &mut [u32],
    rects: &mut Vec<GroupRect>,
    reach: &mut Vec<u32>,
    run_width: &mut Vec<u32>,
) {
    let mut c = 0usize;
    while c < cols {
        if bot[c] as usize > r {
            c += 1;
            continue;
        }
        let probe: RectProbe =
            probe_anchored_rect(edges, accept, r, c, |rr, cc| rr < bot[cc] as usize);
        let (h, w) = (probe.height, probe.width);
        rects.push(GroupRect {
            r0: r as u32,
            r1: (r + h - 1) as u32,
            c0: c as u32,
            c1: (c + w - 1) as u32,
        });
        reach.push(probe.reach as u32);
        run_width.push(probe.run_width as u32);
        for col in &mut bot[c..c + w] {
            *col = (r + h) as u32;
        }
        c += w;
    }
}

/// From-scratch trace extraction: every row scanned, every probe recorded.
/// Emits the same rectangles in the same order as the batch
/// `extract_with_edges_into` (the cursor and probe are the same code).
fn extract_full_trace(
    edges: &EdgeVariations,
    accept: f64,
    rows: usize,
    cols: usize,
    rs: &mut ReplayScratch,
    epoch: u64,
) -> ThetaTrace {
    rs.bot_new.fill(0);
    let mut rects = Vec::new();
    let mut reach = Vec::new();
    let mut run_width = Vec::new();
    let mut row_start = Vec::with_capacity(rows + 1);
    row_start.push(0u32);
    for r in 0..rows {
        scan_row(edges, accept, r, cols, &mut rs.bot_new, &mut rects, &mut reach, &mut run_width);
        row_start.push(rects.len() as u32);
    }
    ThetaTrace { epoch, rects, reach, run_width, row_start }
}

/// Row-granular replay of a recorded trace against the current edge view.
/// A row is copied verbatim when (a) the divergence set is empty — the new
/// tiling's spill into this row matches the traced one at every column, so
/// every assignment query answers as before — and (b) no traced probe
/// footprint in the row contains a dirty cell: the footprint box bounds
/// every edge the probe compared (`RectProbe::reach`), so a dirt-free
/// box means every `edge ≤ accept` comparison still answers as recorded.
/// Otherwise the row is re-scanned live and the divergence set updated
/// from the columns either tiling touched.
#[allow(clippy::too_many_arguments)]
fn replay_trace(
    edges: &EdgeVariations,
    accept: f64,
    rows: usize,
    cols: usize,
    old: &ThetaTrace,
    prefix: &[u32],
    rs: &mut ReplayScratch,
    epoch: u64,
) -> ThetaTrace {
    let mut rects = Vec::with_capacity(old.rects.len());
    let mut reach = Vec::with_capacity(old.rects.len());
    let mut run_width = Vec::with_capacity(old.rects.len());
    let mut row_start = Vec::with_capacity(rows + 1);
    row_start.push(0u32);
    rs.bot_new.fill(0);
    rs.bot_old.fill(0);
    debug_assert!(rs.diff.is_empty());

    for r in 0..rows {
        // Retire divergence columns that healed (equal again) or expired
        // (neither profile covers any row ≥ r anymore — all future
        // queries answer "unassigned" on both sides).
        if !rs.diff.is_empty() {
            let (bot_new, bot_old, in_diff) = (&rs.bot_new, &rs.bot_old, &mut rs.in_diff);
            rs.diff.retain(|&cu| {
                let c = cu as usize;
                let keep = bot_new[c] != bot_old[c] && bot_new[c].max(bot_old[c]) as usize > r;
                if !keep {
                    in_diff[c] = false;
                }
                keep
            });
        }
        let og = old.row_start[r] as usize..old.row_start[r + 1] as usize;
        let mut clean = rs.diff.is_empty();
        if clean {
            for gi in og.clone() {
                let rect = old.rects[gi];
                let c0 = rect.c0 as usize;
                let c1 = (c0 + old.run_width[gi] as usize).min(cols - 1);
                if dirty_in_box(prefix, cols, r, old.reach[gi] as usize, c0, c1) {
                    clean = false;
                    break;
                }
            }
        }
        if clean {
            for gi in og {
                let rect = old.rects[gi];
                rects.push(rect);
                reach.push(old.reach[gi]);
                run_width.push(old.run_width[gi]);
                let b = rect.r1 + 1;
                for c in rect.c0 as usize..=rect.c1 as usize {
                    rs.bot_new[c] = b;
                    rs.bot_old[c] = b;
                }
            }
        } else {
            let start = rects.len();
            scan_row(
                edges,
                accept,
                r,
                cols,
                &mut rs.bot_new,
                &mut rects,
                &mut reach,
                &mut run_width,
            );
            for gi in og.clone() {
                let rect = old.rects[gi];
                for c in rect.c0 as usize..=rect.c1 as usize {
                    rs.bot_old[c] = rect.r1 + 1;
                }
            }
            // Refresh the divergence set over every column either tiling
            // wrote this row; untouched columns keep their prior verdict.
            let touched = rects[start..].iter().copied().chain(og.map(|gi| old.rects[gi]));
            for rect in touched {
                for c in rect.c0 as usize..=rect.c1 as usize {
                    if rs.bot_new[c] != rs.bot_old[c] && !rs.in_diff[c] {
                        rs.in_diff[c] = true;
                        rs.diff.push(c as u32);
                    }
                }
            }
        }
        row_start.push(rects.len() as u32);
    }
    for &c in &rs.diff {
        rs.in_diff[c as usize] = false;
    }
    rs.diff.clear();
    ThetaTrace { epoch, rects, reach, run_width, row_start }
}

/// Builds the cached state of one multi-cell group: allocated features,
/// representatives, and the Eq. 3 per-member subtotals — the same
/// `allocate_rect_into` / [`representative`] / [`cell_term_at`] pipeline
/// the batch evaluation runs, so every stored number matches its bits.
#[allow(clippy::too_many_arguments)]
fn build_rect_entry(
    grid: &GridDataset,
    cache: &IflCellCache,
    aggs: &[AggType],
    p: usize,
    has_mode: bool,
    pos_of: &[u32],
    cols: usize,
    rect: GroupRect,
    epoch: u64,
    scratch: &mut Scratch,
    feat_tmp: &mut Vec<f64>,
) -> RectEntry {
    feat_tmp.clear();
    let count = allocate_rect_into(grid, rect, scratch, feat_tmp);
    let mut terms = Vec::with_capacity(count);
    if count > 1 {
        // Stash the representative row behind the features in the same
        // buffer (indices p..2p).
        for k in 0..p {
            let rep = representative(feat_tmp[k], aggs[k], count);
            feat_tmp.push(rep);
        }
        for rr in rect.r0 as usize..=rect.r1 as usize {
            let base = rr * cols;
            for cc in rect.c0 as usize..=rect.c1 as usize {
                let pos = pos_of[base + cc];
                if pos != u32::MAX {
                    terms.push(cell_term_at(
                        cache,
                        pos as usize,
                        &feat_tmp[p..2 * p],
                        aggs,
                        has_mode,
                        p,
                    ));
                }
            }
        }
        feat_tmp.truncate(p);
    } else {
        // 0 or 1 valid member: the batch kernel contributes nothing for
        // these groups (single-member terms are exact zeros).
        terms.resize(count, 0.0);
    }
    RectEntry {
        epoch,
        valid_count: count as u32,
        features: feat_tmp.as_slice().into(),
        terms: terms.into_boxed_slice(),
    }
}

/// Scores one extracted tiling: per-group subtotals — cached where the
/// rectangle is untouched by dirt, rebuilt otherwise — scattered into the
/// per-cell subtotal plane and folded in canonical order.
///
/// The subtotal plane (`terms`) persists across the evaluations of one
/// run, and `prev_rects` is the tiling the previous evaluation scored into
/// it (empty on the first). A rectangle present in both tilings already
/// has its members' subtotals in the plane — the same grid and the same
/// member set produce the same numbers — so it is skipped outright, before
/// any cache probe. Nearby thresholds share almost their whole tiling,
/// which turns the scatter from O(cells) into O(changed groups).
#[allow(clippy::too_many_arguments)]
fn score_trace(
    grid: &GridDataset,
    cache: &IflCellCache,
    aggs: &[AggType],
    p: usize,
    has_mode: bool,
    pos_of: &[u32],
    cols: usize,
    trace_rects: &[GroupRect],
    prev_rects: &[GroupRect],
    rect_cache: &mut HashMap<GroupRect, RectEntry>,
    prefix: &[u32],
    epoch: u64,
    scratch: &mut Scratch,
    feat_tmp: &mut Vec<f64>,
    terms: &mut [f64],
    reused: &mut u64,
    pool: &sr_par::Pool,
) -> f64 {
    // Merge cursor into `prev_rects`; both tilings are strictly ascending
    // by anchor (r0, c0), so one forward pass pairs them up.
    let anchor = |rect: GroupRect| ((rect.r0 as u64) << 32) | rect.c0 as u64;
    let mut pi = 0usize;
    let mut to_scatter: Vec<GroupRect> = Vec::new();
    let mut to_build: Vec<GroupRect> = Vec::new();
    for &rect in trace_rects {
        let key = anchor(rect);
        while pi < prev_rects.len() && anchor(prev_rects[pi]) < key {
            pi += 1;
        }
        if pi < prev_rects.len() && prev_rects[pi] == rect {
            // Unchanged group: its subtotals are already in the plane.
            pi += 1;
            if rect.r0 != rect.r1 || rect.c0 != rect.c1 {
                *reused += 1;
            }
            continue;
        }
        if rect.r0 == rect.r1 && rect.c0 == rect.c1 {
            // Singleton: a skipped (exact-zero) term; not worth an entry.
            let pos = pos_of[rect.r0 as usize * cols + rect.c0 as usize];
            if pos != u32::MAX {
                terms[pos as usize] = 0.0;
            }
            continue;
        }
        match rect_cache.get_mut(&rect) {
            // Within-run hits are always valid (the grid is fixed for the
            // whole walk); cross-run entries are valid while no dirty cell
            // lies inside the rectangle.
            Some(e)
                if e.epoch == epoch
                    || !dirty_in_box(
                        prefix,
                        cols,
                        rect.r0 as usize,
                        rect.r1 as usize,
                        rect.c0 as usize,
                        rect.c1 as usize,
                    ) =>
            {
                e.epoch = epoch;
                *reused += 1;
                to_scatter.push(rect);
            }
            _ => to_build.push(rect),
        }
    }
    // Rebuilds dominate the first evaluation after a dirty batch (every
    // group the dirt touched), and each one is self-contained — the feature
    // fold and term loop read only the grid and the cell cache — so fan
    // them out. Chunk results come back in submission order; insertion and
    // scatter stay serial, and the plane writes of a tiling are disjoint,
    // so the plane ends up bit-identical to a serial pass.
    if to_build.len() >= 16 && pool.threads() > 1 {
        let grain = sr_par::fixed_grain(to_build.len(), 4 * pool.threads());
        let built: Vec<Vec<RectEntry>> = pool.par_map_chunks(to_build.len(), grain, |range| {
            let mut scratch = Scratch::new(p);
            let mut feat = Vec::new();
            range
                .map(|i| {
                    build_rect_entry(
                        grid,
                        cache,
                        aggs,
                        p,
                        has_mode,
                        pos_of,
                        cols,
                        to_build[i],
                        epoch,
                        &mut scratch,
                        &mut feat,
                    )
                })
                .collect()
        });
        for (&rect, entry) in to_build.iter().zip(built.into_iter().flatten()) {
            scatter_entry(terms, pos_of, cols, rect, &entry);
            rect_cache.insert(rect, entry);
        }
    } else {
        for &rect in &to_build {
            let entry = build_rect_entry(
                grid, cache, aggs, p, has_mode, pos_of, cols, rect, epoch, scratch, feat_tmp,
            );
            scatter_entry(terms, pos_of, cols, rect, &entry);
            rect_cache.insert(rect, entry);
        }
    }
    for &rect in &to_scatter {
        scatter_entry(terms, pos_of, cols, rect, &rect_cache[&rect]);
    }
    fold_cell_terms(terms, cache.terms(), pool)
}

/// Copies one group's cached per-member subtotals into the subtotal plane,
/// in member scan order (the order [`build_rect_entry`] recorded them).
fn scatter_entry(
    terms: &mut [f64],
    pos_of: &[u32],
    cols: usize,
    rect: GroupRect,
    entry: &RectEntry,
) {
    let mut j = 0usize;
    for rr in rect.r0 as usize..=rect.r1 as usize {
        let base = rr * cols;
        for cc in rect.c0 as usize..=rect.c1 as usize {
            let pos = pos_of[base + cc];
            if pos != u32::MAX {
                terms[pos as usize] = entry.terms[j];
                j += 1;
            }
        }
    }
    debug_assert_eq!(j, entry.valid_count as usize);
}

/// Retains a freshly recorded trace, respecting the size caps: oversized
/// traces are dropped (re-extraction is cheaper than the memory), and when
/// the table is full the largest stored trace makes room — unless the new
/// one is itself the largest.
fn store_trace(traces: &mut HashMap<u64, ThetaTrace>, key: u64, trace: ThetaTrace) {
    if trace.rects.len() > MAX_TRACE_RECTS {
        return;
    }
    if traces.len() >= MAX_TRACES {
        let victim = traces.iter().map(|(&k, t)| (k, t.rects.len())).max_by_key(|&(_, len)| len);
        match victim {
            Some((k, len)) if len >= trace.rects.len() => {
                traces.remove(&k);
            }
            _ => return,
        }
    }
    traces.insert(key, trace);
}

/// Materializes the winning tiling: the `cell_to_group` index from the
/// rectangles (scan order = batch group-id order) and the feature arena
/// from cached entries, falling back to a live allocation on a cache miss.
#[allow(clippy::too_many_arguments)]
fn materialize(
    grid: &GridDataset,
    rows: usize,
    cols: usize,
    p: usize,
    winner: &[GroupRect],
    rect_cache: &HashMap<GroupRect, RectEntry>,
    epoch: u64,
    scratch: &mut Scratch,
) -> (Partition, GroupFeatures) {
    let mut cell_to_group = vec![0 as GroupId; rows * cols];
    for (g, &rect) in winner.iter().enumerate() {
        for rr in rect.r0 as usize..=rect.r1 as usize {
            let base = rr * cols;
            cell_to_group[base + rect.c0 as usize..=base + rect.c1 as usize].fill(g as GroupId);
        }
    }
    let partition = Partition::new(rows, cols, winner.to_vec(), cell_to_group);
    let mut values = Vec::with_capacity(winner.len() * p);
    let mut counts = Vec::with_capacity(winner.len());
    for &rect in winner {
        match rect_cache.get(&rect) {
            // Entries touched this run hold exactly what a live allocation
            // would produce for the current grid.
            Some(e) if e.epoch == epoch => {
                values.extend_from_slice(&e.features);
                counts.push(e.valid_count);
            }
            _ => {
                let c = allocate_rect_into(grid, rect, scratch, &mut values);
                counts.push(c as u32);
            }
        }
    }
    (partition, GroupFeatures::from_raw(p, values, counts))
}

impl Repartitioner {
    /// The localized incremental entry point: like
    /// [`Repartitioner::run_with_scan`], but with cost proportional to the
    /// dirty region. `dirty` is the set of cells whose values changed since
    /// the previous `run_localized` call on this `state` (duplicates are
    /// harmless); `state` carries the traces, the per-group cache, and the
    /// warm-start hint between runs.
    ///
    /// Bit-identity contract: the outcome equals
    /// [`Repartitioner::run_with_pool_warm`] on the same grid with the hint
    /// the state held on entry (`None` when the state was not ready or the
    /// dirty fraction forced a cold walk) — which under a `None` hint or
    /// the [`crate::IterationStrategy::EveryDistinct`] strategy is exactly
    /// the batch driver. This holds at any `SR_THREADS`.
    ///
    /// Emits the `repartition.run` span with `localized`, `dirty_cells`,
    /// `reused_groups`, and `thresholds_walked` fields on top of the batch
    /// fields.
    pub fn run_localized(
        &self,
        grid: &GridDataset,
        scan: &ScanCache,
        state: &mut LocalizedState,
        dirty: &[CellId],
        pool: &sr_par::Pool,
    ) -> Result<RepartitionOutcome> {
        if scan.ifl_options() != self.ifl_options() {
            return Err(CoreError::ScanCacheMismatch);
        }
        let (rows, cols) = (grid.rows(), grid.cols());
        let n = grid.num_cells();
        if state.rows != rows || state.cols != cols {
            *state = LocalizedState::new();
            state.rows = rows;
            state.cols = cols;
        }
        state.epoch += 1;
        let epoch = state.epoch;

        let metrics = sr_obs::Registry::global();
        metrics.counter("repartition.runs_total").inc();
        let mut run_span = sr_obs::span("repartition.run");
        run_span.record("cells", n);
        run_span.record("threshold", self.threshold());
        run_span.record("incremental", 1usize);
        run_span.record("localized", 1usize);
        run_span.record("dirty_cells", dirty.len());

        {
            let mut scan_span = sr_obs::span("repartition.variation_scan");
            scan.sorted_distinct_thresholds_into(&mut state.thresholds_buf);
            scan_span.record("distinct_variations", state.thresholds_buf.len());
        }
        let edges = scan.edges();
        let cells = scan.cells();
        let ifl_cache = scan.ifl_cache();

        let cold = state.walks_cold(dirty.len(), n);
        let warm_hint = state.planned_hint(dirty.len(), n);

        // Run-scoped derived inputs and scratch, all held in the state so
        // steady-state runs allocate nothing grid-sized.
        build_dirty_prefix(rows, cols, dirty, &mut state.prefix_buf);
        let stamp = (scan.cells_generation(), cells.len());
        if state.pos_of.len() != n || state.pos_of_stamp != Some(stamp) {
            state.pos_of.clear();
            state.pos_of.resize(n, u32::MAX);
            for (i, &id) in cells.iter().enumerate() {
                state.pos_of[id as usize] = i as u32;
            }
            state.pos_of_stamp = Some(stamp);
        }
        state.terms.resize(cells.len(), 0.0);
        state.replay.bot_new.resize(cols, 0);
        state.replay.bot_old.resize(cols, 0);
        state.replay.in_diff.resize(cols, false);
        let p = grid.num_attrs();
        let aggs = grid.agg_types().to_vec();
        let has_mode = aggs.contains(&AggType::Mode);
        let mut scratch = Scratch::new(p);
        let mut feat_tmp: Vec<f64> = Vec::new();

        let iterations_total = metrics.counter("repartition.iterations_total");
        let rejections_total = metrics.counter("repartition.rejections_total");
        let mut iterations: Vec<IterationStats> = Vec::new();
        let mut best: Option<(f64, f64, usize)> = None; // (θ, ifl, groups)
        let mut winner_rects: Vec<GroupRect> = Vec::new();
        let mut reused: u64 = 0;
        let threshold = self.threshold();

        let walk = {
            let traces = &mut state.traces;
            let rect_cache = &mut state.rect_cache;
            let thresholds = &state.thresholds_buf;
            let prefix = &state.prefix_buf;
            let pos_of = &state.pos_of;
            let terms = &mut state.terms;
            let rs = &mut state.replay;
            // The tiling the subtotal plane currently holds (walk-scoped:
            // the plane persists across the evaluations of one run).
            let mut prev_rects: Vec<GroupRect> = Vec::new();
            let mut evaluate = |theta: f64| -> IterationStats {
                let key = theta.to_bits();
                let accept = theta + VARIATION_SLACK;
                let old = traces.remove(&key);
                let mut ex_span = sr_obs::span("repartition.extract");
                // 0 = same-run clone, 1 = cross-run replay, 2 = full scan.
                let mut path = 2usize;
                let trace = match &old {
                    // Same θ re-probed within one walk: the grid is fixed,
                    // so the recorded tiling is the tiling.
                    Some(t) if t.epoch == epoch => {
                        path = 0;
                        t.clone()
                    }
                    // Exactly one run old: replay, re-scanning only rows
                    // whose probe footprints contain dirt.
                    Some(t) if t.epoch + 1 == epoch => {
                        path = 1;
                        replay_trace(edges, accept, rows, cols, t, prefix, rs, epoch)
                    }
                    _ => extract_full_trace(edges, accept, rows, cols, rs, epoch),
                };
                let num_groups = trace.rects.len();
                ex_span.record("path", path);
                ex_span.record("groups", num_groups);
                drop(ex_span);
                let sc_span = sr_obs::span("repartition.score");
                let ifl = score_trace(
                    grid,
                    ifl_cache,
                    &aggs,
                    p,
                    has_mode,
                    pos_of,
                    cols,
                    &trace.rects,
                    &prev_rects,
                    rect_cache,
                    prefix,
                    epoch,
                    &mut scratch,
                    &mut feat_tmp,
                    terms,
                    &mut reused,
                    pool,
                );
                drop(sc_span);
                prev_rects.clear();
                if trace.rects.len() <= MAX_TRACE_RECTS {
                    prev_rects.extend_from_slice(&trace.rects);
                }
                let accepted = ifl <= threshold;
                iterations_total.inc();
                if !accepted {
                    rejections_total.inc();
                }
                if accepted && best.is_none_or(|(_, _, groups)| num_groups <= groups) {
                    best = Some((theta, ifl, num_groups));
                    winner_rects.clear();
                    winner_rects.extend_from_slice(&trace.rects);
                }
                store_trace(traces, key, trace);
                IterationStats { min_adjacent_variation: theta, num_groups, ifl, accepted }
            };

            let mut merge_span = sr_obs::span("repartition.merge_loop");
            let walk = self.drive_walk(thresholds, warm_hint, &mut iterations, &mut evaluate);
            merge_span.record("iterations", iterations.len());
            merge_span.record("rejections", iterations.iter().filter(|it| !it.accepted).count());
            walk
        };

        let repartitioned = match best {
            Some((theta, ifl, _)) => {
                let (partition, features) = materialize(
                    grid,
                    rows,
                    cols,
                    p,
                    &winner_rects,
                    &state.rect_cache,
                    epoch,
                    &mut scratch,
                );
                Repartitioned::from_parts(grid, partition, features.into_options(), ifl, theta)
            }
            None => {
                let partition = Partition::identity(rows, cols);
                let features = allocate_features_with(grid, &partition, pool);
                Repartitioned::from_parts(grid, partition, features, 0.0, 0.0)
            }
        };
        metrics
            .counter("repartition.cells_merged_total")
            .add((n - repartitioned.num_groups()) as u64);

        // End-of-run bookkeeping: the hint moves to this run's winner, and
        // anything not touched this run is evicted — which both bounds
        // memory and keeps every retained item exactly one dirt-generation
        // old, the precondition of the cross-run validity checks above.
        state.hint = best.map(|(theta, ..)| theta);
        state.ready = true;
        state.last_fallback = cold || walk == WalkKind::WarmMiss;
        state.last_reused = reused;
        state.traces.retain(|_, t| t.epoch == epoch);
        state.rect_cache.retain(|_, e| e.epoch == epoch);

        run_span.record("groups", repartitioned.num_groups());
        run_span.record("ifl", repartitioned.ifl());
        run_span.record("reused_groups", reused as usize);
        run_span.record("thresholds_walked", iterations.len());

        Ok(RepartitionOutcome { repartitioned, iterations, input_cells: n })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::repartition::{IterationStrategy, RepartitionConfig};
    use rand::{rngs::SmallRng, Rng, SeedableRng};

    fn smooth_grid(rows: usize, cols: usize, seed: u64) -> GridDataset {
        let mut rng = SmallRng::seed_from_u64(seed);
        let vals: Vec<f64> = (0..rows * cols)
            .map(|i| {
                let (r, c) = (i / cols, i % cols);
                100.0 + (r as f64 * 0.8) + (c as f64 * 0.5) + rng.gen_range(-0.5..0.5)
            })
            .collect();
        GridDataset::univariate(rows, cols, vals).unwrap()
    }

    fn driver(theta: f64, strategy: IterationStrategy) -> Repartitioner {
        Repartitioner::with_config(RepartitionConfig::new(theta).unwrap().with_strategy(strategy))
            .unwrap()
    }

    fn outcome_bits(out: &RepartitionOutcome) -> Vec<u64> {
        let mut bits = vec![
            out.repartitioned.ifl().to_bits(),
            out.repartitioned.min_adjacent_variation().to_bits(),
            out.repartitioned.num_groups() as u64,
            out.iterations.len() as u64,
        ];
        for it in &out.iterations {
            bits.push(it.min_adjacent_variation.to_bits());
            bits.push(it.ifl.to_bits());
            bits.push(it.num_groups as u64);
            bits.push(it.accepted as u64);
        }
        for (g, f) in out.repartitioned.features().iter().enumerate() {
            bits.push(g as u64);
            if let Some(fv) = f {
                bits.extend(fv.iter().map(|v| v.to_bits()));
            }
        }
        bits.extend(
            out.repartitioned
                .partition()
                .rects()
                .iter()
                .flat_map(|r| [r.r0 as u64, r.r1 as u64, r.c0 as u64, r.c1 as u64]),
        );
        bits
    }

    /// A sequence of dirty batches replayed through `run_localized` must
    /// match `run_with_pool_warm` on the same grid and hint, bit for bit,
    /// at 1 and 8 threads — including warm walks, a θ-jump miss, and a
    /// cold restart after invalidation.
    #[test]
    fn localized_matches_hinted_batch_driver() {
        for strategy in [
            IterationStrategy::EveryDistinct,
            IterationStrategy::Exponential { initial_stride: 2, growth: 1.7 },
        ] {
            let drv = driver(0.08, strategy);
            let mut reference: Vec<Vec<u64>> = Vec::new();
            for threads in [1usize, 8] {
                let pool = sr_par::Pool::new(threads);
                let mut grid = smooth_grid(14, 15, 42);
                let mut scan = ScanCache::build(&grid, drv.ifl_options());
                let mut state = LocalizedState::new();
                let mut rng = SmallRng::seed_from_u64(7);
                for round in 0..6 {
                    let dirty: Vec<CellId> = if round == 0 {
                        Vec::new()
                    } else {
                        (0..5).map(|_| rng.gen_range(0..grid.num_cells()) as CellId).collect()
                    };
                    for &id in &dirty {
                        let bump = rng.gen_range(-0.4..0.4);
                        let v = grid.value(id, 0) + bump;
                        grid.set_value(id, 0, v);
                    }
                    let update = scan.update(&grid, &dirty);
                    if update.rebuilt_normalization {
                        state.invalidate();
                    }
                    let hint = if state.ready() { state.warm_hint() } else { None };
                    let local = drv.run_localized(&grid, &scan, &mut state, &dirty, &pool).unwrap();
                    let batch = drv.run_with_pool_warm(&grid, &pool, hint).unwrap();
                    assert_eq!(
                        outcome_bits(&local),
                        outcome_bits(&batch),
                        "strategy {strategy:?} threads {threads} round {round}"
                    );
                    assert_eq!(
                        local.repartitioned.partition().num_groups(),
                        batch.repartitioned.partition().num_groups()
                    );
                    let bits = outcome_bits(&local);
                    if threads == 1 {
                        reference.push(bits);
                    } else {
                        assert_eq!(reference[round], bits, "thread-count divergence");
                    }
                }
            }
        }
    }

    /// A warm hint below every threshold must fall back to the cold walk
    /// and still match the batch driver under the same (missing) hint.
    #[test]
    fn warm_miss_falls_back_to_cold_walk() {
        let strategy = IterationStrategy::Exponential { initial_stride: 2, growth: 1.7 };
        let drv = driver(0.05, strategy);
        let pool = sr_par::Pool::new(2);
        // One near-identical pair (cells 0 and 1) in an otherwise jagged
        // row: the first run's winner is that pair's tiny variation.
        let mut grid =
            GridDataset::univariate(2, 3, vec![100.0, 100.001, 220.0, 390.0, 560.0, 730.0])
                .unwrap();
        let mut scan = ScanCache::build(&grid, drv.ifl_options());
        let mut state = LocalizedState::new();
        let first = drv.run_localized(&grid, &scan, &mut state, &[], &pool).unwrap();
        assert!(first.repartitioned.num_groups() < 6, "expected the pair to merge");
        let hint = state.warm_hint().expect("first run must set the hint");

        // Destroy the pair: the hinted variation vanishes from the
        // threshold list and every remaining variation exceeds it.
        let dirty = vec![1 as CellId];
        grid.set_value(1, 0, 155.0);
        let update = scan.update(&grid, &dirty);
        assert!(!update.rebuilt_normalization);
        let thresholds = scan.sorted_distinct_thresholds();
        assert!(thresholds.iter().all(|&t| t > hint), "hint must sit below all thresholds");

        let local = drv.run_localized(&grid, &scan, &mut state, &dirty, &pool).unwrap();
        assert!(state.last_run_was_fallback(), "warm miss must be reported as fallback");
        let batch = drv.run_with_pool_warm(&grid, &pool, Some(hint)).unwrap();
        assert_eq!(outcome_bits(&local), outcome_bits(&batch));
    }

    /// An all-cells-dirty batch exceeds the dirty-fraction cutover: the run
    /// must walk cold (no hint) and still match the unhinted batch driver.
    #[test]
    fn oversized_dirty_region_walks_cold() {
        let strategy = IterationStrategy::Exponential { initial_stride: 2, growth: 1.7 };
        let drv = driver(0.08, strategy);
        let pool = sr_par::Pool::new(2);
        let mut grid = smooth_grid(9, 9, 3);
        let mut scan = ScanCache::build(&grid, drv.ifl_options());
        let mut state = LocalizedState::new();
        drv.run_localized(&grid, &scan, &mut state, &[], &pool).unwrap();
        assert!(state.ready());

        let dirty: Vec<CellId> = (0..grid.num_cells() as CellId).collect();
        for &id in &dirty {
            let v = grid.value(id, 0) * 1.001 + 0.05;
            grid.set_value(id, 0, v);
        }
        let update = scan.update(&grid, &dirty);
        if update.rebuilt_normalization {
            state.invalidate();
        }
        let local = drv.run_localized(&grid, &scan, &mut state, &dirty, &pool).unwrap();
        assert!(state.last_run_was_fallback());
        let batch = drv.run_with_pool_warm(&grid, &pool, None).unwrap();
        assert_eq!(outcome_bits(&local), outcome_bits(&batch));
    }

    /// Group reuse must actually happen on a small-dirt warm run.
    #[test]
    fn unchanged_groups_are_reused() {
        let strategy = IterationStrategy::Exponential { initial_stride: 2, growth: 1.7 };
        // A tight budget keeps the winner at many small groups, so one
        // dirty cell invalidates one group and the rest hit the cache.
        let drv = driver(0.02, strategy);
        let pool = sr_par::Pool::new(1);
        let mut grid = smooth_grid(24, 24, 11);
        let mut scan = ScanCache::build(&grid, drv.ifl_options());
        let mut state = LocalizedState::new();
        let first = drv.run_localized(&grid, &scan, &mut state, &[], &pool).unwrap();
        assert!(first.repartitioned.num_groups() > 4, "need a multi-group winner");

        let dirty = vec![40 as CellId];
        let v = grid.value(40, 0) + 0.2;
        grid.set_value(40, 0, v);
        let update = scan.update(&grid, &dirty);
        if update.rebuilt_normalization {
            state.invalidate();
        }
        drv.run_localized(&grid, &scan, &mut state, &dirty, &pool).unwrap();
        assert!(!state.last_run_was_fallback());
        assert!(state.last_reused_groups() > 0, "expected rect-cache hits");
    }
}
